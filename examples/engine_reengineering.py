"""Case study walk-through: white-box reengineering of the engine controller.

Reproduces the paper's Sec.-5 case study end to end:

1. build the (synthetic) ASCET project of the gasoline engine controller,
2. analyse its implicit modes and flags,
3. white-box reengineer it into an FDA-level AutoMoDe model with explicit
   MTDs (the ThrottleRateOfChange / Fig.-8 example among them),
4. check that the behaviour is preserved on a driving scenario,
5. print the before/after metrics of the case study.

Run with:  python examples/engine_reengineering.py
"""

from repro.analysis.metrics import format_comparison, measure_component
from repro.analysis.mode_analysis import build_global_mode_system
from repro.ascet.importer import analyze_module
from repro.casestudy import (ENGINE_MODE_NAMES, build_engine_ascet_project,
                             build_reengineered_fda, compare_behaviour,
                             driving_scenario)
from repro.io.render import render_mtd
from repro.levels.fda import FunctionalDesignArchitecture


def main() -> None:
    # 1. the original ASCET project
    project = build_engine_ascet_project()
    print(f"original ASCET project: {len(project.module_list())} modules, "
          f"{len(project.task_list())} tasks, "
          f"{project.total_if_then_else()} If-Then-Else operators, "
          f"{project.total_flags()} state flags")

    # 2. implicit-mode analysis of the Fig.-8 module
    throttle = project.module("ThrottleRateOfChange")
    print()
    print(analyze_module(throttle,
                         ENGINE_MODE_NAMES["ThrottleRateOfChange"]).describe())

    # 3. white-box reengineering of the whole project
    fda_ssd = build_reengineered_fda(project)
    fda = FunctionalDesignArchitecture("EngineFDA", fda_ssd)
    print()
    print(fda.describe())
    print(fda.validate().summary())
    print()
    print(render_mtd(fda_ssd.subcomponent("ThrottleRateOfChange")))

    # 4. behaviour preserved on the driving scenario
    deviations = compare_behaviour(driving_scenario(120))
    print()
    print("behavioural deviation vs. the original ASCET model (120 ticks):")
    for signal, deviation in deviations.items():
        print(f"  {signal:<16} {deviation}")

    # 5. case-study metrics and the global mode transition system
    print()
    before = measure_component_from_project(project)
    after = measure_component(fda_ssd)
    print(format_comparison(before, after, "ASCET", "AutoMoDe"))

    system = build_global_mode_system(fda_ssd, scenario_limit=512)
    print()
    print(f"global mode transition system: {system.mode_count()} reachable "
          f"global modes, {system.transition_count()} transitions")


def measure_component_from_project(project):
    """Approximate 'before' metrics from the ASCET project itself."""
    from repro.analysis.metrics import ModelMetrics

    metrics = ModelMetrics(name=project.name)
    metrics.components = len(project.module_list())
    metrics.atomic_blocks = sum(len(m.process_list())
                                for m in project.module_list())
    metrics.if_then_else_operators = project.total_if_then_else()
    metrics.boolean_outputs = project.total_flags()
    metrics.explicit_modes = 0
    return metrics


if __name__ == "__main__":
    main()
