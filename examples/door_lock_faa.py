"""FAA-level analysis of the door-lock functional network (paper Fig. 4).

Builds the FAA functional network around the DoorLockControl function,
runs the rule-based conflict analysis (two vehicle functions access the same
door-lock actuators), applies the suggested countermeasure (a coordinating
functionality) and validates the functional concept by simulation.

Run with:  python examples/door_lock_faa.py
"""

from repro.analysis.conflicts import analyze_conflicts
from repro.casestudy import build_door_lock_faa, crash_scenario, fig1_stimuli
from repro.io.dot import composite_to_dot, mtd_to_dot
from repro.io.render import render_structure
from repro.levels.faa import FunctionalAnalysisArchitecture
from repro.simulation.engine import simulate
from repro.transformations.refactoring import introduce_coordinator


def main() -> None:
    network = build_door_lock_faa()
    faa = FunctionalAnalysisArchitecture("DoorLockFAA", network)

    print(faa.describe())
    print()
    print(render_structure(network))

    # 1. rule-based conflict identification (paper Sec. 3.1)
    analysis = faa.conflict_analysis()
    print()
    print("conflict analysis:")
    for conflict in analysis.conflicts:
        print(f"  actuator {conflict.actuator!r} driven by "
              f"{', '.join(conflict.functions)}")
        print(f"    suggestion: {conflict.suggestion()}")

    # 2. apply the countermeasure: introduce coordinating functionalities
    for actuator in analysis.conflicting_actuators():
        coordinator = introduce_coordinator(network, actuator)
        print(f"  -> introduced {coordinator.name}")

    # 3. Fig.-1 observation: message-based, time-synchronous communication
    control = network.subcomponent("DoorLockControl")
    trace = simulate(control, fig1_stimuli(), ticks=3)
    print()
    print("Fig.-1 style trace (note the '-' for message absence):")
    print(trace.format_table(["FZG_V", "T4S", "T1C"]))

    # 4. validate the functional concept on a crash scenario
    trace = simulate(control, crash_scenario(8), ticks=8)
    print()
    print("crash scenario mode trajectory:", trace.output("mode").values())
    print("final door commands:",
          {door: trace.output(door).last_present()
           for door in ("T1C", "T2C", "T3C", "T4C")})

    # 5. export the diagrams for a graphviz viewer
    print()
    print("DOT export of the functional network (paste into graphviz):")
    print(composite_to_dot(network)[:400] + " ...")
    print()
    print("DOT export of the DoorLockControl MTD:")
    print(mtd_to_dot(control)[:400] + " ...")


if __name__ == "__main__":
    main()
