"""Quickstart: build, validate and simulate a small AutoMoDe model.

Builds a two-mode cruise-control component (an MTD whose modes are defined
by expression blocks), embeds it in a DFD together with library blocks, runs
the causality check and simulates it on the global discrete time base --
the operational model of paper Sec. 2 in a dozen lines of model code.

Run with:  python examples/quickstart.py
"""

from repro.core import ExpressionComponent, FloatType
from repro.notations import (DataFlowDiagram, ModeTransitionDiagram,
                             RateLimiter)
from repro.simulation import analyze_causality, simulate


def build_cruise_control() -> ModeTransitionDiagram:
    """A cruise controller with explicit Off / Regulating modes."""
    mtd = ModeTransitionDiagram("CruiseControl")
    mtd.add_input("speed", FloatType(0.0, 300.0))
    mtd.add_input("set_speed", FloatType(0.0, 300.0))
    mtd.add_input("brake_pressed")
    mtd.add_output("torque_request")
    mtd.add_output("mode")

    off = ExpressionComponent("OffBehaviour", {"torque_request": "0"})
    off.add_output("torque_request")

    regulating = ExpressionComponent(
        "RegulatingBehaviour",
        {"torque_request": "limit((set_speed - speed) * 12, 0, 250)"})
    regulating.add_input("speed")
    regulating.add_input("set_speed")
    regulating.add_output("torque_request")

    mtd.add_mode("Off", off, initial=True)
    mtd.add_mode("Regulating", regulating)
    mtd.add_transition("Off", "Regulating",
                       "set_speed > 0 and not brake_pressed")
    mtd.add_transition("Regulating", "Off", "brake_pressed or set_speed <= 0",
                       priority=5)
    return mtd


def build_diagram() -> DataFlowDiagram:
    """Wrap the controller in a DFD with a slew-rate limiter on its output."""
    dfd = DataFlowDiagram("CruiseControlSystem")
    dfd.add_input("speed", FloatType(0.0, 300.0))
    dfd.add_input("set_speed", FloatType(0.0, 300.0))
    dfd.add_input("brake_pressed")
    dfd.add_output("engine_torque")
    dfd.add_output("mode")

    controller = build_cruise_control()
    limiter = RateLimiter("TorqueSlew", max_delta=25.0)
    dfd.add(controller, limiter)
    dfd.connect("speed", "CruiseControl.speed")
    dfd.connect("set_speed", "CruiseControl.set_speed")
    dfd.connect("brake_pressed", "CruiseControl.brake_pressed")
    dfd.connect("CruiseControl.torque_request", "TorqueSlew.in1")
    dfd.connect("TorqueSlew.out", "engine_torque")
    dfd.connect("CruiseControl.mode", "mode")
    return dfd


def main() -> None:
    dfd = build_diagram()

    # 1. well-formedness and the causality check of the tool prototype
    report = dfd.validate()
    print(report.summary())
    print("causal:", analyze_causality(dfd).is_causal)

    # 2. simulate on the global discrete time base
    ticks = 12
    stimuli = {
        "speed": [50 + 2 * t for t in range(ticks)],
        "set_speed": [0, 0, 80, 80, 80, 80, 80, 80, 80, 80, 0, 0],
        "brake_pressed": [False] * 8 + [True, True, False, False],
    }
    trace = simulate(dfd, stimuli, ticks=ticks)

    # 3. look at the trace table (Fig.-1 style: '-' marks absence)
    print()
    print(trace.format_table(["set_speed", "brake_pressed", "mode",
                              "engine_torque"]))


if __name__ == "__main__":
    main()
