"""Scenario sweep: generated stimulus batteries, sharded runs, coverage.

Builds the engine-operation-modes MTD of paper Fig. 6 and validates it
against a generated scenario battery instead of hand-written stimuli:

* a cartesian grid over engine-speed profiles and pedal positions,
* a scripted mode-sequence drive cycle,
* fault-injection variants (stuck pedal sensor, dropped speed messages),

then runs the batch through the sharded runner and prints the batch report:
which operation modes and mode transitions the battery exercised, the value
ranges seen on the outputs, and any isolated scenario failures.

Run with:  python examples/scenario_sweep.py
"""

from repro.casestudy import build_engine_modes_mtd
from repro.scenarios import (Dropout, EventStorm, ModeSequence, RandomWalk,
                             Scenario, StuckAt, run_with_report,
                             scenario_grid)


def build_battery():
    """A mixed battery: grid sweep + drive cycle + fault variants."""
    battery = scenario_grid(
        "grid",
        grid={
            "n": [ModeSequence([(0.0, 5), (900.0, 10), (2500.0, 15)]),
                  RandomWalk(seed=1, start=800.0, step=400.0,
                             low=0.0, high=6000.0)],
            "ped": [0.0, 40.0, 95.0],
        },
        ticks=30,
        base={"t_eng": 70.0})

    drive_cycle = ModeSequence([(0.0, 4), (400.0, 4), (900.0, 6),
                                (2500.0, 8), (4500.0, 8), (3500.0, 6),
                                (1000.0, 2), (0.0, 2)])
    pedal = ModeSequence([(0.0, 14), (30.0, 8), (90.0, 8), (0.0, 10)])
    battery.append(Scenario("drive-cycle",
                            {"n": drive_cycle, "ped": pedal, "t_eng": 55.0},
                            ticks=40))

    battery.append(Scenario("stuck-pedal", {
        "n": drive_cycle,
        "ped": StuckAt(pedal, value=100.0, from_tick=20),
        "t_eng": 55.0,
    }, ticks=40))
    battery.append(Scenario("dropped-speed", {
        "n": Dropout(drive_cycle, seed=7, probability=0.2),
        "ped": pedal,
        "t_eng": 55.0,
    }, ticks=40))
    battery.append(Scenario("cold-start-storm", {
        "n": EventStorm(seed=3, rate=0.6, values=(0.0, 300.0, 800.0, 1200.0),
                        quiet=0.0),
        "ped": 0.0,
        "t_eng": -10.0,
    }, ticks=30))
    return battery


def main() -> None:
    mtd = build_engine_modes_mtd()
    battery = build_battery()
    print(f"battery: {len(battery)} generated scenarios\n")

    # thread executor: works everywhere, including single-core sandboxes;
    # switch to executor="process" for CPU-bound batches on real hardware
    results, batch_report = run_with_report(mtd, battery, executor="thread",
                                            max_workers=4)
    print(batch_report.format_summary())

    untaken = batch_report.coverage[mtd.name].untaken_transitions()
    if untaken:
        print("\nstill-untaken transitions (extend the battery to cover):")
        for source, target in untaken:
            print(f"  {source} -> {target}")

    drive = next(result for result in results if result.name == "drive-cycle")
    print("\ndrive-cycle trace (first 12 ticks):")
    print(drive.trace.format_table(["n", "ped", "mode", "fuel_factor"],
                                   end=12))


if __name__ == "__main__":
    main()
