"""LA/TA/OA walk-through: clusters, deployment, scheduling and code generation.

Starts from the simplified engine-controller CCD of paper Fig. 7 and walks
the implementation-oriented half of the AutoMoDe flow:

1. check the OSEK-specific well-definedness conditions (a slow-to-fast rate
   transition needs a delay operator) and repair the model,
2. refine the physical signal types to implementation types (fixed point),
3. deploy the clusters onto a two-ECU architecture with OSEK tasks and a CAN
   bus, and analyse schedulability and end-to-end latency,
4. generate one ASCET-style project per ECU (the Operational Architecture).

Run with:  python examples/deployment_codegen.py [output_directory]
"""

import sys

from repro.analysis.well_definedness import (check_well_definedness,
                                             repair_rate_transitions)
from repro.casestudy import build_engine_ccd, driving_scenario
from repro.io.render import render_ccd
from repro.levels.la import LogicalArchitecture
from repro.levels.oa import OperationalArchitecture
from repro.levels.ta import TechnicalArchitectureLevel
from repro.transformations.deployment import deploy
from repro.transformations.refinement import refine_signal_types


def main() -> None:
    ccd = build_engine_ccd()
    print(render_ccd(ccd))

    # 1. well-definedness for the OSEK target
    report = check_well_definedness(ccd)
    print()
    print(report.summary())
    for issue in report.errors():
        print("  " + issue.describe())
    repaired = repair_rate_transitions(ccd)
    print(f"inserted delay operators on: {repaired}")
    la = LogicalArchitecture("EngineLA", ccd)
    print(la.describe())

    # 2. implementation types for the fast cluster's interface
    fuel = ccd.cluster("FuelAndIgnition")
    mapping = refine_signal_types(fuel, signal_ranges={
        "ti": {"low": 0.0, "high": 25.0, "resolution": 0.001},
        "ignition_angle": {"low": -20.0, "high": 60.0, "resolution": 0.1},
    })
    print()
    print(mapping.report())

    # 3. deployment to two ECUs
    deployment = deploy(ccd, ["ECU_Powertrain", "ECU_Aux"],
                        allocation={"SensorProcessing": "ECU_Powertrain",
                                    "FuelAndIgnition": "ECU_Powertrain"},
                        bus_bits_per_tick=200.0)
    print()
    print(deployment.describe())
    ta = TechnicalArchitectureLevel("EngineTA", deployment)
    print(f"schedulable: {ta.is_schedulable()}")
    for ecu_name, schedule in ta.simulate_schedules().items():
        print("  " + schedule.describe().replace("\n", "\n  "))

    # 4. Operational Architecture: ASCET-style projects per ECU
    oa = OperationalArchitecture("EngineOA", ccd, deployment)
    projects = oa.generate()
    print()
    print(oa.describe())
    for ecu_name, project in sorted(projects.items()):
        print(f"  {ecu_name}: {', '.join(project.file_names())}")
    sample = projects["ECU_Powertrain"].file("modules/FuelAndIgnition.c")
    print()
    print("generated module (excerpt):")
    print("\n".join(sample.splitlines()[:20]))

    if len(sys.argv) > 1:
        written = oa.write_to(sys.argv[1])
        print(f"\nwrote {len(written)} files below {sys.argv[1]}")


if __name__ == "__main__":
    main()
