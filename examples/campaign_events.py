"""Campaign flight recorder: event log, live progress, failure forensics.

A scenario campaign is a stream of facts -- started, shards dispatched,
scenarios finished or failed, finished.  This example runs a small sharded
campaign with one deliberately poisoned scenario and shows the three
flight-recorder layers of :mod:`repro.obs`:

1. the **event log**: every campaign fact lands in a crash-safe JSONL
   file with monotonic sequence numbers and a watermark; tailing the file
   replays exactly what a monitoring process would see live,
2. **live progress**: :class:`~repro.obs.CampaignProgress` folds the
   stream (plus the metrics registry's duration quantiles) into a
   progress bar with a failure roll-up,
3. **failure forensics**: the failing scenario dumps a post-mortem bundle
   -- the last ticks of the flat slot environment with decoded slot
   names, the exact failing op and tick, the stimulus -- enough to replay
   the crash without re-running the campaign.

Run with:  python examples/campaign_events.py
"""

import json
import os
import tempfile

from repro import obs
from repro.core.components import ExpressionComponent
from repro.notations.blocks import Gain
from repro.notations.dfd import DataFlowDiagram
from repro.obs import CampaignProgress, EventLog, read_bundle, tail_events
from repro.scenarios import RandomWalk, Scenario, run_sharded


def build_plant() -> DataFlowDiagram:
    """A small flattenable plant whose DIV op fails when ``d`` hits 0."""
    plant = DataFlowDiagram("Plant")
    plant.add_input("u")
    plant.add_input("d")
    plant.add_output("y")
    div = ExpressionComponent("DIV", {"out": "a / b"})
    div.declare_interface_from_expressions()
    gain = Gain("G", 2.0)
    plant.add(div, gain)
    plant.connect("u", "DIV.a")
    plant.connect("d", "DIV.b")
    plant.connect("DIV.out", "G.in1")
    plant.connect("G.out", "y")
    return plant


def build_battery(count: int = 6, ticks: int = 40) -> list:
    battery = [Scenario(f"sweep{index}", {
        "u": RandomWalk(seed=index, start=1.0, step=0.5, low=-5.0, high=5.0),
        "d": 1.0 + 0.25 * index,
    }, ticks=ticks) for index in range(count)]
    # the poison pill: d crosses zero at tick 25
    battery.insert(3, Scenario("poisoned", {
        "u": 1.0, "d": lambda tick: 0.0 if tick == 25 else 1.0,
    }, ticks=ticks))
    return battery


def main() -> None:
    plant = build_plant()
    battery = build_battery()
    workdir = tempfile.mkdtemp(prefix="campaign_")
    log_path = os.path.join(workdir, "campaign_events.jsonl")

    # one telemetry session: events to a crash-safe JSONL file, flight
    # recording on (8-tick forensic window), bundles next to the log
    with obs.session(events=EventLog(path=log_path), flight_recording=True,
                     ring_ticks=8, postmortem_dir=workdir) as telemetry:
        results = run_sharded(plant, battery, executor="thread",
                              max_workers=3)
        registry = telemetry.registry
        bundles = list(telemetry.bundles)

    failed = [result for result in results if not result.ok]
    print(f"campaign: {len(results)} scenarios, {len(failed)} failed "
          f"({', '.join(result.name for result in failed)})\n")

    # 1. the event log: tail the file like a monitoring process would
    events = tail_events(log_path)
    print(f"event log {log_path}: {len(events)} events, "
          f"watermark #{events[-1].seq}")
    for event in events[:4]:
        print(f"  #{event.seq:<3} {event.type:<18} "
              f"{json.dumps(event.data, sort_keys=True, default=str)[:68]}")
    print("  ...\n")

    # 2. live progress: fold the stream + duration quantiles
    progress = CampaignProgress.from_events(events)
    print(progress.format_progress(registry=registry))
    print()

    # 3. failure forensics: the post-mortem bundle of the poisoned run
    bundle = read_bundle(bundles[0])
    failing = bundle["failing"]
    print(f"post-mortem {bundles[0]}:")
    print(f"  scenario {bundle['scenario']!r} died at tick "
          f"{failing['tick']} in {failing['op_label']}: {failing['error']}")
    print("  slots at the moment of the raise:")
    for name, value in sorted(failing["partial_slots"].items()):
        print(f"    {name:<16} = {value}")
    window = [snapshot["tick"] for snapshot in bundle["ring"]]
    print(f"  forensic window: ticks {window[0]}..{window[-1]} "
          f"({len(window)} snapshots, ring capacity "
          f"{bundle['ring_capacity']})")


if __name__ == "__main__":
    main()
