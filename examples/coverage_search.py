"""Coverage-guided search: close the validation loop automatically.

PR 2's ``scenario_sweep`` example ends with a list of still-untaken mode
transitions and the advice "extend the battery to cover".  This example
lets the :mod:`repro.search` subsystem do that extension itself: starting
from a deliberately weak seed battery (the engine never leaves ``Off``),
the generational search mutates guard-vocabulary stimuli, breeds the
scenarios that earn coverage and drives the Fig.-6 engine-operation-modes
MTD to 100% transition coverage, then greedily minimizes the final corpus
into a compact regression battery.

Run with:  python examples/coverage_search.py
"""

from repro.casestudy import build_engine_modes_mtd
from repro.scenarios import Scenario, run_with_report
from repro.search import SearchConfig, search_coverage


def main() -> None:
    mtd = build_engine_modes_mtd()

    # the weak seed: idling at n=0 never takes a single transition
    weak_battery = [Scenario("weak", {"n": 0.0, "ped": 0.0, "t_eng": 20.0},
                             ticks=20)]
    _, seed_report = run_with_report(mtd, weak_battery, executor="serial")
    print("seed battery coverage: "
          f"{100 * seed_report.overall_transition_coverage():.0f}% "
          f"transitions\n")

    config = SearchConfig(seed=7, max_rounds=12, population=16,
                          executor="serial")
    report = search_coverage(mtd, weak_battery, config)
    print(report.format_summary())

    # the minimized corpus really is a standalone regression battery
    _, replay = run_with_report(mtd, report.corpus, executor="serial")
    print(f"\nminimized battery replay: "
          f"{100 * replay.overall_transition_coverage():.0f}% transitions, "
          f"{100 * replay.overall_mode_coverage():.0f}% modes")

    print("\nminimized scenarios in detail:")
    for scenario in report.corpus:
        print(f"  {scenario.name} ({scenario.ticks} ticks)")
        for port in sorted(scenario.stimuli):
            print(f"    {port} = {scenario.stimuli[port]!r}")


if __name__ == "__main__":
    main()
