"""Op-level profiling: where do the ticks go, per backend?

Builds a deep clock-gated controller cascade (the ``bench_flatten``
workload shape: expression blocks, gating predicates, delayed feedback
taps with correction barriers on every level), runs the same scenario
battery through the **flat** and the **batch** backends under
``repro.obs`` with op profiling enabled, and prints

* the op-level profile of each backend (per-kind time split, gate skip
  rates, correction re-runs, the top-N hottest ops by accumulated time),
* the side-by-side backend comparison,
* the metrics registry (sweep counters, scenario counters, durations),

and saves a Chrome trace (``profile_flat_ops_trace.json``) loadable in
Perfetto / ``chrome://tracing``.

Observability is strictly opt-in: rerun this workload without the
``obs.session(...)`` block and the engines execute their untouched step
closures -- zero instrumentation cost is the contract, gated by
``benchmarks/bench_obs_overhead.py``.

Run with:  python examples/profile_flat_ops.py
"""

from repro import obs
from repro.core.clocks import every
from repro.core.components import ExpressionComponent
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.scenarios import RandomWalk, Scenario, run_sharded
from repro.simulation import ClockGatedComponent

DEPTH = 5
SCENARIOS = 16
TICKS = 400


def gated_controller(depth=DEPTH):
    """A depth-level controller cascade, each level gating the next."""
    def level(d):
        dfd = DataFlowDiagram(f"L{d}")
        dfd.add_input("u")
        dfd.add_output("y")
        pre = ExpressionComponent("Pre", {"out": "in1 + 1"})
        pre.declare_interface_from_expressions()
        post = ExpressionComponent("Post", {"out": "in1 * 2 + in2"})
        post.declare_interface_from_expressions()
        tap = UnitDelay("Z", initial=0)
        dfd.add(pre, post, tap)
        dfd.connect("u", "Pre.in1")
        if d > 0:
            gated = ClockGatedComponent(level(d - 1), every(2),
                                        name=f"Gated{d - 1}")
            dfd.add_subcomponent(gated)
            dfd.connect("Pre.out", f"Gated{d - 1}.u")
            dfd.connect(f"Gated{d - 1}.y", "Post.in1")
        else:
            dfd.connect("Pre.out", "Post.in1")
        dfd.connect("Post.out", "Z.in1")
        dfd.connect("Z.out", "Post.in2")
        dfd.connect("Post.out", "y")
        return dfd
    return level(depth)


def battery():
    return [Scenario(f"sweep{index}",
                     {"u": RandomWalk(seed=index, start=0.0, step=1.0,
                                      low=-10.0, high=10.0)},
                     ticks=TICKS) for index in range(SCENARIOS)]


def main():
    model = gated_controller()
    scenarios = battery()
    print(f"profiling {model.name!r} (depth {DEPTH}): "
          f"{SCENARIOS} scenarios x {TICKS} ticks per backend\n")

    profiles = {}
    with obs.session(profile_ops=True) as telemetry:
        for backend in ("flat", "batch"):
            try:
                results = run_sharded(model, scenarios, executor="serial",
                                      backend=backend)
            except Exception as exc:  # numpy-less hosts: skip batch
                print(f"[{backend}] skipped: {exc}\n")
                continue
            failed = [result for result in results if not result.ok]
            assert not failed, failed
        for label, profile in telemetry.named_profiles().items():
            profiles[label] = profile
            print(obs.format_profile(profile, top=8))
            print()

    if len(profiles) > 1:
        print(obs.format_backend_comparison(profiles))
        print()

    print(telemetry.registry.format_summary())

    trace_path = "profile_flat_ops_trace.json"
    telemetry.tracer.save_chrome_trace(trace_path)
    print(f"\nChrome trace -> {trace_path} "
          "(open in Perfetto or chrome://tracing)")


if __name__ == "__main__":
    main()
