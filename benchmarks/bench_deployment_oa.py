"""[T2] Sec. 3.3/3.4 -- deployment and Operational Architecture generation.

Regenerates the deployment of the engine CCD onto a two-ECU OSEK/CAN
platform: cluster-to-task mapping, schedulability, CAN frame packing and
latency, end-to-end timing against the deadlines implied by the logical
delays, and the generated per-ECU ASCET-style projects.
"""

from repro.analysis.well_definedness import repair_rate_transitions
from repro.casestudy import build_engine_ccd
from repro.io.render import render_table
from repro.levels.oa import OperationalArchitecture
from repro.platform.osek import response_time_analysis, simulate_schedule
from repro.platform.timing import analyze_chain
from repro.transformations.deployment import deploy

from _bench_utils import report

ALLOCATION = {"SensorProcessing": "ECU_Powertrain",
              "FuelAndIgnition": "ECU_Powertrain",
              "IdleSpeed": "ECU_Aux",
              "Monitoring": "ECU_Aux"}


def _deployed_ccd():
    ccd = build_engine_ccd()
    repair_rate_transitions(ccd)
    return ccd, deploy(ccd, ["ECU_Powertrain", "ECU_Aux"],
                       allocation=ALLOCATION, bus_bits_per_tick=200.0)


def test_t2_deployment_and_schedulability(benchmark):
    ccd, result = benchmark(_deployed_ccd)

    rows = []
    for cluster in ccd.clusters():
        rows.append([cluster.name, cluster.period,
                     result.ecu_of_cluster[cluster.name],
                     result.task_of_cluster[cluster.name]])
    lines = [render_table(["cluster", "rate", "ECU", "task"], rows), ""]
    for ecu in result.architecture.ecu_list():
        analysis = response_time_analysis(ecu)
        schedule = simulate_schedule(ecu)
        lines.append(f"{ecu.name}: utilization {ecu.utilization():.1%}, "
                     f"WCRTs {[(r.task, round(r.wcrt, 2)) for r in analysis]}, "
                     f"deadline misses {len(schedule.deadline_misses())}")
    lines.append(f"CAN frames: {len(result.bus.frames)}, bus utilization "
                 f"{result.bus.utilization():.1%}")
    for entry in result.bus.latency_report():
        lines.append(f"  {entry['frame']}: id={entry['can_id']:#x} "
                     f"period={entry['period']} "
                     f"latency={entry['worst_case_latency']:.2f} ticks")
    report("T2", "\n".join(lines))

    assert set(result.ecu_of_cluster.values()) == {"ECU_Powertrain", "ECU_Aux"}
    assert all(simulate_schedule(ecu).is_schedulable()
               for ecu in result.architecture.ecu_list())
    assert result.remote_signals() >= 1
    assert result.bus.utilization() < 0.5


def test_t2_end_to_end_latency_meets_logical_deadline(benchmark):
    ccd, result = _deployed_ccd()
    analysis = benchmark(lambda: analyze_chain(
        ["Monitoring", "FuelAndIgnition"], result.architecture, result.bus,
        frame_of_signal=result.frame_of_signal,
        logical_delays=1, base_period=20))
    report("T2b", analysis.describe())
    assert analysis.meets_deadline


def test_t2_generated_projects(benchmark):
    ccd, result = _deployed_ccd()
    oa = OperationalArchitecture("EngineOA", ccd, result)
    projects = benchmark(oa.generate)

    lines = []
    for ecu_name, project in sorted(projects.items()):
        lines.append(f"{ecu_name}: {len(project.files)} files, "
                     f"{project.total_lines()} lines "
                     f"({', '.join(project.file_names())})")
    lines.append(f"communication matrix entries: {len(oa.communication_matrix())}")
    report("T2c", "\n".join(lines))

    assert set(projects) == {"ECU_Powertrain", "ECU_Aux"}
    assert oa.validate().is_valid()
    powertrain = projects["ECU_Powertrain"]
    assert "FuelAndIgnition_process" in powertrain.file(
        "modules/FuelAndIgnition.c")
    assert "TASK" in powertrain.file("os/osek_config.oil")
