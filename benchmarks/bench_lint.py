"""[P9] Static verifier throughput (lint-before-tick gate).

Not a paper figure: quantifies the cost of the PR-9 static-analysis engine
(:mod:`repro.analysis.lint`) on the full case-study portfolio plus a deep
gated controller cascade.  The point of the verifier is "prove schedules
safe before a single tick runs" -- that promise only pays off when a full
model lint (causality + expression abstract interpretation + machine
checks + IR dataflow verification + batch certification) costs a small,
bounded multiple of compilation itself, so it can run on every compile
(``compile_component(..., verify=True)``) and on every CI model.

Gates:

* the whole portfolio (9 case-study builders + the depth-6 cascade) lints
  in under ``MAX_PORTFOLIO_SECONDS`` wall-clock (generous CI headroom);
* a full lint of the deep cascade costs at most ``MAX_LINT_OVER_COMPILE``
  times its flat compilation;
* the portfolio stays error-free (the same invariant the CI lint-models
  job gates on).

Median lint rates land in ``BENCH_lint.json`` so the verifier's cost
trajectory is tracked across PRs like every other engine artefact.
"""

from repro.analysis.lint import lint_model
from repro.casestudy.door_lock import (build_comfort_closing,
                                       build_door_lock_control,
                                       build_door_lock_faa)
from repro.casestudy.engine_control import (build_crank_sequencer_std,
                                            build_engine_ccd,
                                            build_engine_modes_mtd)
from repro.casestudy.momentum import (build_closed_loop,
                                      build_momentum_controller)
from repro.casestudy.reengineered import build_reengineered_fda
from repro.simulation.schedule_ir import compile_flat

from _bench_utils import report, time_median, write_bench_json
from bench_flatten import deep_gated_controller

MAX_PORTFOLIO_SECONDS = 10.0
MAX_LINT_OVER_COMPILE = 25.0

PORTFOLIO = (
    ("door-lock-control", build_door_lock_control),
    ("comfort-closing", build_comfort_closing),
    ("door-lock-faa", build_door_lock_faa),
    ("engine-modes", build_engine_modes_mtd),
    ("crank-sequencer", build_crank_sequencer_std),
    ("engine-ccd", build_engine_ccd),
    ("momentum", build_momentum_controller),
    ("closed-loop", build_closed_loop),
    ("reengineered-fda", build_reengineered_fda),
    ("deep-cascade", lambda: deep_gated_controller(6)),
)


def test_p9_lint_portfolio_gate():
    models = [(name, builder()) for name, builder in PORTFOLIO]

    def lint_all():
        return [lint_model(model) for _, model in models]

    portfolio_seconds = time_median(lint_all, repeats=3)
    reports = lint_all()
    total_findings = sum(len(r.findings) for r in reports)
    error_count = sum(len(r.errors()) for r in reports)

    cascade = deep_gated_controller(6)
    compile_seconds = time_median(lambda: compile_flat(cascade), repeats=3)
    lint_seconds = time_median(lambda: lint_model(cascade), repeats=3)
    ratio = lint_seconds / compile_seconds if compile_seconds else 0.0

    lines = [f"{'model':>18}  findings  errors"]
    for (name, _), rep in zip(models, reports):
        lines.append(f"{name:>18}  {len(rep.findings):>8}  "
                     f"{len(rep.errors()):>6}")
    lines.append(f"portfolio lint: {portfolio_seconds * 1e3:.1f} ms "
                 f"({len(models)} models, {total_findings} findings)")
    lines.append(f"deep cascade: compile {compile_seconds * 1e3:.1f} ms, "
                 f"lint {lint_seconds * 1e3:.1f} ms "
                 f"(lint/compile = {ratio:.1f}x)")
    report("P9", "\n".join(lines))

    write_bench_json("lint", {
        "portfolio_seconds": portfolio_seconds,
        "portfolio_models": len(models),
        "portfolio_findings": total_findings,
        "portfolio_errors": error_count,
        "cascade_compile_seconds": compile_seconds,
        "cascade_lint_seconds": lint_seconds,
        "lint_over_compile": ratio,
        "gates": {
            "portfolio_under_budget":
                portfolio_seconds < MAX_PORTFOLIO_SECONDS,
            "lint_cost_bounded": ratio < MAX_LINT_OVER_COMPILE,
            "portfolio_error_free": error_count == 0,
        },
    })

    assert error_count == 0, [r.describe() for r in reports if r.errors()]
    assert portfolio_seconds < MAX_PORTFOLIO_SECONDS
    assert ratio < MAX_LINT_OVER_COMPILE, (lint_seconds, compile_seconds)


if __name__ == "__main__":
    test_p9_lint_portfolio_gate()
