"""[P2] Compiled engine vs reference interpreter (throughput comparison).

Not a paper figure: quantifies the speedup of the compiled simulation
engine (:mod:`repro.simulation.compiled`) over the tree-walking reference
interpreter on the ``bench_scalability`` workloads -- the flat expression
chain DFD and its clustered, rate-gated CCD form.  The CCD comparison at
1000 ticks is the acceptance gate for the compile-once/run-many split: the
compiled engine must be at least 5x faster while producing a tick-for-tick
identical trace.
"""

import pytest

from repro.core.components import ExpressionComponent
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.simulation import (CompiledSimulator, ScenarioSuite, Simulator,
                              build_gated_ccd, first_difference)
from repro.transformations.clustering import cluster_by_clock

from _bench_utils import report, time_best as _time_best


def _chain_dfd(length: int, banded: bool = False) -> DataFlowDiagram:
    """The bench_scalability chain; *banded* rates keep the clustered CCD
    causal (contiguous rate bands produce a one-directional inter-cluster
    channel instead of the instantaneous loop that alternating rates do)."""
    dfd = DataFlowDiagram(f"Chain{length}")
    dfd.add_input("u")
    dfd.add_output("y")
    previous = None
    for index in range(length):
        block = ExpressionComponent(f"B{index}", {"out": "in1 + 1"})
        block.declare_interface_from_expressions()
        if banded:
            block.annotate("rate", 1 if index < length // 2 else 10)
        else:
            block.annotate("rate", 1 if index % 2 == 0 else 10)
        dfd.add_subcomponent(block)
        if previous is None:
            dfd.connect("u", f"B{index}.in1")
        else:
            dfd.connect(f"{previous}.out", f"B{index}.in1")
        previous = f"B{index}"
    delay = UnitDelay("Z")
    delay.annotate("rate", 10)
    dfd.add_subcomponent(delay)
    dfd.connect(f"{previous}.out", "Z.in1")
    dfd.connect(f"{previous}.out", "y")
    return dfd


def test_p2_compiled_vs_interpreter_ccd_1000_ticks():
    """Acceptance gate: >= 5x on the clustered, rate-gated CCD workload."""
    ticks = 1000
    ccd, _ = cluster_by_clock(_chain_dfd(80, banded=True))
    gated = build_gated_ccd(ccd)
    stimuli = {"u": [1.0] * ticks}

    reference = Simulator(gated)
    compiled = CompiledSimulator(gated)
    reference_trace = reference.run(stimuli, ticks)
    compiled_trace = compiled.run(stimuli, ticks)
    assert first_difference(reference_trace, compiled_trace) is None

    t_reference = _time_best(lambda: reference.run(stimuli, ticks))
    t_compiled = _time_best(lambda: compiled.run(stimuli, ticks))
    speedup = t_reference / t_compiled
    report("P2", f"CCD workload, {ticks} ticks: interpreter {t_reference:.3f}s, "
                 f"compiled {t_compiled:.3f}s -> {speedup:.1f}x")
    assert speedup >= 5.0, (
        f"compiled engine only {speedup:.1f}x faster than interpreter")


@pytest.mark.parametrize("size,ticks", [(20, 1000), (80, 1000)])
def test_p2_compiled_vs_interpreter_dfd(size, ticks):
    dfd = _chain_dfd(size)
    stimuli = {"u": [1.0] * ticks}
    reference = Simulator(dfd)
    compiled = CompiledSimulator(dfd)
    assert first_difference(reference.run(stimuli, ticks),
                            compiled.run(stimuli, ticks)) is None
    t_reference = _time_best(lambda: reference.run(stimuli, ticks))
    t_compiled = _time_best(lambda: compiled.run(stimuli, ticks))
    speedup = t_reference / t_compiled
    report("P2", f"chain DFD size {size}, {ticks} ticks: interpreter "
                 f"{t_reference:.3f}s, compiled {t_compiled:.3f}s "
                 f"-> {speedup:.1f}x")
    assert speedup >= 2.0

    trace = compiled.run(stimuli, ticks)
    assert trace.output("y").presence_count() == ticks
    assert trace.output("y")[0] == 1.0 + size


def test_p2_scenario_suite_amortizes_compilation():
    """Batch of scenarios on one schedule vs recompiling per scenario."""
    ticks = 200
    n_scenarios = 20
    dfd = _chain_dfd(40)
    suite = ScenarioSuite(dfd)
    for index in range(n_scenarios):
        suite.add(f"s{index}", {"u": [float(index)] * ticks}, ticks)

    t_suite = _time_best(suite.run_all, repeats=2)

    def _one_shot_each():
        for index in range(n_scenarios):
            CompiledSimulator(dfd).run({"u": [float(index)] * ticks}, ticks)

    t_one_shot = _time_best(_one_shot_each, repeats=2)
    report("P2", f"{n_scenarios} scenarios x {ticks} ticks: shared schedule "
                 f"{t_suite:.3f}s, compile-per-scenario {t_one_shot:.3f}s")
    traces = suite.run_all()
    assert len(traces) == n_scenarios
    assert t_suite <= t_one_shot * 1.10  # sharing never meaningfully loses
