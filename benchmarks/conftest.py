"""Shared fixtures for the benchmark harness."""

import pytest


@pytest.fixture(scope="session")
def engine_scenario():
    from repro.casestudy import driving_scenario
    return driving_scenario(120)
