"""[F2] Fig. 2 -- explicit signal sampling with a ``when`` operator.

Regenerates the down-sampling of a stream ``a`` by the Boolean clock
``every(2, true)``: the sampled stream a' carries a value on every second
tick of the base clock and absence otherwise.
"""

from repro.core.values import ABSENT, Stream, is_absent
from repro.notations.blocks import Every, When
from repro.notations.dfd import DataFlowDiagram
from repro.simulation.engine import simulate
from repro.simulation.multirate import resample
from repro.core.clocks import every

from _bench_utils import report


def _build_fig2_dfd():
    dfd = DataFlowDiagram("Fig2Sampling")
    dfd.add_input("a")
    dfd.add_output("a_prime")
    dfd.add(When("WHEN"), Every("EVERY2", 2))
    dfd.connect("a", "WHEN.in1")
    dfd.connect("EVERY2.out", "WHEN.clock")
    dfd.connect("WHEN.out", "a_prime")
    return dfd


def test_fig2_when_operator_downsamples(benchmark):
    dfd = _build_fig2_dfd()
    ticks = 12
    stimulus = list(range(ticks))
    trace = benchmark(lambda: simulate(dfd, {"a": stimulus}, ticks=ticks))
    sampled = trace.output("a_prime")
    rows = ["tick : " + "  ".join(f"{t:>3}" for t in range(ticks)),
            "a    : " + "  ".join(f"{v:>3}" for v in stimulus),
            "a'   : " + "  ".join(("  -" if is_absent(v) else f"{v:>3}")
                                  for v in sampled.values())]
    report("F2", "\n".join(rows))

    assert sampled.presence_count() == ticks // 2
    for tick in range(ticks):
        if tick % 2 == 0:
            assert sampled[tick] == tick
        else:
            assert is_absent(sampled[tick])


def test_fig2_stream_level_when_equals_block_level(benchmark):
    ticks = 200
    stream = Stream.present(range(ticks))
    sampled = benchmark(lambda: resample(stream, every(2), hold_last=False))
    dfd = _build_fig2_dfd()
    block_level = simulate(dfd, {"a": list(range(ticks))}, ticks=ticks)
    assert sampled.values() == block_level.output("a_prime").values()
