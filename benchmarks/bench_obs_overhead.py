"""[P8] Observability overhead gate: zero cost when off, honest when on.

Not a paper figure: gates the structural contract of :mod:`repro.obs` on
the deep gated-controller workload of ``bench_flatten``.

* **Disabled** (the default), the engines must run their untouched step
  closures: the gate asserts object identity of ``schedule.step`` across
  an enable/run/disable cycle, and that a full :class:`CompiledSimulator`
  run -- whose only extra work is the disabled ambient probes -- costs at
  most 5% (best-of) over driving the raw step closure through
  ``run_stepped`` directly.
* **Enabled** with ``profile_ops``, the attribution must be honest: the
  op-level profile accounts the bulk of the measured run inside op timers
  (``op_time_s <= total_time_s``, with the difference being the step
  loop's own dispatch), gate skip counts match the clock structure, and
  the Chrome trace-event export is well-formed (integer microsecond
  ``ts``/``dur``, epoch-relative, one event per span).
* **Aggregation**: merging process-pool worker registries must equal the
  serial registry on the executor-invariant ``runner.scenario.*``
  projection (multi-core hosts; single-CPU hosts verify serial==thread).
* **Forensics**: with ``flight_recording`` on, a scenario failing inside
  an op must dump a post-mortem bundle naming the exact failing tick --
  and the default step closure must STILL be the same object afterwards
  (the recorder, like the profiler, lives in a swapped-in step variant).

Artifacts: ``BENCH_obs_overhead.json`` (gate numbers plus the embedded
telemetry), ``OBS_trace.json`` (Chrome trace, loadable in Perfetto),
``OBS_metrics.json`` and the forensics ``POSTMORTEM_*.json`` -- all under
``BENCH_OUT_DIR``; CI uploads them.
"""

import json
import os

import pytest

from repro import obs
from repro.obs import read_bundle
from repro.scenarios import RandomWalk, Scenario, run_sharded
from repro.simulation import CompiledSimulator, first_difference
from repro.simulation.engine import run_stepped

from _bench_utils import report, time_best, write_bench_json
from bench_flatten import deep_gated_controller

#: Workload shape: nesting depth and simulation horizon of the gate.
DEPTH = 6
TICKS = 2000
#: Disabled-mode overhead ceiling (best-of ratio vs the raw step driver).
OVERHEAD_CEILING = 1.05


def _out_path(name: str) -> str:
    out_dir = os.environ.get("BENCH_OUT_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    return os.path.join(out_dir, name)


def _controller_batch(count=8, ticks=120):
    return [Scenario(f"sweep{index}",
                     {"u": RandomWalk(seed=index, start=0.0, step=1.0,
                                      low=-10.0, high=10.0)},
                     ticks=ticks) for index in range(count)]


def test_p8_obs_overhead_gate():
    """Acceptance gate: <= 5% disabled overhead, honest enabled profiles."""
    assert obs.active() is None
    model = deep_gated_controller(DEPTH)
    stimuli = {"u": [1.0] * TICKS}

    simulator = CompiledSimulator(model, backend="flat")
    schedule = simulator.schedule
    original_step = schedule.step

    # the baseline: the raw step closure driven by run_stepped, with no
    # simulator wrapper at all -- the truly untouched hot path
    def raw_run():
        run_stepped(model, original_step, stimuli, TICKS, False,
                    initial_state=schedule.initial_state())

    def off_run():
        simulator.run(stimuli, TICKS)

    raw_run(), off_run()  # warm-up
    baseline = time_best(raw_run, repeats=5)
    disabled = time_best(off_run, repeats=5)
    off_ratio = disabled / baseline

    # -- enabled: op-level profile + spans -----------------------------------
    reference = simulator.run(stimuli, TICKS)
    with obs.session(profile_ops=True) as telemetry:
        observed_sim = CompiledSimulator(model, backend="flat")
        observed = observed_sim.run(stimuli, TICKS)
    assert first_difference(reference, observed) is None
    assert simulator.schedule.step is original_step
    assert observed_sim.schedule.step is not None
    assert obs.active() is None  # session restored the disabled state

    (profile,) = telemetry.profiles.values()
    assert profile.ticks == TICKS
    op_time = profile.op_time_s()
    assert 0 < op_time <= profile.total_time_s
    attribution = op_time / profile.total_time_s
    assert attribution >= 0.5, (
        f"op timers account for only {100 * attribution:.1f}% of the "
        "instrumented run; per-op attribution is broken")
    checks, skips = profile.gate_stats()
    assert checks > 0 and 0 < skips < checks  # every(2) gates really fired

    # Chrome trace consistency: one complete event per span, integer
    # microseconds, epoch-relative, compile + run both present
    chrome = telemetry.tracer.to_chrome_trace()
    complete = [event for event in chrome["traceEvents"]
                if event["ph"] == "X"]
    spans = list(telemetry.tracer.walk())
    assert len(complete) == len(spans)
    names = {event["name"] for event in complete}
    assert {"compile.component", "compile.flatten", "run"} <= names
    assert all(isinstance(event["ts"], int)
               and isinstance(event["dur"], int)
               and event["dur"] >= 0 for event in complete)
    assert min(event["ts"] for event in complete) == 0

    # -- aggregation: merged worker registries == serial ---------------------
    batch = _controller_batch()
    with obs.session() as serial_session:
        serial_results = run_sharded(model, batch, executor="serial")
    assert all(result.ok for result in serial_results)
    serial_counters = serial_session.registry.counter_values(
        "runner.scenario.")
    cpus = os.cpu_count() or 1
    pooled_executor = "process" if cpus >= 2 else "thread"
    with obs.session() as pooled_session:
        pooled_results = run_sharded(model, batch, executor=pooled_executor,
                                     max_workers=2, chunk_size=3)
    assert all(result.ok for result in pooled_results)
    pooled_counters = pooled_session.registry.counter_values(
        "runner.scenario.")
    assert pooled_counters == serial_counters, (
        f"merged {pooled_executor} worker registries diverge from serial: "
        f"{pooled_counters} != {serial_counters}")

    # -- forensics: flight recorder present, default path untouched ----------
    def poisoned(tick):
        # a string reaching "in1 + 1" raises INSIDE the expression op
        return "boom" if tick == 40 else 1.0

    forensic_batch = _controller_batch(count=3, ticks=80)
    forensic_batch.insert(1, Scenario("boom", {"u": poisoned}, ticks=80))
    postmortem_dir = _out_path("postmortems")
    with obs.session(flight_recording=True, ring_ticks=8,
                     postmortem_dir=postmortem_dir) as forensic_session:
        forensic_results = run_sharded(model, forensic_batch,
                                       executor="serial")
        bundles = list(forensic_session.bundles)
    assert [result.ok for result in forensic_results] \
        == [True, False, True, True]
    assert len(bundles) == 1 and os.path.exists(bundles[0])
    bundle = read_bundle(bundles[0])
    failing_tick = bundle["failing"]["tick"]
    assert failing_tick == 40, (
        f"post-mortem bundle names tick {failing_tick}, expected the "
        "poisoned tick 40")
    assert bundle["ring"], "post-mortem ring is empty"
    # the recorder ran in a swapped-in step variant; the default closure
    # of the simulator compiled OUTSIDE the session is still the same
    # object, and a fresh compile produces an untouched one too
    assert simulator.schedule.step is original_step
    assert obs.active() is None

    # -- artifacts -----------------------------------------------------------
    trace_path = _out_path("OBS_trace.json")
    telemetry.tracer.save_chrome_trace(trace_path)
    metrics_path = _out_path("OBS_metrics.json")
    with open(metrics_path, "w", encoding="utf-8") as handle:
        handle.write(telemetry.registry.to_json())
        handle.write("\n")
    with open(trace_path, encoding="utf-8") as handle:
        assert json.load(handle)["traceEvents"]  # artifact is loadable

    path = write_bench_json("obs_overhead", {
        "workload": {"model": model.name, "depth": DEPTH, "ticks": TICKS},
        "disabled": {
            "baseline_raw_step_s": baseline,
            "compiled_simulator_s": disabled,
            "overhead_ratio": off_ratio,
            "ceiling": OVERHEAD_CEILING,
            "basis": "best-of",
        },
        "enabled": {
            "ticks": profile.ticks,
            "total_time_s": profile.total_time_s,
            "op_time_s": op_time,
            "attribution": attribution,
            "gate_checks": checks,
            "gate_skips": skips,
        },
        "aggregation": {
            "executor": pooled_executor,
            "scenario_counters": serial_counters,
        },
        "forensics": {
            "bundles": len(bundles),
            "ring_ticks": len(bundle["ring"]),
            "failing_tick": failing_tick,
            "failing_op": bundle["failing"]["op_label"],
        },
    }, telemetry=telemetry)

    report("P8", "\n".join([
        f"deep gated controller, depth {DEPTH}, {TICKS} ticks:",
        f"  disabled: raw step {baseline:.4f}s, simulator {disabled:.4f}s "
        f"-> {100 * (off_ratio - 1):+.1f}% (ceiling "
        f"{100 * (OVERHEAD_CEILING - 1):.0f}%)",
        f"  enabled: {profile.ticks} ticks profiled, "
        f"{100 * attribution:.1f}% attributed to ops, "
        f"gates {skips}/{checks} silent",
        f"  aggregation: serial == {pooled_executor} on "
        f"{len(serial_counters)} runner.scenario.* counters",
        f"  forensics: {len(bundles)} bundle(s), failing tick "
        f"{failing_tick}, ring {len(bundle['ring'])} tick(s), "
        f"default step untouched",
        f"  artifacts: {path}, {trace_path}, {metrics_path}, {bundles[0]}",
    ]))

    assert off_ratio <= OVERHEAD_CEILING, (
        f"disabled-mode observability costs {100 * (off_ratio - 1):.1f}% "
        f"(gate: {100 * (OVERHEAD_CEILING - 1):.0f}%); the ambient probes "
        "leaked onto a hot path")


@pytest.mark.parallel
def test_p8_process_pool_registry_merge_round_trip():
    """Worker registries survive pickling and merge order-insensitively."""
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(f"single-CPU host ({cpus} CPU)")
    model = deep_gated_controller(3)
    batch = _controller_batch(count=6, ticks=60)
    with obs.session() as serial_session:
        run_sharded(model, batch, executor="serial")
    with obs.session() as pooled_session:
        run_sharded(model, batch, executor="process", max_workers=3)
    assert pooled_session.registry.counter_values("runner.scenario.") \
        == serial_session.registry.counter_values("runner.scenario.")
