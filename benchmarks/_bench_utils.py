"""Reporting helper shared by the benchmark harness.

Every benchmark regenerates one paper artefact (figure or case-study claim)
and prints the regenerated rows/series with a stable ``[Fx]`` prefix so the
output can be compared against EXPERIMENTS.md.
"""


def report(experiment_id: str, text: str) -> None:
    """Print one experiment's regenerated artefact with a stable prefix."""
    print(f"\n===== [{experiment_id}] =====")
    print(text)
