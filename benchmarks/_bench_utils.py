"""Reporting helpers shared by the benchmark harness.

Every benchmark regenerates one paper artefact (figure or case-study claim)
and prints the regenerated rows/series with a stable ``[Fx]`` prefix so the
output can be compared against EXPERIMENTS.md.  Performance benchmarks can
additionally emit a machine-readable ``BENCH_<name>.json`` artefact
(:func:`write_bench_json`); CI uploads these, so the performance trajectory
is tracked across PRs instead of living only in log output.
"""


import json
import os
import statistics
import time


def report(experiment_id: str, text: str) -> None:
    """Print one experiment's regenerated artefact with a stable prefix."""
    print(f"\n===== [{experiment_id}] =====")
    print(text)


def time_best(runner, repeats: int = 3) -> float:
    """Best-of-*repeats* wall-clock of ``runner()`` (speedup-gate timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - start)
    return best


def time_median(runner, repeats: int = 5) -> float:
    """Median-of-*repeats* wall-clock of ``runner()``.

    Medians are the right statistic for rate artefacts that get compared
    *across* runs/PRs: one noisy outlier neither inflates (as with best-of)
    nor drags (as with mean) the recorded figure.
    """
    durations = []
    for _ in range(repeats):
        start = time.perf_counter()
        runner()
        durations.append(time.perf_counter() - start)
    return statistics.median(durations)


def write_bench_json(name: str, payload: dict, telemetry=None) -> str:
    """Write ``BENCH_<name>.json``, the machine-readable benchmark artefact.

    The file lands in the current working directory unless ``BENCH_OUT_DIR``
    redirects it.  Keys are sorted so diffs between two uploads are stable.
    When *telemetry* (a :class:`repro.obs.Telemetry`) is given, its metrics
    and span tree are embedded under an ``"observability"`` key, so one
    artefact carries both the gate verdicts and the telemetry that explains
    them.  With ``BENCH_HISTORY`` set, the payload's gated metrics are also
    appended to that :class:`repro.obs.regress.BenchHistory` file, so local
    benchmark runs build the same regression series CI tracks.  Returns the
    written path.
    """
    if telemetry is not None:
        payload = dict(payload)
        payload["observability"] = {
            "metrics": telemetry.registry.to_json_dict(),
            "spans": telemetry.tracer.to_json_dict(),
        }
    out_dir = os.environ.get("BENCH_OUT_DIR", ".")
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    history_path = os.environ.get("BENCH_HISTORY")
    if history_path:
        from repro.obs.regress import BenchHistory, flatten_numeric
        history = BenchHistory(history_path)
        history.record_run({name: flatten_numeric(payload)})
        history.save()
    return path
