"""Reporting helper shared by the benchmark harness.

Every benchmark regenerates one paper artefact (figure or case-study claim)
and prints the regenerated rows/series with a stable ``[Fx]`` prefix so the
output can be compared against EXPERIMENTS.md.
"""


import time


def report(experiment_id: str, text: str) -> None:
    """Print one experiment's regenerated artefact with a stable prefix."""
    print(f"\n===== [{experiment_id}] =====")
    print(text)


def time_best(runner, repeats: int = 3) -> float:
    """Best-of-*repeats* wall-clock of ``runner()`` (speedup-gate timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - start)
    return best
