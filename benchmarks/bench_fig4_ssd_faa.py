"""[F4] Fig. 4 -- SSD on the FAA level (DoorLockControl network).

Regenerates the FAA-level functional network around the door-lock control:
its structure, the rule-based actuator-conflict analysis (two vehicle
functions driving the same door-lock actuators) and the coordinator
countermeasure, plus the black-box reengineering route into the FAA.
"""

from repro.analysis.conflicts import analyze_conflicts
from repro.ascet.comm_matrix import CommunicationMatrix
from repro.casestudy import build_door_lock_faa, crash_scenario
from repro.levels.faa import FunctionalAnalysisArchitecture
from repro.io.render import render_structure
from repro.simulation.engine import simulate
from repro.transformations.reengineering import blackbox_reengineer
from repro.transformations.refactoring import introduce_coordinator

from _bench_utils import report


def test_fig4_faa_network_and_conflict_rules(benchmark):
    def build_and_analyze():
        network = build_door_lock_faa()
        return network, analyze_conflicts(network)

    network, analysis = benchmark(build_and_analyze)
    faa = FunctionalAnalysisArchitecture("DoorLockFAA", network)

    lines = [faa.describe(), "", render_structure(network), "",
             "conflict analysis:"]
    for conflict in analysis.conflicts:
        lines.append(f"  {conflict.actuator}: used by "
                     f"{', '.join(conflict.functions)}")
        lines.append(f"    -> {conflict.suggestion()}")
    report("F4", "\n".join(lines))

    assert analysis.has_conflicts()
    assert set(analysis.conflicting_actuators()) == {"DoorLock1", "DoorLock2"}

    # apply the suggested countermeasure and confirm the conflict disappears
    introduce_coordinator(network, "DoorLock1")
    introduce_coordinator(network, "DoorLock2")
    resolved = analyze_conflicts(network)
    structural_conflicts = [conflict for conflict in resolved.conflicts
                            if "Coordinator" not in "".join(conflict.functions)]
    assert all(len(conflict.functions) <= 2
               for conflict in structural_conflicts)


def test_fig4_prototype_simulation(benchmark):
    """FAA validation by simulation of the prototypical behaviours."""
    network = build_door_lock_faa()
    control = network.subcomponent("DoorLockControl")
    trace = benchmark(lambda: simulate(control, crash_scenario(8), ticks=8))
    assert trace.output("mode").values()[-1] == "CrashUnlocked"


def test_fig4_blackbox_reengineering_to_partial_faa(benchmark):
    matrix = CommunicationMatrix("BodyDomain")
    matrix.add("door_status", "DoorModule", ["CentralLocking"], period=20)
    matrix.add("crash", "AirbagECU", ["CentralLocking", "HazardLights"],
               period=10)
    matrix.add("speed", "ESP", ["CentralLocking", "Wipers"], period=10)
    matrix.add("lock_command", "CentralLocking", ["DoorActuators"], period=20)

    partial_faa = benchmark(lambda: blackbox_reengineer(matrix))
    lines = [f"functions recovered: {len(partial_faa.subcomponents())}",
             f"dependencies recovered: {len(partial_faa.internal_channels())}"]
    report("F4b", "\n".join(lines))
    assert len(partial_faa.subcomponents()) == len(matrix.functions())
    assert len(partial_faa.internal_channels()) == len(matrix.dependency_pairs())
