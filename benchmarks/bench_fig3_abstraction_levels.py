"""[F3] Fig. 3 -- the AutoMoDe abstraction levels (FAA/FDA/LA/TA/OA).

Regenerates the level stack for the engine-control model: every level is
instantiated from its predecessor by the corresponding transformation, the
cross-level consistency report is produced and the coherent model records
the full derivation.
"""

from repro.casestudy import ENGINE_MODE_NAMES, build_engine_ascet_project
from repro.core.model import AbstractionLevel, AutoModeModel, LEVEL_ORDER
from repro.levels.fda import FunctionalDesignArchitecture
from repro.levels.la import LogicalArchitecture
from repro.levels.oa import OperationalArchitecture
from repro.levels.ta import TechnicalArchitectureLevel
from repro.analysis.well_definedness import repair_rate_transitions
from repro.transformations.deployment import deploy
from repro.transformations.dissolve import dissolve_to_ccd
from repro.transformations.reengineering import reengineer_project

from _bench_utils import report


def _build_level_stack():
    model = AutoModeModel("GasolineEngineControl")
    project = build_engine_ascet_project()
    fda_ssd = reengineer_project(project, ENGINE_MODE_NAMES)
    model.record("white-box-reengineering", "reengineering",
                 AbstractionLevel.OA, AbstractionLevel.FDA)
    fda = FunctionalDesignArchitecture("EngineFDA", fda_ssd)
    model.set_level(AbstractionLevel.FDA, fda)

    ccd = dissolve_to_ccd(fda_ssd, rates={"IgnitionTiming": 2,
                                          "IdleSpeedControl": 10})
    repair_rate_transitions(ccd)
    la = LogicalArchitecture("EngineLA", ccd)
    model.set_level(AbstractionLevel.LA, la)
    model.record("dissolve-ssd-to-ccd", "refinement",
                 AbstractionLevel.FDA, AbstractionLevel.LA)

    deployment = deploy(ccd, ["ECU_Powertrain", "ECU_Aux"])
    ta = TechnicalArchitectureLevel("EngineTA", deployment)
    model.set_level(AbstractionLevel.TA, ta)
    model.record("cluster-deployment", "refinement",
                 AbstractionLevel.LA, AbstractionLevel.TA)

    oa = OperationalArchitecture("EngineOA", ccd, deployment)
    oa.generate()
    model.set_level(AbstractionLevel.OA, oa)
    model.record("oa-generation", "refinement",
                 AbstractionLevel.TA, AbstractionLevel.OA)
    return model


def test_fig3_level_stack(benchmark):
    model = benchmark(_build_level_stack)

    lines = []
    for level in LEVEL_ORDER:
        if level is AbstractionLevel.FAA:
            lines.append(f"{level.short_name:>4}: (entered via black-box "
                         "reengineering, see F4)")
            continue
        view = model.level(level)
        lines.append(f"{level.short_name:>4}: {view.describe()}")
    lines.append("derivation: " + " -> ".join(
        record.name for record in model.history))
    report("F3", "\n".join(lines))

    assert model.defined_levels() == [AbstractionLevel.FDA,
                                      AbstractionLevel.LA,
                                      AbstractionLevel.TA,
                                      AbstractionLevel.OA]
    fda = model.level(AbstractionLevel.FDA)
    la = model.level(AbstractionLevel.LA)
    ta = model.level(AbstractionLevel.TA)
    oa = model.level(AbstractionLevel.OA)
    assert fda.is_behaviorally_complete()
    assert la.is_well_defined()
    assert ta.is_schedulable()
    assert oa.validate().is_valid()
    assert len(model.history) == 4
