"""[P7] Vectorized batch backend vs per-scenario flat engine (battery gate).

Not a paper figure: quantifies the speedup of sweeping a whole scenario
battery as ONE vectorized op program (:mod:`repro.simulation.batch_ir`)
over running the same battery one scenario at a time through the flat
schedule.  The workload is what the batch backend exists for -- an
expression-heavy model (a chain of expression blocks, all lowered to
lane-masked ufunc chains) crossed with a large battery (>= 256 scenarios):
per scenario the flat engine pays the full per-tick driver overhead
(stimulus draw, environment dicts, op dispatch, trace bookkeeping), while
the batch sweep pays it once per tick for all lanes.

The gate is **semantic first**: every batch trace must serialize
byte-identically (:func:`repro.io.trace_to_json`) to the per-scenario flat
trace, and a sample of scenarios is additionally checked byte-for-byte
against the reference interpreter.  Only then is the >= 3x speedup
asserted.  Median tick rates land in ``BENCH_batch_ir.json`` for the CI
artifact trail (mirroring ``BENCH_flatten.json``).
"""

from repro.core.components import ExpressionComponent
from repro.io import trace_to_json
from repro.notations.dfd import DataFlowDiagram
from repro.simulation import (CompiledSimulator, Simulator, compile_batch)

from _bench_utils import report, time_best, time_median, write_bench_json

#: Workload shape: battery size, horizon and expression-chain width.
SCENARIOS = 512
TICKS = 100
WIDTH = 4
_SOURCES = ("a + b * 2", "(a - b) % 97", "a * 3 - b", "a + b * 2")


def expression_chain(width: int = WIDTH) -> DataFlowDiagram:
    """A width-long chain of two-input expression blocks.

    Every block reads the boundary input (``b``) and its predecessor
    (``a``), so the whole per-tick program is expression ops over the slot
    environment -- the all-``expr`` shape the vectorized backend targets.
    """
    dfd = DataFlowDiagram("ExprChain")
    dfd.add_input("u")
    dfd.add_output("y")
    previous = None
    for index in range(width):
        block = ExpressionComponent(f"E{index}",
                                    {"out": _SOURCES[index % len(_SOURCES)]})
        block.add_input("a")
        block.add_input("b")
        block.add_output("out")
        dfd.add_subcomponent(block)
        dfd.connect("u", f"E{index}.b")
        dfd.connect("u" if previous is None else f"{previous}.out",
                    f"E{index}.a")
        previous = f"E{index}"
    dfd.connect(f"{previous}.out", "y")
    return dfd


def battery(scenarios: int = SCENARIOS, ticks: int = TICKS):
    return [(f"sweep{index}",
             {"u": [(index * 7 + tick) % 23 for tick in range(ticks)]},
             ticks) for index in range(scenarios)]


def test_p7_batch_ir_vs_per_scenario_flat_gate():
    """Acceptance gate: batch sweep >= 3x per-scenario flat, traces
    byte-identical (flat everywhere, interpreter on a sample)."""
    model = expression_chain()
    items = battery()
    flat = CompiledSimulator(model, backend="flat")
    batch = compile_batch(model)

    def run_flat():
        return [flat.run(stimuli, ticks) for _, stimuli, ticks in items]

    def run_batch():
        return batch.run_battery(items)

    # semantic gate first: byte-identical serialized traces, all scenarios
    flat_traces = run_flat()
    outcomes = run_batch()
    assert all(outcome.ok for outcome in outcomes)
    for (name, stimuli, ticks), expected, outcome in zip(items, flat_traces,
                                                         outcomes):
        assert trace_to_json(expected) == trace_to_json(outcome.trace), name
    # ... and against the reference interpreter on a spread sample
    interpreter = Simulator(model)
    for index in range(0, len(items), len(items) // 16):
        _name, stimuli, ticks = items[index]
        assert trace_to_json(interpreter.run(stimuli, ticks)) \
            == trace_to_json(outcomes[index].trace)

    timings = {
        "flat_per_scenario": time_median(run_flat, repeats=3),
        "batch": time_median(run_batch, repeats=3),
    }
    # best-of for the gate itself (repo convention for speedup gates: keeps
    # one descheduled run on a shared CI box from flipping the assertion)
    best_flat = time_best(run_flat)
    best_batch = time_best(run_batch)
    speedup = best_flat / best_batch
    total_ticks = sum(ticks for _, _, ticks in items)

    path = write_bench_json("batch_ir", {
        "workload": {
            "model": model.name,
            "scenarios": SCENARIOS,
            "ticks_per_scenario": TICKS,
            "expression_blocks": WIDTH,
            "flat_ops": len(flat.schedule.program),
            "flat_slots": flat.schedule.n_slots,
        },
        "median_seconds": timings,
        "best_seconds": {"flat_per_scenario": best_flat, "batch": best_batch},
        "scenario_ticks_per_second": {
            engine: total_ticks / seconds
            for engine, seconds in timings.items()},
        "speedup": {
            "batch_vs_flat_best": speedup,
            "batch_vs_flat_median":
                timings["flat_per_scenario"] / timings["batch"],
        },
        "gate": {"batch_vs_flat_min": 3.0, "basis": "best-of"},
    })

    report("P7", "\n".join([
        f"{SCENARIOS}-scenario battery x {TICKS} ticks, "
        f"{WIDTH} expression blocks:",
        f"  flat per-scenario: {timings['flat_per_scenario']:.3f}s "
        f"({total_ticks / timings['flat_per_scenario']:,.0f} scenario-ticks/s)",
        f"  batch sweep:       {timings['batch']:.3f}s "
        f"({total_ticks / timings['batch']:,.0f} scenario-ticks/s)",
        f"  batch vs flat {speedup:.2f}x (best-of) -> {path}"]))

    assert speedup >= 3.0, (
        f"batch sweep only {speedup:.2f}x faster than per-scenario flat "
        f"(gate: 3x)")
