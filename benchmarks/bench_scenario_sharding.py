"""[P3] Sharded scenario batches vs serial ScenarioSuite (wall-clock).

Not a paper figure: quantifies the scenario-sharding axis of the scenarios
subsystem (:mod:`repro.scenarios`) on a clustered, rate-gated CCD workload.
A 32-scenario batch of seeded random-walk stimuli is run

* serially through :meth:`ScenarioSuite.run_all` (one shared compiled
  schedule), and
* sharded across a 4-worker process pool via :func:`run_sharded` (the model
  is pickled once per worker; each worker compiles its own schedule).

The acceptance gate is a >= 1.5x wall-clock speedup with 4 workers on a
multi-core host, with traces byte-identical to the serial run.  Per-worker
compile amortization is measured separately: the pool pays ``workers``
compilations where a naive per-scenario pool would pay ``len(batch)``.

Process-pool benchmarks carry the ``parallel`` marker so constrained
sandboxes can deselect them with ``-m "not parallel"``.
"""

import os
import time

import pytest

from repro.core.components import ExpressionComponent
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.scenarios import (RandomWalk, Scenario, run_sharded,
                             shard_scenarios)
from repro.simulation import (CompiledSimulator, ScenarioSuite,
                              build_gated_ccd, first_difference)
from repro.transformations.clustering import cluster_by_clock

from _bench_utils import report

WORKERS = 4
BATCH_SIZE = 32
TICKS = 250


def _chain_dfd(length: int) -> DataFlowDiagram:
    """The banded-rate chain of bench_compiled_engine (clusterable CCD)."""
    dfd = DataFlowDiagram(f"Chain{length}")
    dfd.add_input("u")
    dfd.add_output("y")
    previous = None
    for index in range(length):
        block = ExpressionComponent(f"B{index}", {"out": "in1 + 1"})
        block.declare_interface_from_expressions()
        block.annotate("rate", 1 if index < length // 2 else 10)
        dfd.add_subcomponent(block)
        if previous is None:
            dfd.connect("u", f"B{index}.in1")
        else:
            dfd.connect(f"{previous}.out", f"B{index}.in1")
        previous = f"B{index}"
    delay = UnitDelay("Z")
    delay.annotate("rate", 10)
    dfd.add_subcomponent(delay)
    dfd.connect(f"{previous}.out", "Z.in1")
    dfd.connect(f"{previous}.out", "y")
    return dfd


def _gated_ccd_workload(length: int = 60):
    ccd, _ = cluster_by_clock(_chain_dfd(length))
    return build_gated_ccd(ccd)


def _batch(count: int = BATCH_SIZE, ticks: int = TICKS):
    return [Scenario(f"s{index}",
                     {"u": RandomWalk(seed=index, start=float(index),
                                      step=2.0)},
                     ticks=ticks) for index in range(count)]


def test_p3_shard_partitioning_is_balanced():
    batch = _batch(BATCH_SIZE, ticks=1)
    shards = shard_scenarios(batch, WORKERS)
    assert len(shards) == WORKERS
    sizes = [len(shard) for shard in shards]
    assert sum(sizes) == BATCH_SIZE
    assert max(sizes) - min(sizes) <= 1
    report("P3", f"{BATCH_SIZE} scenarios over {WORKERS} shards: "
                 f"sizes {sizes}")


@pytest.mark.parallel
def test_p3_sharded_vs_serial_ccd_batch():
    """Acceptance gate: >= 1.5x with 4 workers, byte-identical traces."""
    gated = _gated_ccd_workload()
    batch = _batch()

    suite = ScenarioSuite(gated)
    for scenario in batch:
        suite.add(scenario.name, scenario.stimuli, scenario.ticks)

    start = time.perf_counter()
    serial_traces = suite.run_all()
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    results = run_sharded(gated, batch, executor="process",
                          max_workers=WORKERS)
    t_sharded = time.perf_counter() - start

    for result in results:
        assert result.ok, (result.name, result.error)
        assert first_difference(serial_traces[result.name],
                                result.trace) is None

    speedup = t_serial / t_sharded
    cpus = os.cpu_count() or 1
    report("P3", f"{BATCH_SIZE} scenarios x {TICKS} ticks on gated CCD: "
                 f"serial {t_serial:.3f}s, {WORKERS} workers "
                 f"{t_sharded:.3f}s -> {speedup:.2f}x ({cpus} CPUs)")
    if cpus < 2:
        pytest.skip(f"single-CPU host ({cpus} CPU): traces verified "
                    "byte-identical, speedup gate needs a multi-core host")
    assert speedup >= 1.5, (
        f"sharded batch only {speedup:.2f}x faster with {WORKERS} workers")


@pytest.mark.parallel
def test_p3_per_worker_compile_amortization():
    """Workers compile once each: batch cost amortizes the compile."""
    gated = _gated_ccd_workload()
    batch = _batch(BATCH_SIZE, ticks=60)

    start = time.perf_counter()
    simulator = CompiledSimulator(gated)
    t_compile = time.perf_counter() - start

    start = time.perf_counter()
    results = run_sharded(gated, batch, executor="process",
                          max_workers=WORKERS,
                          chunk_size=BATCH_SIZE // WORKERS)
    t_sharded = time.perf_counter() - start
    assert all(result.ok for result in results)

    serial_reference = {scenario.name: simulator.run(scenario.stimuli,
                                                     scenario.ticks)
                        for scenario in batch}
    for result in results:
        assert first_difference(serial_reference[result.name],
                                result.trace) is None

    pool_compiles = WORKERS * t_compile
    naive_compiles = BATCH_SIZE * t_compile
    report("P3", f"schedule compile {t_compile * 1000:.1f}ms: sharded pool "
                 f"pays {WORKERS}x ({pool_compiles * 1000:.0f}ms) vs "
                 f"{BATCH_SIZE}x ({naive_compiles * 1000:.0f}ms) for a "
                 f"compile-per-scenario pool; batch wall-clock "
                 f"{t_sharded:.3f}s")
    assert pool_compiles < naive_compiles
