"""[CS2] Sec. 5 -- the global mode transition system.

"The different modes in MTDs can be used in order to determine a global mode
transition system which is then correct by construction."  Regenerates that
product automaton from the four MTDs of the reengineered engine model.
"""

from repro.analysis.mode_analysis import (build_global_mode_system, find_mtds)
from repro.casestudy import build_reengineered_fda

from _bench_utils import report


def test_cs2_global_mode_transition_system(benchmark):
    fda = build_reengineered_fda()
    mtds = find_mtds(fda)

    system = benchmark(lambda: build_global_mode_system(fda,
                                                        scenario_limit=1024))

    local_mode_counts = {mtd.name: len(mtd.modes()) for mtd in mtds}
    product_bound = 1
    for count in local_mode_counts.values():
        product_bound *= count
    lines = [f"component MTDs: {len(mtds)} "
             f"({', '.join(f'{k}:{v}' for k, v in local_mode_counts.items())})",
             f"naive product bound: {product_bound} global modes",
             f"reachable global modes: {system.mode_count()}",
             f"global transitions: {system.transition_count()}",
             f"initial global mode: {'/'.join(system.initial)}"]
    report("CS2", "\n".join(lines))

    assert len(mtds) == 4
    assert product_bound == 16
    # the constructed system only contains modes reachable from the initial
    # configuration, i.e. it is correct by construction rather than the full
    # cartesian product
    assert 2 <= system.mode_count() <= product_bound
    assert not system.unreachable_modes()
    assert system.transition_count() >= system.mode_count() - 1
