"""[F5] Fig. 5 -- DFD of a longitudinal momentum controller.

Regenerates the data-flow diagram whose ADD block is the base-language
expression ``ch1+ch2+ch3``, runs the causality check of the tool prototype,
and simulates the controller in closed loop.
"""

from repro.casestudy import (acceleration_scenario, build_closed_loop,
                             build_momentum_controller)
from repro.io.render import render_structure
from repro.simulation.causality import analyze_causality
from repro.simulation.engine import simulate

from _bench_utils import report


def test_fig5_dfd_structure_and_causality(benchmark):
    def build_and_check():
        dfd = build_momentum_controller()
        return dfd, analyze_causality(dfd)

    dfd, causality = benchmark(build_and_check)
    add_block = dfd.subcomponent("ADD")
    lines = [render_structure(dfd), "",
             "ADD block expression: "
             + add_block.output_expressions["out"].to_source(),
             f"causality: {'ok' if causality.is_causal else 'LOOP'} "
             f"(evaluation order {causality.results[0].order})"]
    report("F5", "\n".join(lines))

    assert causality.is_causal
    assert add_block.output_expressions["out"].variables() == \
        frozenset({"ch1", "ch2", "ch3"})
    assert dfd.validate().is_valid()


def test_fig5_open_loop_response(benchmark):
    dfd = build_momentum_controller()
    stimuli = {"ch1": [1500.0] * 30, "ch2": [0.0] * 30, "ch3": [-200.0] * 30}
    trace = benchmark(lambda: simulate(dfd, stimuli, ticks=30))
    torque = trace.output("engine_torque").present_values()
    assert torque[0] < torque[-1]            # slew-rate limited ramp-up
    assert max(torque) <= 400.0              # saturation respected


def test_fig5_closed_loop_simulation(benchmark):
    loop = build_closed_loop()
    scenario = acceleration_scenario(80)
    trace = benchmark(lambda: simulate(loop, scenario, ticks=80))
    speeds = trace.output("speed").present_values()
    series = ", ".join(f"{speeds[index]:.1f}" for index in range(0, 80, 10))
    report("F5b", f"closed-loop speed every 10 ticks: {series}")
    assert max(speeds) > 10.0
    assert min(speeds) >= -1.0
