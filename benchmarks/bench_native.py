"""[P8] Native C step function vs flat interpreter (gated-controller gate).

Not a paper figure: quantifies the speedup of lowering the flat schedule
IR to one compiled C step function (:mod:`repro.simulation.native`) over
interpreting the same op program in Python, on the workload the native
backend exists for -- an expression-heavy gated controller.  A wide chain
of integer expression blocks feeds a clock-gated inner chain and a
delayed feedback tap, so the measured path carries lowered expression
ops, lowered gate branches AND the per-tick trampoline re-entry for the
unit-delay leaf (the fallback machinery is on the clock, not benched
around).

The gate is **semantic first**: the native trace must serialize
byte-identically (:func:`repro.io.trace_to_json`) to the flat trace and
to the reference interpreter before the >= 2x best-of speedup is
asserted.  Median tick rates land in ``BENCH_native.json`` for the CI
artifact trail (mirroring ``BENCH_flatten.json``); compiler-less hosts
skip cleanly (``native_available``).
"""

import pytest

from repro.core.clocks import every
from repro.core.components import ExpressionComponent
from repro.io import trace_to_json
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.simulation import (ClockGatedComponent, CompiledSimulator,
                              Simulator, native_available)

from _bench_utils import report, time_best, time_median, write_bench_json

pytestmark = pytest.mark.skipif(
    not native_available(),
    reason="native backend needs a C compiler (cc/gcc/clang or $CC)")

#: Workload shape: expression-chain width per section and horizon.
WIDTH = 16
TICKS = 2000
_SOURCES = ("a + b * 2", "(a - b) % 97", "a * 3 - b",
            "if a > b then a - b else b - a",
            "min(a, b) + max(a, b)", "abs(a - b) + 1")


def _chain(dfd: DataFlowDiagram, prefix: str, source: str,
           width: int) -> str:
    """Chain *width* two-input expression blocks; returns the last port."""
    previous = source
    for index in range(width):
        block = ExpressionComponent(f"{prefix}{index}",
                                    {"out": _SOURCES[index % len(_SOURCES)]})
        block.add_input("a")
        block.add_input("b")
        block.add_output("out")
        dfd.add_subcomponent(block)
        dfd.connect(previous, f"{prefix}{index}.a")
        dfd.connect("u", f"{prefix}{index}.b")
        previous = f"{prefix}{index}.out"
    return previous


def gated_expression_controller(width: int = WIDTH) -> DataFlowDiagram:
    """An expression-heavy controller with a gated core and a delay tap.

    A width-long preconditioning chain feeds a clock-gated inner chain
    (``every(2)``, so the lowered gate branch is taken on half the ticks),
    whose result is mixed with a unit-delay feedback tap and reduced
    modulo a prime so the integer plane never leaves int64 (no emitter
    bails -- the only per-tick Python re-entry is the delay leaf itself).
    """
    dfd = DataFlowDiagram("NativeController")
    dfd.add_input("u")
    dfd.add_output("y")

    pre_out = _chain(dfd, "P", "u", width)

    core = DataFlowDiagram("Core")
    core.add_input("u")
    core.add_input("v")
    core.add_output("y")
    previous = "v"
    for index in range(width):
        block = ExpressionComponent(f"C{index}",
                                    {"out": _SOURCES[index % len(_SOURCES)]})
        block.add_input("a")
        block.add_input("b")
        block.add_output("out")
        core.add_subcomponent(block)
        core.connect(previous, f"C{index}.a")
        core.connect("u", f"C{index}.b")
        previous = f"C{index}.out"
    core.connect(previous, "y")
    gated = ClockGatedComponent(core, every(2), name="GatedCore")
    dfd.add_subcomponent(gated)
    dfd.connect("u", "GatedCore.u")
    dfd.connect(pre_out, "GatedCore.v")

    post = ExpressionComponent("Post", {"out": "(in1 + in2 * 3) % 100003"})
    post.declare_interface_from_expressions()
    tap = UnitDelay("Z", initial=0)
    dfd.add(post, tap)
    dfd.connect("GatedCore.y", "Post.in1")
    dfd.connect("Z.out", "Post.in2")
    dfd.connect("Post.out", "Z.in1")  # feedback through the delay
    dfd.connect("Post.out", "y")
    return dfd


def test_p8_native_vs_flat_gate():
    """Acceptance gate: native >= 2x flat best-of, traces byte-identical."""
    model = gated_expression_controller(WIDTH)
    stimuli = {"u": [(tick * 7) % 23 + 1 for tick in range(TICKS)]}

    interpreter = Simulator(model)
    flat = CompiledSimulator(model, backend="flat")
    native = CompiledSimulator(model, backend="native")
    assert flat.schedule.kind == "flat"
    assert native.schedule.kind == "native"
    # the workload really is expression-dominated with a live gate and a
    # per-tick trampoline leaf (the unit delay)
    lowered = native.schedule.lowered
    assert len(lowered.lowered_ops) >= 2 * WIDTH
    assert lowered.gate_indexes

    # semantic gate first: byte-identical serialized traces, all engines
    flat_trace = flat.run(stimuli, TICKS)
    native_trace = native.run(stimuli, TICKS)
    assert trace_to_json(native_trace) == trace_to_json(flat_trace)
    # ... and against the reference interpreter on a shorter horizon
    reference_trace = interpreter.run(stimuli, 300)
    assert trace_to_json(reference_trace) \
        == trace_to_json(native.run(stimuli, 300))

    timings = {
        "flat": time_median(lambda: flat.run(stimuli, TICKS), repeats=3),
        "native": time_median(lambda: native.run(stimuli, TICKS), repeats=3),
    }
    tick_rates = {engine: TICKS / seconds
                  for engine, seconds in timings.items()}
    # best-of for the gate itself (repo convention for speedup gates: keeps
    # one descheduled run on a shared CI box from flipping the assertion)
    best_flat = time_best(lambda: flat.run(stimuli, TICKS))
    best_native = time_best(lambda: native.run(stimuli, TICKS))
    speedup = best_flat / best_native

    path = write_bench_json("native", {
        "workload": {
            "model": model.name,
            "width": WIDTH,
            "ticks": TICKS,
            "flat_ops": len(flat.schedule.program),
            "flat_slots": flat.schedule.n_slots,
            "lowered_ops": len(lowered.lowered_ops),
            "fallback_ops": len(lowered.fallback_ops),
        },
        "median_seconds": timings,
        "best_seconds": {"flat": best_flat, "native": best_native},
        "ticks_per_second": tick_rates,
        "speedup": {
            "native_vs_flat_best": speedup,
            "native_vs_flat_median": timings["flat"] / timings["native"],
        },
        "gate": {"native_vs_flat_min": 2.0, "basis": "best-of"},
    })

    report("P8", "\n".join(
        [f"gated expression controller, width {WIDTH}, {TICKS} ticks "
         f"(median tick rates):"]
        + [f"  {engine:>6}: {timings[engine]:.3f}s "
           f"({tick_rates[engine]:,.0f} ticks/s)"
           for engine in ("flat", "native")]
        + [f"  native vs flat {speedup:.2f}x (best-of), "
           f"{len(lowered.lowered_ops)} lowered / "
           f"{len(lowered.fallback_ops)} fallback ops -> {path}"]))

    assert speedup >= 2.0, (
        f"native step function only {speedup:.2f}x faster than the flat "
        f"interpreter (gate: 2x)")
