"""[P1] Scalability of the tool-prototype algorithms (sanity benchmark).

Not a paper figure: measures how the causality check, the clock-based
clustering and the simulation engine scale with model size, so regressions
in the algorithmic core are visible.
"""

import pytest

from repro.core.components import ExpressionComponent
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.simulation.causality import analyze_causality
from repro.simulation.engine import simulate
from repro.transformations.clustering import cluster_by_clock

from _bench_utils import report


def _chain_dfd(length: int) -> DataFlowDiagram:
    """A chain of *length* expression blocks with a delayed feedback edge."""
    dfd = DataFlowDiagram(f"Chain{length}")
    dfd.add_input("u")
    dfd.add_output("y")
    previous = None
    for index in range(length):
        block = ExpressionComponent(f"B{index}", {"out": "in1 + 1"})
        block.declare_interface_from_expressions()
        block.annotate("rate", 1 if index % 2 == 0 else 10)
        dfd.add_subcomponent(block)
        if previous is None:
            dfd.connect("u", f"B{index}.in1")
        else:
            dfd.connect(f"{previous}.out", f"B{index}.in1")
        previous = f"B{index}"
    delay = UnitDelay("Z")
    dfd.add_subcomponent(delay)
    dfd.connect(f"{previous}.out", "Z.in1")
    dfd.connect(f"{previous}.out", "y")
    return dfd


@pytest.mark.parametrize("size", [20, 80, 200])
def test_p1_causality_check_scales(benchmark, size):
    dfd = _chain_dfd(size)
    analysis = benchmark(lambda: analyze_causality(dfd))
    assert analysis.is_causal
    report("P1", f"causality check over {size + 1} blocks: "
                 f"{analysis.composite_count()} composite(s) analysed")


@pytest.mark.parametrize("size", [20, 80])
def test_p1_clustering_scales(benchmark, size):
    dfd = _chain_dfd(size)
    ccd, partition = benchmark(lambda: cluster_by_clock(dfd))
    assert len(ccd.clusters()) == 2
    assert sum(len(names) for names in partition.values()) == size + 1


@pytest.mark.parametrize("size,ticks", [(20, 200), (80, 100)])
def test_p1_simulation_throughput(benchmark, size, ticks):
    dfd = _chain_dfd(size)
    trace = benchmark(lambda: simulate(dfd, {"u": [1.0] * ticks}, ticks=ticks))
    assert trace.output("y").presence_count() == ticks
    assert trace.output("y")[0] == 1.0 + size
