"""[F8] Fig. 8 -- component with an embedded MTD (FuelEnabled / CrankingOverrun).

Regenerates the ThrottleRateOfChange reengineering example: the original
ASCET process with its If-Then-Else control flow, the reengineered component
whose MTD makes the two implicit modes explicit, and the simulation-based
equivalence check between the two.
"""

from repro.ascet.importer import analyze_module
from repro.ascet.model import AscetInterpreter
from repro.casestudy import build_engine_ascet_project, driving_scenario
from repro.io.render import render_mtd
from repro.simulation.engine import simulate
from repro.transformations.reengineering import reengineer_process

from _bench_utils import report


def _throttle_module():
    return build_engine_ascet_project().module("ThrottleRateOfChange")


def test_fig8_throttle_rate_of_change_reengineering(benchmark):
    module = _throttle_module()
    process = module.process("calc_rate")

    mtd = benchmark(lambda: reengineer_process(
        module, process, ["FuelEnabled", "CrankingOverrun"]))

    analysis = analyze_module(module,
                              {"calc_rate": ["FuelEnabled", "CrankingOverrun"]})
    lines = ["original ASCET process:", process.to_pseudocode(), "",
             analysis.describe(), "", "reengineered AutoMoDe component:",
             render_mtd(mtd)]
    report("F8", "\n".join(lines))

    assert mtd.mode_names() == ["FuelEnabled", "CrankingOverrun"]
    assert len(mtd.transitions()) == 2
    assert mtd.validate().is_valid()
    # the If-Then-Else disappeared from the reengineered representation
    from repro.analysis.metrics import measure_component
    assert measure_component(mtd).if_then_else_operators == 0
    assert process.if_then_else_count() == 1


def test_fig8_behavioural_equivalence(benchmark):
    module = _throttle_module()
    process = module.process("calc_rate")
    mtd = reengineer_process(module, process,
                             ["FuelEnabled", "CrankingOverrun"])

    scenario = driving_scenario(120)
    fuel_flags = [not (ped <= 0 and n > 3000) and n >= 400
                  for n, ped in zip(scenario["n"], scenario["ped"])]
    interpreter = AscetInterpreter(module)
    ascet_inputs = [{"n": scenario["n"][t], "b_fuel": fuel_flags[t],
                     "pos": scenario["pos"][t],
                     "pos_des": scenario["pos_des"][t]}
                    for t in range(120)]
    expected = [out["throttle_rate"] for out in interpreter.run(ascet_inputs)]

    stimuli = {"n": scenario["n"], "b_fuel": fuel_flags,
               "pos": scenario["pos"], "pos_des": scenario["pos_des"]}
    trace = benchmark(lambda: simulate(mtd, stimuli, ticks=120))

    observed = trace.output("throttle_rate").values()
    worst = max(abs(a - b) for a, b in zip(expected, observed))
    modes = trace.output("mode").values()
    report("F8b", f"max deviation ASCET vs AutoMoDe over 120 ticks: {worst}\n"
                  f"ticks in FuelEnabled: {modes.count('FuelEnabled')}, "
                  f"in CrankingOverrun: {modes.count('CrankingOverrun')}")
    assert worst == 0.0
    assert modes.count("FuelEnabled") > 0
    assert modes.count("CrankingOverrun") > 0
