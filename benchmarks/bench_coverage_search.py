"""[P4] Coverage-guided search vs exhaustive scenario grid (executions).

Not a paper figure: quantifies the feedback loop of :mod:`repro.search` on
the engine-operation-modes MTD of paper Fig. 6.  Both contenders chase the
same goal -- every declared mode transition taken at least once:

* **search**: :func:`repro.search.search_coverage` from a deliberately weak
  seed battery (never leaves ``Off``), guard-vocabulary mutation plus the
  witness-directed transition targeter;
* **baseline**: the exhaustive open-loop approach PR 2 enables -- a
  :func:`scenario_grid` over all length-3 boundary-value mode sequences for
  ``n`` and ``ped`` (42 875 scenarios), evaluated in deterministic grid
  order until the untaken-transition list empties.

The acceptance gate is that the search reaches 100% transition coverage
with at most **half** the scenario executions the baseline needs; the
baseline is cut off at ``BASELINE_CAP_FACTOR`` times the search's
executions, so a baseline that is still incomplete at the cap fails the
race outright (on this model it needs ~30k executions, the search ~80).
"""

import itertools

from repro.casestudy import build_engine_modes_mtd
from repro.scenarios import (ModeSequence, Scenario, run_sharded,
                             run_with_report, scenario_grid)
from repro.search import CoverageFrontier, SearchConfig, search_coverage

from _bench_utils import report

#: Boundary-value representatives: one value per interval between the
#: guard thresholds of the Fig.-6 MTD (n: 0/50/400/700/1500/3000,
#: ped: 0/2/5/80), plus the out-of-range extremes.
N_VALUES = (-1.0, 25.0, 200.0, 550.0, 1000.0, 2000.0, 3500.0)
PED_VALUES = (-1.0, 1.0, 3.0, 40.0, 90.0)
DWELL = 8
SEARCH_CONFIG = dict(seed=7, max_rounds=12, population=16, minimize=False)
BASELINE_CAP_FACTOR = 50
BASELINE_CHUNK = 100


def _weak_battery():
    return [Scenario("weak", {"n": 0.0, "ped": 0.0, "t_eng": 20.0},
                     ticks=20)]


def _exhaustive_battery():
    """Every length-3 boundary-value sequence per port, cartesian."""
    def sequences(values):
        return [ModeSequence([(a, DWELL), (b, DWELL), (c, DWELL)])
                for a, b, c in itertools.product(values, repeat=3)]
    return scenario_grid("exhaustive",
                         grid={"n": sequences(N_VALUES),
                               "ped": sequences(PED_VALUES)},
                         ticks=3 * DWELL, base={"t_eng": 20.0})


def _baseline_executions_to_full_coverage(mtd, cap):
    """Scenario executions the exhaustive grid needs (cut off at *cap*)."""
    battery = _exhaustive_battery()
    frontier = CoverageFrontier(mtd)
    executed = 0
    for start in range(0, min(len(battery), cap), BASELINE_CHUNK):
        chunk = battery[start:start + min(BASELINE_CHUNK, cap - start)]
        for result in run_sharded(mtd, chunk, executor="serial",
                                  collect_modes=True):
            executed += 1
            frontier.absorb(result)
            if frontier.transitions_complete():
                return executed, True, len(battery)
    return executed, frontier.transitions_complete(), len(battery)


def test_p4_search_beats_exhaustive_grid():
    """Acceptance gate: 100% transitions with <= half the executions."""
    mtd = build_engine_modes_mtd()
    search = search_coverage(mtd, _weak_battery(),
                             SearchConfig(**SEARCH_CONFIG))
    assert search.transition_coverage() == 1.0, (
        f"search stalled at {100 * search.transition_coverage():.0f}% "
        f"({search.stop_reason}); untaken: {search.untaken_transitions()}")

    cap = BASELINE_CAP_FACTOR * search.evaluations
    baseline_evals, baseline_complete, grid_size = \
        _baseline_executions_to_full_coverage(mtd, cap)

    verdict = (f"baseline complete after {baseline_evals}" if baseline_complete
               else f"baseline INCOMPLETE at cap {baseline_evals}")
    report("P4", f"100% transition coverage on Fig.-6 MTD: search "
                 f"{search.evaluations} executions "
                 f"({len(search.rounds)} rounds), exhaustive grid "
                 f"({grid_size} scenarios) {verdict}")

    if baseline_complete:
        assert search.evaluations * 2 <= baseline_evals, (
            f"search needed {search.evaluations} executions, exhaustive "
            f"grid only {baseline_evals}: the feedback loop is not paying "
            "for itself")
    # an incomplete baseline at 50x the search budget fails the race by
    # construction -- nothing further to assert


def test_p4_minimized_battery_is_a_compact_regression_suite():
    """The minimized corpus replays full coverage at a fraction of the
    search's total executions."""
    mtd = build_engine_modes_mtd()
    search = search_coverage(mtd, _weak_battery(),
                             SearchConfig(minimize=True, **{
                                 k: v for k, v in SEARCH_CONFIG.items()
                                 if k != "minimize"}))
    assert search.minimized
    _, replay = run_with_report(mtd, search.corpus, executor="serial")
    assert replay.overall_transition_coverage() == 1.0
    report("P4", f"minimized battery: {len(search.corpus)} scenarios "
                 f"({sum(s.ticks for s in search.corpus)} ticks) replay "
                 f"100% transition coverage; search corpus had "
                 f"{len(search.corpus) + len(search.dropped)} earners")
    assert len(search.corpus) <= 8
