"""[T1] Sec. 3.3 -- MTD to partitionable data-flow transformation.

Regenerates the tool-prototype algorithm that turns an MTD into a
semantically equivalent, partitionable data-flow model, and verifies the
equivalence by simulation on the driving scenario.
"""

from repro.casestudy import build_engine_modes_mtd
from repro.transformations.mtd_to_dataflow import (transform_mtd_to_dataflow,
                                                   verify_equivalence)

from _bench_utils import report


def test_t1_transformation_structure(benchmark):
    mtd = build_engine_modes_mtd()
    dataflow = benchmark(lambda: transform_mtd_to_dataflow(mtd))

    lines = [f"source MTD: {len(mtd.modes())} modes, "
             f"{len(mtd.transitions())} transitions, monolithic",
             f"generated data-flow: {len(dataflow.subcomponents())} blocks, "
             f"{len(dataflow.channels())} channels, "
             f"{len(dataflow.evaluation_order())}-step evaluation order",
             "blocks: " + ", ".join(sorted(dataflow.subcomponent_names()))]
    report("T1", "\n".join(lines))

    # one controller + one activated behaviour per mode + one merge per output
    assert len(dataflow.subcomponents()) == 1 + len(mtd.modes()) + 1
    assert dataflow.validate().is_valid()


def test_t1_equivalence_on_driving_scenario(benchmark, engine_scenario):
    mtd = build_engine_modes_mtd()
    dataflow = transform_mtd_to_dataflow(mtd)
    stimuli = {"n": engine_scenario["n"], "ped": engine_scenario["ped"],
               "t_eng": engine_scenario["t_eng"]}

    equivalent, difference = benchmark(
        lambda: verify_equivalence(mtd, dataflow, stimuli, ticks=120))
    report("T1b", f"trace equivalence over 120 ticks: {equivalent} "
                  f"(first difference: {difference})")
    assert equivalent
