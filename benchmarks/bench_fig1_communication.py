"""[F1] Fig. 1 -- message-based, time-synchronous communication.

Regenerates the DoorLockControl observation of Fig. 1: per channel and tick
either a value or "-" (absence), with the board-net voltage carrying 20 at
``t``, nothing at ``t+1`` and 23 at ``t+2``.
"""

from repro.casestudy import build_door_lock_control, fig1_stimuli
from repro.core.values import is_absent
from repro.simulation.engine import simulate

from _bench_utils import report


def _run_fig1():
    control = build_door_lock_control()
    return simulate(control, fig1_stimuli(), ticks=3)


def test_fig1_trace_table(benchmark):
    trace = benchmark(_run_fig1)
    table = trace.format_table(["FZG_V", "T4S", "CRSH", "T1C", "T2C"])
    report("F1", table)

    voltage = trace.input("FZG_V")
    assert voltage[0] == 20.0
    assert is_absent(voltage[1])
    assert voltage[2] == 23.0
    # the lock command channels carry a message at every tick of this run
    assert trace.output("T1C").presence_count() == 3


def test_fig1_event_triggered_reaction(benchmark):
    """Event-triggered behaviour: the component reacts to message presence."""
    control = build_door_lock_control()
    stimuli = dict(fig1_stimuli())
    trace = benchmark(lambda: simulate(control, stimuli, ticks=3))
    # the mode stays Unlocked because no speed/crash event arrives
    assert set(trace.output("mode").values()) == {"Unlocked"}
