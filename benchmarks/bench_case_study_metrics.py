"""[CS1] Sec. 5 -- reengineering case-study metrics.

Regenerates the qualitative claims of the case study as measured numbers:
the original ASCET model hides its operation modes in If-Then-Else control
flow and a central flag component, while the reengineered AutoMoDe model
makes them explicit as MTDs -- with unchanged behaviour on the driving
scenario.
"""

from repro.analysis.metrics import measure_component
from repro.casestudy import (ENGINE_MODE_NAMES, build_engine_ascet_project,
                             build_reengineered_fda, compare_behaviour)
from repro.io.render import render_table

from _bench_utils import report


def test_cs1_before_after_metrics(benchmark):
    project = build_engine_ascet_project()
    fda = benchmark(build_reengineered_fda)

    metrics = measure_component(fda)
    central_flags = project.module("CentralState").flag_count()
    rows = [
        ["If-Then-Else operators (implicit modes)",
         project.total_if_then_else(), metrics.if_then_else_operators],
        ["explicit modes (MTD modes)", 0, metrics.explicit_modes],
        ["components with explicit mode structure (MTDs)", 0,
         metrics.mtd_count],
        ["global-state flags emitted by the central component",
         central_flags, central_flags],
        ["software components / modules", len(project.module_list()),
         len(fda.subcomponents())],
    ]
    table = render_table(["metric", "ASCET original", "AutoMoDe reengineered"],
                         rows)
    report("CS1", table)

    assert project.total_if_then_else() == 4
    assert metrics.if_then_else_operators == 0
    assert metrics.explicit_modes == 8
    assert metrics.mtd_count == 4


def test_cs1_behaviour_preserved(benchmark):
    deviations = benchmark(lambda: compare_behaviour(ticks=120))
    table = render_table(["signal", "max |ASCET - AutoMoDe|"],
                         [[name, value] for name, value in deviations.items()])
    report("CS1b", table)
    assert max(deviations.values()) == 0.0
