"""[F6] Fig. 6 -- MTD specifying the engine operation modes.

Regenerates the engine-operation-mode MTD, its reachability analysis and the
mode trajectory over the driving scenario (start -> cranking -> idle ->
part/full load -> overrun -> idle -> off).
"""

from collections import Counter

from repro.casestudy import build_engine_modes_mtd
from repro.io.render import render_mtd
from repro.simulation.engine import simulate

from _bench_utils import report


def test_fig6_engine_mode_mtd(benchmark, engine_scenario):
    mtd = build_engine_modes_mtd()
    stimuli = {"n": engine_scenario["n"], "ped": engine_scenario["ped"],
               "t_eng": engine_scenario["t_eng"]}

    trace = benchmark(lambda: simulate(mtd, stimuli, ticks=120))
    modes = trace.output("mode").values()
    occupancy = Counter(modes)

    lines = [render_mtd(mtd), "",
             "mode occupancy over the 120-tick driving scenario:"]
    for mode, ticks in occupancy.most_common():
        lines.append(f"  {mode:<10} {ticks:>4} ticks")
    transitions_taken = sum(1 for first, second in zip(modes, modes[1:])
                            if first != second)
    lines.append(f"mode changes observed: {transitions_taken}")
    report("F6", "\n".join(lines))

    assert mtd.validate().is_valid()
    assert mtd.reachable_modes() == set(mtd.mode_names())
    # the scenario visits the characteristic operating regions
    for expected in ("Off", "Cranking", "Idle", "PartLoad", "Overrun"):
        assert expected in occupancy
    assert transitions_taken >= 5
    # fuel factor is zero while the engine is off or in overrun fuel cut
    fuel = trace.output("fuel_factor").values()
    assert all(fuel[tick] == 0 for tick, mode in enumerate(modes)
               if mode in ("Off", "Overrun"))


def test_fig6_global_mode_system_is_correct_by_construction(benchmark):
    """The global mode transition system derived from the MTD (Sec. 5)."""
    from repro.analysis.mode_analysis import build_global_mode_system

    mtd = build_engine_modes_mtd()
    system = benchmark(lambda: build_global_mode_system(mtd,
                                                        scenario_limit=2048))
    assert system.mode_count() >= 5
    assert system.transition_count() >= 6
    assert not system.unreachable_modes()
