"""[P5] Expression-to-closure compilation vs the AST-walking evaluator.

Not a paper figure: quantifies the compile-once/run-many split at the
expression level (:mod:`repro.core.expr_compile`).  Guards, actions and
output expressions are evaluated thousands of times per scenario search but
never change shape; lowering them to closures removes the per-evaluation
``isinstance`` dispatch walk.  The acceptance gate is >= 2x on an
expression-heavy workload -- a deep base-language expression evaluated over
many mixed present/absent environments -- with identical results.  A
second comparison times the compiled STD tables against the interpreted
``react`` on a transition-heavy state machine.
"""

from repro.core.expr_compile import compile_expression
from repro.core.expr_eval import ExpressionEvaluator
from repro.core.expr_parser import parse_expression
from repro.core.values import ABSENT
from repro.notations.std import StateTransitionDiagram
from repro.simulation import (CompiledSimulator, Simulator, first_difference)

from _bench_utils import report, time_best as _time_best


#: A deep expression mixing every hot construct: arithmetic, comparisons,
#: short-circuit logic, conditionals, presence tests and function calls.
EXPRESSION_SOURCE = (
    "if present(n) and n > 700 "
    "then limit(base * (1 + ped / 400) + sign(n - 3000) * 0.05 "
    "           + interpolate(t_eng, -40, 1.3, 90, 1.0), 0, 2) "
    "else (if present(ped) or present(t_eng) "
    "      then abs(base - ped / 100) + max(t_eng / 90, 0 - t_eng / 40) "
    "      else base * 0)")


def _environments(count=400):
    environments = []
    for index in range(count):
        environments.append({
            "n": ABSENT if index % 7 == 0 else float(index % 5000),
            "ped": ABSENT if index % 11 == 0 else float(index % 100),
            "t_eng": float(index % 130) - 40.0,
            "base": 1.0 + (index % 4) * 0.1,
        })
    return environments


def test_p5_closure_vs_ast_walk_gate():
    """Acceptance gate: compiled closures >= 2x over the AST walk."""
    expression = parse_expression(EXPRESSION_SOURCE)
    evaluator = ExpressionEvaluator()
    compiled = compile_expression(expression)
    environments = _environments()
    rounds = 40

    expected = [evaluator.evaluate(expression, env) for env in environments]
    actual = [compiled(env) for env in environments]
    assert expected == actual

    def run_interpreter():
        evaluate = evaluator.evaluate
        for _ in range(rounds):
            for env in environments:
                evaluate(expression, env)

    def run_compiled():
        for _ in range(rounds):
            for env in environments:
                compiled(env)

    t_walk = _time_best(run_interpreter)
    t_closure = _time_best(run_compiled)
    speedup = t_walk / t_closure
    evaluations = rounds * len(environments)
    report("P5", f"{evaluations} evaluations of a depth-heavy expression: "
                 f"AST walk {t_walk:.3f}s, closures {t_closure:.3f}s "
                 f"-> {speedup:.1f}x")
    assert speedup >= 2.0, (
        f"compiled closures only {speedup:.1f}x faster than the AST walk")


def _transition_heavy_std(n_states=6, guards_per_state=10):
    """A state machine whose tick cost is dominated by guard evaluation."""
    std = StateTransitionDiagram("Sequencer")
    std.add_input("x")
    std.add_output("out")
    std.add_output("state")
    std.add_variable("count", 0)
    for index in range(n_states):
        std.add_state(f"S{index}", emissions={"out": f"x * {index + 1} + count"})
    for index in range(n_states):
        for guard_index in range(guards_per_state):
            std.add_transition(
                f"S{index}", f"S{(index + guard_index) % n_states}",
                f"x > {100 + guard_index * 10} and x <= {110 + guard_index * 10}",
                actions={"count": "count + 1"},
                priority=guard_index)
    return std


def test_p5_compiled_std_vs_interpreter():
    """Compiled per-state tables beat the interpreted react tick loop."""
    ticks = 3000
    std = _transition_heavy_std()
    stimuli = {"x": [float((tick * 13) % 200) for tick in range(ticks)]}

    reference = Simulator(std)
    compiled = CompiledSimulator(std)
    assert first_difference(reference.run(stimuli, ticks),
                            compiled.run(stimuli, ticks)) is None

    t_reference = _time_best(lambda: reference.run(stimuli, ticks))
    t_compiled = _time_best(lambda: compiled.run(stimuli, ticks))
    speedup = t_reference / t_compiled
    report("P5", f"transition-heavy STD, {ticks} ticks: interpreter "
                 f"{t_reference:.3f}s, compiled {t_compiled:.3f}s "
                 f"-> {speedup:.1f}x")
    assert speedup >= 1.5, (
        f"compiled STD only {speedup:.1f}x faster than the interpreter")
