"""[F7] Fig. 7 -- CCD of a simplified engine controller.

Regenerates the LA-level cluster network with explicit rates, the
OSEK-specific well-definedness findings (a slow-to-fast rate transition
missing its delay operator), the repair, and the clock-based clustering
refinement that produces such CCDs from an FDA model.
"""

from repro.analysis.well_definedness import (OSEK_FIXED_PRIORITY,
                                             TIME_TRIGGERED,
                                             check_rate_transitions,
                                             missing_delays,
                                             repair_rate_transitions)
from repro.casestudy import build_engine_ccd, driving_scenario
from repro.io.render import render_ccd
from repro.levels.la import LogicalArchitecture
from repro.simulation.engine import simulate_ccd

from _bench_utils import report


def test_fig7_ccd_structure_and_well_definedness(benchmark):
    def build_and_check():
        ccd = build_engine_ccd()
        return ccd, check_rate_transitions(ccd, OSEK_FIXED_PRIORITY)

    ccd, findings = benchmark(build_and_check)

    lines = [render_ccd(ccd), "", "OSEK well-definedness findings:"]
    lines.extend("  " + finding.describe() for finding in findings)
    violations = missing_delays(ccd)
    lines.append(f"missing delay operators: {violations}")
    repaired = repair_rate_transitions(ccd)
    lines.append(f"after repair (delay inserted on {repaired}): "
                 f"{missing_delays(ccd)} missing")
    report("F7", "\n".join(lines))

    assert ccd.rates() == {"SensorProcessing": 1, "FuelAndIgnition": 1,
                           "IdleSpeed": 10, "Monitoring": 20}
    directions = {(f.source, f.destination): f.direction for f in findings}
    assert directions[("Monitoring", "FuelAndIgnition")] == "slow-to-fast"
    assert directions[("SensorProcessing", "FuelAndIgnition")] == "same-rate"
    assert violations == [f.channel for f in findings
                          if f.direction == "slow-to-fast"]
    assert missing_delays(ccd) == []
    # the stricter time-triggered profile demands more delays than OSEK
    assert len(missing_delays(build_engine_ccd(), TIME_TRIGGERED)) > 1


def test_fig7_rate_gated_simulation(benchmark):
    ccd = build_engine_ccd()
    repair_rate_transitions(ccd)
    scenario = driving_scenario(60)
    la = LogicalArchitecture("EngineLA", ccd)
    stimuli = {"n": scenario["n"], "ped": scenario["ped"],
               "throttle_angle": scenario["throttle_angle"]}
    trace = benchmark(lambda: la.simulate(stimuli, ticks=60))
    # each output is present exactly at the rate of its producing cluster
    assert trace.output("ti").presence_count() == 60
    assert trace.output("idle_correction").presence_count() == 6
    report("F7b", "presence counts over 60 ticks: "
                  f"ti={trace.output('ti').presence_count()}, "
                  f"ignition={trace.output('ignition_angle').presence_count()}, "
                  f"idle={trace.output('idle_correction').presence_count()}")


def test_fig7_clock_based_clustering(benchmark):
    """The clustering refinement that produces CCDs from an FDA model."""
    from repro.casestudy import ENGINE_MODE_NAMES, build_engine_ascet_project
    from repro.transformations.clustering import cluster_by_clock
    from repro.transformations.reengineering import reengineer_project

    fda = reengineer_project(build_engine_ascet_project(), ENGINE_MODE_NAMES)
    periods = {"IgnitionTiming": 2, "IdleSpeedControl": 10}
    ccd, partition = benchmark(lambda: cluster_by_clock(fda, periods))
    report("F7c", "clock-based clustering partition: "
                  + ", ".join(f"T{period}:{names}"
                              for period, names in sorted(partition.items())))
    assert set(partition) == {1, 2, 10}
    assert len(ccd.clusters()) == 3
    assert ccd.validate().is_valid()
