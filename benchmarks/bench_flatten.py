"""[P6] Flat schedule IR vs nested compiled engine (deep-hierarchy gate).

Not a paper figure: quantifies the speedup of cross-hierarchy flattening
(:mod:`repro.simulation.schedule_ir`) over the PR-4 nested compiled engine
on the workload the flattener exists for -- a deeply nested composite
hierarchy (>= 4 levels) with clock-gated subtrees, expression blocks on the
feedthrough path and a delayed feedback tap per level (so gating
predicates, slot copies *and* correction barriers are all on the measured
path).  The acceptance gate requires the flat IR to be at least 1.5x
faster than the nested compiled engine while producing tick-for-tick
identical traces (checked against the reference interpreter as well).

The measured median tick rates per engine are additionally written to
``BENCH_flatten.json`` (via :func:`_bench_utils.write_bench_json`); CI
uploads the file as an artifact so the performance trajectory of the
simulation engines is tracked across PRs.
"""

from repro.core.clocks import every
from repro.core.components import ExpressionComponent
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.simulation import (ClockGatedComponent, CompiledSimulator,
                              Simulator, first_difference)

from _bench_utils import report, time_best, time_median, write_bench_json

#: Workload shape: nesting depth and simulation horizon of the gate.
DEPTH = 6
TICKS = 2000


def deep_gated_controller(depth: int = DEPTH) -> DataFlowDiagram:
    """A depth-level controller cascade, each level gating the next.

    Level ``d`` preconditions its input (expression block), hands it to a
    rate-gated copy of level ``d-1`` (``every(2)``, the LA-level cluster
    view), postprocesses the result against a delayed feedback tap (unit
    delay fed by the level's own output -- a live correction-barrier
    entry), and exports the sum.  The innermost level is a plain expression
    chain.  Every level therefore exercises slot copies, a gating
    predicate, an expression op and a correction barrier.
    """
    def level(d: int) -> DataFlowDiagram:
        dfd = DataFlowDiagram(f"L{d}")
        dfd.add_input("u")
        dfd.add_output("y")
        pre = ExpressionComponent("Pre", {"out": "in1 + 1"})
        pre.declare_interface_from_expressions()
        post = ExpressionComponent("Post", {"out": "in1 * 2 + in2"})
        post.declare_interface_from_expressions()
        tap = UnitDelay("Z", initial=0)
        dfd.add(pre, post, tap)
        dfd.connect("u", "Pre.in1")
        if d > 0:
            gated = ClockGatedComponent(level(d - 1), every(2),
                                        name=f"Gated{d - 1}")
            dfd.add_subcomponent(gated)
            dfd.connect("Pre.out", f"Gated{d - 1}.u")
            dfd.connect(f"Gated{d - 1}.y", "Post.in1")
        else:
            dfd.connect("Pre.out", "Post.in1")
        dfd.connect("Post.out", "Z.in1")  # feedback through the delay
        dfd.connect("Z.out", "Post.in2")
        dfd.connect("Post.out", "y")
        return dfd
    return level(depth)


def test_p6_flat_ir_vs_nested_compiled_gate():
    """Acceptance gate: flat IR >= 1.5x nested compiled, traces identical."""
    model = deep_gated_controller(DEPTH)
    stimuli = {"u": [1.0] * TICKS}

    interpreter = Simulator(model)
    nested = CompiledSimulator(model, backend="nested")
    flat = CompiledSimulator(model, backend="flat")
    assert flat.schedule.kind == "flat"
    assert nested.schedule.kind == "composite"
    # the workload really is a >= 4-level composite nest with gated subtrees
    kinds = [kind for _, kind in flat.schedule.linear_steps()]
    assert kinds.count("composite") >= 4
    assert kinds.count("gated") >= 4

    # trace equivalence on the gated deep-nesting workload, all three engines
    reference_trace = interpreter.run(stimuli, 300)
    assert first_difference(reference_trace, flat.run(stimuli, 300)) is None
    assert first_difference(reference_trace, nested.run(stimuli, 300)) is None

    # warm up both compiled engines (first runs pay allocator/branch-cache
    # noise that would otherwise leak into the timings)
    nested.run(stimuli, TICKS)
    flat.run(stimuli, TICKS)
    timings = {
        "interpreter": time_median(lambda: interpreter.run(stimuli, TICKS),
                                   repeats=3),
        "nested": time_median(lambda: nested.run(stimuli, TICKS)),
        "flat": time_median(lambda: flat.run(stimuli, TICKS)),
    }
    tick_rates = {engine: TICKS / seconds
                  for engine, seconds in timings.items()}
    speedup_interpreter = timings["interpreter"] / timings["flat"]
    # The gate compares best-of runs (the repo-wide convention for speedup
    # gates, see time_best in the other benchmarks): best-of isolates the
    # engines' intrinsic cost from scheduler noise on shared CI runners,
    # where a single descheduled median run can swing the ratio below the
    # threshold.  The JSON artifact keeps the medians -- the right
    # statistic to *compare across PRs*.
    best_nested = time_best(lambda: nested.run(stimuli, TICKS))
    best_flat = time_best(lambda: flat.run(stimuli, TICKS))
    speedup_nested = best_nested / best_flat

    path = write_bench_json("flatten", {
        "workload": {
            "model": model.name,
            "depth": DEPTH,
            "ticks": TICKS,
            "flat_ops": len(flat.schedule.program),
            "flat_slots": flat.schedule.n_slots,
            "flat_leaves": len(flat.schedule.leaves),
        },
        "median_seconds": timings,
        "best_seconds": {"nested": best_nested, "flat": best_flat},
        "ticks_per_second": tick_rates,
        "speedup": {
            "flat_vs_nested_best": speedup_nested,
            "flat_vs_nested_median": timings["nested"] / timings["flat"],
            "flat_vs_interpreter_median": speedup_interpreter,
        },
        "gate": {"flat_vs_nested_min": 1.5, "basis": "best-of"},
    })

    report("P6", "\n".join(
        [f"deep gated controller, depth {DEPTH}, {TICKS} ticks "
         f"(median tick rates):"]
        + [f"  {engine:>11}: {timings[engine]:.3f}s "
           f"({tick_rates[engine]:,.0f} ticks/s)"
           for engine in ("interpreter", "nested", "flat")]
        + [f"  flat vs nested {speedup_nested:.2f}x (best-of), vs "
           f"interpreter {speedup_interpreter:.1f}x -> {path}"]))

    assert speedup_nested >= 1.5, (
        f"flat IR only {speedup_nested:.2f}x faster than the nested "
        f"compiled engine (gate: 1.5x)")
