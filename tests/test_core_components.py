"""Tests for ports, channels and the component metamodel."""

import pytest

from repro.core.channels import ChannelEnd, connect
from repro.core.clocks import every
from repro.core.components import (Component, CompositeComponent,
                                   ExpressionComponent, FunctionComponent,
                                   StatefulComponent)
from repro.core.errors import (CausalityError, ModelError, NameConflictError,
                               SimulationError, UnknownElementError)
from repro.core.ports import PortDirection, input_port, output_port
from repro.core.types import BOOL, FLOAT, INT
from repro.core.values import ABSENT, is_present


class TestPorts:
    def test_port_construction_and_direction(self):
        port = input_port("n", INT, every(2), "engine speed")
        assert port.is_input() and not port.is_output()
        assert port.clock == every(2)
        assert port.is_statically_typed()

    def test_dynamic_port_is_not_statically_typed(self):
        assert not input_port("x").is_statically_typed()

    def test_invalid_port_name(self):
        with pytest.raises(ModelError):
            input_port("bad name")

    def test_qualified_name(self):
        component = Component("Ctrl")
        port = component.add_input("n", INT)
        assert port.qualified_name == "Ctrl.n"
        assert port.owner is component

    def test_accepts_checks_type(self):
        port = output_port("flag", BOOL)
        assert port.accepts(True)
        assert not port.accepts(3)

    def test_retype_and_reclock(self):
        port = input_port("x")
        port.retype(FLOAT)
        port.reclock(every(4))
        assert port.port_type == FLOAT
        assert port.clock == every(4)


class TestChannels:
    def test_connect_builds_endpoints(self):
        channel = connect("A", "out", "B", "in1", delayed=True)
        assert channel.source == ChannelEnd("A", "out")
        assert channel.destination == ChannelEnd("B", "in1")
        assert channel.delayed
        assert "delayed" in channel.describe()

    def test_boundary_endpoint(self):
        channel = connect(None, "in", "A", "x")
        assert channel.source.is_boundary()
        assert not channel.destination.is_boundary()

    def test_self_connection_rejected(self):
        with pytest.raises(ModelError):
            connect("A", "p", "A", "p")

    def test_auto_naming_unique(self):
        first = connect("A", "o", "B", "i")
        second = connect("A", "o", "C", "i")
        assert first.name != second.name


class TestComponentInterface:
    def test_port_management(self):
        component = Component("C")
        component.add_input("a")
        component.add_output("b")
        assert component.input_names() == ["a"]
        assert component.output_names() == ["b"]
        assert component.has_port("a")
        with pytest.raises(UnknownElementError):
            component.port("missing")

    def test_duplicate_port_rejected(self):
        component = Component("C")
        component.add_input("a")
        with pytest.raises(NameConflictError):
            component.add_output("a")

    def test_invalid_component_name(self):
        with pytest.raises(ModelError):
            Component("")
        with pytest.raises(ModelError):
            Component("bad name")

    def test_annotations_chain(self):
        component = Component("C").annotate("role", "actuator")
        assert component.annotations["role"] == "actuator"

    def test_structure_only_component_has_no_behavior(self):
        component = Component("C")
        assert not component.has_behavior()
        with pytest.raises(NotImplementedError):
            component.react({}, None, 0)


class TestExpressionComponent:
    def test_reacts_with_expression(self):
        block = ExpressionComponent("ADD", {"out": "a + b"})
        block.declare_interface_from_expressions()
        outputs, _ = block.react({"a": 2, "b": 5}, None, 0)
        assert outputs == {"out": 7}

    def test_interface_derived_from_expressions(self):
        block = ExpressionComponent("F", {"y": "x * k", "z": "x - 1"})
        block.declare_interface_from_expressions()
        assert sorted(block.input_names()) == ["k", "x"]
        assert sorted(block.output_names()) == ["y", "z"]

    def test_instantaneous_dependencies_follow_variables(self):
        block = ExpressionComponent("F", {"y": "a + 1", "z": "b"})
        block.declare_interface_from_expressions()
        deps = block.instantaneous_dependencies()
        assert deps["y"] == {"a"}
        assert deps["z"] == {"b"}

    def test_invalid_expression_type(self):
        with pytest.raises(ModelError):
            ExpressionComponent("F", {"y": 42})


class TestFunctionAndStatefulComponents:
    def test_function_component(self):
        double = FunctionComponent("Double",
                                   lambda env: {"out": env["in1"] * 2},
                                   inputs=["in1"], outputs=["out"])
        outputs, _ = double.react({"in1": 4}, None, 0)
        assert outputs == {"out": 8}

    def test_function_component_missing_output_becomes_absent(self):
        partial = FunctionComponent("P", lambda env: {}, inputs=["x"],
                                    outputs=["y"])
        outputs, _ = partial.react({"x": 1}, None, 0)
        assert outputs["y"] is ABSENT

    def test_stateful_component_default_breaks_feedthrough(self):
        class Hold(StatefulComponent):
            def __init__(self):
                super().__init__("H")
                self.add_input("u")
                self.add_output("y")

            def initial_state(self):
                return 0

            def step(self, inputs, state, tick):
                new = inputs["u"] if is_present(inputs["u"]) else state
                return {"y": state}, new

        hold = Hold()
        assert hold.instantaneous_dependencies() == {"y": set()}


def _build_accumulator():
    """inc -> ADD -> delay -> back to ADD: the canonical feedback loop."""
    from repro.notations.blocks import UnitDelay

    top = CompositeComponent("Acc")
    top.add_input("inc")
    top.add_output("total")
    adder = ExpressionComponent("ADD", {"sum": "a + b"})
    adder.declare_interface_from_expressions()
    delay = UnitDelay("Z", initial=0)
    top.add(adder, delay)
    top.connect("inc", "ADD.a")
    top.connect("Z.out", "ADD.b")
    top.connect("ADD.sum", "Z.in1")
    top.connect("ADD.sum", "total")
    return top


class TestCompositeComponent:
    def test_subcomponent_management(self):
        composite = CompositeComponent("C")
        composite.add_subcomponent(Component("A"))
        assert composite.has_subcomponent("A")
        with pytest.raises(NameConflictError):
            composite.add_subcomponent(Component("A"))
        with pytest.raises(UnknownElementError):
            composite.subcomponent("B")
        with pytest.raises(ModelError):
            composite.add_subcomponent(composite)

    def test_connect_validates_directions(self):
        composite = CompositeComponent("C")
        composite.add_input("x")
        composite.add_output("y")
        block = ExpressionComponent("F", {"out": "in1"})
        block.declare_interface_from_expressions()
        composite.add_subcomponent(block)
        composite.connect("x", "F.in1")
        composite.connect("F.out", "y")
        with pytest.raises(ModelError):
            composite.connect("F.in1", "y")  # input used as source
        with pytest.raises(ModelError):
            composite.connect("x", "F.out")  # output used as destination

    def test_destination_driven_once(self):
        composite = CompositeComponent("C")
        composite.add_input("a")
        composite.add_input("b")
        block = ExpressionComponent("F", {"out": "in1"})
        block.declare_interface_from_expressions()
        composite.add_subcomponent(block)
        composite.connect("a", "F.in1")
        with pytest.raises(ModelError):
            composite.connect("b", "F.in1")

    def test_feedback_through_delay_is_causal_and_correct(self):
        accumulator = _build_accumulator()
        order = accumulator.evaluation_order()
        assert set(order) == {"ADD", "Z"}
        state = accumulator.initial_state()
        totals = []
        for tick in range(5):
            outputs, state = accumulator.react({"inc": 1}, state, tick)
            totals.append(outputs["total"])
        assert totals == [1, 2, 3, 4, 5]

    def test_instantaneous_loop_detected(self):
        composite = CompositeComponent("Loop")
        first = ExpressionComponent("A", {"out": "in1"})
        first.declare_interface_from_expressions()
        second = ExpressionComponent("B", {"out": "in1"})
        second.declare_interface_from_expressions()
        composite.add(first, second)
        composite.connect("A.out", "B.in1")
        composite.connect("B.out", "A.in1")
        with pytest.raises(CausalityError):
            composite.evaluation_order()

    def test_delayed_channel_breaks_loop(self):
        composite = CompositeComponent("Loop")
        first = ExpressionComponent("A", {"out": "in1 + 1"})
        first.declare_interface_from_expressions()
        second = ExpressionComponent("B", {"out": "in1"})
        second.declare_interface_from_expressions()
        composite.add(first, second)
        composite.connect("A.out", "B.in1")
        composite.connect("B.out", "A.in1", delayed=True, initial_value=0)
        assert composite.evaluation_order() == ["A", "B"]

    def test_instantaneous_dependencies_through_network(self):
        accumulator = _build_accumulator()
        deps = accumulator.instantaneous_dependencies()
        assert deps == {"total": {"inc"}}

    def test_missing_behavior_raises_simulation_error(self):
        composite = CompositeComponent("C")
        composite.add_output("y")
        empty = Component("E")
        empty.add_output("out")
        composite.add_subcomponent(empty)
        composite.connect("E.out", "y")
        with pytest.raises(SimulationError):
            composite.react({}, None, 0)

    def test_walk_and_depth(self):
        outer = CompositeComponent("Outer")
        inner = CompositeComponent("Inner")
        inner.add_subcomponent(Component("Leaf"))
        outer.add_subcomponent(inner)
        paths = [path for path, _ in outer.walk()]
        assert paths == ["Outer", "Outer/Inner", "Outer/Inner/Leaf"]
        # depth counts nested composite levels: Outer (1) containing Inner (2)
        assert outer.hierarchy_depth() == 2
        assert len(outer.flatten_leaves()) == 1

    def test_unconnected_input_reads_absence(self):
        composite = CompositeComponent("C")
        composite.add_output("y")
        probe = FunctionComponent(
            "Probe", lambda env: {"out": is_present(env["in1"])},
            inputs=["in1"], outputs=["out"])
        composite.add_subcomponent(probe)
        composite.connect("Probe.out", "y")
        outputs, _ = composite.react({}, None, 0)
        assert outputs["y"] is False


class TestExecutionPlanCaching:
    """evaluation_order / execution_plan are cached per structure version."""

    def _chain(self):
        composite = CompositeComponent("Plan")
        composite.add_input("u")
        composite.add_output("y")
        a = ExpressionComponent("A", {"out": "in1 + 1"})
        a.declare_interface_from_expressions()
        b = ExpressionComponent("B", {"out": "in1 * 2"})
        b.declare_interface_from_expressions()
        composite.add(a, b)
        composite.connect("u", "A.in1")
        composite.connect("A.out", "B.in1")
        composite.connect("B.out", "y")
        return composite

    def test_plan_is_cached_until_structure_changes(self):
        composite = self._chain()
        plan = composite.execution_plan()
        assert composite.execution_plan() is plan
        assert plan.order == ("A", "B")
        # adding structure through the public API invalidates the cache
        c = ExpressionComponent("C", {"out": "in1"})
        c.declare_interface_from_expressions()
        composite.add_subcomponent(c)
        composite.connect("B.out", "C.in1")
        new_plan = composite.execution_plan()
        assert new_plan is not plan
        assert new_plan.order == ("A", "B", "C")

    def test_submodel_mutation_invalidates_parent_plan(self):
        composite = self._chain()
        plan = composite.execution_plan()
        # adding a port to a sub-component changes the recursive token
        composite.subcomponent("B").add_input("extra")
        assert composite.execution_plan() is not plan

    def test_invalidate_plan_after_private_surgery(self):
        composite = self._chain()
        plan = composite.execution_plan()
        channel = [c for c in composite.channels()
                   if c.destination.component == "B"][0]
        composite._channels.remove(channel)  # deliberate surgery
        composite.invalidate_plan()
        new_plan = composite.execution_plan()
        assert new_plan is not plan
        assert all(dst != ("B", "in1")
                   for _, dst in new_plan.entries[0].propagate)

    def test_plan_contents_describe_the_schedule(self):
        composite = CompositeComponent("P")
        composite.add_input("u")
        composite.add_output("y")
        gain = ExpressionComponent("G", {"out": "in1"})
        gain.declare_interface_from_expressions()
        composite.add_subcomponent(gain)
        composite.connect("u", "G.in1")
        composite.connect("G.out", "y", delayed=True, initial_value=7)
        plan = composite.execution_plan()
        assert plan.boundary_propagate == (((None, "u"), ("G", "in1")),)
        assert len(plan.delayed_seed) == 1
        assert len(plan.delayed_commit) == 1
        (port, delayed, _, initial, src) = plan.boundary_outputs[0]
        assert port == "y" and delayed and initial == 7 and src == ("G", "out")
        entry = plan.entries[0]
        assert entry.name == "G" and entry.has_feedthrough
        assert plan.correction_entries() == ()

    def test_evaluation_order_still_detects_cycles_after_mutation(self):
        composite = CompositeComponent("Cyclic")
        a = ExpressionComponent("A", {"out": "in1"})
        a.declare_interface_from_expressions()
        b = ExpressionComponent("B", {"out": "in1"})
        b.declare_interface_from_expressions()
        composite.add(a, b)
        composite.connect("A.out", "B.in1")
        assert composite.evaluation_order() == ["A", "B"]
        composite.connect("B.out", "A.in1")  # closes an instantaneous loop
        with pytest.raises(CausalityError):
            composite.evaluation_order()

    def test_structure_token_recurses_into_subtree(self):
        outer = CompositeComponent("Outer")
        inner = CompositeComponent("Inner")
        leaf = ExpressionComponent("Leaf", {"out": "in1"})
        leaf.declare_interface_from_expressions()
        inner.add_subcomponent(leaf)
        outer.add_subcomponent(inner)
        token = outer.structure_token()
        leaf.add_output("extra")
        assert outer.structure_token() != token

    def test_gated_wrapper_mutation_invalidates_enclosing_plan(self):
        """ClockGatedComponent holds its child in .inner, not _subcomponents;
        the recursive token must still see mutations through the wrapper."""
        from repro.core.clocks import every
        from repro.simulation import ClockGatedComponent

        inner = CompositeComponent("Inner")
        inner.add_input("u")
        inner.add_output("y")
        leaf = ExpressionComponent("L", {"out": "in1"})
        leaf.declare_interface_from_expressions()
        inner.add_subcomponent(leaf)
        inner.connect("u", "L.in1")
        inner.connect("L.out", "y")

        parent = CompositeComponent("Parent")
        parent.add_input("u")
        parent.add_output("y")
        gated = ClockGatedComponent(inner, every(2), name="GatedInner")
        parent.add_subcomponent(gated)
        parent.connect("u", "GatedInner.u")
        parent.connect("GatedInner.y", "y")

        plan = parent.execution_plan()
        inner.subcomponent("L").add_input("extra")  # public-API mutation
        assert parent.execution_plan() is not plan
