"""Typed mutation/crossover operators of the coverage search."""

import random

import pytest

from repro.analysis import guard_vocabulary
from repro.core.errors import SimulationError
from repro.scenarios import (Constant, Dropout, EventStorm, ModeSequence,
                             OutOfRange, RandomWalk, Ramp, Scenario,
                             SquareWave, StuckAt)
from repro.search import (DEFAULT_MUTATORS, MutationContext,
                          PerturbModeSequence, PerturbRamp,
                          PerturbSquareWave, ReseedGenerator, RetargetPort,
                          ToggleFaultInjector, crossover_scenarios,
                          exploration_scenario, mutate_scenario)
from repro.search.mutation import append_witness


def _context(**pools):
    return MutationContext(value_pools=pools, default_ticks=30, max_ticks=120)


# -- guard vocabulary (analysis layer) --------------------------------------


def test_guard_vocabulary_samples_boundary_values(engine_modes_mtd):
    pools = guard_vocabulary(engine_modes_mtd)
    # each comparison constant contributes value-1, value, value+1
    assert {699, 700, 701} <= set(pools["n"])
    assert {79, 80, 81} <= set(pools["ped"])
    # guards never constrain t_eng: the generic pool remains
    assert set(pools["t_eng"]) == {False, True, 0, 1}
    # numeric constants displace the boolean filler values
    assert not any(isinstance(value, bool) for value in pools["n"])


def test_guard_vocabulary_covers_nested_stds():
    from repro.notations.dfd import DataFlowDiagram
    from repro.notations.std import StateTransitionDiagram
    std = StateTransitionDiagram("Gearbox")
    std.add_input("speed")
    std.add_state("Low", initial=True)
    std.add_state("High")
    std.add_transition("Low", "High", "speed > 2500")
    dfd = DataFlowDiagram("Drivetrain")
    dfd.add_input("speed")
    dfd.add_subcomponent(std)
    dfd.connect("speed", "Gearbox.speed")
    assert {2499, 2500, 2501} <= set(guard_vocabulary(dfd)["speed"])


# -- typed operators --------------------------------------------------------


def test_perturb_ramp_returns_typed_ramp():
    rng = random.Random(1)
    mutated = PerturbRamp().mutate(Ramp(start=5.0, slope=2.0, high=50.0),
                                   rng, _context(u=[0.0, 10.0]), "u")
    assert isinstance(mutated, Ramp)
    assert mutated.high == 50.0  # clamps survive
    assert (mutated.slope, mutated.start) != (2.0, 5.0)


def test_perturb_square_wave_keeps_wave_valid():
    rng = random.Random(2)
    for _ in range(20):
        mutated = PerturbSquareWave().mutate(
            SquareWave(period=6, low=0.0, high=1.0), rng, _context(), "u")
        assert isinstance(mutated, SquareWave)
        assert mutated.period >= 1
        assert 0.0 <= mutated.duty <= 1.0


def test_perturb_mode_sequence_stays_well_formed():
    rng = random.Random(3)
    sequence = ModeSequence([(0.0, 5), (900.0, 5), (3000.0, 5)])
    for _ in range(40):  # exercise every operation kind
        mutated = PerturbModeSequence().mutate(sequence, rng,
                                               _context(u=[1.0, 2.0]), "u")
        assert isinstance(mutated, ModeSequence)
        assert len(mutated.segments) >= 1
        assert all(duration >= 1 for _, duration in mutated.segments)


def test_reseed_generator_keeps_parameters_changes_stream():
    rng = random.Random(4)
    walk = RandomWalk(seed=11, start=2.0, step=0.5, low=0.0, high=10.0)
    reseeded = ReseedGenerator().mutate(walk, rng, _context(), "u")
    assert isinstance(reseeded, RandomWalk)
    assert (reseeded.start, reseeded.step) == (2.0, 0.5)
    assert reseeded.seed != walk.seed
    assert reseeded.materialize(30) != walk.materialize(30)
    # the original generator is untouched (mutation never aliases state)
    assert walk.materialize(5) == RandomWalk(seed=11, start=2.0, step=0.5,
                                             low=0.0, high=10.0).materialize(5)


def test_toggle_fault_wraps_and_heals():
    rng = random.Random(5)
    toggle = ToggleFaultInjector()
    context = _context(u=[0.0, 5.0])
    wrapped = toggle.mutate(Constant(1.0), rng, context, "u")
    assert isinstance(wrapped, (StuckAt, Dropout, OutOfRange))
    healed = toggle.mutate(wrapped, rng, context, "u")
    assert isinstance(healed, Constant)  # unwraps back to the inner spec


def test_toggle_fault_windows_always_fire():
    # the generators now validate windows; 60 draws across all injector
    # kinds must all construct successfully and inside the horizon
    rng = random.Random(6)
    toggle = ToggleFaultInjector()
    context = _context(u=[1.0])
    for _ in range(60):
        injector = toggle.mutate(0.0, rng, context, "u")
        if isinstance(injector, StuckAt):
            assert 0 <= injector.from_tick < injector.until
        elif isinstance(injector, OutOfRange):
            assert injector.at_ticks
            assert max(injector.at_ticks) < context.default_ticks


def test_retarget_builds_pool_sequences():
    rng = random.Random(7)
    mutated = RetargetPort().mutate(EventStorm(seed=1), rng,
                                    _context(u=[10.0, 20.0, 30.0]), "u")
    assert isinstance(mutated, ModeSequence)
    assert {value for value, _ in mutated.segments} <= {10.0, 20.0, 30.0}


# -- scenario-level mutation / crossover ------------------------------------


def test_mutate_scenario_is_deterministic_under_seed():
    scenario = Scenario("s", {"n": ModeSequence([(0.0, 5), (900.0, 5)]),
                              "ped": 40.0}, ticks=30)
    context = _context(n=[0.0, 800.0], ped=[0.0, 90.0])
    first = mutate_scenario(scenario, random.Random(42), context, "child")
    second = mutate_scenario(scenario, random.Random(42), context, "child")
    assert first.name == second.name == "child"
    assert first.ticks == second.ticks
    assert repr(first.stimuli) == repr(second.stimuli)
    # the parent scenario is untouched
    assert scenario.stimuli["ped"] == 40.0


def test_mutate_scenario_respects_max_ticks():
    scenario = Scenario("s", {"u": 1.0}, ticks=118)
    context = _context(u=[1.0])
    for seed in range(30):
        child = mutate_scenario(scenario, random.Random(seed), context, "c")
        assert child.ticks <= context.max_ticks


def test_mutate_scenario_without_stimuli_is_rejected():
    with pytest.raises(SimulationError):
        mutate_scenario(Scenario("s", {}, 5), random.Random(0), _context(),
                        "c")


def test_crossover_mixes_ports_and_splices_sequences():
    left = Scenario("a", {"n": ModeSequence([(0.0, 5), (800.0, 5)]),
                          "ped": 10.0}, ticks=20)
    right = Scenario("b", {"n": ModeSequence([(3000.0, 4), (1000.0, 4)]),
                           "ped": 90.0}, ticks=40)
    seen_splice = False
    for seed in range(40):
        child = crossover_scenarios(left, right, random.Random(seed), "c")
        assert set(child.stimuli) == {"n", "ped"}
        assert child.ticks in (20, 40)
        assert child.stimuli["ped"] in (10.0, 90.0)
        sequence = child.stimuli["n"]
        assert isinstance(sequence, ModeSequence)
        values = [value for value, _ in sequence.segments]
        if 0.0 in values and 1000.0 in values:
            seen_splice = True  # a genuine spliced prefix+suffix child
    assert seen_splice


def test_exploration_scenario_covers_every_port():
    context = _context(n=[0.0, 800.0], ped=[0.0, 90.0])
    scenario = exploration_scenario(["ped", "n"], random.Random(1), context,
                                    "x")
    assert set(scenario.stimuli) == {"n", "ped"}
    assert scenario.ticks == context.default_ticks
    assert all(isinstance(spec, ModeSequence)
               for spec in scenario.stimuli.values())


# -- directed witness extension ---------------------------------------------


def test_append_witness_replays_parent_then_holds_witness():
    parent = Scenario("p", {"n": ModeSequence([(0.0, 4), (800.0, 6)]),
                            "ped": 40.0}, ticks=10)
    child = append_witness(parent, {"n": 3001.0, "ped": 0.0}, dwell=3,
                           name="t")
    assert child.ticks == 13
    n_values = child.stimuli["n"].materialize(13)
    assert n_values[:10] == parent.stimuli["n"].materialize(10)
    assert n_values[10:] == [3001.0] * 3
    ped_values = child.stimuli["ped"].materialize(13)
    assert ped_values[:10] == [40.0] * 10  # scalar became a real sequence
    assert ped_values[10:] == [0.0] * 3
    with pytest.raises(SimulationError):
        append_witness(parent, {"n": 0.0}, dwell=0, name="bad")


def test_append_witness_preserves_absent_tails():
    from repro.core.values import is_absent
    # a non-holding sequence goes absent after its segments: the extension
    # must keep that absence, not resurrect the last value
    parent = Scenario("p", {"u": ModeSequence([(5.0, 3)], hold_last=False)},
                      ticks=10)
    child = append_witness(parent, {"u": 9.0}, dwell=2, name="t")
    values = child.stimuli["u"].materialize(12)
    assert values[:3] == [5.0] * 3
    assert all(is_absent(value) for value in values[3:10])
    assert values[10:] == [9.0] * 2


def test_append_witness_leaves_new_ports_absent_during_prefix():
    from repro.core.values import is_absent
    # a witness port the parent never drove only appears in the witness
    # phase -- driving it earlier could divert the parent's trajectory
    parent = Scenario("p", {"x": 1.0}, ticks=5)
    child = append_witness(parent, {"y": True}, dwell=2, name="t")
    values = child.stimuli["y"].materialize(7)
    assert all(is_absent(value) for value in values[:5])
    assert values[5:] == [True, True]
    assert child.stimuli["x"] == 1.0  # untouched ports keep their stimulus


def test_append_witness_compresses_generator_prefixes():
    parent = Scenario("p", {"u": SquareWave(period=4)}, ticks=8)
    child = append_witness(parent, {"u": 7.0}, dwell=2, name="t")
    prefix = child.stimuli["u"].materialize(8)
    assert prefix == SquareWave(period=4).materialize(8)


def test_append_witness_clips_segments_to_parent_horizon():
    # segments outlasting the parent horizon (a common product of append/
    # retime mutations) must not push the witness past the child's ticks
    parent = Scenario("p", {"u": ModeSequence([(1.0, 50), (2.0, 10)])},
                      ticks=20)
    child = append_witness(parent, {"u": 9.0}, dwell=3, name="t")
    assert child.ticks == 23
    values = child.stimuli["u"].materialize(child.ticks)
    assert values[:20] == [1.0] * 20  # prefix as actually simulated
    assert values[20:] == [9.0] * 3   # the witness really fires


def test_mutated_injector_windows_fit_the_scenario_horizon():
    # windows must be drawn inside the *scenario's* ticks, not the
    # context-wide default (a ticks=10 scenario in a default_ticks=30
    # context would otherwise get faults that never fire)
    scenario = Scenario("s", {"u": Constant(1.0)}, ticks=10)
    context = _context(u=[1.0, 2.0])
    for seed in range(120):
        child = mutate_scenario(scenario, random.Random(seed), context, "c")
        spec = child.stimuli["u"]
        if isinstance(spec, StuckAt):
            assert spec.from_tick < 10
        elif isinstance(spec, OutOfRange):
            assert max(spec.at_ticks) < 10


def test_default_registry_order_is_stable():
    # determinism leans on a fixed registry: guard the order by name
    assert [mutator.name for mutator in DEFAULT_MUTATORS] == [
        "perturb-ramp", "perturb-square-wave", "perturb-step",
        "perturb-mode-sequence", "perturb-sine", "reseed", "toggle-fault",
        "retarget", "perturb-scalar"]
