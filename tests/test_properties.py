"""Property-based tests (hypothesis) for the core data structures and the
key semantic invariants of the operational model and its transformations."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.clocks import PeriodicClock, every, hyperperiod, is_subclock
from repro.core.expr_eval import evaluate
from repro.core.expr_parser import parse_expression
from repro.core.expressions import BinaryOp, Literal, Variable
from repro.core.impl_types import FixedPointType, choose_implementation_type
from repro.core.types import IntType, FloatType, is_assignable, unify
from repro.core.values import ABSENT, Stream, every as every_pattern, is_absent
from repro.transformations.reengineering import substitute


# --------------------------------------------------------------------------
# streams
# --------------------------------------------------------------------------

values_or_absent = st.one_of(st.integers(-1000, 1000), st.just(ABSENT))
streams = st.lists(values_or_absent, max_size=40).map(Stream)


@given(streams)
def test_delay_preserves_length_and_shifts_content(stream):
    delayed = stream.delayed(initial=0)
    assert len(delayed) == len(stream)
    if len(stream) > 1:
        assert delayed.values()[1:] == stream.values()[:-1]


@given(streams, st.integers(1, 8))
def test_when_every_n_keeps_every_nth_present_value(stream, n):
    pattern = every_pattern(n, len(stream))
    sampled = stream.when(pattern)
    assert len(sampled) == len(stream)
    for tick, value in enumerate(sampled):
        if tick % n == 0:
            assert value == stream[tick]
        else:
            assert is_absent(value)


@given(streams)
def test_hold_has_no_absence_after_first_present(stream):
    held = stream.hold(initial=0)
    assert len(held) == len(stream)
    assert all(not is_absent(value) for value in held)


@given(streams)
def test_presence_count_matches_pattern(stream):
    assert stream.presence_count() == sum(stream.presence_pattern())
    assert len(stream.present_values()) == stream.presence_count()


@given(streams, st.integers(0, 5))
def test_delay_distributes_over_presence(stream, amount):
    delayed = stream.delayed(initial=ABSENT, amount=amount)
    assert delayed.presence_count() <= stream.presence_count()


# --------------------------------------------------------------------------
# clocks
# --------------------------------------------------------------------------

periods = st.integers(1, 16)


@given(periods, st.integers(1, 8))
def test_harmonic_clocks_are_subclocks(period, factor):
    fast = every(period)
    slow = every(period * factor)
    assert is_subclock(slow, fast)


@given(periods, periods)
def test_hyperperiod_is_common_multiple(first, second):
    lcm = hyperperiod([every(first), every(second)])
    assert lcm % first == 0 and lcm % second == 0
    assert lcm <= first * second


@given(periods, st.integers(0, 15), st.integers(1, 64))
def test_periodic_pattern_density(period, phase, length):
    clock = PeriodicClock(period, phase % period)
    pattern = clock.pattern(length)
    assert len(pattern) == length
    assert sum(pattern) in (length // period, length // period + 1)


# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------

small_ints = st.integers(-50, 50)


@given(small_ints, small_ints, small_ints)
def test_parser_respects_arithmetic_semantics(a, b, c):
    result = evaluate("a + b * c - a", {"a": a, "b": b, "c": c})
    assert result == a + b * c - a


@given(small_ints, small_ints)
def test_expression_roundtrip_through_source(a, b):
    expression = parse_expression("if a > b then a - b else b - a")
    reparsed = parse_expression(expression.to_source())
    environment = {"a": a, "b": b}
    assert evaluate(expression, environment) == evaluate(reparsed, environment)
    assert evaluate(expression, environment) == abs(a - b)


@given(small_ints)
def test_absence_is_contagious_in_arithmetic(a):
    expression = parse_expression("x + missing * 2")
    assert is_absent(evaluate(expression, {"x": a, "missing": ABSENT}))


@given(small_ints, small_ints)
def test_substitution_equals_environment_binding(a, b):
    expression = parse_expression("x * 2 + y")
    substituted = substitute(expression, {"y": Literal(b)})
    assert "y" not in substituted.variables()
    assert evaluate(substituted, {"x": a}) == evaluate(expression,
                                                       {"x": a, "y": b})


# --------------------------------------------------------------------------
# types
# --------------------------------------------------------------------------

int_ranges = st.tuples(st.integers(-10_000, 10_000),
                       st.integers(0, 10_000)).map(lambda t: (t[0], t[0] + t[1]))


@given(int_ranges, int_ranges)
def test_assignability_matches_range_inclusion(first, second):
    source = IntType(*first)
    target = IntType(*second)
    included = second[0] <= first[0] and first[1] <= second[1]
    assert is_assignable(source, target) == included


@given(int_ranges, int_ranges)
def test_unify_is_an_upper_bound(first, second):
    merged = unify(IntType(*first), IntType(*second))
    assert is_assignable(IntType(*first), merged)
    assert is_assignable(IntType(*second), merged)


@given(st.floats(min_value=-1e5, max_value=1e5, allow_nan=False),
       st.floats(min_value=1e-3, max_value=10.0, allow_nan=False))
def test_fixed_point_quantization_error_is_bounded(value, scale):
    encoding = FixedPointType(32, scale=scale)
    if encoding.min_physical <= value <= encoding.max_physical:
        assert encoding.quantization_error(value) <= scale / 2 + 1e-9


@given(st.floats(min_value=-1e4, max_value=0.0, allow_nan=False),
       st.floats(min_value=0.1, max_value=1e4, allow_nan=False))
def test_default_float_mapping_covers_declared_range(low, span):
    high = low + span
    impl = choose_implementation_type(FloatType(low, high))
    assert impl.min_physical <= low + impl.resolution
    assert impl.max_physical >= high - impl.resolution


# --------------------------------------------------------------------------
# MTD -> data-flow equivalence on random threshold machines
# --------------------------------------------------------------------------

@st.composite
def threshold_mtds(draw):
    """Random two-mode MTDs with threshold guards plus a stimulus."""
    from repro.core.components import ExpressionComponent
    from repro.notations.mtd import ModeTransitionDiagram

    low_gain = draw(st.integers(1, 5))
    high_gain = draw(st.integers(6, 10))
    threshold = draw(st.integers(-20, 20))
    mtd = ModeTransitionDiagram("Random")
    mtd.add_input("x")
    mtd.add_output("y")
    mtd.add_output("mode")
    low = ExpressionComponent("low", {"y": f"x * {low_gain}"})
    low.add_input("x")
    low.add_output("y")
    high = ExpressionComponent("high", {"y": f"x * {high_gain}"})
    high.add_input("x")
    high.add_output("y")
    mtd.add_mode("Low", low, initial=True)
    mtd.add_mode("High", high)
    mtd.add_transition("Low", "High", f"x > {threshold}")
    mtd.add_transition("High", "Low", f"x <= {threshold}")
    stimulus = draw(st.lists(st.integers(-30, 30), min_size=1, max_size=25))
    return mtd, stimulus


@settings(max_examples=25, deadline=None)
@given(threshold_mtds())
def test_mtd_to_dataflow_equivalence_on_random_machines(case):
    from repro.transformations.mtd_to_dataflow import (
        transform_mtd_to_dataflow, verify_equivalence)

    mtd, stimulus = case
    dataflow = transform_mtd_to_dataflow(mtd)
    equivalent, difference = verify_equivalence(mtd, dataflow, {"x": stimulus},
                                                ticks=len(stimulus))
    assert equivalent, f"difference: {difference}"


# --------------------------------------------------------------------------
# scheduling invariant
# --------------------------------------------------------------------------

@st.composite
def task_sets(draw):
    from repro.platform.ecu import ECU, Task

    ecu = ECU("E")
    count = draw(st.integers(1, 4))
    for index in range(count):
        period = draw(st.sampled_from([4, 5, 8, 10, 20]))
        wcet = draw(st.integers(1, 2))
        ecu.add_task(Task(f"T{index}", period=period, priority=index + 1,
                          wcet=wcet))
    return ecu


@settings(max_examples=25, deadline=None)
@given(task_sets())
def test_simulated_wcrt_never_exceeds_analytical_bound(ecu):
    from repro.platform.osek import response_time_analysis, simulate_schedule

    analytical = {result.task: result for result in response_time_analysis(ecu)}
    trace = simulate_schedule(ecu)
    for task_name, result in analytical.items():
        observed = trace.worst_case_response_time(task_name)
        if result.schedulable and observed is not None:
            assert observed <= math.ceil(result.wcrt) + 1e-9
