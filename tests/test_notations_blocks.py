"""Tests for the discrete-time block library."""

import pytest

from repro.core.errors import ModelError
from repro.core.values import ABSENT, is_absent
from repro.notations.blocks import (BLOCK_LIBRARY, Add, Constant, Counter,
                                    EdgeDetector, Every, Gain, Hold,
                                    Hysteresis, Integrator, Limit,
                                    LookupTable1D, Multiply, PIDController,
                                    RateLimiter, Subtract, Switch, UnitDelay,
                                    When, library_block)
from repro.simulation.engine import simulate


def run_block(block, stimuli, ticks):
    """Simulate a single block and return its sole output stream values."""
    trace = simulate(block, stimuli, ticks)
    output_name = block.output_names()[0]
    return trace.output(output_name).values()


class TestArithmeticBlocks:
    def test_constant(self):
        assert run_block(Constant("K", 7), {}, 3) == [7, 7, 7]

    def test_add_sums_present_inputs(self):
        block = Add("ADD", 3)
        values = run_block(block, {"in1": [1, 1], "in2": [2, ABSENT],
                                   "in3": [3, 3]}, 2)
        assert values == [6, 4]

    def test_add_all_absent_gives_absent(self):
        block = Add("ADD", 2)
        values = run_block(block, {}, 2)
        assert all(is_absent(value) for value in values)

    def test_add_requires_an_input(self):
        with pytest.raises(ModelError):
            Add("ADD", 0)

    def test_subtract(self):
        block = Subtract("SUB")
        assert run_block(block, {"minuend": [5], "subtrahend": [2]}, 1) == [3]
        assert is_absent(run_block(block, {"minuend": [5]}, 1)[0])

    def test_multiply(self):
        block = Multiply("MUL", 2)
        assert run_block(block, {"in1": [3], "in2": [4]}, 1) == [12]
        assert is_absent(run_block(block, {"in1": [3]}, 1)[0])

    def test_gain(self):
        block = Gain("G", 2.5)
        assert run_block(block, {"in1": [2.0, ABSENT]}, 2) == [5.0, ABSENT]


class TestSamplingBlocks:
    def test_unit_delay(self):
        block = UnitDelay("Z", initial=9)
        assert run_block(block, {"in1": [1, 2, 3]}, 3) == [9, 1, 2]

    def test_unit_delay_holds_over_absence(self):
        block = UnitDelay("Z", initial=0)
        assert run_block(block, {"in1": [5, ABSENT, ABSENT]}, 3) == [0, 5, 5]

    def test_when_operator(self):
        block = When("W")
        values = run_block(block, {"in1": [0, 1, 2, 3],
                                   "clock": [True, False, True, False]}, 4)
        assert values == [0, ABSENT, 2, ABSENT]

    def test_every_block_fig2(self):
        block = Every("EV", 2)
        assert run_block(block, {}, 5) == [True, False, True, False, True]

    def test_every_with_phase(self):
        block = Every("EV", 3, phase=1)
        assert run_block(block, {}, 4) == [False, True, False, False]

    def test_every_rejects_zero(self):
        with pytest.raises(ModelError):
            Every("EV", 0)

    def test_hold(self):
        block = Hold("H", initial=0)
        assert run_block(block, {"in1": [1, ABSENT, 3, ABSENT]}, 4) == [1, 1, 3, 3]


class TestConditioningBlocks:
    def test_switch(self):
        block = Switch("SW")
        values = run_block(block, {"control": [True, False, ABSENT],
                                   "on_true": [1, 1, 1],
                                   "on_false": [2, 2, 2]}, 3)
        assert values == [1, 2, ABSENT]

    def test_limit(self):
        block = Limit("L", -1.0, 1.0)
        assert run_block(block, {"in1": [-5, 0.5, 5]}, 3) == [-1.0, 0.5, 1.0]
        with pytest.raises(ModelError):
            Limit("L", 2, 1)

    def test_rate_limiter(self):
        block = RateLimiter("R", max_delta=2.0)
        assert run_block(block, {"in1": [10, 10, 10]}, 3) == [2.0, 4.0, 6.0]
        with pytest.raises(ModelError):
            RateLimiter("R", max_delta=0)

    def test_rate_limiter_holds_on_absence(self):
        block = RateLimiter("R", max_delta=1.0)
        assert run_block(block, {"in1": [3, ABSENT, 3]}, 3) == [1.0, 1.0, 2.0]

    def test_hysteresis(self):
        block = Hysteresis("H", low=2.0, high=5.0)
        values = run_block(block, {"in1": [0, 6, 4, 1, 3]}, 5)
        assert values == [False, True, True, False, False]
        with pytest.raises(ModelError):
            Hysteresis("H", low=5, high=5)

    def test_counter(self):
        block = Counter("C")
        values = run_block(block, {"in1": [True, True, False, True],
                                   "reset": [False, False, True, False]}, 4)
        assert values == [1, 2, 0, 1]

    def test_counter_reset_wins_before_count(self):
        block = Counter("C")
        values = run_block(block, {"in1": [True, True],
                                   "reset": [False, True]}, 2)
        assert values == [1, 1]

    def test_edge_detector(self):
        block = EdgeDetector("E")
        values = run_block(block, {"in1": [False, True, True, False, True]}, 5)
        assert values == [False, True, False, False, True]


class TestControllerBlocks:
    def test_integrator_accumulates(self):
        block = Integrator("I", gain=0.5)
        assert run_block(block, {"in1": [2, 2, 2]}, 3) == [1.0, 2.0, 3.0]

    def test_integrator_saturates(self):
        block = Integrator("I", gain=1.0, high=2.0)
        assert run_block(block, {"in1": [1, 1, 1, 1]}, 4) == [1.0, 2.0, 2.0, 2.0]

    def test_pid_proportional_only(self):
        block = PIDController("PID", kp=2.0)
        assert run_block(block, {"error": [1.0, 2.0]}, 2) == [2.0, 4.0]

    def test_pid_with_integral_and_derivative(self):
        block = PIDController("PID", kp=1.0, ki=0.5, kd=1.0)
        values = run_block(block, {"error": [1.0, 1.0]}, 2)
        # t0: 1*1 + 0.5*1 + 1*(1-0) = 2.5 ; t1: 1 + 0.5*2 + 0 = 2.0
        assert values == pytest.approx([2.5, 2.0])

    def test_pid_output_limits(self):
        block = PIDController("PID", kp=10.0, low=-1.0, high=1.0)
        assert run_block(block, {"error": [5.0]}, 1) == [1.0]

    def test_pid_absent_error(self):
        block = PIDController("PID", kp=1.0)
        assert is_absent(run_block(block, {}, 1)[0])

    def test_lookup_table_interpolates(self):
        block = LookupTable1D("MAP", [0, 10, 20], [0.0, 100.0, 150.0])
        values = run_block(block, {"in1": [-5, 5, 15, 25]}, 4)
        assert values == [0.0, 50.0, 125.0, 150.0]

    def test_lookup_table_validation(self):
        with pytest.raises(ModelError):
            LookupTable1D("MAP", [0, 1], [1.0])
        with pytest.raises(ModelError):
            LookupTable1D("MAP", [1, 0], [1.0, 2.0])


class TestBlockLibraryRegistry:
    def test_every_registered_kind_instantiates(self):
        parameters = {
            "constant": {"value": 1}, "add": {}, "subtract": {},
            "multiply": {}, "gain": {"factor": 2.0}, "unit_delay": {},
            "when": {}, "every": {"n": 2}, "hold": {}, "switch": {},
            "limit": {"low": 0, "high": 1}, "rate_limiter": {"max_delta": 1.0},
            "hysteresis": {"low": 0, "high": 1}, "counter": {},
            "edge_detector": {}, "integrator": {}, "pid": {"kp": 1.0},
            "lookup_table_1d": {"breakpoints": [0, 1], "values": [0.0, 1.0]},
        }
        assert set(parameters) == set(BLOCK_LIBRARY)
        for kind, kwargs in parameters.items():
            block = library_block(kind, f"b_{kind}", **kwargs)
            assert block.name == f"b_{kind}"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            library_block("nonsense", "x")
