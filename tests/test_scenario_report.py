"""The batch coverage/aggregation layer and trace JSON export."""

import json

import pytest

from repro.analysis import find_stds, machine_inventory
from repro.core.values import ABSENT
from repro.scenarios import (BatchReport, ModeSequence, Scenario,
                             mode_sequence_sweep, run_with_report)
from repro.io import (trace_from_json, trace_from_json_dict, trace_to_json,
                      trace_to_json_dict)
from repro.simulation import first_difference, simulate


# -- machine inventory (analysis layer) -------------------------------------


def test_machine_inventory_finds_root_mtd(engine_modes_mtd):
    inventory = machine_inventory(engine_modes_mtd)
    assert [info.path for info in inventory] == ["EngineOperationModes"]
    info = inventory[0]
    assert info.kind == "mtd"
    assert info.initial == "Off"
    assert set(info.modes) == {"Off", "Cranking", "Idle", "PartLoad",
                               "FullLoad", "Overrun"}
    assert ("Off", "Cranking") in info.transitions


def test_machine_inventory_recurses_and_sees_through_gating():
    from repro.casestudy import build_engine_ccd
    from repro.simulation import build_gated_ccd
    ccd = build_engine_ccd()
    raw_paths = {info.path for info in machine_inventory(ccd)}
    gated_paths = {info.path.replace(f"{ccd.name}_gated", ccd.name)
                   for info in machine_inventory(build_gated_ccd(ccd))}
    assert raw_paths == gated_paths


def test_find_stds_locates_state_machines():
    from repro.notations.std import StateTransitionDiagram
    from repro.notations.dfd import DataFlowDiagram
    std = StateTransitionDiagram("Gearbox")
    std.add_input("up")
    std.add_state("N", initial=True)
    std.add_state("D")
    std.add_transition("N", "D", "up")
    dfd = DataFlowDiagram("Drivetrain")
    dfd.add_input("up")
    dfd.add_subcomponent(std)
    dfd.connect("up", "Gearbox.up")
    assert [machine.name for machine in find_stds(dfd)] == ["Gearbox"]
    inventory = machine_inventory(dfd)
    assert [(info.path, info.kind) for info in inventory] \
        == [("Drivetrain/Gearbox", "std")]


def test_find_stds_descends_into_mtd_mode_behaviors():
    from repro.notations.mtd import ModeTransitionDiagram
    from repro.notations.std import StateTransitionDiagram
    std = StateTransitionDiagram("Sequencer")
    std.add_input("go")
    std.add_state("S0", initial=True)
    std.add_state("S1")
    std.add_transition("S0", "S1", "go")
    mtd = ModeTransitionDiagram("Controller")
    mtd.add_input("go")
    mtd.add_mode("Run", std, initial=True)
    assert [machine.name for machine in find_stds(mtd)] == ["Sequencer"]
    paths = {(info.path, info.kind) for info in machine_inventory(mtd)}
    assert ("Controller/Run", "std") in paths


# -- coverage aggregation ---------------------------------------------------


def _full_sweep(ticks=40):
    # a scripted profile that touches every engine operation mode
    profile = ModeSequence([(0.0, 4), (400.0, 4), (900.0, 6), (2000.0, 6),
                            (4000.0, 6), (3500.0, 6), (1000.0, 4), (0.0, 4)])
    pedal = ModeSequence([(0.0, 14), (30.0, 6), (90.0, 6), (0.0, 10),
                          (0.0, 4)])
    return Scenario("full-sweep", {"n": profile, "ped": pedal, "t_eng": 60.0},
                    ticks=ticks)


def test_batch_report_coverage_and_port_ranges(engine_modes_mtd):
    results, report = run_with_report(
        engine_modes_mtd, [_full_sweep()], executor="serial")
    assert report.total == 1 and report.failed == 0
    coverage = report.coverage["EngineOperationModes"]
    assert coverage.mode_coverage() == 1.0
    assert coverage.unvisited_modes() == []
    assert ("Off", "Cranking") in coverage.visited_transitions
    assert 0.0 < coverage.transition_coverage() <= 1.0
    stats = report.output_stats["fuel_factor"]
    assert stats.present_ticks == 40
    assert 0.0 <= stats.minimum <= stats.maximum <= 1.5
    summary = report.format_summary()
    assert "mode coverage" in summary
    assert "fuel_factor" in summary


def test_batch_report_rolls_up_failures(engine_modes_mtd):
    def exploding(tick):
        raise RuntimeError("broken stimulus")

    batch = [_full_sweep(),
             Scenario("bad", {"n": exploding}, ticks=10)]
    results, report = run_with_report(engine_modes_mtd, batch,
                                      executor="serial")
    assert report.total == 2
    assert report.succeeded == 1 and report.failed == 1
    assert "bad" in report.failures
    assert "broken stimulus" in report.failures["bad"]
    assert "failures:" in report.format_summary()


def test_batch_report_without_mode_collection_uses_trace_history(
        engine_modes_mtd):
    from repro.scenarios import run_sharded
    batch = [_full_sweep()]
    results = run_sharded(engine_modes_mtd, batch, executor="serial",
                          collect_modes=False)
    assert results[0].mode_paths is None
    report = BatchReport.from_results(engine_modes_mtd, results)
    coverage = report.coverage["EngineOperationModes"]
    assert coverage.mode_coverage() == 1.0


def test_coverage_counts_initial_mode_and_tick0_transition(engine_modes_mtd):
    # n > 0 from tick 0: the MTD leaves its initial mode Off immediately,
    # so the recorded (post-step) history never contains Off -- coverage
    # must still credit the initial mode and the transition out of it
    scenario = Scenario("instant-start", {"n": 800.0, "ped": 0.0,
                                          "t_eng": 60.0}, ticks=5)
    _, report = run_with_report(engine_modes_mtd, [scenario],
                                executor="serial")
    coverage = report.coverage["EngineOperationModes"]
    assert "Off" in coverage.visited_modes
    assert "Off" not in coverage.unvisited_modes()
    assert ("Off", "Cranking") in coverage.visited_transitions
    assert ("Off", "Cranking") not in coverage.untaken_transitions()


def test_mode_sequence_sweep_improves_batch_coverage(engine_modes_mtd):
    narrow = mode_sequence_sweep("idle-only", "n", [(0.0, 100.0)], dwell=5,
                                 ticks=10, base={"ped": 0.0, "t_eng": 50.0})
    _, narrow_report = run_with_report(engine_modes_mtd, narrow,
                                       executor="serial")
    _, broad_report = run_with_report(engine_modes_mtd, [_full_sweep()],
                                      executor="serial")
    assert broad_report.overall_mode_coverage() \
        > narrow_report.overall_mode_coverage()


def test_batch_report_json_export(engine_modes_mtd, tmp_path):
    results, report = run_with_report(engine_modes_mtd, [_full_sweep()],
                                      executor="serial")
    data = json.loads(report.to_json(results, include_traces=True))
    assert data["component"] == "EngineOperationModes"
    assert data["scenarios"]["total"] == 1
    machines = {entry["path"]: entry for entry in
                data["coverage"]["machines"]}
    assert machines["EngineOperationModes"]["mode_coverage"] == 1.0
    assert "full-sweep" in data["traces"]
    restored = trace_from_json_dict(data["traces"]["full-sweep"])
    assert first_difference(results[0].trace, restored) is None

    target = tmp_path / "report.json"
    report.save(str(target))
    assert json.loads(target.read_text())["component"] \
        == "EngineOperationModes"


# -- incremental aggregation / merge ----------------------------------------


def _sweep_shards(ticks=40):
    cold = Scenario("cold-idle", {
        "n": ModeSequence([(0.0, 4), (400.0, 4), (900.0, 12)]),
        "ped": 0.0, "t_eng": -5.0}, ticks=20)
    drive = _full_sweep(ticks)
    failing = Scenario("bad", {"n": _explode}, ticks=5)
    return [cold], [drive, failing]


def _explode(tick):
    raise RuntimeError("broken stimulus")


def test_merge_of_shards_equals_one_shot_aggregation(engine_modes_mtd):
    from repro.scenarios import run_sharded
    shard_a, shard_b = _sweep_shards()
    results_a = run_sharded(engine_modes_mtd, shard_a, executor="serial",
                            collect_modes=True)
    results_b = run_sharded(engine_modes_mtd, shard_b, executor="serial",
                            collect_modes=True)

    one_shot = BatchReport.from_results(engine_modes_mtd,
                                        list(results_a) + list(results_b))
    merged = BatchReport.from_results(engine_modes_mtd, results_a)
    assert merged.merge(BatchReport.from_results(engine_modes_mtd,
                                                 results_b)) is merged

    assert merged.total == one_shot.total == 3
    assert merged.succeeded == one_shot.succeeded
    assert merged.failed == one_shot.failed == 1
    assert merged.failures == one_shot.failures
    assert merged.scenario_ticks == one_shot.scenario_ticks
    assert merged.total_ticks == one_shot.total_ticks
    assert merged.total_duration == pytest.approx(one_shot.total_duration)
    for path in one_shot.coverage:
        assert merged.coverage[path].visited_modes \
            == one_shot.coverage[path].visited_modes
        assert merged.coverage[path].visited_transitions \
            == one_shot.coverage[path].visited_transitions
    for pool in ("output_stats", "input_stats"):
        mine, theirs = getattr(merged, pool), getattr(one_shot, pool)
        assert set(mine) == set(theirs)
        for name in theirs:
            assert mine[name].total_ticks == theirs[name].total_ticks
            assert mine[name].present_ticks == theirs[name].present_ticks
            assert mine[name].minimum == theirs[name].minimum
            assert mine[name].maximum == theirs[name].maximum
    # the JSON export (minus timing) agrees too
    mine, theirs = merged.to_json_dict(), one_shot.to_json_dict()
    mine["scenarios"].pop("total_duration_s")
    theirs["scenarios"].pop("total_duration_s")
    assert mine == theirs


def test_merge_rejects_foreign_components(engine_modes_mtd,
                                          momentum_controller):
    from repro.core.errors import SimulationError
    mine = BatchReport.for_component(engine_modes_mtd)
    theirs = BatchReport.for_component(momentum_controller)
    with pytest.raises(SimulationError):
        mine.merge(theirs)


def test_port_stats_sample_is_order_insensitive():
    from repro.scenarios import PortStats
    # streamed (completion-order) folding must yield the same sample as an
    # ordered pass: the sample is canonical, not first-seen
    values = [f"v{index:02d}" for index in range(20)]
    forward, backward = PortStats("p"), PortStats("p")
    for value in values:
        forward.observe(value)
    for value in reversed(values):
        backward.observe(value)
    assert forward.value_sample == backward.value_sample
    assert len(forward.value_sample) == PortStats._SAMPLE_CAP

    merged = PortStats("p")
    merged.merge(backward)
    merged.merge(forward)
    assert merged.value_sample == forward.value_sample


def test_run_with_report_aggregates_incrementally(engine_modes_mtd):
    # run_with_report streams results into the report (observe_result);
    # the outcome equals a from_results pass and downstream callbacks
    # still see every result
    seen = []
    results, streamed = run_with_report(engine_modes_mtd, [_full_sweep()],
                                        executor="serial",
                                        on_result=seen.append)
    assert [result.name for result in seen] == ["full-sweep"]
    batch = BatchReport.from_results(engine_modes_mtd, results)
    assert streamed.to_json_dict() == batch.to_json_dict()


# -- trace JSON round trip (io layer) ---------------------------------------


def test_trace_json_round_trip_preserves_absence(engine_modes_mtd):
    trace = simulate(engine_modes_mtd,
                     {"n": [0.0, 500.0, 900.0], "ped": 0.0},
                     ticks=5)  # t_eng left absent entirely
    text = trace_to_json(trace)
    restored = trace_from_json(text)
    assert restored.component_name == trace.component_name
    assert restored.ticks == trace.ticks
    assert restored.mode_history == trace.mode_history
    assert first_difference(trace, restored) is None
    # inputs round-trip too, including absence beyond the short sequence
    assert restored.input("n").values() == trace.input("n").values()
    assert restored.input("n").presence_pattern() \
        == [True, True, True, False, False]


def test_trace_json_distinguishes_absent_from_none():
    from repro.simulation.trace import SimulationTrace
    trace = SimulationTrace("T")
    trace.record_tick({"u": ABSENT}, {"y": None})
    data = trace_to_json_dict(trace)
    assert data["inputs"]["u"]["presence"] == [False]
    assert data["outputs"]["y"]["presence"] == [True]
    restored = trace_from_json_dict(data)
    assert restored.input("u").presence_count() == 0
    assert restored.output("y").values() == [None]


def test_trace_json_rejects_malformed_payloads():
    from repro.core.errors import SerializationError
    with pytest.raises(SerializationError):
        trace_from_json("{not json")
    with pytest.raises(SerializationError):
        trace_from_json_dict({"outputs": {"y": {"values": [1, 2],
                                                "presence": [True]}}})
