"""Machine-level lint: unreachable modes/states, guard overlap, constant
guards -- each rule fires on a seeded defect and stays silent on the clean
variants it must not flag.
"""

import pytest

from repro.analysis.lint import lint_machine, lint_machines
from repro.core.types import FloatType, IntType
from repro.core.validation import Severity
from repro.notations.dfd import DataFlowDiagram
from repro.notations.mtd import ModeTransitionDiagram
from repro.notations.std import StateTransitionDiagram


def _rules(findings):
    return [f.rule for f in findings]


def _mtd(name="M"):
    mtd = ModeTransitionDiagram(name)
    mtd.add_input("n", IntType(0, 100))
    return mtd


# -- reachability ------------------------------------------------------------


def test_unreachable_mode_warns():
    mtd = _mtd()
    mtd.add_mode("Run", initial=True)
    mtd.add_mode("Stop")
    mtd.add_mode("Orphan")
    mtd.add_transition("Run", "Stop", "n > 50")
    mtd.add_transition("Stop", "Run", "n <= 50")
    findings = lint_machine(mtd)
    unreachable = [f for f in findings if f.rule == "machine-unreachable"]
    assert len(unreachable) == 1
    assert "Orphan" in unreachable[0].message
    assert unreachable[0].severity is Severity.WARNING


def test_fully_reachable_mtd_is_silent():
    mtd = _mtd()
    mtd.add_mode("Run", initial=True)
    mtd.add_mode("Stop")
    mtd.add_transition("Run", "Stop", "n > 50")
    mtd.add_transition("Stop", "Run", "n <= 50")
    assert not lint_machine(mtd)


def test_unreachable_std_state_warns():
    std = StateTransitionDiagram("S")
    std.add_input("go", IntType())
    std.add_state("Idle", initial=True)
    std.add_state("Busy")
    std.add_state("Lost")
    std.add_transition("Idle", "Busy", "go > 0")
    std.add_transition("Busy", "Idle", "go <= 0")
    findings = lint_machine(std)
    unreachable = [f for f in findings if f.rule == "machine-unreachable"]
    assert len(unreachable) == 1 and "Lost" in unreachable[0].message


# -- guard overlap -----------------------------------------------------------


def test_overlapping_same_priority_guards_warn_with_witness():
    mtd = _mtd()
    mtd.add_mode("Idle", initial=True)
    mtd.add_mode("A")
    mtd.add_mode("B")
    mtd.add_transition("Idle", "A", "n > 10")
    mtd.add_transition("Idle", "B", "n > 20")
    mtd.add_transition("A", "Idle", "n <= 10")
    mtd.add_transition("B", "Idle", "n <= 20")
    findings = lint_machine(mtd)
    overlap = [f for f in findings if f.rule == "machine-guard-overlap"]
    assert overlap and overlap[0].severity is Severity.WARNING
    assert overlap[0].location.get("witness")


def test_distinct_priorities_do_not_overlap():
    mtd = _mtd()
    mtd.add_mode("Idle", initial=True)
    mtd.add_mode("A")
    mtd.add_mode("B")
    mtd.add_transition("Idle", "A", "n > 10", priority=2)
    mtd.add_transition("Idle", "B", "n > 20", priority=1)
    mtd.add_transition("A", "Idle", "n <= 10")
    mtd.add_transition("B", "Idle", "n <= 20")
    findings = lint_machine(mtd)
    assert not [f for f in findings if f.rule == "machine-guard-overlap"]


def test_exclusive_guards_do_not_overlap():
    mtd = _mtd()
    mtd.add_mode("Idle", initial=True)
    mtd.add_mode("A")
    mtd.add_mode("B")
    mtd.add_transition("Idle", "A", "n > 50")
    mtd.add_transition("Idle", "B", "n <= 50")
    mtd.add_transition("A", "Idle", "n <= 50")
    mtd.add_transition("B", "Idle", "n > 50")
    findings = lint_machine(mtd)
    assert not [f for f in findings if f.rule == "machine-guard-overlap"]


def test_same_target_duplicate_guards_do_not_overlap():
    # two transitions into the SAME target are not nondeterministic
    mtd = _mtd()
    mtd.add_mode("Idle", initial=True)
    mtd.add_mode("A")
    mtd.add_transition("Idle", "A", "n > 10")
    mtd.add_transition("Idle", "A", "n > 5")
    mtd.add_transition("A", "Idle", "n <= 5")
    findings = lint_machine(mtd)
    assert not [f for f in findings if f.rule == "machine-guard-overlap"]


# -- constant guards ---------------------------------------------------------


def test_constant_false_guard_warns():
    mtd = _mtd()
    mtd.add_mode("Run", initial=True)
    mtd.add_mode("Stop")
    mtd.add_transition("Run", "Stop", "n > 200")  # n is int[0..100]
    mtd.add_transition("Stop", "Run", "n <= 50")
    findings = lint_machine(mtd)
    constant = [f for f in findings if f.rule == "expr-constant-guard"]
    assert constant and "false" in constant[0].message
    assert constant[0].severity is Severity.WARNING


def test_constant_true_guard_shadowing_lower_priority_warns():
    mtd = _mtd()
    mtd.add_mode("Idle", initial=True)
    mtd.add_mode("A")
    mtd.add_mode("B")
    mtd.add_transition("Idle", "A", "true", priority=2)  # always fires
    mtd.add_transition("Idle", "B", "n > 50", priority=1)  # never taken
    mtd.add_transition("A", "Idle", "n <= 50")
    mtd.add_transition("B", "Idle", "n <= 50")
    findings = lint_machine(mtd)
    constant = [f for f in findings if f.rule == "expr-constant-guard"]
    assert constant and "shadows" in constant[0].message


def test_lone_constant_true_guard_is_silent():
    # "true"-guarded default transition with nothing to shadow is idiomatic
    mtd = _mtd()
    mtd.add_mode("Init", initial=True)
    mtd.add_mode("Run")
    mtd.add_transition("Init", "Run", "true")
    mtd.add_transition("Run", "Init", "n > 99")
    findings = lint_machine(mtd)
    assert not [f for f in findings if f.rule == "expr-constant-guard"]


def test_std_variable_guard_is_not_constant():
    # count starts at 0 but is reassigned by actions: "count == 3" must NOT
    # be proven constant-false from the initial value
    std = StateTransitionDiagram("Counter")
    std.add_input("tick", IntType())
    std.add_variable("count", 0)
    std.add_state("Counting", initial=True)
    std.add_state("Done")
    std.add_transition("Counting", "Counting", "count < 3",
                       actions={"count": "count + 1"})
    std.add_transition("Counting", "Done", "count == 3")
    std.add_transition("Done", "Counting", "tick > 0",
                       actions={"count": "0"})
    findings = lint_machine(std)
    assert not [f for f in findings if f.rule == "expr-constant-guard"]
    assert not [f for f in findings if f.rule == "machine-unreachable"]


# -- model traversal ---------------------------------------------------------


def test_lint_machines_descends_composites():
    mtd = _mtd("Inner")
    mtd.add_mode("Run", initial=True)
    mtd.add_mode("Orphan")
    mtd.add_output("mode")
    dfd = DataFlowDiagram("Top")
    dfd.add_input("n", IntType(0, 100))
    dfd.add_subcomponent(mtd)
    dfd.connect("n", "Inner.n")
    findings = lint_machines(dfd)
    unreachable = [f for f in findings if f.rule == "machine-unreachable"]
    assert unreachable
    assert "Inner" in unreachable[0].element
