"""Tests for abstract clocks and the clock calculus (paper Sec. 2)."""

import pytest

from repro.core.clocks import (BASE_CLOCK, BaseClock, ClockError, EventClock,
                               PeriodicClock, SampledClock, are_synchronous,
                               every, hyperperiod, is_subclock, merge_patterns,
                               rate_ratio, relate, slower_than)


class TestBaseClock:
    def test_always_present(self):
        assert BASE_CLOCK.pattern(5) == [True] * 5

    def test_periodic_with_period_one(self):
        assert BASE_CLOCK.is_periodic()
        assert BASE_CLOCK.period == 1
        assert BASE_CLOCK.expression() == "true"


class TestPeriodicClock:
    def test_every_two(self):
        clock = every(2)
        assert clock.pattern(6) == [True, False, True, False, True, False]
        assert clock.expression() == "every(2, true)"

    def test_phase(self):
        clock = PeriodicClock(3, phase=1)
        assert clock.pattern(7) == [False, True, False, False, True, False, False]
        assert "@ 1" in clock.expression()

    def test_every_one_returns_base_clock(self):
        assert every(1) is BASE_CLOCK

    def test_invalid_parameters(self):
        with pytest.raises(ClockError):
            PeriodicClock(0)
        with pytest.raises(ClockError):
            PeriodicClock(4, phase=4)

    def test_equality_by_expression(self):
        assert every(4) == PeriodicClock(4)
        assert every(4) != every(5)
        assert len({every(4), PeriodicClock(4)}) == 1


class TestEventAndSampledClocks:
    def test_event_clock_pattern(self):
        clock = EventClock([1, 4, 4, 7])
        assert clock.pattern(6) == [False, True, False, False, True, False]
        assert not clock.is_periodic()

    def test_event_clock_rejects_negative_ticks(self):
        with pytest.raises(ClockError):
            EventClock([-1])

    def test_sampled_clock(self):
        clock = SampledClock(every(2), lambda tick: tick >= 4, "late")
        assert clock.pattern(8) == [False, False, False, False, True, False,
                                    True, False]
        assert "when" in clock.expression()


class TestClockRelations:
    def test_subclock_periodic(self):
        assert is_subclock(every(4), every(2))
        assert not is_subclock(every(2), every(4))
        assert is_subclock(every(2), BASE_CLOCK)

    def test_subclock_with_phase(self):
        assert is_subclock(PeriodicClock(4, phase=1), PeriodicClock(2, phase=1))
        assert not is_subclock(PeriodicClock(4, phase=1), PeriodicClock(2, phase=0))

    def test_subclock_aperiodic_uses_horizon(self):
        events = EventClock([0, 2, 4])
        assert is_subclock(events, every(2), horizon=10)
        assert not is_subclock(EventClock([1]), every(2), horizon=10)

    def test_synchronous(self):
        assert are_synchronous(every(3), PeriodicClock(3))
        assert not are_synchronous(every(3), PeriodicClock(3, phase=1))
        assert are_synchronous(EventClock([0, 2]), EventClock([0, 2]))

    def test_rate_ratio(self):
        assert rate_ratio(every(2), every(10)) == 5
        with pytest.raises(ClockError):
            rate_ratio(every(4), every(10))
        with pytest.raises(ClockError):
            rate_ratio(EventClock([1]), every(2))

    def test_slower_than(self):
        assert slower_than(every(10), every(2))
        assert not slower_than(every(2), every(10))
        with pytest.raises(ClockError):
            slower_than(EventClock([0]), every(2))

    def test_relate(self):
        relation = relate(every(10), every(2))
        assert relation.slower == every(10)
        assert relation.faster == every(2)
        assert relation.ratio == 5
        assert "5x slower" in relation.describe()

    def test_hyperperiod(self):
        assert hyperperiod([every(2), every(3), every(4)]) == 12
        assert hyperperiod([]) == 1
        with pytest.raises(ClockError):
            hyperperiod([EventClock([0])])

    def test_merge_patterns(self):
        merged = merge_patterns([[True, False, False], [False, True]])
        assert merged == [True, True, False]
        assert merge_patterns([]) == []


class TestIncrementalPresenceAPI:
    """Clock.at / iter_pattern / PatternCache agree with pattern()."""

    CLOCKS = [
        BASE_CLOCK,
        every(3),
        every(4, phase=2),
        EventClock([0, 3, 5, 17]),
        SampledClock(every(2), lambda tick: tick % 3 == 0, "every3rd"),
    ]

    def test_at_matches_pattern(self):
        for clock in self.CLOCKS:
            pattern = clock.pattern(40)
            assert [clock.at(tick) for tick in range(40)] == pattern

    def test_at_rejects_negative_ticks(self):
        for clock in self.CLOCKS:
            with pytest.raises(ClockError):
                clock.at(-1)

    def test_iter_pattern_matches_pattern(self):
        for clock in self.CLOCKS:
            iterator = clock.iter_pattern()
            assert [next(iterator) for _ in range(25)] == clock.pattern(25)

    def test_iter_pattern_with_start_offset(self):
        clock = every(3)
        iterator = clock.iter_pattern(start=5)
        assert [next(iterator) for _ in range(6)] == clock.pattern(11)[5:]
        with pytest.raises(ClockError):
            clock.iter_pattern(start=-1)

    def test_pattern_cache_matches_and_grows_geometrically(self):
        calls = []

        class Counting(PeriodicClock):
            def pattern(self, length):
                calls.append(length)
                return super().pattern(length)

        clock = Counting(2)
        cache = clock.cached()
        assert len(cache) == 0
        for tick in range(300):
            assert cache.at(tick) == (tick % 2 == 0)
        assert len(calls) <= 9, calls  # O(log n), not one call per tick
        assert len(cache) >= 300

    def test_pattern_cache_prefix_and_negative_tick(self):
        cache = every(2).cached(initial_length=4)
        assert len(cache) == 4
        assert cache.prefix(10) == every(2).pattern(10)
        with pytest.raises(ClockError):
            cache.at(-1)
        assert "every(2, true)" in repr(cache)

    def test_cached_initial_length(self):
        cache = EventClock([1, 2]).cached(initial_length=8)
        assert len(cache) == 8
        assert cache.at(1) is True and cache.at(7) is False
