"""The coverage-frontier fitness and the generational search driver."""

import json

import pytest

from repro.core.errors import SimulationError
from repro.scenarios import (ModeSequence, Scenario, run_sharded,
                             run_with_report)
from repro.search import (CoverageFrontier, SearchConfig, minimize_battery,
                          search_coverage)

#: The deliberately weak seed battery of the acceptance scenario: it never
#: leaves Off, so every transition starts untaken.
WEAK_BATTERY = [Scenario("weak", {"n": 0.0, "ped": 0.0, "t_eng": 20.0},
                         ticks=20)]

#: A scripted profile touching every engine operation mode.
FULL_SWEEP = Scenario("full-sweep", {
    "n": ModeSequence([(0.0, 4), (400.0, 4), (900.0, 6), (2000.0, 6),
                       (4000.0, 6), (3500.0, 6), (1000.0, 4), (0.0, 4)]),
    "ped": ModeSequence([(0.0, 14), (30.0, 6), (90.0, 6), (0.0, 10),
                         (0.0, 4)]),
    "t_eng": 60.0}, ticks=40)


# -- coverage frontier ------------------------------------------------------


def test_frontier_attributes_gain_once(engine_modes_mtd):
    frontier = CoverageFrontier(engine_modes_mtd)
    assert not frontier.transitions_complete()
    results = run_sharded(engine_modes_mtd, [FULL_SWEEP], executor="serial",
                          collect_modes=True)
    first = frontier.absorb(results[0])
    assert first.earned()
    assert ("EngineOperationModes", ("Off", "Cranking")) \
        in first.new_transitions
    assert first.score() > 0.0
    # absorbing the identical result again earns nothing new
    again = frontier.absorb(results[0])
    assert again.new_modes == () and again.new_transitions == ()
    assert again.port_novelty == 0.0
    assert not again.earned()


def test_frontier_peek_does_not_commit(engine_modes_mtd):
    frontier = CoverageFrontier(engine_modes_mtd)
    results = run_sharded(engine_modes_mtd, [FULL_SWEEP], executor="serial",
                          collect_modes=True)
    peeked = frontier.peek(results[0])
    assert peeked.earned()
    assert frontier.transition_coverage() == 0.0
    absorbed = frontier.absorb(results[0])
    assert absorbed.new_transitions == peeked.new_transitions


def test_frontier_matches_batch_report_accounting(engine_modes_mtd):
    frontier = CoverageFrontier(engine_modes_mtd)
    results, report = run_with_report(engine_modes_mtd, [FULL_SWEEP],
                                      executor="serial")
    for result in results:
        frontier.absorb(result)
    coverage = report.coverage["EngineOperationModes"]
    assert frontier.mode_coverage() == coverage.mode_coverage()
    assert frontier.transition_coverage() == coverage.transition_coverage()
    assert [pair for _, pair in frontier.untaken_transitions()] \
        == coverage.untaken_transitions()


def test_frontier_ignores_failed_results(engine_modes_mtd):
    frontier = CoverageFrontier(engine_modes_mtd)

    def exploding(tick):
        raise RuntimeError("broken stimulus")

    results = run_sharded(engine_modes_mtd,
                          [Scenario("bad", {"n": exploding}, ticks=5)],
                          executor="serial", collect_modes=True)
    assert not frontier.absorb(results[0]).earned()
    assert frontier.mode_coverage() == 0.0


# -- the acceptance scenario: weak battery to 100% --------------------------


def test_search_reaches_full_transition_coverage(engine_modes_mtd):
    report = search_coverage(engine_modes_mtd, WEAK_BATTERY,
                             SearchConfig(seed=7, max_rounds=12,
                                          population=16))
    assert report.stop_reason == "transitions-covered"
    assert report.transition_coverage() == 1.0
    assert report.mode_coverage() == 1.0
    assert report.untaken_transitions() == []
    assert len(report.rounds) <= 12
    # the trajectory is monotone and the batch report agrees
    trajectory = [stats.transition_coverage for stats in report.rounds]
    assert trajectory == sorted(trajectory)
    assert report.batch_report.overall_transition_coverage() == 1.0
    assert report.evaluations >= report.batch_report.total


def test_search_minimized_corpus_preserves_coverage(engine_modes_mtd):
    report = search_coverage(engine_modes_mtd, WEAK_BATTERY,
                             SearchConfig(seed=7, max_rounds=12,
                                          population=16))
    assert report.minimized
    assert report.corpus  # something survived minimization
    # re-running ONLY the minimized battery still exercises everything
    _, replay = run_with_report(engine_modes_mtd, report.corpus,
                                executor="serial")
    assert replay.overall_transition_coverage() == 1.0
    assert replay.overall_mode_coverage() == 1.0
    # minimization actually dropped redundant earners
    assert len(report.dropped) > 0


def test_search_round_budget_stops_the_loop(engine_modes_mtd):
    report = search_coverage(engine_modes_mtd, WEAK_BATTERY,
                             SearchConfig(seed=1, max_rounds=2, population=4,
                                          minimize=False))
    assert report.stop_reason in ("round-budget", "transitions-covered")
    assert len(report.rounds) <= 2


def test_search_evaluation_budget_is_hard(engine_modes_mtd):
    report = search_coverage(engine_modes_mtd, WEAK_BATTERY,
                             SearchConfig(seed=1, max_rounds=50,
                                          population=8, max_evaluations=20,
                                          minimize=False))
    assert report.evaluations <= 20
    assert report.stop_reason in ("evaluation-budget",
                                  "transitions-covered")


def test_search_stale_rounds_stop(engine_modes_mtd):
    # population 1 bred from a single frozen scenario stalls quickly
    report = search_coverage(
        engine_modes_mtd,
        [Scenario("idle", {"n": 0.0, "ped": 0.0, "t_eng": 0.0}, ticks=4)],
        SearchConfig(seed=3, max_rounds=40, population=1,
                     max_stale_rounds=3, exploration_rate=0.0,
                     crossover_rate=0.0, minimize=False))
    assert report.stop_reason in ("stalled", "transitions-covered",
                                  "round-budget")
    if report.stop_reason == "stalled":
        tail = report.rounds[-3:]
        assert all(stats.new_modes == 0 and stats.new_transitions == 0
                   for stats in tail)


def test_search_without_seed_battery_explores(engine_modes_mtd):
    report = search_coverage(engine_modes_mtd, (),
                             SearchConfig(seed=5, max_rounds=8,
                                          population=12))
    assert report.rounds[0].evaluated == 12
    assert report.transition_coverage() > 0.5


def test_search_config_validation(engine_modes_mtd):
    for broken in (SearchConfig(max_rounds=0), SearchConfig(population=0),
                   SearchConfig(corpus_cap=0),
                   SearchConfig(ticks=50, max_ticks=10),
                   SearchConfig(crossover_rate=1.5)):
        with pytest.raises(SimulationError):
            search_coverage(engine_modes_mtd, WEAK_BATTERY, broken)


def test_search_report_json_round_trip(engine_modes_mtd, tmp_path):
    report = search_coverage(engine_modes_mtd, WEAK_BATTERY,
                             SearchConfig(seed=7, max_rounds=12,
                                          population=16))
    data = json.loads(report.to_json())
    assert data["component"] == "EngineOperationModes"
    assert data["stop_reason"] == "transitions-covered"
    assert data["coverage"]["overall_transition_coverage"] == 1.0
    assert data["coverage"]["untaken_transitions"] == []
    machines = {entry["path"]: entry
                for entry in data["coverage"]["machines"]}
    assert machines["EngineOperationModes"]["transition_coverage"] == 1.0
    assert len(data["rounds"]) == len(report.rounds)
    assert [entry["name"] for entry in data["corpus"]["scenarios"]] \
        == report.corpus_names()
    # wall-clock timing never leaks into the (deterministic) default
    # export; include_timing=True opts into it explicitly
    assert "duration" not in json.dumps(data)
    timed = json.loads(report.to_json(include_timing=True))
    assert timed["timing"]["total_duration_s"] == report.duration_s
    assert [entry["duration_s"] for entry in timed["rounds"]] \
        == [stats.duration_s for stats in report.rounds]

    target = tmp_path / "search.json"
    report.save(str(target))
    assert json.loads(target.read_text()) == data

    summary = report.format_summary()
    assert "transitions-covered" in summary
    assert "100% transitions" in summary


def test_search_report_json_has_no_memory_addresses(engine_modes_mtd):
    # callables are valid stimuli; their default reprs embed 0x addresses,
    # which the export scrubs to keep the JSON byte-identical across runs
    battery = [Scenario("callable", {"n": lambda tick: 100.0 * tick,
                                     "ped": 10.0, "t_eng": 20.0}, ticks=30)]
    report = search_coverage(engine_modes_mtd, battery,
                             SearchConfig(seed=2, max_rounds=2, population=4,
                                          minimize=False))
    text = report.to_json()
    assert "0x.." in text or "lambda" not in text
    import re
    assert not re.search(r"0x[0-9a-fA-F]{4,}", text)


# -- greedy minimization ----------------------------------------------------


def test_minimize_drops_subsumed_scenarios(engine_modes_mtd):
    cranking_only = Scenario("cranking-only", {
        "n": ModeSequence([(0.0, 3), (500.0, 5)]), "ped": 0.0,
        "t_eng": 20.0}, ticks=8)
    outcome = minimize_battery(engine_modes_mtd,
                               [cranking_only, FULL_SWEEP])
    # the full sweep subsumes the cranking-only prefix scenario
    assert outcome.kept_names() == ["full-sweep"]
    assert outcome.dropped == ["cranking-only"]
    assert outcome.evaluations == 2
    assert outcome.covered_items > 0


def test_minimize_keeps_complementary_scenarios(engine_modes_mtd):
    reaches_idle = Scenario("reaches-idle", {
        "n": ModeSequence([(0.0, 2), (900.0, 6)]), "ped": 0.0,
        "t_eng": 20.0}, ticks=8)
    idle_to_off = Scenario("idle-to-off", {
        "n": ModeSequence([(0.0, 2), (900.0, 4), (10.0, 4)]), "ped": 0.0,
        "t_eng": 20.0}, ticks=10)
    outcome = minimize_battery(engine_modes_mtd, [reaches_idle, idle_to_off])
    # idle_to_off covers everything reaches_idle covers, plus Idle -> Off
    assert outcome.kept_names() == ["idle-to-off"]


def test_minimize_handles_empty_and_failing_batteries(engine_modes_mtd):
    assert minimize_battery(engine_modes_mtd, []).kept == []

    def exploding(tick):
        raise RuntimeError("broken")

    outcome = minimize_battery(
        engine_modes_mtd,
        [Scenario("bad", {"n": exploding}, ticks=4), FULL_SWEEP])
    assert outcome.kept_names() == ["full-sweep"]
    assert "bad" in outcome.dropped
