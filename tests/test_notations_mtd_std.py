"""Tests for Mode Transition Diagrams and State Transition Diagrams."""

import pytest

from repro.core.components import ExpressionComponent
from repro.core.errors import ModelError, UnknownElementError
from repro.core.values import ABSENT, is_absent
from repro.notations.mtd import ModeTransitionDiagram
from repro.notations.std import StateTransitionDiagram
from repro.simulation.engine import simulate


def _behavior(name, expression, inputs=(), output="out"):
    block = ExpressionComponent(name, {output: expression})
    for input_name in inputs:
        block.add_input(input_name)
    block.add_output(output)
    return block


def _simple_mtd():
    mtd = ModeTransitionDiagram("M")
    mtd.add_input("x")
    mtd.add_output("out")
    mtd.add_output("mode")
    mtd.add_mode("Low", _behavior("low", "0 - x", ["x"]), initial=True)
    mtd.add_mode("High", _behavior("high", "x * 10", ["x"]))
    mtd.add_transition("Low", "High", "x > 5")
    mtd.add_transition("High", "Low", "x < 2")
    return mtd


class TestMTDConstruction:
    def test_first_mode_is_initial(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_mode("A")
        mtd.add_mode("B")
        assert mtd.initial_mode == "A"
        mtd.set_initial_mode("B")
        assert mtd.initial_mode == "B"

    def test_duplicate_mode_rejected(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_mode("A")
        with pytest.raises(ModelError):
            mtd.add_mode("A")

    def test_transition_requires_known_modes(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_mode("A")
        with pytest.raises(UnknownElementError):
            mtd.add_transition("A", "B", "true")

    def test_behavior_interface_checked_against_mtd(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_input("x")
        mtd.add_output("out")
        with pytest.raises(ModelError):
            mtd.add_mode("A", _behavior("bad", "y", ["y"]))
        with pytest.raises(ModelError):
            mtd.add_mode("B", _behavior("bad2", "x", ["x"], output="other"))

    def test_guard_must_be_expression(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_mode("A")
        mtd.add_mode("B")
        with pytest.raises(ModelError):
            mtd.add_transition("A", "B", 42)

    def test_reachable_modes_and_guard_variables(self):
        mtd = _simple_mtd()
        mtd.add_mode("Orphan")
        assert mtd.reachable_modes() == {"Low", "High"}
        assert mtd.guard_variables() == {"x"}


class TestMTDBehaviour:
    def test_mode_switching_and_outputs(self):
        mtd = _simple_mtd()
        trace = simulate(mtd, {"x": [1, 7, 7, 1, 1]}, ticks=5)
        assert trace.output("mode").values() == ["Low", "High", "High", "Low",
                                                 "Low"]
        assert trace.output("out").values() == [-1, 70, 70, -1, -1]

    def test_strong_preemption_runs_target_mode_behavior(self):
        mtd = _simple_mtd()
        trace = simulate(mtd, {"x": [9]}, ticks=1)
        # the transition fires and the High behaviour computes the output
        assert trace.output("out").values() == [90]
        assert trace.output("mode").values() == ["High"]

    def test_priority_orders_transitions(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_input("x")
        mtd.add_output("mode")
        for name in ("A", "B", "C"):
            mtd.add_mode(name)
        mtd.add_transition("A", "B", "x > 0", priority=0)
        mtd.add_transition("A", "C", "x > 0", priority=5)
        trace = simulate(mtd, {"x": [1]}, ticks=1)
        assert trace.output("mode").values() == ["C"]

    def test_mode_without_behavior_emits_absence(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_input("x")
        mtd.add_output("out")
        mtd.add_mode("Empty")
        trace = simulate(mtd, {"x": [1]}, ticks=1)
        assert is_absent(trace.output("out")[0])

    def test_mode_state_is_kept_per_mode(self):
        from repro.notations.blocks import Integrator

        mtd = ModeTransitionDiagram("M")
        mtd.add_input("in1")
        mtd.add_input("sel")
        mtd.add_output("out")
        mtd.add_mode("Integrate", Integrator("I"), initial=True)
        mtd.add_mode("Paused")
        mtd.add_transition("Integrate", "Paused", "sel > 0")
        mtd.add_transition("Paused", "Integrate", "sel <= 0")
        trace = simulate(mtd, {"in1": [1, 1, 1, 1], "sel": [0, 0, 1, 0]},
                         ticks=4)
        values = trace.output("out").values()
        # integration pauses at tick 2 and resumes from the frozen state
        assert values[0] == 1.0 and values[1] == 2.0
        assert is_absent(values[2])
        assert values[3] == 3.0

    def test_empty_mtd_cannot_react(self):
        mtd = ModeTransitionDiagram("M")
        with pytest.raises(ModelError):
            mtd.react({}, None, 0)


class TestMTDValidation:
    def test_valid_mtd(self, engine_modes_mtd):
        assert engine_modes_mtd.validate().is_valid()

    def test_unknown_guard_input_is_error(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_mode("A")
        mtd.add_mode("B")
        mtd.add_transition("A", "B", "unknown > 1")
        report = mtd.validate()
        assert any(issue.rule == "mtd-guard-inputs" for issue in report.errors())

    def test_unreachable_mode_is_warning(self):
        mtd = _simple_mtd()
        mtd.add_mode("Orphan")
        report = mtd.validate()
        assert any(issue.rule == "mtd-reachability"
                   for issue in report.warnings())

    def test_nondeterministic_transitions_is_error(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_input("x")
        for name in ("A", "B", "C"):
            mtd.add_mode(name)
        mtd.add_transition("A", "B", "x > 0")
        mtd.add_transition("A", "C", "x > 0")
        report = mtd.validate()
        assert any(issue.rule == "mtd-determinism" for issue in report.errors())

    def test_empty_mtd_is_error(self):
        report = ModeTransitionDiagram("M").validate()
        assert not report.is_valid()


def _lock_std():
    std = StateTransitionDiagram("Lock")
    std.add_input("speed")
    std.add_input("crash")
    std.add_output("command")
    std.add_output("state")
    std.add_variable("lock_count", 0)
    std.add_state("Unlocked", initial=True,
                  emissions={"command": "'none'"})
    std.add_state("Locked", emissions={"command": "'hold'"})
    std.add_transition("Unlocked", "Locked", "speed > 10",
                       actions={"command": "'lock'",
                                "lock_count": "lock_count + 1"})
    std.add_transition("Locked", "Unlocked", "speed < 1 or crash",
                       actions={"command": "'unlock'"}, priority=1)
    return std


class TestSTD:
    def test_construction_rules(self):
        std = StateTransitionDiagram("S")
        std.add_state("A")
        with pytest.raises(ModelError):
            std.add_state("A")
        with pytest.raises(UnknownElementError):
            std.add_transition("A", "missing", "true")
        std.add_variable("v", 0)
        with pytest.raises(ModelError):
            std.add_variable("v", 1)
        with pytest.raises(ModelError):
            std.add_transition("A", "A", 3.14)

    def test_execution_with_actions_and_emissions(self):
        std = _lock_std()
        trace = simulate(std, {"speed": [0, 20, 20, 0],
                               "crash": [False, False, False, False]}, ticks=4)
        assert trace.output("state").values() == ["Unlocked", "Locked",
                                                  "Locked", "Unlocked"]
        assert trace.output("command").values() == ["'none'" and "none",
                                                    "lock", "hold", "unlock"]

    def test_local_variable_updates(self):
        std = _lock_std()
        state = std.initial_state()
        _, state = std.react({"speed": 20, "crash": False}, state, 0)
        assert state["vars"]["lock_count"] == 1
        _, state = std.react({"speed": 0, "crash": False}, state, 1)
        _, state = std.react({"speed": 20, "crash": False}, state, 2)
        assert state["vars"]["lock_count"] == 2

    def test_priority_resolves_conflicts(self):
        std = StateTransitionDiagram("S")
        std.add_input("x")
        std.add_output("state")
        std.add_state("A", initial=True)
        std.add_state("B")
        std.add_state("C")
        std.add_transition("A", "B", "x > 0", priority=0)
        std.add_transition("A", "C", "x > 0", priority=9)
        trace = simulate(std, {"x": [1]}, ticks=1)
        assert trace.output("state").values() == ["C"]

    def test_no_enabled_transition_stays(self):
        std = _lock_std()
        trace = simulate(std, {"speed": [0, 0], "crash": [False, False]},
                         ticks=2)
        assert trace.output("state").values() == ["Unlocked", "Unlocked"]

    def test_action_to_unknown_target_raises(self):
        std = StateTransitionDiagram("S")
        std.add_input("x")
        std.add_state("A", initial=True)
        std.add_state("B")
        std.add_transition("A", "B", "x > 0", actions={"nonexistent": "1"})
        with pytest.raises(ModelError):
            simulate(std, {"x": [1]}, ticks=1)

    def test_validation_rules(self):
        std = StateTransitionDiagram("S")
        report = std.validate()
        assert not report.is_valid()

        std = _lock_std()
        assert std.validate().is_valid()

        std.add_state("Orphan")
        assert any(issue.rule == "std-reachability"
                   for issue in std.validate().warnings())

        bad = StateTransitionDiagram("Bad")
        bad.add_input("x")
        bad.add_state("A", initial=True)
        bad.add_state("B")
        bad.add_transition("A", "B", "y > 0")
        bad.add_transition("A", "B", "x > 0", actions={"zz": "1"})
        report = bad.validate()
        rules = {issue.rule for issue in report.errors()}
        assert "std-guard-names" in rules
        assert "std-action-targets" in rules

    def test_determinism_rule(self):
        std = StateTransitionDiagram("S")
        std.add_input("x")
        std.add_state("A", initial=True)
        std.add_state("B")
        std.add_state("C")
        std.add_transition("A", "B", "x > 0")
        std.add_transition("A", "C", "x > 0")
        report = std.validate()
        assert any(issue.rule == "std-determinism" for issue in report.errors())


class TestOutgoingTransitionCache:
    """react() must stop re-filtering/re-sorting transitions per tick, while
    add_transition invalidates the cached per-state tables."""

    def test_std_cache_sees_transitions_added_after_react(self):
        std = StateTransitionDiagram("S")
        std.add_input("x")
        std.add_output("state")
        std.add_state("A", initial=True)
        std.add_state("B")
        std.add_transition("A", "B", "x > 0")
        state = std.initial_state()
        _, state = std.react({"x": -1}, state, 0)  # warms the cache for A
        # a later, higher-priority transition must win on the next tick
        std.add_state("C")
        std.add_transition("A", "C", "x > 0", priority=5)
        _, state = std.react({"x": 1}, state, 1)
        assert state["state"] == "C"

    def test_std_transitions_from_returns_fresh_sorted_copies(self):
        std = StateTransitionDiagram("S")
        std.add_input("x")
        std.add_state("A", initial=True)
        std.add_state("B")
        low = std.add_transition("A", "B", "x > 0", priority=0)
        high = std.add_transition("A", "B", "x > 5", priority=9)
        first = std.transitions_from("A")
        assert first == [high, low]
        first.clear()  # mutating the returned list must not corrupt the cache
        assert std.transitions_from("A") == [high, low]

    def test_mtd_cache_sees_transitions_added_after_react(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_input("x")
        mtd.add_output("mode")
        mtd.add_mode("A", initial=True)
        mtd.add_mode("B")
        mtd.add_transition("A", "B", "x > 10")
        state = mtd.initial_state()
        _, state = mtd.react({"x": 0}, state, 0)  # warms the cache for A
        mtd.add_mode("C")
        mtd.add_transition("A", "C", "x > 0", priority=5)
        _, state = mtd.react({"x": 1}, state, 1)
        assert state["mode"] == "C"

    def test_mtd_transitions_from_returns_fresh_sorted_copies(self):
        mtd = ModeTransitionDiagram("M")
        mtd.add_input("x")
        mtd.add_mode("A", initial=True)
        mtd.add_mode("B")
        low = mtd.add_transition("A", "B", "x > 0", priority=0)
        high = mtd.add_transition("A", "B", "x > 5", priority=9)
        first = mtd.transitions_from("A")
        assert first == [high, low]
        first.clear()
        assert mtd.transitions_from("A") == [high, low]
