"""Golden-trace regression tests for both simulation engines.

The reference traces of the three case studies (engine control CCD, door
lock MTD, reengineered FDA) plus the closed-loop momentum controller were
recorded once and fingerprinted; both the interpreter and the compiled
engine must reproduce them exactly.  This guards every future engine
refactor: a fingerprint change means the observable semantics moved, which
is only acceptable with a deliberate, documented re-record.

Float values are canonicalized with ``%.12g`` before hashing so the
fingerprints are robust against formatting noise while still catching any
real numeric drift.
"""

import hashlib

import pytest

from repro.casestudy import (acceleration_scenario, build_closed_loop,
                             build_door_lock_control, build_engine_ccd,
                             build_reengineered_fda, crash_scenario,
                             driving_scenario)
from repro.core.values import ABSENT
from repro.simulation import (CompiledSimulator, Simulator, build_gated_ccd,
                              simulate, simulate_ccd, simulate_ccd_compiled,
                              simulate_compiled)

GOLDEN_FINGERPRINTS = {
    "engine_ccd":
        "a73ed2f2204535273a8dc7eacc1674d380d686bf029b32376808720a8c6b0add",
    "door_lock":
        "4a34f191b4c8e129b72f6e4bdbbace5bcd92f340462e1e25bd050ce032862c69",
    "reengineered":
        "90d60622f3147df271292530630b4574a79c7dc6563a4d520394a4745a2caa5e",
    "momentum":
        "ac40e6c4ad11160f827a19d864d5aa083a4a70baa87f2551290bcc202b299a46",
}

GOLDEN_DOOR_LOCK_MODES = [
    "Unlocked", "Unlocked", "Locked", "Locked", "Locked",
    "CrashUnlocked", "CrashUnlocked", "CrashUnlocked",
]


def canon(value):
    """Canonical text form of one trace value (stable across formatting)."""
    if value is ABSENT:
        return "-"
    if isinstance(value, float) and not isinstance(value, bool):
        return format(value, ".12g")
    return repr(value)


def trace_fingerprint(trace):
    """SHA-256 over all output streams (and mode history) of a trace."""
    lines = []
    for name in sorted(trace.outputs):
        lines.append(name + ":" +
                     ",".join(canon(v) for v in trace.outputs[name]))
    if trace.mode_history:
        lines.append("modes:" + ",".join(str(m) for m in trace.mode_history))
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _filtered(scenario, component):
    return {name: values for name, values in scenario.items()
            if name in component.input_names()}


ENGINES = ["interpreter", "compiled"]


def _run(engine, component, stimuli, ticks):
    if engine == "interpreter":
        return simulate(component, stimuli, ticks=ticks)
    return simulate_compiled(component, stimuli, ticks=ticks)


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_control_ccd_golden_trace(engine):
    ccd = build_engine_ccd()
    stimuli = _filtered(driving_scenario(120), ccd)
    if engine == "interpreter":
        trace = simulate_ccd(ccd, stimuli, ticks=120)
    else:
        trace = simulate_ccd_compiled(ccd, stimuli, ticks=120)
    assert sorted(trace.outputs) == ["idle_correction", "ignition_angle", "ti"]
    assert trace.output("ignition_angle")[0] == 10.0
    assert trace.output("ignition_angle")[5] == pytest.approx(10.08346)
    assert trace.output("ti")[40] == pytest.approx(0.4)
    assert trace_fingerprint(trace) == GOLDEN_FINGERPRINTS["engine_ccd"]


@pytest.mark.parametrize("engine", ENGINES)
def test_door_lock_golden_trace(engine):
    control = build_door_lock_control()
    trace = _run(engine, control, crash_scenario(8), 8)
    assert trace.mode_history == GOLDEN_DOOR_LOCK_MODES
    assert trace.output("mode").values() == GOLDEN_DOOR_LOCK_MODES
    assert trace.output("T1C").values() == [
        "none", "none", "lock", "lock", "lock", "unlock", "unlock", "unlock"]
    assert trace_fingerprint(trace) == GOLDEN_FINGERPRINTS["door_lock"]


@pytest.mark.parametrize("engine", ENGINES)
def test_reengineered_fda_golden_trace(engine):
    fda = build_reengineered_fda()
    stimuli = _filtered(driving_scenario(120), fda)
    trace = _run(engine, fda, stimuli, 120)
    assert trace.output("idle_correction")[0] == 8
    assert trace.output("ignition_angle").values()[:3] == [5.0, 10.0, 10.0]
    assert trace_fingerprint(trace) == GOLDEN_FINGERPRINTS["reengineered"]


@pytest.mark.parametrize("engine", ENGINES)
def test_momentum_closed_loop_golden_trace(engine):
    loop = build_closed_loop()
    stimuli = _filtered(acceleration_scenario(60), loop)
    trace = _run(engine, loop, stimuli, 60)
    assert trace.output("speed")[28] == pytest.approx(16.859129004136587)
    assert trace.output("engine_torque")[28] == pytest.approx(128.79478470000961)
    assert trace_fingerprint(trace) == GOLDEN_FINGERPRINTS["momentum"]


def test_both_engines_identical_fingerprints_per_case():
    """Engines must agree with each other even if a golden is re-recorded."""
    ccd = build_engine_ccd()
    gated = build_gated_ccd(ccd)
    stimuli = _filtered(driving_scenario(120), ccd)
    reference = Simulator(gated).run(stimuli, 120)
    compiled = CompiledSimulator(gated).run(stimuli, 120)
    assert trace_fingerprint(reference) == trace_fingerprint(compiled)
