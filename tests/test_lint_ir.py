"""IR dataflow verifier: mutation self-tests + zero-false-positive sweep.

Each mutation doctors a compiler-produced ``FlatSchedule`` program into a
known-bad one and asserts the matching rule fires; the sweep asserts the
verifier reports no errors (and no IR-layer warnings) on any schedule the
compiler actually produces -- case-study models, the gated engine CCD and
the differential-fuzz generators.
"""

import random

import pytest

from repro.analysis.lint import certify_batch, lint_flat_schedule, lint_model
from repro.casestudy.door_lock import build_door_lock_faa
from repro.casestudy.engine_control import build_engine_ccd
from repro.casestudy.momentum import (build_closed_loop,
                                      build_momentum_controller)
from repro.casestudy.reengineered import build_reengineered_fda
from repro.core.clocks import EventClock, every
from repro.core.components import ExpressionComponent
from repro.core.validation import Severity
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.simulation.engine import ClockGatedComponent, build_gated_ccd
from repro.simulation.schedule_ir import (OP_COPY, OP_CORRECT, OP_GATE,
                                          OP_RUN, FlatSchedule, compile_flat)


def _doctor(schedule, program, n_slots=None):
    """Rebuild a schedule with a mutated program (the constructor re-derives
    the step closure, so the mutant is a structurally valid FlatSchedule)."""
    return FlatSchedule(
        schedule.component, tuple(program),
        schedule.n_slots if n_slots is None else n_slots,
        schedule.input_spec, schedule.output_spec, schedule.leaves,
        schedule.buffer_specs, schedule._scratch_count, schedule._linear,
        schedule.fallback_paths, schedule.slot_names)


@pytest.fixture
def momentum_schedule():
    return compile_flat(build_momentum_controller())


@pytest.fixture
def feedback_schedule():
    """A delayed feedback loop: the UnitDelay runs before its producer and
    is correction-tracked (the program contains a real OP_CORRECT)."""
    dfd = DataFlowDiagram("FB")
    dfd.add_input("x")
    dfd.add_output("out")
    adder = ExpressionComponent("A", {"out": "a + b"})
    adder.add_input("a")
    adder.add_input("b")
    adder.add_output("out")
    delay = UnitDelay("Z", initial=0)
    dfd.add_subcomponent(adder)
    dfd.add_subcomponent(delay)
    dfd.connect("x", "A.a")
    dfd.connect("Z.out", "A.b")
    dfd.connect("A.out", "Z.in1")
    dfd.connect("A.out", "out")
    schedule = compile_flat(dfd)
    assert any(op[0] == OP_CORRECT for op in schedule.program)
    assert any(op[0] == OP_RUN and op[6] >= 0 for op in schedule.program)
    return schedule


def _gated_model(clock):
    dfd = DataFlowDiagram("GatedTop")
    dfd.add_input("x")
    dfd.add_input("y")
    dfd.add_output("out")
    inner = DataFlowDiagram("Core")
    inner.add_input("a")
    inner.add_input("b")
    inner.add_output("out")
    leaf = ExpressionComponent("Leaf", {"out": "a + b"})
    leaf.add_input("a")
    leaf.add_input("b")
    leaf.add_output("out")
    inner.add_subcomponent(leaf)
    inner.connect("a", "Leaf.a")
    inner.connect("b", "Leaf.b")
    inner.connect("Leaf.out", "out")
    gated = ClockGatedComponent(inner, clock, name="Stage")
    dfd.add_subcomponent(gated)
    dfd.connect("x", "Stage.a")
    dfd.connect("y", "Stage.b")
    dfd.connect("Stage.out", "out")
    return dfd


# -- mutation self-tests: every rule detects its seeded defect --------------


def test_mutation_read_before_write(momentum_schedule):
    program = list(momentum_schedule.program)
    mutant = _doctor(momentum_schedule, [program[-1]] + program[:-1])
    report = lint_flat_schedule(mutant)
    findings = report.by_rule("ir-read-before-write")
    assert findings, report.describe()
    assert all(f.severity is Severity.ERROR for f in findings)


def test_mutation_never_written(momentum_schedule):
    fresh = momentum_schedule.n_slots
    out_slot = momentum_schedule.output_spec[0][1]
    program = list(momentum_schedule.program) \
        + [[OP_COPY, ((fresh, out_slot),)]]
    report = lint_flat_schedule(_doctor(momentum_schedule, program,
                                        n_slots=fresh + 1))
    assert report.by_rule("ir-never-written"), report.describe()


def test_mutation_write_write(momentum_schedule):
    in_a = momentum_schedule.input_spec[0][1]
    in_b = momentum_schedule.input_spec[1][1]
    fresh = momentum_schedule.n_slots
    program = list(momentum_schedule.program) \
        + [[OP_COPY, ((in_a, fresh),)], [OP_COPY, ((in_b, fresh),)]]
    report = lint_flat_schedule(_doctor(momentum_schedule, program,
                                        n_slots=fresh + 1))
    conflict = report.by_rule("ir-write-write")
    assert conflict, report.describe()
    assert conflict[0].location["slot"] == fresh


def test_mutation_dead_store(momentum_schedule):
    in_a = momentum_schedule.input_spec[0][1]
    fresh = momentum_schedule.n_slots
    program = list(momentum_schedule.program) \
        + [[OP_COPY, ((in_a, fresh),)]]
    report = lint_flat_schedule(_doctor(momentum_schedule, program,
                                        n_slots=fresh + 1))
    dead = report.by_rule("ir-dead-store")
    assert any(f.location["slot"] == fresh for f in dead), report.describe()


def test_redundant_forwarding_is_not_a_conflict(momentum_schedule):
    # same value copied to the same slot twice (what copy fusion routinely
    # emits) must NOT count as a write-write conflict
    in_a = momentum_schedule.input_spec[0][1]
    fresh = momentum_schedule.n_slots
    program = list(momentum_schedule.program) \
        + [[OP_COPY, ((in_a, fresh), (in_a, fresh))]]
    report = lint_flat_schedule(_doctor(momentum_schedule, program,
                                        n_slots=fresh + 1))
    assert not report.by_rule("ir-write-write"), report.describe()


def test_mutation_gate_structure():
    schedule = compile_flat(_gated_model(every(2)))
    program = [list(op) for op in schedule.program]
    gate_index = next(i for i, op in enumerate(program)
                      if op[0] == OP_GATE)
    program[gate_index][2] = gate_index  # jump target must be > index
    report = lint_flat_schedule(_doctor(schedule, program))
    findings = report.by_rule("ir-gate-structure")
    assert findings and findings[0].severity is Severity.ERROR


def test_mutation_unreachable_region():
    schedule = compile_flat(_gated_model(EventClock((), description="never")))
    report = lint_flat_schedule(schedule)
    assert report.by_rule("ir-unreachable-op"), report.describe()


def test_gated_reads_reported_as_codegen_obligation():
    report = lint_flat_schedule(compile_flat(_gated_model(every(2))))
    skip = report.by_rule("ir-may-skip-read")
    assert skip and skip[0].severity is Severity.INFO
    assert not report.errors()


def test_mutation_correction_missing_dropped_barrier(feedback_schedule):
    program = [op for op in feedback_schedule.program
               if op[0] != OP_CORRECT]
    report = lint_flat_schedule(_doctor(feedback_schedule, program))
    missing = report.by_rule("ir-correction-missing")
    assert missing and missing[0].severity is Severity.ERROR


def test_mutation_correction_unmatched_input_spec(feedback_schedule):
    program = [list(op) for op in feedback_schedule.program]
    barrier = next(op for op in program if op[0] == OP_CORRECT)
    si, leaf_index, fn, in_spec = barrier[1][0]
    barrier[1] = ((si, leaf_index, fn,
                   tuple((name, slot + 1) for name, slot in in_spec)),)
    report = lint_flat_schedule(_doctor(feedback_schedule, program))
    assert report.by_rule("ir-correction-unmatched"), report.describe()


def test_mutation_correction_missing_untracked_late_producer(
        feedback_schedule):
    program = [list(op) for op in feedback_schedule.program
               if op[0] != OP_CORRECT]
    run = next(op for op in program if op[0] == OP_RUN)
    run[6] = -1  # pretend the flattener forgot to track the delay
    report = lint_flat_schedule(_doctor(feedback_schedule, program))
    missing = report.by_rule("ir-correction-missing")
    assert missing, report.describe()
    assert "late producers" in missing[0].message


def test_mutation_correction_dead_barrier(feedback_schedule):
    program = list(feedback_schedule.program)
    run_index = next(i for i, op in enumerate(program) if op[0] == OP_RUN)
    barrier = next(op for op in program if op[0] == OP_CORRECT)
    mutant = program[:run_index + 1] + [barrier] + program[run_index + 1:]
    report = lint_flat_schedule(_doctor(feedback_schedule, mutant))
    dead = report.by_rule("ir-correction-dead")
    assert dead and dead[0].severity is Severity.INFO


def test_clean_feedback_schedule_has_no_correction_findings(
        feedback_schedule):
    report = lint_flat_schedule(feedback_schedule)
    assert not report.by_rule("ir-correction-missing")
    assert not report.by_rule("ir-correction-unmatched")
    assert not report.errors(), report.describe()


# -- batch certification ----------------------------------------------------


def test_batch_certification_of_clean_schedule(momentum_schedule):
    cert = certify_batch(momentum_schedule)
    assert cert["safe"]
    assert cert["copy_ops"] == cert["gatherable_ops"] \
        + cert["order_dependent_ops"]
    report = lint_flat_schedule(momentum_schedule)
    assert report.by_rule("ir-batch-certified")


def test_batch_alias_duplicate_destination_is_order_dependent(
        momentum_schedule):
    in_a = momentum_schedule.input_spec[0][1]
    in_b = momentum_schedule.input_spec[1][1]
    fresh = momentum_schedule.n_slots
    program = list(momentum_schedule.program) \
        + [[OP_COPY, ((in_a, fresh), (in_b, fresh))]]
    mutant = _doctor(momentum_schedule, program, n_slots=fresh + 1)
    cert = certify_batch(mutant)
    assert cert["safe"]  # in-order pair execution keeps it correct
    alias = [f for f in cert["findings"] if f.rule == "ir-batch-alias"]
    assert alias and alias[0].severity is Severity.INFO


def test_batch_alias_self_copy_hazard_voids_certification(
        momentum_schedule):
    in_a = momentum_schedule.input_spec[0][1]
    fresh = momentum_schedule.n_slots
    program = list(momentum_schedule.program) \
        + [[OP_COPY, ((in_a, fresh), (fresh, fresh))]]
    mutant = _doctor(momentum_schedule, program, n_slots=fresh + 1)
    cert = certify_batch(mutant)
    assert not cert["safe"]
    alias = [f for f in cert["findings"] if f.rule == "ir-batch-alias"]
    assert alias and alias[0].severity is Severity.WARNING
    report = lint_flat_schedule(mutant)
    assert not report.by_rule("ir-batch-certified")


# -- zero false positives over everything the compiler really emits ---------


def _ir_noise(report):
    return [f for f in report.findings
            if f.rule.startswith("ir-")
            and f.severity in (Severity.ERROR, Severity.WARNING)]


@pytest.mark.parametrize("build", [
    build_momentum_controller, build_closed_loop, build_engine_ccd,
    build_reengineered_fda, build_door_lock_faa,
], ids=lambda b: b.__name__)
def test_no_false_positives_on_casestudy_models(build):
    report = lint_model(build())
    assert not report.errors(), report.describe()
    assert not _ir_noise(report), report.describe()


def test_no_false_positives_on_gated_engine_ccd():
    report = lint_model(build_gated_ccd(build_engine_ccd()))
    assert not report.errors(), report.describe()
    assert not _ir_noise(report), report.describe()


@pytest.mark.parametrize("seed", range(8))
def test_no_false_positives_on_fuzz_models(seed):
    from test_batch_differential import _build_model
    rng = random.Random(9000 + seed)
    model = _build_model(rng, seed)
    report = lint_model(model)
    assert not report.errors(), report.describe()
    assert not _ir_noise(report), report.describe()
