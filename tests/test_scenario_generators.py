"""The stimulus-generator DSL: determinism, composition, batch expansion."""

import pickle

import pytest

from repro.core.errors import SimulationError
from repro.core.values import Stream, is_absent
from repro.scenarios import (Constant, Dropout, EventStorm, ModeSequence,
                             OutOfRange, RandomWalk, Ramp, Scenario, SineWave,
                             SquareWave, StepChange, StuckAt, UniformNoise,
                             mode_sequence_sweep, sample_spec, scenario_grid)
from repro.simulation import normalize_stimulus, simulate


# -- deterministic waveforms -----------------------------------------------


def test_ramp_and_step_and_constant():
    ramp = Ramp(start=10.0, slope=2.0, high=16.0)
    assert ramp.materialize(5) == [10.0, 12.0, 14.0, 16.0, 16.0]
    step = StepChange(at=3, before=0.0, after=5.0)
    assert step.materialize(5) == [0.0, 0.0, 0.0, 5.0, 5.0]
    assert Constant(7).materialize(3) == [7, 7, 7]


def test_square_wave_levels_and_duty():
    wave = SquareWave(period=4, low=0, high=1, duty=0.5)
    assert wave.materialize(8) == [1, 1, 0, 0, 1, 1, 0, 0]
    offset = SquareWave(period=4, low=0, high=1, duty=0.5, phase=2)
    assert offset.materialize(4) == [0, 0, 1, 1]
    with pytest.raises(SimulationError):
        SquareWave(period=0)
    with pytest.raises(SimulationError):
        SquareWave(period=4, duty=1.5)


def test_sine_wave_shape():
    wave = SineWave(amplitude=2.0, period=4.0, offset=1.0)
    values = wave.materialize(5)
    assert values[0] == pytest.approx(1.0)
    assert values[1] == pytest.approx(3.0)
    assert values[3] == pytest.approx(-1.0)
    with pytest.raises(SimulationError):
        SineWave(period=0.0)


def test_mode_sequence_segments_and_hold():
    sequence = ModeSequence([("Off", 2), ("Cranking", 3), ("Idle", 1)])
    assert sequence.total_ticks() == 6
    assert sequence.materialize(8) == [
        "Off", "Off", "Cranking", "Cranking", "Cranking", "Idle",
        "Idle", "Idle"]  # held beyond the last segment
    dropped = ModeSequence([("A", 1)], hold_last=False)
    assert dropped.sample(0) == "A"
    assert is_absent(dropped.sample(1))
    with pytest.raises(SimulationError):
        ModeSequence([])
    with pytest.raises(SimulationError):
        ModeSequence([("A", 0)])


# -- seeded generators ------------------------------------------------------


def test_seeded_generators_are_deterministic():
    for factory in (lambda: UniformNoise(seed=7, low=-1.0, high=1.0),
                    lambda: RandomWalk(seed=7, start=0.0, step=2.0),
                    lambda: EventStorm(seed=7, rate=0.4, values=(1, 2, 3))):
        first, second = factory(), factory()
        assert first.materialize(50) == second.materialize(50)


def test_seeded_generator_cache_is_stable_across_query_orders():
    walk = RandomWalk(seed=3, start=0.0, step=1.0)
    late = walk.sample(20)
    early = walk.sample(5)
    fresh = RandomWalk(seed=3, start=0.0, step=1.0)
    assert fresh.materialize(21)[20] == late
    assert fresh.materialize(21)[5] == early


def test_seeded_generators_survive_pickling():
    storm = EventStorm(seed=11, rate=0.5, values=("a", "b"))
    original = storm.materialize(40)
    clone = pickle.loads(pickle.dumps(storm))
    assert clone.materialize(40) == original
    # pickling a partially-materialized generator also replays identically
    walk = RandomWalk(seed=5, start=1.0, step=0.5, low=0.0, high=10.0)
    walk.sample(13)
    clone = pickle.loads(pickle.dumps(walk))
    assert clone.materialize(30) == walk.materialize(30)


def test_random_walk_respects_bounds():
    walk = RandomWalk(seed=1, start=5.0, step=50.0, low=0.0, high=10.0)
    assert all(0.0 <= value <= 10.0 for value in walk.materialize(100))


def test_event_storm_rate_extremes():
    silent = EventStorm(seed=2, rate=0.0)
    assert all(is_absent(value) for value in silent.materialize(20))
    storm = EventStorm(seed=2, rate=1.0, values=(True,))
    assert storm.materialize(20) == [True] * 20
    with pytest.raises(SimulationError):
        EventStorm(seed=2, rate=1.5)
    with pytest.raises(SimulationError):
        EventStorm(seed=2, values=())


def test_negative_tick_is_rejected():
    with pytest.raises(SimulationError):
        UniformNoise(seed=0).sample(-1)


# -- fault injectors --------------------------------------------------------


def test_stuck_at_windows_wrap_any_spec():
    stuck = StuckAt([1, 2, 3, 4, 5], value=99, from_tick=1, until=3)
    assert stuck.materialize(5) == [1, 99, 99, 4, 5]
    forever = StuckAt(Ramp(), value=0.0, from_tick=2)
    assert forever.materialize(4) == [0.0, 1.0, 0.0, 0.0]


def test_dropout_is_seeded_and_wraps_scalars():
    faulty = Dropout(5.0, seed=13, probability=0.5)
    values = faulty.materialize(40)
    assert pickle.loads(pickle.dumps(faulty)).materialize(40) == values
    dropped = sum(1 for value in values if is_absent(value))
    assert 0 < dropped < 40
    assert all(value == 5.0 for value in values if not is_absent(value))
    assert Dropout(5.0, seed=1, probability=0.0).materialize(10) == [5.0] * 10
    with pytest.raises(SimulationError):
        Dropout(5.0, seed=1, probability=2.0)


def test_out_of_range_spikes():
    spiky = OutOfRange(Constant(1.0), at_ticks=[2, 4], value=1e9)
    assert spiky.materialize(5) == [1.0, 1.0, 1e9, 1.0, 1e9]


def test_stuck_at_rejects_degenerate_windows():
    # a window that can never fire would silently disable the fault
    with pytest.raises(SimulationError):
        StuckAt(Ramp(), value=0.0, from_tick=5, until=5)
    with pytest.raises(SimulationError):
        StuckAt(Ramp(), value=0.0, from_tick=5, until=3)
    with pytest.raises(SimulationError):
        StuckAt(Ramp(), value=0.0, from_tick=-1)
    with pytest.raises(SimulationError):
        StuckAt(Ramp(), value=0.0, from_tick=1.5)
    with pytest.raises(SimulationError):
        StuckAt(Ramp(), value=0.0, from_tick=0, until=2.5)
    with pytest.raises(SimulationError):
        StuckAt(Ramp(), value=0.0, from_tick=True)
    # healthy windows still work, including open-ended ones
    assert StuckAt([1, 2], value=9, from_tick=1).materialize(2) == [1, 9]


def test_out_of_range_rejects_degenerate_spikes():
    with pytest.raises(SimulationError):
        OutOfRange(Constant(1.0), at_ticks=[], value=1e9)
    with pytest.raises(SimulationError):
        OutOfRange(Constant(1.0), at_ticks=[-2], value=1e9)
    with pytest.raises(SimulationError):
        OutOfRange(Constant(1.0), at_ticks=[1, 2.5], value=1e9)
    with pytest.raises(SimulationError):
        OutOfRange(Constant(1.0), at_ticks=[True], value=1e9)


def test_sample_spec_covers_every_spec_kind():
    assert sample_spec(Stream([1, 2]), 1) == 2
    assert is_absent(sample_spec(Stream([1, 2]), 5))
    assert sample_spec([1, 2], 0) == 1
    assert is_absent(sample_spec((1, 2), 7))
    assert sample_spec(lambda tick: tick * 2, 4) == 8
    assert sample_spec(42, 123) == 42


# -- scenarios and batch expansion -----------------------------------------


def test_scenario_validates_name_and_ticks():
    with pytest.raises(SimulationError):
        Scenario("", {}, 5)
    with pytest.raises(SimulationError):
        Scenario("s", {}, 0)
    with pytest.raises(SimulationError):
        Scenario("s", {}, -3)
    with pytest.raises(SimulationError):
        Scenario("s", {}, 2.5)


def test_scenario_grid_expands_cartesian_product():
    scenarios = scenario_grid("sweep", {
        "n": [800.0, 3000.0],
        "ped": [0.0, 50.0, 100.0],
    }, ticks=20, base={"t_eng": 90.0})
    assert len(scenarios) == 6
    assert len({scenario.name for scenario in scenarios}) == 6
    assert all(scenario.ticks == 20 for scenario in scenarios)
    assert all(scenario.stimuli["t_eng"] == 90.0 for scenario in scenarios)
    assert scenarios[0].stimuli["n"] == 800.0
    assert scenarios[-1].stimuli == {"t_eng": 90.0, "n": 3000.0, "ped": 100.0}
    # deterministic: same grid, same names in the same order
    again = scenario_grid("sweep", {
        "n": [800.0, 3000.0],
        "ped": [0.0, 50.0, 100.0],
    }, ticks=20, base={"t_eng": 90.0})
    assert [scenario.name for scenario in again] \
        == [scenario.name for scenario in scenarios]


def test_scenario_grid_rejects_degenerate_grids():
    with pytest.raises(SimulationError):
        scenario_grid("empty", {}, ticks=5)
    with pytest.raises(SimulationError):
        scenario_grid("hole", {"n": []}, ticks=5)


def test_mode_sequence_sweep_builds_one_scenario_per_sequence():
    scenarios = mode_sequence_sweep("modes", "n", [
        (0.0, 900.0, 3000.0),
        (0.0, 400.0, 0.0),
    ], dwell=5, ticks=15, base={"ped": 10.0})
    assert len(scenarios) == 2
    generator = scenarios[0].stimuli["n"]
    assert isinstance(generator, ModeSequence)
    assert generator.materialize(15)[:6] == [0.0] * 5 + [900.0]
    assert scenarios[1].stimuli["ped"] == 10.0
    with pytest.raises(SimulationError):
        mode_sequence_sweep("modes", "n", [(1,)], dwell=0, ticks=5)


# -- engine integration -----------------------------------------------------


def test_generators_drive_both_engine_entry_points():
    from repro.core.components import ExpressionComponent
    block = ExpressionComponent("Echo", {"out": "in1"})
    block.declare_interface_from_expressions()
    generator = RandomWalk(seed=9, start=0.0, step=1.0)
    trace = simulate(block, {"in1": generator}, ticks=25)
    assert trace.output("out").values() == generator.materialize(25)


def test_normalize_stimulus_materializes_generators_once():
    calls = []

    class Probe:
        def materialize(self, ticks):
            calls.append(ticks)
            return list(range(ticks))

    feed = normalize_stimulus(Probe(), 10)
    assert [feed(tick) for tick in range(10)] == list(range(10))
    assert calls == [10]
