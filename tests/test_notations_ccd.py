"""Tests for Cluster Communication Diagrams (paper Sec. 3.3)."""

import pytest

from repro.core.clocks import EventClock, every
from repro.core.components import ExpressionComponent
from repro.core.errors import ModelError
from repro.core.types import BOOL, FLOAT, FloatType
from repro.notations.ccd import Cluster, ClusterCommunicationDiagram
from repro.notations.dfd import DataFlowDiagram


def _cluster(name, period, in_type=FLOAT, out_type=FLOAT):
    cluster = Cluster(name, rate=every(period))
    cluster.add_input("u", in_type, every(period))
    cluster.add_output("y", out_type, every(period))
    block = ExpressionComponent("F", {"out": "in1"})
    block.add_input("in1")
    block.add_output("out")
    cluster.add_subcomponent(block)
    cluster.connect("u", "F.in1")
    cluster.connect("F.out", "y")
    return cluster


class TestCluster:
    def test_requires_periodic_rate(self):
        with pytest.raises(ModelError):
            Cluster("C", rate=EventClock([1, 5]))

    def test_period_and_set_rate(self):
        cluster = _cluster("C", 2)
        assert cluster.period == 2
        cluster.set_rate(every(10))
        assert cluster.period == 10
        assert all(port.clock == every(10) for port in cluster.ports())
        with pytest.raises(ModelError):
            cluster.set_rate(EventClock([0]))

    def test_wcet_estimate_and_override(self):
        cluster = _cluster("C", 1)
        assert cluster.worst_case_execution_time() == pytest.approx(0.1)
        cluster.annotate("wcet", 3.5)
        assert cluster.worst_case_execution_time() == 3.5


class TestCCDStructure:
    def test_only_clusters_allowed_via_add_cluster(self):
        ccd = ClusterCommunicationDiagram("C")
        with pytest.raises(ModelError):
            ccd.add_cluster(DataFlowDiagram("D"))  # type: ignore[arg-type]

    def test_no_recursive_ccds(self):
        ccd = ClusterCommunicationDiagram("Outer")
        with pytest.raises(ModelError):
            ccd.add_subcomponent(ClusterCommunicationDiagram("Inner"))

    def test_cluster_lookup(self):
        ccd = ClusterCommunicationDiagram("C")
        ccd.add_cluster(_cluster("A", 1))
        assert ccd.cluster("A").name == "A"
        assert ccd.rates() == {"A": 1}

    def test_rate_transitions_classification(self):
        ccd = ClusterCommunicationDiagram("C")
        fast = _cluster("Fast", 1)
        slow = _cluster("Slow", 10)
        same = _cluster("Same", 1)
        ccd.add_cluster(fast)
        ccd.add_cluster(slow)
        ccd.add_cluster(same)
        ccd.connect("Fast.y", "Slow.u")
        ccd.connect("Slow.y", "Same.u", delayed=True)
        transitions = {(t["source"], t["destination"]): t
                       for t in ccd.rate_transitions()}
        assert transitions[("Fast", "Slow")]["direction"] == "fast-to-slow"
        assert transitions[("Slow", "Same")]["direction"] == "slow-to-fast"
        assert transitions[("Slow", "Same")]["delayed"] is True


class TestCCDValidation:
    def test_engine_ccd_is_structurally_valid(self, engine_ccd):
        assert engine_ccd.validate().is_valid()

    def test_non_cluster_element_is_error(self):
        ccd = ClusterCommunicationDiagram("C")
        # bypass add_cluster deliberately
        ClusterCommunicationDiagram.__bases__[0].add_subcomponent(
            ccd, DataFlowDiagram("D"))
        report = ccd.validate()
        assert any(issue.rule == "ccd-clusters-only" for issue in report.errors())

    def test_untyped_cluster_port_is_error(self):
        ccd = ClusterCommunicationDiagram("C")
        cluster = Cluster("A", rate=every(1))
        cluster.add_input("u")  # dynamically typed
        ccd.add_cluster(cluster)
        report = ccd.validate()
        assert any(issue.rule == "ccd-static-typing" for issue in report.errors())

    def test_incompatible_channel_types_is_error(self):
        ccd = ClusterCommunicationDiagram("C")
        ccd.add_cluster(_cluster("A", 1, out_type=FLOAT))
        ccd.add_cluster(_cluster("B", 1, in_type=BOOL))
        ccd.connect("A.y", "B.u")
        report = ccd.validate()
        assert any(issue.rule == "ccd-type-compatibility"
                   for issue in report.errors())

    def test_non_harmonic_rates_is_warning(self):
        ccd = ClusterCommunicationDiagram("C")
        ccd.add_cluster(_cluster("A", 3))
        ccd.add_cluster(_cluster("B", 5))
        ccd.connect("A.y", "B.u")
        report = ccd.validate()
        assert any(issue.rule == "ccd-harmonic-rates"
                   for issue in report.warnings())
