"""Expression abstract interpretation: unit tests per rule.

``check_expression`` is exercised directly with hand-built environments so
each rule's firing condition (and its deliberate silences) is pinned
independently of any model plumbing.
"""

import pytest

from repro.analysis.lint.expr_check import (AbstractValue, _NO_CONST,
                                            abstract_of_type,
                                            abstract_of_value,
                                            check_expression,
                                            environment_of_ports,
                                            lint_expression_component)
from repro.core.components import ExpressionComponent
from repro.core.expr_parser import parse_expression
from repro.core.types import BoolType, EnumType, FloatType, IntType
from repro.core.validation import Severity


def _check(source, env=None, functions=None):
    return check_expression(parse_expression(source), env or {}, "t",
                            functions=functions)


def _rules(findings):
    return [f.rule for f in findings]


# -- environments -----------------------------------------------------------


def test_abstract_of_type_carries_declared_bounds():
    value = abstract_of_type(FloatType(0.0, 300.0))
    assert value.kinds == frozenset({"num"})
    assert (value.low, value.high) == (0.0, 300.0)
    assert value.may_absent


def test_abstract_of_value_is_a_constant():
    value = abstract_of_value(7)
    assert value.const == 7 and (value.low, value.high) == (7, 7)
    assert abstract_of_value("Idle").kinds == frozenset({"enum"})
    assert abstract_of_value(True).kinds == frozenset({"bool"})


def test_environment_of_ports_uses_declared_types():
    comp = ExpressionComponent("C", {"out": "x"})
    comp.add_input("x", IntType(0, 10))
    comp.add_output("out", IntType())
    env = environment_of_ports(comp)
    assert env["x"].high == 10 and env["x"].may_absent


# -- unknown names / functions ----------------------------------------------


def test_unknown_name_is_an_error():
    value, findings = _check("x + ghost", {"x": abstract_of_value(1)})
    assert _rules(findings) == ["expr-unknown-name"]
    assert findings[0].severity is Severity.ERROR
    assert "ghost" in findings[0].message


def test_known_names_are_silent():
    _, findings = _check("x + y", {"x": abstract_of_value(1),
                                   "y": abstract_of_value(2)})
    assert not findings


def test_unknown_function_is_an_error():
    _, findings = _check("frobnicate(1)")
    assert _rules(findings) == ["expr-unknown-function"]
    assert findings[0].severity is Severity.ERROR


def test_builtin_function_is_known():
    value, findings = _check("abs(-3)")
    assert not findings
    assert value.const == 3


# -- division ----------------------------------------------------------------


def test_division_by_constant_zero_is_an_error():
    _, findings = _check("1 / 0")
    assert _rules(findings) == ["expr-div-by-zero"]
    assert findings[0].severity is Severity.ERROR


def test_division_by_interval_containing_zero_warns():
    env = {"d": abstract_of_type(IntType(-5, 5), may_absent=False)}
    _, findings = _check("10 / d", env)
    assert _rules(findings) == ["expr-div-by-zero"]
    assert findings[0].severity is Severity.WARNING


def test_division_by_nonzero_interval_is_silent():
    env = {"d": abstract_of_type(IntType(1, 5), may_absent=False)}
    _, findings = _check("10 / d", env)
    assert not findings


def test_division_by_unbounded_value_is_silent():
    env = {"d": abstract_of_type(IntType(), may_absent=False)}
    _, findings = _check("10 / d", env)
    assert not findings


# -- type mismatches ---------------------------------------------------------


def test_arithmetic_on_enum_is_a_mismatch():
    env = {"gear": abstract_of_type(EnumType("Gear", ("P", "D")))}
    _, findings = _check("gear + 1", env)
    assert "expr-type-mismatch" in _rules(findings)


def test_ordering_enum_against_number_is_a_mismatch():
    env = {"gear": abstract_of_type(EnumType("Gear", ("P", "D")))}
    _, findings = _check("gear < 3", env)
    assert "expr-type-mismatch" in _rules(findings)


# -- interval reasoning ------------------------------------------------------


def test_disjoint_intervals_decide_comparisons():
    env = {"speed": abstract_of_type(FloatType(0.0, 300.0),
                                     may_absent=False)}
    value, findings = _check("speed < -5", env)
    assert not findings
    assert value.const is False


def test_overlapping_intervals_stay_unknown():
    env = {"speed": abstract_of_type(FloatType(0.0, 300.0),
                                     may_absent=False)}
    value, _ = _check("speed < 100", env)
    assert value.const is _NO_CONST


def test_constant_folding_through_conditional():
    value, findings = _check("if 2 > 1 then 1 else x",
                             {"x": abstract_of_value(9)})
    assert not findings
    assert value.const == 1


def test_arithmetic_bounds_propagate():
    env = {"a": abstract_of_type(IntType(0, 10), may_absent=False),
           "b": abstract_of_type(IntType(1, 2), may_absent=False)}
    value, _ = _check("a + b", env)
    assert (value.low, value.high) == (1, 12)


def test_join_widens_across_conditional():
    env = {"p": AbstractValue(kinds=frozenset({"bool"}), low=0, high=1),
           "a": abstract_of_value(1), "b": abstract_of_value(10)}
    value, _ = _check("if p then a else b", env)
    assert (value.low, value.high) == (1, 10)
    assert value.const is _NO_CONST


# -- component-level wiring --------------------------------------------------


def test_undeclared_output_expression_warns():
    comp = ExpressionComponent("C", {"out": "x", "phantom": "x + 1"})
    comp.add_input("x", IntType())
    comp.add_output("out", IntType())
    findings = lint_expression_component(comp)
    assert "expr-undeclared-output" in _rules(findings)


def test_output_type_mismatch_warns():
    comp = ExpressionComponent("C", {"flag": "x + 1"})
    comp.add_input("x", IntType())
    comp.add_output("flag", BoolType())
    findings = lint_expression_component(comp)
    mismatch = [f for f in findings if f.rule == "expr-output-type"]
    assert mismatch and mismatch[0].severity is Severity.WARNING


def test_compatible_output_type_is_silent():
    comp = ExpressionComponent("C", {"out": "x * 2"})
    comp.add_input("x", IntType(0, 5))
    comp.add_output("out", IntType())
    assert not lint_expression_component(comp)


def test_unknown_name_in_component_names_known_ports():
    comp = ExpressionComponent("C", {"out": "speeed"})
    comp.add_input("speed", FloatType())
    comp.add_output("out", FloatType())
    findings = lint_expression_component(comp)
    assert _rules(findings) == ["expr-unknown-name"]
    assert "speed" in findings[0].message
