"""Tests for the ASCET-SD substrate: model, interpreter, analysis, codegen."""

import os

import pytest

from repro.ascet.codegen import (AscetProjectGenerator, GeneratedProject,
                                 c_type_of, expression_to_c)
from repro.ascet.comm_matrix import CommunicationMatrix
from repro.ascet.importer import (analyze_module, find_flags,
                                  find_implicit_modes, find_mode_conditions,
                                  module_interface)
from repro.ascet.model import (AscetInterpreter, AscetModule, AscetProcess,
                               AscetProject, AscetTask, assign, if_then_else)
from repro.core.errors import CodeGenError, ModelError, UnknownElementError
from repro.core.expr_parser import parse_expression
from repro.core.impl_types import BOOL8, INT16, FixedPointType
from repro.core.types import BOOL, FLOAT, EnumType, IntType


def _throttle_module():
    module = AscetModule("Throttle")
    module.receive("n", 0.0)
    module.receive("b_fuel", False)
    module.receive("pos", 0.0)
    module.receive("pos_des", 0.0)
    module.parameter("k", 2.0)
    module.send("rate", 0.0)
    process = module.new_process("calc")
    process.add(if_then_else("b_fuel and n > 600",
                             [assign("rate", "(pos_des - pos) * k")],
                             [assign("rate", "5")]))
    return module


class TestAscetModel:
    def test_statement_structure(self):
        conditional = if_then_else("a > 0", [assign("x", "1")],
                                   [assign("y", "2"), assign("x", "3")])
        assert sorted(set(conditional.targets())) == ["x", "y"]
        assert len(conditional.conditions()) == 1
        assert conditional.if_depth() == 1
        nested = if_then_else("b", [conditional], [])
        assert nested.if_depth() == 2
        assert "if (" in nested.to_pseudocode()

    def test_process_metrics(self):
        module = _throttle_module()
        process = module.process("calc")
        assert process.if_then_else_count() == 1
        assert process.max_if_depth() == 1
        assert process.operator_count() >= 3
        assert "process calc" in process.to_pseudocode()

    def test_module_declarations_and_metrics(self):
        module = _throttle_module()
        module.send("b_limp", False)
        assert module.flag_count() == 1
        assert module.if_then_else_count() == 1
        assert "module Throttle" in module.to_pseudocode()
        with pytest.raises(ModelError):
            module.add_process(AscetProcess("calc"))
        with pytest.raises(UnknownElementError):
            module.process("missing")

    def test_project_management(self):
        project = AscetProject("P")
        project.add_module(_throttle_module())
        with pytest.raises(ModelError):
            project.add_module(_throttle_module())
        project.add_task(AscetTask("T1", period=1, priority=1,
                                   processes=[("Throttle", "calc")]))
        assert project.total_if_then_else() == 1
        assert [task.name for task in project.task_list()] == ["T1"]
        with pytest.raises(UnknownElementError):
            project.module("missing")


class TestAscetInterpreter:
    def test_conditional_execution(self):
        interpreter = AscetInterpreter(_throttle_module())
        fuel_on = interpreter.step({"n": 700, "b_fuel": True, "pos": 10.0,
                                    "pos_des": 20.0})
        assert fuel_on["rate"] == 20.0
        fuel_off = interpreter.step({"n": 300, "b_fuel": True, "pos": 10.0,
                                     "pos_des": 20.0})
        assert fuel_off["rate"] == 5

    def test_state_retained_across_ticks(self):
        module = AscetModule("Accumulate")
        module.receive("u", 0.0)
        module.send("total", 0.0)
        process = module.new_process("acc")
        process.add(assign("total", "total + u"))
        interpreter = AscetInterpreter(module)
        outputs = interpreter.run([{"u": 1.0}, {"u": 2.0}, {"u": 3.0}])
        assert [o["total"] for o in outputs] == [1.0, 3.0, 6.0]

    def test_multirate_process_activation(self):
        module = AscetModule("Slow")
        module.receive("u", 0.0)
        module.send("y", 0.0)
        process = module.new_process("slow", period=2)
        process.add(assign("y", "u"))
        interpreter = AscetInterpreter(module)
        outputs = interpreter.run([{"u": 1.0}, {"u": 2.0}, {"u": 3.0},
                                   {"u": 4.0}])
        # the process only runs on even ticks, so y lags on odd ticks
        assert [o["y"] for o in outputs] == [1.0, 1.0, 3.0, 3.0]

    def test_unknown_input_rejected(self):
        interpreter = AscetInterpreter(_throttle_module())
        with pytest.raises(UnknownElementError):
            interpreter.step({"nonexistent": 1})

    def test_reset(self):
        module = AscetModule("M")
        module.receive("u", 0.0)
        module.send("y", 0.0)
        module.new_process("p").add(assign("y", "y + u"))
        interpreter = AscetInterpreter(module)
        interpreter.step({"u": 5.0})
        interpreter.reset()
        assert interpreter.step({"u": 1.0})["y"] == 1.0


class TestImporterAnalysis:
    def test_implicit_modes_recovered(self):
        module = _throttle_module()
        modes = find_implicit_modes(module.process("calc"),
                                    ["FuelEnabled", "CrankingOverrun"])
        assert [mode.name for mode in modes] == ["FuelEnabled", "CrankingOverrun"]
        assert modes[0].condition is not None
        assert modes[1].condition.to_source().startswith("not")
        assert modes[0].assigned_messages() == ["rate"]

    def test_straight_line_process_single_mode(self):
        module = AscetModule("Linear")
        module.receive("u", 0.0)
        module.send("y", 0.0)
        process = module.new_process("p")
        process.add(assign("y", "u * 2"))
        modes = find_implicit_modes(process)
        assert len(modes) == 1
        assert modes[0].condition is None

    def test_mode_conditions_and_flags(self, engine_project):
        throttle = engine_project.module("ThrottleRateOfChange")
        conditions = find_mode_conditions(throttle.process("calc_rate"))
        assert len(conditions) == 1
        central = engine_project.module("CentralState")
        assert len(find_flags(central)) == 6
        inputs, outputs = module_interface(throttle)
        assert "n" in inputs and "throttle_rate" in outputs

    def test_analyze_module_summary(self, engine_project):
        analysis = analyze_module(
            engine_project.module("ThrottleRateOfChange"),
            {"calc_rate": ["FuelEnabled", "CrankingOverrun"]})
        assert analysis.mode_count() == 2
        assert analysis.if_then_else_count == 1
        assert "FuelEnabled" in analysis.describe()


class TestCodegenHelpers:
    def test_expression_to_c(self):
        assert expression_to_c(parse_expression("a + b * 2")) == "(a + (b * 2))"
        assert expression_to_c(parse_expression("if a then 1 else 2")) == \
            "(a ? 1 : 2)"
        assert expression_to_c(parse_expression("not a and b")) == "((!a) && b)"
        assert expression_to_c(parse_expression("limit(x, 0, 5)")) == \
            "automode_limit(x, 0, 5)"
        assert expression_to_c(parse_expression("mode == 'crash'")) == \
            "(mode == E_CRASH)"
        assert "msg_present" in expression_to_c(parse_expression("present(x)"))

    def test_c_type_selection(self):
        assert c_type_of(INT16, FLOAT) == "sint16"
        assert c_type_of(BOOL8, BOOL) == "boolean"
        assert c_type_of(FixedPointType(16, 0.1), FLOAT) == "sint16"
        assert c_type_of(None, IntType(0, 5)) == "sint32"
        assert c_type_of(None, EnumType("E", ["a"])) == "uint8"
        assert c_type_of(None, FLOAT) == "float32"

    def test_generated_project_file_management(self, tmp_path):
        project = GeneratedProject("ECU1")
        project.add_file("a.c", "int x;\n")
        with pytest.raises(CodeGenError):
            project.add_file("a.c", "again")
        with pytest.raises(CodeGenError):
            project.file("missing")
        assert project.total_lines() >= 1
        written = project.write_to(str(tmp_path))
        assert len(written) == 1
        assert os.path.exists(written[0])


class TestProjectGeneration:
    def test_generation_from_deployment(self, engine_ccd):
        from repro.transformations.deployment import deploy
        result = deploy(engine_ccd, ["ECU_Engine", "ECU_Body"],
                        allocation={"SensorProcessing": "ECU_Engine",
                                    "FuelAndIgnition": "ECU_Engine",
                                    "IdleSpeed": "ECU_Body",
                                    "Monitoring": "ECU_Body"})
        generator = AscetProjectGenerator(engine_ccd, result.architecture,
                                          bus=result.bus, matrix=result.matrix)
        projects = generator.generate_all()
        assert set(projects) == {"ECU_Engine", "ECU_Body"}
        engine_project = projects["ECU_Engine"]
        assert "modules/FuelAndIgnition.c" in engine_project.files
        assert "modules/FuelAndIgnition.h" in engine_project.files
        assert "os/osek_config.oil" in engine_project.files
        assert "com/can_config.c" in engine_project.files
        assert "project.manifest" in engine_project.files
        module_source = engine_project.file("modules/FuelAndIgnition.c")
        assert "FuelAndIgnition_process" in module_source
        assert "Injection_ti" in module_source
        oil = engine_project.file("os/osek_config.oil")
        assert "FULL_PREEMPTIVE" in oil and "TASK" in oil
        can_config = projects["ECU_Body"].file("com/can_config.c")
        assert "can_tx_table" in can_config

    def test_generation_without_bus(self, engine_ccd):
        from repro.platform.ecu import ECU, Task, TechnicalArchitecture
        architecture = TechnicalArchitecture("TA")
        ecu = ECU("Solo")
        task = Task("T1", period=1, priority=1)
        for cluster in engine_ccd.clusters():
            task.add_cluster(cluster.name, 1.0)
        ecu.add_task(task)
        architecture.add_ecu(ecu)
        generator = AscetProjectGenerator(engine_ccd, architecture)
        project = generator.generate_for_ecu("Solo")
        assert "no inter-ECU communication" in project.file("com/can_config.c")
        assert len([name for name in project.file_names()
                    if name.endswith(".c")]) >= 5


class TestCommunicationMatrix:
    def _matrix(self):
        matrix = CommunicationMatrix("BodyNet")
        matrix.add("lock_status", "DoorModule", ["CentralLocking", "Dashboard"],
                   frame="BODY_1", period=20)
        matrix.add("crash_signal", "AirbagECU", ["CentralLocking"],
                   frame="SAFETY_1", period=10)
        matrix.add("speed", "ESP", ["CentralLocking", "Dashboard", "Wipers"],
                   frame="CHASSIS_1", period=10, length_bits=16)
        return matrix

    def test_entries_and_queries(self):
        matrix = self._matrix()
        assert len(matrix) == 3
        assert matrix.functions() == ["AirbagECU", "CentralLocking",
                                      "Dashboard", "DoorModule", "ESP",
                                      "Wipers"]
        assert len(matrix.signals_received_by("CentralLocking")) == 3
        assert len(matrix.signals_sent_by("ESP")) == 1
        assert matrix.fan_out()["ESP"] == 3
        assert matrix.frames() == ["BODY_1", "CHASSIS_1", "SAFETY_1"]
        assert len(matrix.signals_in_frame("BODY_1")) == 1
        assert len(matrix.dependency_pairs()) == 6
        assert "crash_signal" in matrix.describe()

    def test_validation(self):
        matrix = CommunicationMatrix("M")
        with pytest.raises(ModelError):
            matrix.add("s", "A", [])
        with pytest.raises(ModelError):
            matrix.add("s", "A", ["A"])
        matrix.add("s", "A", ["B"])
        with pytest.raises(ModelError):
            matrix.add("s", "A", ["C"])
        with pytest.raises(ModelError):
            matrix.entry("missing")

    def test_roundtrip_rows(self):
        matrix = self._matrix()
        clone = CommunicationMatrix.from_rows("Copy", matrix.to_rows())
        assert len(clone) == len(matrix)
        assert clone.entry("speed").receivers == matrix.entry("speed").receivers
