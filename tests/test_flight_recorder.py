"""The flight recorder: last-K-tick forensics for flat schedules.

Pins the contracts of :mod:`repro.obs.recorder`:

* the recording step is trace-equivalent to the default step on healthy
  runs, and the default ``schedule.step`` closure is structurally
  untouched (same object) whether or not recording was ever enabled;
* a scenario failing inside an op dumps a post-mortem bundle: the exact
  failing tick, op index/kind/label, the partial slot environment with
  ``slot_names``-decoded keys, the trailing ring of slot snapshots, the
  stimuli and the active span path;
* the ring is bounded (``ring_ticks``) and holds exactly the ticks
  preceding the failure;
* bundles **replay**: a fresh recorder over the same stimuli reproduces
  the ring and the failure tick exactly;
* flight recording overrides the vectorized batch backend (forensics
  needs per-tick slot environments), without changing results.
"""

import json
import os

import pytest

from repro import obs
from repro.core.components import ExpressionComponent
from repro.notations.blocks import Gain
from repro.notations.dfd import DataFlowDiagram
from repro.obs import EventLog, FlightRecorder, read_bundle
from repro.obs.recorder import _render_env
from repro.scenarios import Scenario, run_sharded
from repro.simulation import CompiledSimulator, first_difference
from repro.simulation.engine import run_stepped


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


def divider_model():
    """A flattenable model whose DIV op raises when input ``d`` hits 0."""
    outer = DataFlowDiagram("Outer")
    outer.add_input("u")
    outer.add_input("d")
    outer.add_output("y")
    div = ExpressionComponent("DIV", {"out": "a / b"})
    div.declare_interface_from_expressions()
    gain = Gain("G", 2.0)
    outer.add(div, gain)
    outer.connect("u", "DIV.a")
    outer.connect("d", "DIV.b")
    outer.connect("DIV.out", "G.in1")
    outer.connect("G.out", "y")
    return outer


def ramp(tick):
    return float(tick)


def zero_at_5(tick):
    return 0.0 if tick == 5 else 1.0 + tick


FAILING_STIMULI = {"u": ramp, "d": zero_at_5}


def forensic_batch(ticks=12):
    return [Scenario("healthy", {"u": 1.0, "d": 2.0}, ticks=ticks),
            Scenario("boom", dict(FAILING_STIMULI), ticks=ticks),
            Scenario("healthy2", {"u": 3.0, "d": 4.0}, ticks=ticks)]


# -- the recording step ----------------------------------------------------


def test_recording_step_is_trace_equivalent_on_healthy_runs():
    model = divider_model()
    simulator = CompiledSimulator(model)
    schedule = simulator.schedule
    default_step = schedule.step
    reference = run_stepped(model, default_step, {"u": ramp, "d": 2.0}, 10,
                            False, initial_state=schedule.initial_state())

    recorder = FlightRecorder(schedule, capacity=4)
    recording = schedule.recording_step(recorder)
    recorded = run_stepped(model, recording, {"u": ramp, "d": 2.0}, 10,
                           False, initial_state=schedule.initial_state())
    assert first_difference(reference, recorded) is None
    # zero overhead when off is STRUCTURAL: the default closure is the
    # same object, recording happened in a separately built variant
    assert schedule.step is default_step
    # healthy run: bounded ring, no failure
    assert recorder.failure is None
    assert [tick for tick, _ in recorder.snapshots] == [6, 7, 8, 9]


def test_ring_clears_between_runs():
    schedule = CompiledSimulator(divider_model()).schedule
    recorder = FlightRecorder(schedule, capacity=4)
    recording = schedule.recording_step(recorder)
    model = divider_model()
    run_stepped(model, recording, {"u": 1.0, "d": 2.0}, 8, False,
                initial_state=schedule.initial_state())
    first_ring = [tick for tick, _ in recorder.snapshots]
    run_stepped(model, recording, {"u": 1.0, "d": 2.0}, 3, False,
                initial_state=schedule.initial_state())
    assert first_ring == [4, 5, 6, 7]
    assert [tick for tick, _ in recorder.snapshots] == [0, 1, 2]


def test_recorder_captures_exact_failure_tick_and_op():
    model = divider_model()
    schedule = CompiledSimulator(model).schedule
    recorder = FlightRecorder(schedule, capacity=4)
    recording = schedule.recording_step(recorder)
    with pytest.raises(Exception, match="division by zero"):
        run_stepped(model, recording, FAILING_STIMULI, 12, False,
                    initial_state=schedule.initial_state())
    failure = recorder.failure
    assert failure is not None
    assert failure["tick"] == 5
    assert "division by zero" in failure["error"]
    kind, label, _ = schedule.op_labels()[failure["op_index"]]
    assert kind == "expr" and "DIV" in label
    # the ring holds exactly the ticks preceding the failure
    assert [tick for tick, _ in recorder.snapshots] == [1, 2, 3, 4]


# -- runner integration: post-mortem bundles --------------------------------


def test_forced_scenario_error_dumps_replayable_bundle(tmp_path):
    model = divider_model()
    with obs.session(events=EventLog(), flight_recording=True, ring_ticks=4,
                     postmortem_dir=str(tmp_path)) as telemetry:
        results = run_sharded(model, forensic_batch(), executor="serial")
        bundles = list(telemetry.bundles)
        events = list(telemetry.events.events)
    assert [result.ok for result in results] == [True, False, True]
    assert len(bundles) == 1 and os.path.exists(bundles[0])
    assert os.path.basename(bundles[0]) == "POSTMORTEM_boom.json"

    bundle = read_bundle(bundles[0])
    assert bundle["schema_version"] == 1
    assert bundle["kind"] == "postmortem"
    assert bundle["scenario"] == "boom"
    assert "division by zero" in bundle["error"]
    failing = bundle["failing"]
    assert failing["tick"] == 5
    assert failing["op_kind"] == "expr"
    assert failing["op_label"].endswith("DIV [expr]")
    assert failing["partial_slots"]["Outer/DIV.b"] == 0.0
    assert failing["inputs"] == {"u": 5.0, "d": 0.0}
    assert [snapshot["tick"] for snapshot in bundle["ring"]] == [1, 2, 3, 4]
    assert bundle["ring_capacity"] == 4
    # slot names decode the environment (no anonymous slot<i> keys)
    assert all(not name.startswith("slot")
               for snapshot in bundle["ring"] for name in snapshot["slots"])
    assert "runner.run_sharded" in bundle["span_path"]
    counters = {entry["name"]: entry["value"]
                for entry in bundle["metrics"]["counters"]}
    # the metrics snapshot is taken at dump time, mid-campaign: the
    # failing scenario itself has not been recorded yet, but the
    # preceding healthy one has
    assert counters["runner.scenario.total"] == 1

    # the scenario_error event links to the bundle
    error_event = next(event for event in events
                       if event.type == "scenario_error")
    assert error_event.data["bundle"] == bundles[0]

    # REPLAY: a fresh recorder over the bundled stimuli reproduces the
    # ring and the failure tick exactly
    schedule = CompiledSimulator(model).schedule
    recorder = FlightRecorder(schedule, capacity=4)
    recording = schedule.recording_step(recorder)
    with pytest.raises(Exception, match="division by zero"):
        run_stepped(model, recording, FAILING_STIMULI, 12, False,
                    initial_state=schedule.initial_state())
    replayed = [{"tick": tick,
                 "slots": _render_env(values, schedule.slot_names)}
                for tick, values in recorder.snapshots]
    assert replayed == bundle["ring"]
    assert recorder.failure["tick"] == failing["tick"]
    assert _render_env(recorder.failure["values"],
                       schedule.slot_names) == failing["partial_slots"]


def test_batch_backend_falls_back_to_recorded_flat_path(tmp_path):
    pytest.importorskip("numpy")
    model = divider_model()
    with obs.session(flight_recording=True, ring_ticks=4,
                     postmortem_dir=str(tmp_path)) as telemetry:
        results = run_sharded(model, forensic_batch(), executor="serial",
                              backend="batch")
        bundles = list(telemetry.bundles)
    assert [result.ok for result in results] == [True, False, True]
    assert "division by zero" in results[1].error
    assert len(bundles) == 1
    assert read_bundle(bundles[0])["failing"]["tick"] == 5
    # results agree with the unrecorded batch run
    reference = run_sharded(model, forensic_batch(), executor="serial",
                            backend="batch")
    for expected, actual in zip(reference, results):
        assert expected.error == actual.error
        if expected.ok:
            assert first_difference(expected.trace, actual.trace) is None


def test_postmortem_dir_env_fallback(tmp_path, monkeypatch):
    monkeypatch.setenv("OBS_POSTMORTEM_DIR", str(tmp_path / "pm"))
    model = divider_model()
    with obs.session(flight_recording=True, ring_ticks=4) as telemetry:
        run_sharded(model, forensic_batch(), executor="serial")
        bundles = list(telemetry.bundles)
    assert len(bundles) == 1
    assert os.path.dirname(bundles[0]) == str(tmp_path / "pm")
    assert os.path.exists(bundles[0])


def test_no_bundle_without_flight_recording(tmp_path):
    model = divider_model()
    with obs.session(events=EventLog(),
                     postmortem_dir=str(tmp_path)) as telemetry:
        results = run_sharded(model, forensic_batch(), executor="serial")
        bundles = list(telemetry.bundles)
        events = list(telemetry.events.events)
    assert not results[1].ok
    assert bundles == []
    assert os.listdir(str(tmp_path)) == []
    error_event = next(event for event in events
                       if event.type == "scenario_error")
    assert "bundle" not in error_event.data


def test_default_step_identity_survives_recorded_session():
    model = divider_model()
    simulator = CompiledSimulator(model)
    default_step = simulator.schedule.step
    with obs.session(flight_recording=True, ring_ticks=4,
                     postmortem_dir="."):
        simulator.run({"u": 1.0, "d": 2.0}, 6)
    assert simulator.schedule.step is default_step


def test_bundle_json_is_deterministic(tmp_path):
    """Two dumps of the same failure are byte-identical artifacts."""
    model = divider_model()
    paths = []
    for index in ("a", "b"):
        directory = str(tmp_path / index)
        with obs.session(flight_recording=True, ring_ticks=4,
                         postmortem_dir=directory) as telemetry:
            run_sharded(model, forensic_batch(), executor="serial")
            paths.extend(telemetry.bundles)
    first, second = (open(path, encoding="utf-8").read() for path in paths)
    # metrics/spans include wall-clock durations; the forensic payload
    # itself (ring, failing op, stimuli) must match exactly
    first_bundle, second_bundle = json.loads(first), json.loads(second)
    for volatile in ("metrics", "span_path"):
        first_bundle.pop(volatile), second_bundle.pop(volatile)
    assert first_bundle == second_bundle
