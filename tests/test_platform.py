"""Tests for the simulated platform: ECUs/tasks, OSEK scheduling, CAN, timing."""

import math

import pytest

from repro.core.errors import DeploymentError, SchedulingError
from repro.platform.can import CANBus, CANFrame, CANSignal
from repro.platform.ecu import ECU, Task, TechnicalArchitecture
from repro.platform.osek import (is_schedulable, response_time_analysis,
                                 simulate_schedule, utilization_bound_check)
from repro.platform.timing import analyze_chain, deadline_from_delays


def _loaded_ecu():
    ecu = ECU("ECU1")
    ecu.add_task(Task("T1", period=5, priority=1, wcet=1))
    ecu.add_task(Task("T2", period=10, priority=2, wcet=3))
    ecu.add_task(Task("T3", period=20, priority=3, wcet=4))
    return ecu


class TestTasksAndEcus:
    def test_task_validation(self):
        with pytest.raises(DeploymentError):
            Task("T", period=0, priority=1)
        with pytest.raises(DeploymentError):
            Task("T", period=5, priority=1, offset=5)
        task = Task("T", period=10, priority=1, wcet=2)
        assert task.deadline == 10
        assert task.utilization() == pytest.approx(0.2)
        task.add_cluster("C1", wcet=1.5)
        assert task.wcet == 3.5 and task.clusters == ["C1"]
        assert "C1" in task.describe()

    def test_ecu_management(self):
        ecu = _loaded_ecu()
        assert [task.name for task in ecu.task_list()] == ["T1", "T2", "T3"]
        assert ecu.utilization() == pytest.approx(1 / 5 + 3 / 10 + 4 / 20)
        with pytest.raises(DeploymentError):
            ecu.add_task(Task("T1", period=5, priority=9))
        with pytest.raises(DeploymentError):
            ecu.task("missing")
        assert "ECU1" in ecu.describe()

    def test_technical_architecture(self):
        architecture = TechnicalArchitecture("TA")
        ecu = _loaded_ecu()
        ecu.task("T1").add_cluster("Fast")
        architecture.add_ecu(ecu)
        assert architecture.ecu_of_cluster("Fast") == "ECU1"
        assert architecture.task_of_cluster("Fast").name == "T1"
        assert architecture.ecu_of_cluster("Unknown") is None
        assert len(architecture.all_tasks()) == 3
        with pytest.raises(DeploymentError):
            architecture.add_ecu(ECU("ECU1"))


class TestOsekScheduling:
    def test_simulation_meets_deadlines_for_low_utilization(self):
        trace = simulate_schedule(_loaded_ecu())
        assert trace.is_schedulable()
        assert trace.horizon == 2 * 20
        assert trace.worst_case_response_time("T1") == 1
        assert trace.utilization() == pytest.approx(0.7, abs=0.15)

    def test_preemption_occurs(self):
        ecu = ECU("E")
        ecu.add_task(Task("High", period=4, priority=1, wcet=1, offset=1))
        ecu.add_task(Task("Low", period=8, priority=2, wcet=4))
        trace = simulate_schedule(ecu, horizon=16)
        assert trace.preemptions >= 1
        assert trace.is_schedulable()

    def test_overload_misses_deadlines(self):
        ecu = ECU("E")
        ecu.add_task(Task("A", period=4, priority=1, wcet=3))
        ecu.add_task(Task("B", period=4, priority=2, wcet=3))
        trace = simulate_schedule(ecu, horizon=24)
        assert not trace.is_schedulable()
        assert trace.deadline_misses()

    def test_empty_ecu_rejected(self):
        with pytest.raises(SchedulingError):
            simulate_schedule(ECU("E"))

    def test_response_time_analysis_matches_simulation(self):
        ecu = _loaded_ecu()
        analytical = {result.task: result.wcrt
                      for result in response_time_analysis(ecu)}
        trace = simulate_schedule(ecu)
        for task_name, wcrt in analytical.items():
            observed = trace.worst_case_response_time(task_name)
            assert observed <= math.ceil(wcrt)
        assert is_schedulable(ecu)

    def test_rta_flags_unschedulable_task(self):
        ecu = ECU("E")
        ecu.add_task(Task("A", period=4, priority=1, wcet=3))
        ecu.add_task(Task("B", period=8, priority=2, wcet=4))
        results = {result.task: result for result in response_time_analysis(ecu)}
        assert results["A"].schedulable
        assert not results["B"].schedulable

    def test_speed_factor_scales_execution(self):
        slow = ECU("Slow", speed_factor=1.0)
        slow.add_task(Task("T", period=10, priority=1, wcet=4))
        fast = ECU("Fast", speed_factor=2.0)
        fast.add_task(Task("T", period=10, priority=1, wcet=4))
        assert fast.utilization() == pytest.approx(slow.utilization() / 2)

    def test_utilization_bound(self):
        check = utilization_bound_check(_loaded_ecu())
        assert 0 < check["bound"] <= 1
        assert check["passes"] == (check["utilization"] <= check["bound"])

    def test_schedule_describe(self):
        text = simulate_schedule(_loaded_ecu()).describe()
        assert "WCRT" in text and "ECU1" in text


class TestCan:
    def _bus(self):
        bus = CANBus("CAN1", bits_per_tick=500.0)
        engine = CANFrame("EngineData", can_id=0x100, period=10,
                          sender_ecu="ECU1")
        engine.add_signal(CANSignal("n", 16))
        engine.add_signal(CANSignal("ti", 16))
        body = CANFrame("BodyData", can_id=0x200, period=20, sender_ecu="ECU2")
        body.add_signal(CANSignal("locks", 8))
        bus.add_frame(engine)
        bus.add_frame(body)
        return bus

    def test_frame_validation(self):
        with pytest.raises(DeploymentError):
            CANFrame("Bad", can_id=0x800, period=10, sender_ecu="E")
        with pytest.raises(DeploymentError):
            CANFrame("Bad", can_id=0x1, period=0, sender_ecu="E")
        frame = CANFrame("F", can_id=0x1, period=10, sender_ecu="E")
        frame.add_signal(CANSignal("a", 32))
        frame.add_signal(CANSignal("b", 32))
        with pytest.raises(DeploymentError):
            frame.add_signal(CANSignal("c", 8))
        assert frame.payload_bytes() == 8
        assert frame.frame_bits() > 64

    def test_bus_management(self):
        bus = self._bus()
        with pytest.raises(DeploymentError):
            bus.add_frame(CANFrame("EngineData", can_id=0x300, period=5,
                                   sender_ecu="E"))
        with pytest.raises(DeploymentError):
            bus.add_frame(CANFrame("Duplicate", can_id=0x100, period=5,
                                   sender_ecu="E"))
        assert [frame.name for frame in bus.frame_list()] == ["EngineData",
                                                              "BodyData"]
        assert 0 < bus.utilization() < 1

    def test_latency_analysis_orders_by_priority(self):
        bus = self._bus()
        high = bus.worst_case_latency("EngineData")
        low = bus.worst_case_latency("BodyData")
        assert high <= low
        report = bus.latency_report()
        assert report[0]["frame"] == "EngineData"
        assert all(entry["worst_case_latency"] >= entry["transmission"]
                   for entry in report)

    def test_arbitration_simulation(self):
        bus = self._bus()
        trace = bus.simulate(horizon=60)
        assert trace.utilization() > 0
        assert trace.worst_observed_latency("EngineData") is not None
        observed = trace.worst_observed_latency("EngineData")
        analytical = bus.worst_case_latency("EngineData")
        assert observed <= math.ceil(analytical) + 1


class TestEndToEndTiming:
    def test_chain_analysis_local_and_remote(self):
        architecture = TechnicalArchitecture("TA")
        ecu1 = ECU("ECU1")
        task1 = Task("T1", period=5, priority=1, wcet=1)
        task1.add_cluster("Sense")
        ecu1.add_task(task1)
        ecu2 = ECU("ECU2")
        task2 = Task("T2", period=10, priority=1, wcet=2)
        task2.add_cluster("Actuate")
        ecu2.add_task(task2)
        architecture.add_ecu(ecu1)
        architecture.add_ecu(ecu2)
        bus = CANBus("CAN1", bits_per_tick=200.0)
        frame = CANFrame("F1", can_id=0x50, period=5, sender_ecu="ECU1")
        frame.add_signal(CANSignal("x", 16))
        bus.add_frame(frame)

        analysis = analyze_chain(["Sense", "Actuate"], architecture, bus,
                                 frame_of_signal={"Sense->Actuate": "F1"},
                                 logical_delays=2, base_period=5)
        assert analysis.end_to_end_latency > 0
        assert analysis.deadline == 10
        assert analysis.meets_deadline
        assert "end-to-end chain" in analysis.describe()

    def test_missing_deployment_raises(self):
        architecture = TechnicalArchitecture("TA")
        architecture.add_ecu(ECU("ECU1"))
        with pytest.raises(SchedulingError):
            analyze_chain(["Ghost"], architecture)

    def test_cross_ecu_without_frame_raises(self):
        architecture = TechnicalArchitecture("TA")
        for index, cluster in enumerate(["A", "B"], start=1):
            ecu = ECU(f"ECU{index}")
            task = Task(f"T{index}", period=5, priority=1, wcet=1)
            task.add_cluster(cluster)
            ecu.add_task(task)
            architecture.add_ecu(ecu)
        with pytest.raises(SchedulingError):
            analyze_chain(["A", "B"], architecture, bus=None)

    def test_deadline_from_delays(self):
        assert deadline_from_delays(3, 10) == 30
        assert deadline_from_delays(0, 10) == 10
