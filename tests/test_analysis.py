"""Tests for the analysis package: conflicts, metrics, modes, well-definedness,
cross-level consistency."""

import pytest

from repro.analysis.conflicts import analyze_conflicts, suggest_coordinator_name
from repro.analysis.consistency import (check_faa_fda_coverage,
                                        check_fda_la_allocation,
                                        check_interface_refinement,
                                        check_la_ta_deployment)
from repro.analysis.metrics import (compare_metrics, format_comparison,
                                    measure_component)
from repro.analysis.mode_analysis import (build_global_mode_system, find_mtds,
                                          mode_explicitness_summary)
from repro.analysis.well_definedness import (OSEK_FIXED_PRIORITY,
                                             TIME_TRIGGERED,
                                             check_rate_transitions,
                                             check_well_definedness,
                                             missing_delays,
                                             repair_rate_transitions)
from repro.core.clocks import every
from repro.core.components import Component, ExpressionComponent
from repro.core.impl_types import INT16
from repro.core.types import BOOL, FLOAT, FloatType
from repro.notations.ccd import Cluster, ClusterCommunicationDiagram
from repro.notations.mtd import ModeTransitionDiagram
from repro.notations.ssd import SSDComponent


class TestConflictAnalysis:
    def test_door_lock_conflict_found(self, door_lock_faa):
        analysis = analyze_conflicts(door_lock_faa)
        assert analysis.has_conflicts()
        assert set(analysis.conflicting_actuators()) == {"DoorLock1", "DoorLock2"}
        conflict = analysis.conflicts[0]
        assert "coordinating functionality" in conflict.suggestion()
        assert suggest_coordinator_name(conflict).endswith("Coordinator")

    def test_report_carries_warnings_and_shared_sensors(self, door_lock_faa):
        control = door_lock_faa.subcomponent("DoorLockControl")
        comfort = door_lock_faa.subcomponent("ComfortClosing")
        control.annotate("sensors", ["CrashSensor"])
        comfort.annotate("sensors", ["CrashSensor"])
        report = analyze_conflicts(door_lock_faa).to_report()
        assert report.by_rule("faa-actuator-conflict")
        assert report.by_rule("faa-shared-sensor")
        assert report.is_valid()  # conflicts are warnings, not errors

    def test_no_conflict_without_sharing(self):
        ssd = SSDComponent("Net")
        first = Component("F1").annotate("actuators", ["Throttle"])
        second = Component("F2").annotate("actuators", ["Brake"])
        ssd.add(first, second)
        analysis = analyze_conflicts(ssd)
        assert not analysis.has_conflicts()
        assert analysis.actuator_usage == {"Brake": ["F2"], "Throttle": ["F1"]}

    def test_structural_actuator_usage(self):
        ssd = SSDComponent("Net")
        func_a = ExpressionComponent("A", {"cmd": "1"})
        func_a.add_output("cmd", FLOAT)
        func_b = ExpressionComponent("B", {"cmd": "2"})
        func_b.add_output("cmd", FLOAT)
        actuator = Component("Valve").annotate("role", "actuator")
        actuator.add_input("u", FLOAT)
        actuator.add_input("v", FLOAT)
        ssd.add(func_a, func_b, actuator)
        ssd.connect("A.cmd", "Valve.u")
        ssd.connect("B.cmd", "Valve.v")
        analysis = analyze_conflicts(ssd)
        assert analysis.conflicting_actuators() == ["Valve"]


class TestMetrics:
    def test_measure_counts_structures(self, reengineered_fda):
        metrics = measure_component(reengineered_fda)
        assert metrics.components > 5
        assert metrics.mtd_count == 4
        assert metrics.explicit_modes == 8
        assert metrics.channels > 0
        assert metrics.ports > 10
        as_dict = metrics.as_dict()
        assert as_dict["mtd_count"] == 4
        assert "explicit modes" in metrics.describe()

    def test_if_then_else_counted_in_expressions(self):
        block = ExpressionComponent("F", {"y": "if a then 1 else 2"})
        block.declare_interface_from_expressions()
        metrics = measure_component(block)
        assert metrics.if_then_else_operators == 1
        assert metrics.expression_operators >= 1

    def test_boolean_outputs_counted_as_flags(self):
        component = Component("Flags")
        component.add_output("b_one", BOOL)
        component.add_output("b_two", BOOL)
        component.add_output("value", FLOAT)
        metrics = measure_component(component)
        assert metrics.boolean_outputs == 2

    def test_compare_and_format(self):
        first = measure_component(Component("A"))
        second_component = Component("B")
        second_component.add_output("x", BOOL)
        second = measure_component(second_component)
        rows = compare_metrics(first, second)
        assert rows["boolean_outputs"]["delta"] == 1
        table = format_comparison(first, second, "ascet", "automode")
        assert "ascet" in table and "automode" in table


class TestGlobalModeSystem:
    def test_product_of_case_study_mtds(self, reengineered_fda):
        mtds = find_mtds(reengineered_fda)
        assert len(mtds) == 4
        system = build_global_mode_system(reengineered_fda, scenario_limit=512)
        assert system.mode_count() >= 2
        assert system.transition_count() >= 1
        assert system.initial in system.modes
        assert len(system.reachable_from_initial()) == system.mode_count() or \
            system.unreachable_modes() == system.modes - system.reachable_from_initial()
        text = system.describe()
        assert "global mode transition system" in text

    def test_single_mtd_product_matches_local_modes(self, engine_modes_mtd):
        system = build_global_mode_system(engine_modes_mtd, scenario_limit=2048)
        local = set(engine_modes_mtd.mode_names())
        global_modes = {mode[0] for mode in system.modes}
        assert global_modes <= local
        assert len(global_modes) >= 4  # most modes are reachable

    def test_component_without_mtds(self):
        system = build_global_mode_system(Component("Plain"))
        assert system.mode_count() == 1
        assert system.transition_count() == 0

    def test_explicitness_summary(self, reengineered_fda):
        summary = mode_explicitness_summary(reengineered_fda)
        assert summary["mtd_count"] == 4
        assert summary["explicit_modes"] == 8
        assert len(summary["mtd_names"]) == 4


class TestWellDefinedness:
    def test_engine_ccd_has_one_missing_delay(self, engine_ccd):
        violations = missing_delays(engine_ccd)
        assert len(violations) == 1
        findings = check_rate_transitions(engine_ccd)
        bad = [finding for finding in findings if not finding.is_well_defined]
        assert len(bad) == 1
        assert bad[0].source == "Monitoring"
        assert bad[0].destination == "FuelAndIgnition"
        assert bad[0].direction == "slow-to-fast"
        assert "MISSING DELAY" in bad[0].describe()

    def test_fast_to_slow_needs_no_delay_under_osek(self, engine_ccd):
        findings = check_rate_transitions(engine_ccd, OSEK_FIXED_PRIORITY)
        fast_to_slow = [finding for finding in findings
                        if finding.direction == "fast-to-slow"]
        assert all(finding.is_well_defined for finding in fast_to_slow)

    def test_time_triggered_profile_is_stricter(self, engine_ccd):
        osek_missing = len(missing_delays(engine_ccd, OSEK_FIXED_PRIORITY))
        tt_missing = len(missing_delays(engine_ccd, TIME_TRIGGERED))
        assert tt_missing > osek_missing

    def test_report_and_repair(self, engine_ccd):
        report = check_well_definedness(engine_ccd)
        assert not report.is_valid()
        repaired = repair_rate_transitions(engine_ccd)
        assert len(repaired) == 1
        assert check_well_definedness(engine_ccd).is_valid()
        assert missing_delays(engine_ccd) == []


def _tiny_ccd_with_members():
    ccd = ClusterCommunicationDiagram("LA")
    cluster = Cluster("C1", rate=every(1))
    cluster.annotations["members"] = ["CompA", "CompB"]
    ccd.add_cluster(cluster)
    return ccd


class TestConsistency:
    def test_faa_fda_coverage(self):
        faa = SSDComponent("FAA")
        faa.add(Component("CentralLocking"), Component("CrashUnlock"))
        fda = SSDComponent("FDA")
        realizer = Component("LockingSw").annotate("realizes", "CentralLocking")
        fda.add_subcomponent(realizer)
        report = check_faa_fda_coverage(faa, fda)
        assert not report.is_valid()
        missing = [issue for issue in report.errors()]
        assert missing[0].element == "CrashUnlock"

    def test_fda_la_allocation(self):
        fda = SSDComponent("FDA")
        fda.add(Component("CompA"), Component("CompB"), Component("CompC"))
        ccd = _tiny_ccd_with_members()
        report = check_fda_la_allocation(fda, ccd)
        assert not report.is_valid()
        unallocated = {issue.element for issue in report.errors()}
        assert unallocated == {"CompC"}

    def test_double_allocation_is_error(self):
        fda = SSDComponent("FDA")
        fda.add_subcomponent(Component("CompA"))
        ccd = _tiny_ccd_with_members()
        second = Cluster("C2", rate=every(1))
        second.annotations["members"] = ["CompA"]
        ccd.add_cluster(second)
        report = check_fda_la_allocation(fda, ccd)
        assert any("several clusters" in issue.message for issue in report.errors())

    def test_interface_refinement(self):
        abstract = Component("A")
        abstract.add_input("n", FloatType(0.0, 8000.0))
        abstract.add_output("y", FLOAT)
        concrete = Component("A_impl")
        concrete.add_input("n", INT16)
        concrete.add_output("y", FLOAT)
        report = check_interface_refinement(abstract, concrete)
        assert report.is_valid()
        # missing port
        incomplete = Component("A_bad")
        incomplete.add_input("n", INT16)
        report = check_interface_refinement(abstract, incomplete)
        assert not report.is_valid()

    def test_la_ta_deployment(self):
        ccd = _tiny_ccd_with_members()
        ok = check_la_ta_deployment(ccd, {"C1": "ECU1_T1"})
        assert ok.is_valid()
        bad = check_la_ta_deployment(ccd, {})
        assert not bad.is_valid()


class TestConsistencyFailurePaths:
    """Failure modes of the cross-level checks beyond the happy paths:
    direction flips, non-assignable refinements, and their promotion into
    the unified lint finding schema."""

    def test_refinement_direction_flip_is_error(self):
        abstract = Component("A")
        abstract.add_input("n", FLOAT)
        flipped = Component("A_impl")
        flipped.add_output("n", FLOAT)
        report = check_interface_refinement(abstract, flipped)
        assert not report.is_valid()
        assert any("direction" in issue.message for issue in report.errors())

    def test_refinement_incompatible_abstract_types_is_error(self):
        abstract = Component("A")
        abstract.add_output("y", FLOAT)
        narrowed = Component("A_impl")
        narrowed.add_output("y", BOOL)
        report = check_interface_refinement(abstract, narrowed)
        assert not report.is_valid()
        assert any("not" in issue.message and "assignable" in issue.message
                   for issue in report.errors())

    def test_empty_ccd_leaves_every_component_unallocated(self):
        fda = SSDComponent("FDA")
        fda.add(Component("CompA"), Component("CompB"))
        ccd = ClusterCommunicationDiagram("LA")
        report = check_fda_la_allocation(fda, ccd)
        unallocated = {issue.element for issue in report.errors()}
        assert unallocated == {"CompA", "CompB"}

    def test_consistency_failures_surface_with_registered_rule_ids(self):
        from repro.analysis.lint import findings_from_report, rule_ids
        fda = SSDComponent("FDA")
        fda.add_subcomponent(Component("CompA"))
        report = check_fda_la_allocation(fda, ClusterCommunicationDiagram("LA"))
        findings = findings_from_report(report, subject="consistency")
        errors = [f for f in findings if f.severity.value == "error"]
        assert errors and all(f.rule == "fda-la-allocation" for f in errors)
        assert "fda-la-allocation" in rule_ids()
        assert "interface-refinement" in rule_ids()
