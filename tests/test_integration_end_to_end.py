"""End-to-end integration test: the full AutoMoDe design flow of the paper.

ASCET model --(white-box reengineering)--> FDA --(dissolve + clustering)-->
LA/CCD --(well-definedness + repair)--> deployment to a TA --(OA generation)
--> generated per-ECU projects, with the audit trail recorded in one
coherent AutoModeModel.
"""

import pytest

from repro.analysis.metrics import measure_component
from repro.analysis.mode_analysis import build_global_mode_system
from repro.analysis.well_definedness import (check_well_definedness,
                                             missing_delays,
                                             repair_rate_transitions)
from repro.casestudy import (ENGINE_MODE_NAMES, build_engine_ascet_project,
                             compare_behaviour, driving_scenario)
from repro.core.model import AbstractionLevel, AutoModeModel
from repro.levels.fda import FunctionalDesignArchitecture
from repro.levels.la import LogicalArchitecture
from repro.levels.oa import OperationalArchitecture
from repro.levels.ta import TechnicalArchitectureLevel
from repro.transformations.base import TransformationPipeline
from repro.transformations.deployment import ClusterDeployment, deploy
from repro.transformations.dissolve import DissolveToCcd
from repro.transformations.reengineering import WhiteBoxReengineering


def test_full_design_flow_from_ascet_to_generated_projects():
    model = AutoModeModel("GasolineEngineControl",
                          "end-to-end reproduction of the paper's flow")
    project = build_engine_ascet_project()

    # 1. white-box reengineering: implementation level -> FDA
    reengineering = WhiteBoxReengineering()
    fda_result = reengineering.apply_and_record(project, model,
                                                mode_names=ENGINE_MODE_NAMES)
    fda_ssd = fda_result.output
    fda = FunctionalDesignArchitecture("EngineFDA", fda_ssd)
    model.set_level(AbstractionLevel.FDA, fda)
    assert fda.validate().is_valid()
    assert fda.mode_summary()["explicit_modes"] == 8

    # behavioural preservation of the reengineering (case-study claim)
    assert max(compare_behaviour(driving_scenario(120)).values()) == 0.0

    # 2. refinement: dissolve the FDA SSD into a flat CCD with explicit rates
    dissolve = DissolveToCcd()
    la_result = dissolve.apply_and_record(
        fda_ssd, model,
        rates={"IgnitionTiming": 2, "IdleSpeedControl": 10})
    ccd = la_result.output
    la = LogicalArchitecture("EngineLA", ccd)
    model.set_level(AbstractionLevel.LA, la)
    assert len(la.clusters()) == 6

    # 3. well-definedness for the OSEK target, repairing missing delays
    if missing_delays(ccd):
        repair_rate_transitions(ccd)
    assert check_well_definedness(ccd).is_valid()

    # 4. deployment: clusters -> two ECUs, tasks, CAN frames
    deployment_step = ClusterDeployment()
    ta_result = deployment_step.apply_and_record(
        ccd, model, ecu_names=["ECU_Powertrain", "ECU_Aux"])
    deployment = ta_result.output
    ta = TechnicalArchitectureLevel("EngineTA", deployment)
    model.set_level(AbstractionLevel.TA, ta)
    assert ta.is_schedulable()
    assert set(deployment.ecu_of_cluster.values()) <= {"ECU_Powertrain",
                                                       "ECU_Aux"}

    # 5. OA generation: one ASCET-style project per ECU
    oa = OperationalArchitecture("EngineOA", ccd, deployment)
    model.set_level(AbstractionLevel.OA, oa)
    projects = oa.generate()
    assert set(projects) == {"ECU_Powertrain", "ECU_Aux"}
    assert oa.validate().is_valid()
    for ecu_name, generated in projects.items():
        assert "os/osek_config.oil" in generated.files
        cluster_names = deployment.architecture.ecu(ecu_name).cluster_names()
        for cluster_name in cluster_names:
            assert f"modules/{cluster_name}.c" in generated.files

    # 6. the coherent model records the whole derivation
    assert [record.kind for record in model.history] == [
        "reengineering", "refinement", "refinement"]
    assert model.defined_levels() == [AbstractionLevel.FDA,
                                      AbstractionLevel.LA,
                                      AbstractionLevel.TA,
                                      AbstractionLevel.OA]
    description = model.describe()
    assert "white-box-reengineering" in description

    # 7. the global mode transition system of the FDA is non-trivial
    system = build_global_mode_system(fda_ssd, scenario_limit=256)
    assert system.mode_count() >= 2

    # 8. case-study metrics: modes became explicit, If-Then-Else disappeared
    metrics = measure_component(fda_ssd)
    assert metrics.mtd_count == 4
    assert metrics.if_then_else_operators == 0
    assert build_engine_ascet_project().total_if_then_else() == 4


def test_pipeline_variant_of_the_flow():
    """The same FDA->LA->TA derivation expressed as a TransformationPipeline."""
    project = build_engine_ascet_project()
    fda_ssd = WhiteBoxReengineering().apply(
        project, mode_names=ENGINE_MODE_NAMES).output

    pipeline = TransformationPipeline("fda-to-ta")
    pipeline.add_step(DissolveToCcd())
    pipeline.add_step(ClusterDeployment())
    model = AutoModeModel("PipelineRun")
    result = pipeline.run(fda_ssd, model,
                          rates={"IgnitionTiming": 2, "IdleSpeedControl": 10},
                          ecu_names=["ECU1"])
    assert result.details["ecus"] == 1
    assert len(pipeline.results) == 2
    assert len(model.history) == 2
