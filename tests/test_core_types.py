"""Tests for the abstract and implementation type systems."""

import pytest

from repro.core.errors import QuantizationError, TypeCheckError, TypeMappingError
from repro.core.impl_types import (BOOL8, INT8, INT16, INT32, UINT8,
                                   FixedPointType, ImplEnumType,
                                   ImplementationMapping, MachineIntType,
                                   choose_implementation_type)
from repro.core.types import (ANY, BOOL, FLOAT, INT, EnumType, FloatType,
                              IntType, StructType, TypeEnvironment,
                              check_value, infer_type, is_assignable, unify)
from repro.core.values import ABSENT


class TestAbstractTypes:
    def test_bool_membership(self):
        assert BOOL.contains(True)
        assert not BOOL.contains(1)

    def test_int_membership_excludes_bool(self):
        assert INT.contains(5)
        assert not INT.contains(True)
        assert not INT.contains(2.5)

    def test_ranged_int(self):
        speed = IntType(0, 8000)
        assert speed.contains(0) and speed.contains(8000)
        assert not speed.contains(-1) and not speed.contains(8001)
        assert speed.name == "int[0..8000]"

    def test_float_membership(self):
        voltage = FloatType(0.0, 48.0)
        assert voltage.contains(12.0)
        assert voltage.contains(12)
        assert not voltage.contains(50.0)
        assert not voltage.contains(float("nan"))

    def test_enum(self):
        status = EnumType("LockStatus", ["unlocked", "locked"])
        assert status.contains("locked")
        assert not status.contains("open")
        assert status.ordinal("locked") == 1
        with pytest.raises(TypeCheckError):
            status.ordinal("open")

    def test_enum_requires_unique_literals(self):
        with pytest.raises(TypeCheckError):
            EnumType("Bad", ["a", "a"])
        with pytest.raises(TypeCheckError):
            EnumType("Empty", [])

    def test_struct(self):
        frame = StructType("Frame", [("id", INT), ("value", FLOAT)])
        assert frame.contains({"id": 1, "value": 2.0})
        assert not frame.contains({"id": 1})
        assert frame.field_type("value") == FLOAT
        with pytest.raises(TypeCheckError):
            frame.field_type("missing")

    def test_defaults(self):
        assert BOOL.default() is False
        assert IntType(5, 10).default() == 5
        assert FloatType(-10.0, -1.0).default() == -1.0
        assert EnumType("E", ["a", "b"]).default() == "a"

    def test_type_equality_and_hash(self):
        assert IntType(0, 10) == IntType(0, 10)
        assert IntType(0, 10) != IntType(0, 11)
        assert len({IntType(0, 10), IntType(0, 10)}) == 1


class TestAssignability:
    def test_anything_into_any(self):
        assert is_assignable(INT, ANY)
        assert is_assignable(EnumType("E", ["x"]), ANY)

    def test_int_into_float(self):
        assert is_assignable(IntType(0, 10), FloatType(0.0, 100.0))
        assert not is_assignable(IntType(-5, 10), FloatType(0.0, 100.0))

    def test_narrow_into_wide_int(self):
        assert is_assignable(IntType(0, 10), IntType(0, 100))
        assert not is_assignable(IntType(0, 200), IntType(0, 100))

    def test_unbounded_int_only_into_unbounded(self):
        assert is_assignable(INT, INT)
        assert not is_assignable(INT, IntType(0, 10))

    def test_enum_only_into_same_enum(self):
        first = EnumType("A", ["x", "y"])
        second = EnumType("B", ["x", "y"])
        assert is_assignable(first, first)
        assert not is_assignable(first, second)
        assert not is_assignable(first, INT)

    def test_bool_not_into_int(self):
        assert not is_assignable(BOOL, INT)


class TestUnify:
    def test_unify_identical(self):
        assert unify(BOOL, BOOL) == BOOL

    def test_unify_with_any(self):
        assert unify(ANY, INT) == INT
        assert unify(FLOAT, ANY) == FLOAT

    def test_unify_int_float_gives_float(self):
        merged = unify(IntType(0, 10), FloatType(5.0, 20.0))
        assert isinstance(merged, FloatType)
        assert merged.low == 0 and merged.high == 20.0

    def test_unify_incompatible_raises(self):
        with pytest.raises(TypeCheckError):
            unify(BOOL, INT)


class TestCheckAndInfer:
    def test_check_value_allows_absence(self):
        check_value(ABSENT, IntType(0, 1))

    def test_check_value_rejects_wrong_type(self):
        with pytest.raises(TypeCheckError):
            check_value("text", INT, context="port x")

    def test_infer_type(self):
        assert infer_type(True) == BOOL
        assert infer_type(3) == IntType(3, 3)
        assert isinstance(infer_type(2.5), FloatType)
        assert infer_type(ABSENT) == ANY

    def test_type_environment(self):
        env = TypeEnvironment()
        lock = env.define_enum("LockStatus", ["locked", "unlocked"])
        assert env.lookup("LockStatus") is lock
        with pytest.raises(TypeCheckError):
            env.define("LockStatus", BOOL)
        with pytest.raises(TypeCheckError):
            env.lookup("Missing")
        assert env.names() == ["LockStatus"]


class TestMachineIntegers:
    def test_ranges(self):
        assert INT8.min_value == -128 and INT8.max_value == 127
        assert INT16.max_value == 32767
        assert UINT8.min_value == 0 and UINT8.max_value == 255

    def test_membership(self):
        assert INT8.contains(-128)
        assert not INT8.contains(128)
        assert not INT8.contains(True)

    def test_saturate(self):
        assert INT8.saturate(300) == 127
        assert INT8.saturate(-300) == -128

    def test_invalid_width(self):
        with pytest.raises(TypeMappingError):
            MachineIntType(12)

    def test_storage_bytes(self):
        assert INT16.storage_bytes() == 2
        assert INT32.storage_bytes() == 4
        assert BOOL8.storage_bytes() == 1


class TestFixedPoint:
    def test_encode_decode_roundtrip(self):
        encoding = FixedPointType(16, scale=0.1)
        raw = encoding.encode(123.4)
        assert abs(encoding.decode(raw) - 123.4) <= encoding.resolution / 2

    def test_quantization_error_bounded_by_half_lsb(self):
        encoding = FixedPointType(16, scale=0.25)
        for value in (0.0, 1.1, 100.37, -55.55):
            assert encoding.quantization_error(value) <= 0.125 + 1e-12

    def test_saturation_and_strict_mode(self):
        encoding = FixedPointType(8, scale=1.0)
        assert encoding.encode(1000) == 127
        with pytest.raises(QuantizationError):
            encoding.encode(1000, saturate=False)

    def test_nan_rejected(self):
        with pytest.raises(QuantizationError):
            FixedPointType(16, 0.1).encode(float("nan"))

    def test_offset_encoding(self):
        encoding = FixedPointType(8, scale=0.5, offset=-40.0, signed=False)
        assert encoding.decode(encoding.encode(-40.0)) == pytest.approx(-40.0)
        assert encoding.min_physical == pytest.approx(-40.0)

    def test_invalid_scale(self):
        with pytest.raises(TypeMappingError):
            FixedPointType(16, scale=0.0)


class TestImplEnum:
    def test_width_follows_literal_count(self):
        small = ImplEnumType(EnumType("S", ["a", "b", "c"]))
        assert small.bits == 8
        wide = ImplEnumType(EnumType("W", [f"l{i}" for i in range(300)]))
        assert wide.bits == 16

    def test_encode_decode(self):
        impl = ImplEnumType(EnumType("E", ["x", "y", "z"]))
        assert impl.decode(impl.encode("y")) == "y"
        with pytest.raises(QuantizationError):
            impl.decode(9)


class TestImplementationChoice:
    def test_bool_maps_to_bool8(self):
        assert choose_implementation_type(BOOL) is BOOL8

    def test_bounded_int_maps_to_smallest_width(self):
        assert choose_implementation_type(IntType(0, 100)).bits == 8
        assert choose_implementation_type(IntType(0, 30000)).bits == 16
        assert choose_implementation_type(IntType(0, 100000)).bits == 32

    def test_unbounded_int_maps_to_int32(self):
        assert choose_implementation_type(INT).bits == 32

    def test_float_needs_range(self):
        with pytest.raises(TypeMappingError):
            choose_implementation_type(FLOAT)
        impl = choose_implementation_type(FloatType(0.0, 8000.0))
        assert isinstance(impl, FixedPointType)
        assert impl.max_physical >= 8000.0

    def test_float_with_explicit_resolution(self):
        impl = choose_implementation_type(FloatType(0.0, 100.0), resolution=0.01)
        assert isinstance(impl, FixedPointType)
        assert impl.resolution == pytest.approx(0.01)


class TestImplementationMapping:
    def test_assign_and_lookup(self):
        mapping = ImplementationMapping()
        mapping.assign_default("n", FloatType(0.0, 8000.0))
        mapping.assign("flag", BOOL, BOOL8, "manual")
        assert "n" in mapping and "flag" in mapping
        assert len(mapping) == 2
        assert mapping.lookup("flag").implementation_type is BOOL8
        assert mapping.signals() == ["flag", "n"]
        assert mapping.total_payload_bytes() >= 3
        assert "flag" in mapping.report()

    def test_lookup_missing_raises(self):
        with pytest.raises(TypeMappingError):
            ImplementationMapping().lookup("missing")
