"""Direct unit tests of the hierarchical causality analysis
(``repro.simulation.causality``) and its lint-registry promotion.
"""

import pytest

from repro.analysis.lint import lint_causality
from repro.core.components import ExpressionComponent
from repro.core.errors import CausalityError
from repro.core.validation import Severity
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.simulation.causality import (analyze_causality, assert_causal,
                                        instantaneous_path_exists)


def _expr(name, out_expr, inputs):
    comp = ExpressionComponent(name, {"out": out_expr})
    for port in inputs:
        comp.add_input(port)
    comp.add_output("out")
    return comp


def _loop(delayed=False):
    dfd = DataFlowDiagram("Loop")
    dfd.add_input("x")
    dfd.add_output("out")
    first = _expr("F", "a + b", ["a", "b"])
    second = _expr("G", "c * 2", ["c"])
    dfd.add_subcomponent(first)
    dfd.add_subcomponent(second)
    dfd.connect("x", "F.a")
    dfd.connect("F.out", "G.c")
    dfd.connect("F.out", "out")
    if delayed:
        delay = UnitDelay("Z", initial=0)
        dfd.add_subcomponent(delay)
        dfd.connect("G.out", "Z.in1")
        dfd.connect("Z.out", "F.b")
    else:
        dfd.connect("G.out", "F.b")
    return dfd


def _nested_loop():
    top = DataFlowDiagram("Top")
    top.add_input("x")
    top.add_output("out")
    inner = _loop()
    top.add_subcomponent(inner)
    top.connect("x", "Loop.x")
    top.connect("Loop.out", "out")
    return top


def test_acyclic_model_is_causal():
    analysis = analyze_causality(_loop(delayed=True))
    assert analysis.is_causal
    assert not analysis.cycles()
    assert analysis.composite_count() == 1
    order = analysis.results[0].order
    assert order.index("F") < order.index("G")


def test_instantaneous_loop_is_detected_with_members():
    analysis = analyze_causality(_loop())
    assert not analysis.is_causal
    cycles = analysis.cycles()
    assert len(cycles) == 1
    assert cycles[0].cycle == ["F", "G"]


def test_delay_breaks_the_loop():
    # the same topology is causal once the feedback edge goes through Z
    assert analyze_causality(_loop(delayed=True)).is_causal


def test_nested_composites_are_all_analysed():
    analysis = analyze_causality(_nested_loop())
    assert analysis.composite_count() == 2
    cycles = analysis.cycles()
    assert len(cycles) == 1
    assert cycles[0].component.endswith("Loop")


def test_atomic_root_has_no_results():
    analysis = analyze_causality(_expr("Solo", "a", ["a"]))
    assert analysis.is_causal
    assert analysis.composite_count() == 0


def test_assert_causal_raises_with_cycle_members():
    with pytest.raises(CausalityError, match="F, G"):
        assert_causal(_loop())
    assert assert_causal(_loop(delayed=True)).is_causal


def test_to_report_severities():
    report = analyze_causality(_nested_loop()).to_report()
    errors = [e for e in report.issues if e.severity is Severity.ERROR]
    infos = [e for e in report.issues if e.severity is Severity.INFO]
    assert len(errors) == 1 and errors[0].rule == "causality"
    assert len(infos) == 1  # the causal Top composite still reports its order
    assert errors[0].suggestion


def test_instantaneous_path_exists():
    model = _loop(delayed=True)
    assert instantaneous_path_exists(model, "F", "G")
    # the feedback path G -> F goes through the delay, so no
    # instantaneous dependency runs backwards
    assert not instantaneous_path_exists(model, "G", "F")


def test_lint_registry_promotion():
    report = lint_causality(_loop())
    findings = report.by_rule("causality")
    errors = [f for f in findings if f.severity is Severity.ERROR]
    assert errors and "F" in errors[0].message and "G" in errors[0].message
