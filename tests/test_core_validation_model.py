"""Tests for the validation framework and the coherent model container."""

import pytest

from repro.core.errors import ModelError, UnknownElementError, ValidationError
from repro.core.model import (AbstractionLevel, AutoModeModel, LEVEL_ORDER,
                              is_more_abstract)
from repro.core.validation import (Issue, RuleSet, Severity, ValidationReport,
                                   merge_reports)


class TestValidationReport:
    def test_add_and_query(self):
        report = ValidationReport("subject")
        report.error("r1", "broken", element="x")
        report.warning("r2", "odd")
        report.info("r3", "fyi")
        assert len(report.errors()) == 1
        assert len(report.warnings()) == 1
        assert len(report.infos()) == 1
        assert not report.is_valid()
        assert report.by_rule("r1")[0].message == "broken"
        assert "1 error" in report.summary()
        assert "broken" in report.describe()

    def test_valid_report(self):
        report = ValidationReport("subject")
        report.info("ok", "all fine")
        assert report.is_valid()
        report.raise_on_errors()  # must not raise

    def test_raise_on_errors(self):
        report = ValidationReport("subject")
        report.error("bad", "nope", suggestion="fix it")
        with pytest.raises(ValidationError):
            report.raise_on_errors()

    def test_issue_describe_contains_suggestion(self):
        issue = Issue("rule", Severity.WARNING, "msg", "elem", "try this")
        text = issue.describe()
        assert "rule" in text and "elem" in text and "try this" in text

    def test_extend_and_merge(self):
        first = ValidationReport("a")
        first.error("r", "x")
        second = ValidationReport("b")
        second.warning("r", "y")
        merged = merge_reports("both", [first, second])
        assert len(merged.issues) == 2
        assert merged.subject == "both"


class TestRuleSet:
    def test_rules_applied_in_order(self):
        rules = RuleSet("demo")
        calls = []

        @rules.rule("first")
        def _first(model, report):
            calls.append("first")

        @rules.rule("second")
        def _second(model, report):
            calls.append("second")
            report.info("second", "ran")

        report = rules.apply(object(), subject="thing")
        assert calls == ["first", "second"]
        assert len(report.infos()) == 1
        assert len(rules) == 2
        assert rules.rule_ids() == ["first", "second"]

    def test_duplicate_rule_id_rejected(self):
        rules = RuleSet("demo")
        rules.add("x", lambda model, report: None)
        with pytest.raises(ValidationError):
            rules.add("x", lambda model, report: None)


class TestAbstractionLevels:
    def test_level_order(self):
        assert LEVEL_ORDER[0] is AbstractionLevel.FAA
        assert LEVEL_ORDER[-1] is AbstractionLevel.OA

    def test_is_more_abstract(self):
        assert is_more_abstract(AbstractionLevel.FAA, AbstractionLevel.LA)
        assert not is_more_abstract(AbstractionLevel.OA, AbstractionLevel.FDA)

    def test_str_contains_both_names(self):
        assert "FDA" in str(AbstractionLevel.FDA)
        assert "Functional Design" in str(AbstractionLevel.FDA)


class TestAutoModeModel:
    def test_level_management(self):
        model = AutoModeModel("Engine", "demo")
        model.set_level(AbstractionLevel.FAA, object())
        model.set_level(AbstractionLevel.LA, object())
        assert model.has_level(AbstractionLevel.FAA)
        assert not model.has_level(AbstractionLevel.FDA)
        assert model.defined_levels() == [AbstractionLevel.FAA,
                                          AbstractionLevel.LA]
        assert model.most_concrete_level() is AbstractionLevel.LA
        with pytest.raises(UnknownElementError):
            model.level(AbstractionLevel.OA)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            AutoModeModel("")

    def test_history_recording(self):
        model = AutoModeModel("Engine")
        model.record("white-box-reengineering", "reengineering",
                     AbstractionLevel.OA, AbstractionLevel.FDA, modules=6)
        model.record("clustering", "refinement",
                     AbstractionLevel.FDA, AbstractionLevel.LA)
        assert len(model.history) == 2
        assert len(model.history_of_kind("refinement")) == 1
        assert model.history[0].details["modules"] == 6
        assert "OA -> FDA" in model.history[0].describe()

    def test_describe_lists_levels_and_history(self):
        model = AutoModeModel("Engine")
        model.set_level(AbstractionLevel.FDA, AutoModeModel("inner"))
        model.record("step", "refactoring")
        text = model.describe()
        assert "[x] FDA" in text
        assert "[ ] OA" in text
        assert "step" in text
        assert "FDA" in repr(model)
