"""Differential tests: the compiled engine is trace-equivalent to the interpreter.

Randomized component diagrams (DFD/SSD topologies with delayed and
instantaneous channels, nested composites, feedback through delays,
multirate CCDs, mode-transition diagrams, periodic/sampled/event gating) are
executed by both the reference :class:`~repro.simulation.engine.Simulator`
and the :class:`~repro.simulation.compiled.CompiledSimulator`; traces must
be tick-for-tick identical, including ``mode_history``.

All generators are seeded (``random.Random(seed)``) so failures reproduce
deterministically; re-run a failing case with its seed from the test id.
"""

import random

import pytest

from repro.core.clocks import EventClock, SampledClock, every
from repro.core.components import ExpressionComponent, FunctionComponent
from repro.core.types import FloatType
from repro.core.values import ABSENT, Stream
from repro.notations.blocks import Add, Gain, Hold, UnitDelay
from repro.notations.ccd import Cluster, ClusterCommunicationDiagram
from repro.notations.dfd import DataFlowDiagram
from repro.notations.mtd import ModeTransitionDiagram
from repro.notations.ssd import SSDComponent
from repro.simulation import (ClockGatedComponent, CompiledSimulator,
                              ScenarioSuite, Simulator, first_difference,
                              simulate, simulate_ccd, simulate_ccd_compiled,
                              simulate_compiled, streams_equal)

FAST_SEEDS = range(6)
SLOW_SEEDS = range(6, 30)


def assert_engines_agree(component, stimuli, ticks, check_types=False):
    """Run both engines and fail with the first differing (signal, tick)."""
    reference = Simulator(component, check_types=check_types).run(stimuli, ticks)
    compiled = CompiledSimulator(component, check_types=check_types).run(
        stimuli, ticks)
    difference = first_difference(reference, compiled)
    assert difference is None, (
        f"engines diverge on {component.name!r}: {difference}")
    # inputs and presence bookkeeping must match too, not just outputs
    assert sorted(reference.inputs) == sorted(compiled.inputs)
    for name, stream in reference.inputs.items():
        assert streams_equal(stream, compiled.inputs[name]), name
    assert reference.mode_history == compiled.mode_history
    assert reference.ticks == compiled.ticks
    return reference, compiled


# -- randomized model generators -------------------------------------------------


def random_dataflow(rng, name="R", depth=0, delayed_default=False):
    """A random (possibly hierarchical) composite with feedback via delays."""
    diagram_class = SSDComponent if delayed_default else DataFlowDiagram
    dfd = diagram_class(name)
    n_inputs = rng.randint(1, 3)
    for index in range(n_inputs):
        dfd.add_input(f"u{index}")
    sources = [f"u{index}" for index in range(n_inputs)]

    # optional feedback: a delay whose input is wired up at the end
    feedback_delay = None
    if rng.random() < 0.5:
        feedback_delay = UnitDelay("FB", initial=rng.randint(-2, 2))
        dfd.add_subcomponent(feedback_delay)
        sources.append("FB.out")

    n_blocks = rng.randint(2, 6)
    for index in range(n_blocks):
        kind = rng.choice(["expr", "expr", "gain", "delay", "add", "hold",
                           "nested" if depth < 2 else "expr"])
        block_name = f"N{depth}_{index}"
        if kind == "expr":
            arity = min(len(sources), rng.randint(1, 2))
            chosen = rng.sample(sources, arity)
            variables = [f"x{i}" for i in range(arity)]
            expression = " + ".join(
                f"{rng.randint(1, 3)} * {var}" for var in variables)
            block = ExpressionComponent(block_name, {"out": expression})
            block.declare_interface_from_expressions()
            dfd.add_subcomponent(block)
            for var, source in zip(variables, chosen):
                dfd.connect(source, f"{block_name}.{var}",
                            delayed=_maybe_delay(rng),
                            initial_value=rng.randint(0, 3))
        elif kind == "gain":
            block = Gain(block_name, rng.choice([2, 0.5, -1, 3]))
            dfd.add_subcomponent(block)
            dfd.connect(rng.choice(sources), f"{block_name}.in1",
                        delayed=_maybe_delay(rng),
                        initial_value=rng.randint(0, 3))
        elif kind == "delay":
            block = UnitDelay(block_name, initial=rng.randint(-1, 1))
            dfd.add_subcomponent(block)
            dfd.connect(rng.choice(sources), f"{block_name}.in1")
        elif kind == "add":
            block = Add(block_name, n_inputs=2)
            dfd.add_subcomponent(block)
            for port in ("in1", "in2"):
                dfd.connect(rng.choice(sources), f"{block_name}.{port}",
                            delayed=_maybe_delay(rng),
                            initial_value=rng.randint(0, 3))
        elif kind == "hold":
            block = Hold(block_name, initial=rng.randint(0, 2))
            dfd.add_subcomponent(block)
            dfd.connect(rng.choice(sources), f"{block_name}.in1")
        else:  # nested composite
            block = random_dataflow(rng, name=block_name, depth=depth + 1,
                                    delayed_default=rng.random() < 0.3)
            dfd.add_subcomponent(block)
            for port in block.input_names():
                dfd.connect(rng.choice(sources), f"{block_name}.{port}",
                            delayed=_maybe_delay(rng),
                            initial_value=rng.randint(0, 3))
        sources.extend(f"{block_name}.{port}" for port in block.output_names())

    if feedback_delay is not None:
        candidates = [s for s in sources if s.endswith(".out")
                      and not s.startswith("FB.")]
        dfd.connect(rng.choice(candidates) if candidates else "u0", "FB.in1")

    n_outputs = rng.randint(1, 2)
    block_sources = [s for s in sources if "." in s]
    for index in range(n_outputs):
        dfd.add_output(f"y{index}")
        dfd.connect(rng.choice(block_sources or sources), f"y{index}",
                    delayed=_maybe_delay(rng), initial_value=rng.randint(0, 3))
    return dfd


def _maybe_delay(rng):
    return True if rng.random() < 0.25 else None


def random_stimuli(rng, component, ticks):
    """Per-input random streams with random absence gaps."""
    stimuli = {}
    for name in component.input_names():
        values = [ABSENT if rng.random() < 0.2 else rng.randint(-5, 5)
                  for _ in range(ticks)]
        stimuli[name] = Stream(values)
    return stimuli


def random_ccd(rng, name="RandCCD"):
    """A pipeline CCD of clusters with random harmonic rates."""
    ccd = ClusterCommunicationDiagram(name)
    ccd.add_input("u", FloatType(-1e6, 1e6), every(1))
    n_clusters = rng.randint(2, 4)
    previous = None
    for index in range(n_clusters):
        rate = every(rng.choice([1, 2, 4]))
        cluster = Cluster(f"C{index}", rate=rate)
        cluster.add_input("in1", FloatType(-1e6, 1e6), rate)
        cluster.add_output("out", FloatType(-1e6, 1e6), rate)
        inner = ExpressionComponent(
            "F", {"out": f"in1 * {rng.randint(1, 3)} + {rng.randint(0, 2)}"})
        inner.declare_interface_from_expressions()
        cluster.add_subcomponent(inner)
        cluster.connect("in1", "F.in1")
        cluster.connect("F.out", "out")
        ccd.add_cluster(cluster)
        if previous is None:
            ccd.connect("u", f"C{index}.in1")
        else:
            # inter-cluster channels; some carry a unit delay (rate transition)
            ccd.connect(f"{previous}.out", f"C{index}.in1",
                        delayed=rng.random() < 0.5,
                        initial_value=float(rng.randint(0, 3)))
        previous = f"C{index}"
    ccd.add_output("y", FloatType(-1e6, 1e6), ccd.cluster(previous).rate)
    ccd.connect(f"{previous}.out", "y")
    return ccd


def random_mtd(rng, name="RandMTD"):
    """A small random mode-transition diagram over one numeric input."""
    mtd = ModeTransitionDiagram(name)
    mtd.add_input("x")
    mtd.add_output("out")
    mtd.add_output("mode")
    n_modes = rng.randint(2, 3)
    for index in range(n_modes):
        behavior = None
        if rng.random() < 0.8:
            behavior = ExpressionComponent(
                f"B{index}", {"out": f"x * {index + 1}"})
            behavior.declare_interface_from_expressions()
        mtd.add_mode(f"M{index}", behavior)
    for index in range(n_modes):
        target = rng.randrange(n_modes)
        threshold = rng.randint(-2, 2)
        mtd.add_transition(f"M{index}", f"M{target}",
                           f"x > {threshold}", priority=rng.randint(0, 2))
        if rng.random() < 0.5:
            mtd.add_transition(f"M{index}", f"M{rng.randrange(n_modes)}",
                               f"x < {threshold - 2}",
                               priority=rng.randint(0, 2))
    return mtd


def random_gate_clock(rng):
    kind = rng.choice(["periodic", "event", "sampled"])
    if kind == "periodic":
        period = rng.choice([1, 2, 3, 5])
        return every(period, phase=rng.randrange(period))
    if kind == "event":
        ticks = sorted(rng.sample(range(40), rng.randint(1, 12)))
        return EventClock(ticks)
    period = rng.choice([1, 2])
    return SampledClock(every(period), lambda tick: tick % 7 < 3,
                        description="tick%7<3")


# -- differential properties ---------------------------------------------------


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_dataflow_equivalence(seed):
    rng = random.Random(seed)
    component = random_dataflow(rng, name=f"R{seed}")
    ticks = rng.randint(5, 40)
    assert_engines_agree(component, random_stimuli(rng, component, ticks), ticks)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_random_dataflow_equivalence_extended(seed):
    rng = random.Random(seed)
    component = random_dataflow(rng, name=f"R{seed}")
    ticks = rng.randint(30, 120)
    assert_engines_agree(component, random_stimuli(rng, component, ticks), ticks)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_ccd_equivalence(seed):
    rng = random.Random(1000 + seed)
    ccd = random_ccd(rng, name=f"RandCCD{seed}")
    ticks = rng.randint(8, 40)
    stimuli = {"u": [float(rng.randint(-5, 5)) for _ in range(ticks)]}
    reference = simulate_ccd(ccd, stimuli, ticks=ticks)
    compiled = simulate_ccd_compiled(ccd, stimuli, ticks=ticks)
    assert first_difference(reference, compiled) is None


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_random_ccd_equivalence_extended(seed):
    rng = random.Random(1000 + seed)
    ccd = random_ccd(rng, name=f"RandCCD{seed}")
    ticks = rng.randint(40, 160)
    stimuli = {"u": [float(rng.randint(-5, 5)) for _ in range(ticks)]}
    reference = simulate_ccd(ccd, stimuli, ticks=ticks)
    compiled = simulate_ccd_compiled(ccd, stimuli, ticks=ticks)
    assert first_difference(reference, compiled) is None


@pytest.mark.parametrize("seed", range(12))
def test_random_mtd_equivalence_including_mode_history(seed):
    rng = random.Random(2000 + seed)
    mtd = random_mtd(rng, name=f"RandMTD{seed}")
    ticks = 30
    stimuli = random_stimuli(rng, mtd, ticks)
    reference, compiled = assert_engines_agree(mtd, stimuli, ticks)
    assert len(reference.mode_history) == ticks


@pytest.mark.parametrize("seed", range(8))
def test_random_gated_equivalence(seed):
    rng = random.Random(3000 + seed)
    inner = random_dataflow(rng, name=f"Inner{seed}")
    gated = ClockGatedComponent(inner, random_gate_clock(rng))
    ticks = rng.randint(10, 50)
    assert_engines_agree(gated, random_stimuli(rng, gated, ticks), ticks)


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_equivalence_with_type_checking(seed):
    rng = random.Random(4000 + seed)
    block = ExpressionComponent("F", {"out": "in1 + in2"})
    block.add_input("in1", FloatType(-100.0, 100.0))
    block.add_input("in2", FloatType(-100.0, 100.0))
    block.add_output("out", FloatType(-1000.0, 1000.0))
    ticks = 20
    stimuli = {"in1": [float(rng.randint(-50, 50)) for _ in range(ticks)],
               "in2": [float(rng.randint(-50, 50)) for _ in range(ticks)]}
    assert_engines_agree(block, stimuli, ticks, check_types=True)


# -- targeted structural cases -------------------------------------------------


def test_delayed_boundary_output_channel():
    """A delayed channel straight into a boundary output reads last tick."""
    dfd = DataFlowDiagram("DelayedBoundary")
    dfd.add_input("u")
    dfd.add_output("y")
    gain = Gain("G", 2.0)
    dfd.add_subcomponent(gain)
    dfd.connect("u", "G.in1")
    dfd.connect("G.out", "y", delayed=True, initial_value=99)
    assert_engines_agree(dfd, {"u": [1, 2, 3, 4]}, 4)


def test_undriven_inputs_and_unconnected_outputs():
    dfd = DataFlowDiagram("Sparse")
    dfd.add_input("u")
    dfd.add_output("y")
    add = Add("A", n_inputs=2)  # in2 never driven
    dfd.add_subcomponent(add)
    dfd.connect("u", "A.in1")
    dfd.connect("A.out", "y")
    lonely = Gain("L", 3.0)  # entirely unconnected block
    dfd.add_subcomponent(lonely)
    assert_engines_agree(dfd, {"u": [1, ABSENT, 3]}, 3)


def test_ssd_delayed_semantics_by_default():
    ssd = SSDComponent("S")
    ssd.add_input("u")
    ssd.add_output("y")
    a = Gain("A", 1.0)
    b = Gain("B", 10.0)
    ssd.add(a, b)
    ssd.connect("u", "A.in1")
    ssd.connect("A.out", "B.in1")  # delayed by SSD default
    ssd.connect("B.out", "y")
    reference, _ = assert_engines_agree(ssd, {"u": [1, 2, 3]}, 3)
    assert reference.output("y").values() == [ABSENT, 10.0, 20.0]


def test_feedback_loop_through_delay_state_correction():
    """The delay's state-correction pass must behave identically."""
    dfd = DataFlowDiagram("Accumulator")
    dfd.add_input("u")
    dfd.add_output("y")
    add = ExpressionComponent("ADD", {"out": "a + b"})
    add.declare_interface_from_expressions()
    delay = UnitDelay("Z", initial=0)
    dfd.add(add, delay)
    dfd.connect("u", "ADD.a")
    dfd.connect("Z.out", "ADD.b")
    dfd.connect("ADD.out", "Z.in1")
    dfd.connect("ADD.out", "y")
    reference, _ = assert_engines_agree(dfd, {"u": [1] * 5}, 5)
    assert reference.output("y").values() == [1, 2, 3, 4, 5]


def test_function_component_equivalence():
    def logic(env):
        value = env.get("in1")
        return {"out": value * 2 if value is not ABSENT else ABSENT}

    block = FunctionComponent("F", logic, inputs=["in1"], outputs=["out"])
    assert_engines_agree(block, {"in1": [1, ABSENT, 3]}, 3)


# -- scenario suite ------------------------------------------------------------


def test_scenario_suite_batches_share_one_schedule(door_lock_control):
    from repro.casestudy import crash_scenario
    suite = ScenarioSuite(door_lock_control)
    suite.add("crash", crash_scenario(8), ticks=8)
    suite.add("idle", {}, ticks=6)
    suite.add("storm", {
        "CRSH": [False, True] * 5,
        "T4S": [True, False] * 5,
        "FZG_V": [0.0, 12.0] * 5,
        "V_SPEED": [0.0, 9.0] * 5,
    }, ticks=10)
    traces = suite.run_all()
    assert set(traces) == {"crash", "idle", "storm"}
    assert traces["crash"].ticks == 8
    differences = suite.verify_against_reference()
    assert all(diff is None for diff in differences.values()), differences


def test_scenario_suite_rejects_duplicate_names(door_lock_control):
    from repro.core.errors import SimulationError
    suite = ScenarioSuite(door_lock_control)
    suite.add("a", {}, 1)
    with pytest.raises(SimulationError):
        suite.add("a", {}, 2)


def test_compiled_schedule_is_flat_and_inspectable(engine_ccd):
    from repro.simulation import build_gated_ccd, compile_component
    schedule = compile_component(build_gated_ccd(engine_ccd))
    steps = schedule.linear_steps()
    kinds = {kind for _, kind in steps}
    assert steps[0][1] == "composite"
    assert "gated" in kinds
    assert len(steps) > len(engine_ccd.subcomponents())
    assert schedule.describe().count("\n") == len(steps) - 1


# -- compiled STDs -------------------------------------------------------------


def random_std(rng, name="RandSTD"):
    """A small random state-transition diagram with variables and emissions."""
    from repro.notations.std import StateTransitionDiagram
    std = StateTransitionDiagram(name)
    std.add_input("x")
    std.add_output("out")
    std.add_output("state")
    std.add_variable("count", rng.randint(-2, 2))
    n_states = rng.randint(2, 4)
    for index in range(n_states):
        emissions = {}
        if rng.random() < 0.7:
            emissions["out"] = f"x * {index + 1} + count"
        std.add_state(f"S{index}", emissions=emissions)
    for index in range(n_states):
        for _ in range(rng.randint(1, 3)):
            actions = {}
            if rng.random() < 0.5:
                actions["count"] = f"count + {rng.randint(1, 2)}"
            if rng.random() < 0.3:
                actions["out"] = f"0 - x"
            std.add_transition(f"S{index}", f"S{rng.randrange(n_states)}",
                               f"x > {rng.randint(-3, 3)}",
                               actions=actions, priority=rng.randint(0, 2))
    return std


def test_compiled_std_kind_registered(crank_sequencer_std):
    from repro.simulation import compile_component
    schedule = compile_component(crank_sequencer_std)
    assert schedule.kind == "std"
    assert schedule.linear_steps() == [("CrankSequencer", "std")]


def test_crank_sequencer_full_start_cycle(crank_sequencer_std):
    """Engine-control case study: prime, crank, run, key-off -- both engines."""
    ticks = 12
    stimuli = {
        "key": [False] + [True] * 9 + [False, False],
        "n": [ABSENT, ABSENT, 150.0, 300.0, 650.0, 900.0, 2200.0, 2200.0,
              2000.0, 1500.0, 400.0, 0.0],
    }
    reference, _ = assert_engines_agree(crank_sequencer_std, stimuli, ticks)
    assert reference.output("state").values() == [
        "Rest", "Priming", "Cranking", "Cranking", "Cranking", "Running",
        "Running", "Running", "Running", "Running", "Rest", "Rest"]
    # the spin-up action overrides the Cranking state emission on entry
    assert reference.output("fuel_pump")[2] == "spin-up"
    assert reference.output("fuel_pump")[3] == "deliver"


def test_crank_sequencer_abort_paths(crank_sequencer_std):
    """Key released mid-prime and mid-crank; attempt counter exhaustion."""
    ticks = 50
    stimuli = {
        "key": [True] * ticks,
        "n": [ABSENT] + [100.0] * (ticks - 1),  # never fires -> counter runs out
    }
    reference, _ = assert_engines_agree(crank_sequencer_std, stimuli, ticks)
    assert "Rest" in reference.output("state").values()[3:]

    stimuli = {"key": [True, True, False, False], "n": [ABSENT] * 4}
    reference, _ = assert_engines_agree(crank_sequencer_std, stimuli, 4)
    assert reference.output("state").values() == ["Priming", "Priming",
                                                 "Rest", "Rest"]


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_std_equivalence(seed):
    rng = random.Random(5000 + seed)
    std = random_std(rng, name=f"RandSTD{seed}")
    ticks = rng.randint(10, 40)
    assert_engines_agree(std, random_stimuli(rng, std, ticks), ticks)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_random_std_equivalence_extended(seed):
    rng = random.Random(5000 + seed)
    std = random_std(rng, name=f"RandSTD{seed}")
    ticks = rng.randint(40, 150)
    assert_engines_agree(std, random_stimuli(rng, std, ticks), ticks)


def test_std_nested_in_dataflow(crank_sequencer_std):
    """An STD compiled inside a composite schedule."""
    dfd = DataFlowDiagram("StarterControl")
    dfd.add_input("key")
    dfd.add_input("n_raw")
    dfd.add_output("pump")
    scale = Gain("Scale", 1.0)
    dfd.add(scale, crank_sequencer_std)
    dfd.connect("key", "CrankSequencer.key")
    dfd.connect("n_raw", "Scale.in1")
    dfd.connect("Scale.out", "CrankSequencer.n")
    dfd.connect("CrankSequencer.fuel_pump", "pump")
    ticks = 10
    stimuli = {"key": [True] * ticks,
               "n_raw": [ABSENT, 100.0, 400.0, 800.0, 1200.0, 1200.0,
                         1000.0, 30.0, ABSENT, ABSENT]}
    assert_engines_agree(dfd, stimuli, ticks)


def test_std_as_mtd_mode_behavior(crank_sequencer_std):
    """STD compiled as the subordinate behaviour of an MTD mode."""
    mtd = ModeTransitionDiagram("StartSupervisor")
    mtd.add_input("key")
    mtd.add_input("n")
    mtd.add_output("fuel_pump")
    mtd.add_output("state")
    mtd.add_output("mode")
    mtd.add_mode("Active", crank_sequencer_std, initial=True)
    mtd.add_mode("Lockout")
    mtd.add_transition("Active", "Lockout", "n > 3000")
    mtd.add_transition("Lockout", "Active", "n < 500")
    ticks = 14
    stimuli = {"key": [True] * ticks,
               "n": [ABSENT, 200.0, 900.0, 2000.0, 3500.0, 3500.0, 400.0,
                     600.0, 900.0, 1200.0, 3200.0, 200.0, 800.0, 900.0]}
    reference, _ = assert_engines_agree(mtd, stimuli, ticks)
    assert "Lockout" in reference.mode_history


def test_std_subclass_with_custom_react_falls_back_to_atomic():
    from repro.notations.std import StateTransitionDiagram
    from repro.simulation import compile_component

    class TracingSTD(StateTransitionDiagram):
        def react(self, inputs, state, tick):
            return super().react(inputs, state, tick)

    std = TracingSTD("Custom")
    std.add_input("x")
    std.add_output("state")
    std.add_state("A", initial=True)
    std.add_state("B")
    std.add_transition("A", "B", "x > 0")
    assert compile_component(std).kind == "atomic"
    assert_engines_agree(std, {"x": [0, 1, 2]}, 3)


def test_scenario_suite_verifies_std_and_expression_models(
        crank_sequencer_std, engine_modes_mtd):
    """Acceptance: verify_against_reference reports no differences for
    STD-bearing and expression-heavy models."""
    suite = ScenarioSuite(crank_sequencer_std)
    suite.add("start", {"key": [True] * 8,
                        "n": [ABSENT, 100.0, 400.0, 900.0, 1500.0, 1500.0,
                              1200.0, 0.0]}, ticks=8)
    suite.add("flicker", {"key": [True, False] * 5,
                          "n": [200.0] * 10}, ticks=10)
    differences = suite.verify_against_reference()
    assert all(diff is None for diff in differences.values()), differences

    rng = random.Random(77)
    expression_heavy = random_dataflow(rng, name="ExprHeavy")
    suite = ScenarioSuite(expression_heavy)
    for index in range(3):
        suite.add(f"s{index}",
                  random_stimuli(rng, expression_heavy, 25), ticks=25)
    differences = suite.verify_against_reference()
    assert all(diff is None for diff in differences.values()), differences

    suite = ScenarioSuite(engine_modes_mtd)
    suite.add("sweep", {"n": [0.0, 300.0, 900.0, 2000.0, 4000.0, 3500.0,
                              1000.0, 0.0],
                        "ped": [0.0, 0.0, 10.0, 50.0, 90.0, 0.0, 0.0, 0.0],
                        "t_eng": 60.0}, ticks=8)
    differences = suite.verify_against_reference()
    assert all(diff is None for diff in differences.values()), differences
