"""The sharded scenario runner: differential equivalence, isolation, order.

Process-pool tests are marked ``parallel`` so constrained sandboxes can run
the suite with ``-m "not parallel"``; the serial and thread executors keep
the runner covered everywhere.
"""

import pytest

from repro.core.errors import SimulationError
from repro.scenarios import RandomWalk, Scenario, run_sharded, shard_scenarios
from repro.simulation import ScenarioSuite, first_difference


def _engine_batch(count=8, ticks=40):
    return [Scenario(f"drive{index}", {
        "n": RandomWalk(seed=index, start=0.0, step=500.0,
                        low=0.0, high=6000.0),
        "ped": RandomWalk(seed=100 + index, start=0.0, step=25.0,
                          low=0.0, high=100.0),
        "t_eng": 15.0 + 5.0 * index,
    }, ticks=ticks) for index in range(count)]


def _assert_same_traces(reference_results, results):
    assert [r.name for r in results] == [r.name for r in reference_results]
    for expected, actual in zip(reference_results, results):
        assert actual.error is None, (actual.name, actual.error)
        assert first_difference(expected.trace, actual.trace) is None
        assert expected.trace.mode_history == actual.trace.mode_history


# -- sharding ---------------------------------------------------------------


def test_shard_scenarios_partitions_evenly():
    batch = _engine_batch(10, ticks=5)
    shards = shard_scenarios(batch, 3)
    assert [len(shard) for shard in shards] == [4, 3, 3]
    flattened = [scenario for shard in shards for scenario in shard]
    assert [s.name for s in flattened] == [s.name for s in batch]
    assert shard_scenarios(batch, 20) == [[scenario] for scenario in batch]
    assert shard_scenarios([], 4) == []
    with pytest.raises(SimulationError):
        shard_scenarios(batch, 0)


# -- serial / thread executors (run everywhere) -----------------------------


def test_serial_runner_matches_scenario_suite(engine_modes_mtd):
    batch = _engine_batch()
    suite = ScenarioSuite(engine_modes_mtd)
    for scenario in batch:
        suite.add(scenario.name, scenario.stimuli, scenario.ticks)
    suite_traces = suite.run_all()
    results = run_sharded(engine_modes_mtd, batch, executor="serial")
    for result in results:
        assert result.ok
        assert first_difference(suite_traces[result.name], result.trace) is None
        assert suite_traces[result.name].mode_history \
            == result.trace.mode_history


def test_thread_runner_matches_serial(engine_modes_mtd):
    batch = _engine_batch()
    serial = run_sharded(engine_modes_mtd, batch, executor="serial")
    threaded = run_sharded(engine_modes_mtd, batch, executor="thread",
                           max_workers=4)
    _assert_same_traces(serial, threaded)


def test_thread_runner_with_shared_generator_instance(engine_modes_mtd):
    # one generator object shared by every scenario (scenario_grid's `base`
    # does exactly this): concurrent cache extension must stay identical to
    # the serial draw order
    shared = RandomWalk(seed=42, start=1000.0, step=300.0,
                        low=0.0, high=6000.0)
    batch = [Scenario(f"shared{index}",
                      {"n": shared, "ped": float(index), "t_eng": 40.0},
                      ticks=120) for index in range(8)]
    expected = RandomWalk(seed=42, start=1000.0, step=300.0,
                          low=0.0, high=6000.0).materialize(120)
    threaded = run_sharded(engine_modes_mtd, batch, executor="thread",
                           max_workers=4)
    for result in threaded:
        assert result.ok
        assert result.trace.input("n").values() == expected
    assert len(shared.materialize(120)) == 120


def test_runner_streams_results_via_callback(engine_modes_mtd):
    batch = _engine_batch(5, ticks=10)
    seen = []
    results = run_sharded(engine_modes_mtd, batch, executor="thread",
                          max_workers=2, on_result=seen.append)
    assert sorted(r.name for r in seen) == sorted(r.name for r in results)


def test_runner_isolates_failing_scenarios(engine_modes_mtd):
    def exploding(tick):
        if tick >= 3:
            raise ValueError("sensor model exploded")
        return 0.0

    batch = _engine_batch(4, ticks=20)
    batch.insert(2, Scenario("boom", {"n": exploding}, ticks=20))
    results = run_sharded(engine_modes_mtd, batch, executor="serial")
    assert [r.name for r in results] \
        == ["drive0", "drive1", "boom", "drive2", "drive3"]
    failed = results[2]
    assert not failed.ok and "sensor model exploded" in failed.error
    assert failed.trace is None
    assert all(r.ok for r in results if r.name != "boom")


def test_runner_rejects_bad_batches(engine_modes_mtd):
    with pytest.raises(SimulationError):
        run_sharded(engine_modes_mtd, [("not", "a", "scenario")])
    duplicate = [Scenario("x", {}, 2), Scenario("x", {}, 3)]
    with pytest.raises(SimulationError):
        run_sharded(engine_modes_mtd, duplicate)
    with pytest.raises(SimulationError):
        run_sharded(engine_modes_mtd, [Scenario("ok", {}, 2)],
                    executor="gpu")
    assert run_sharded(engine_modes_mtd, []) == []


def test_runner_rejects_structure_only_components():
    from repro.core.components import Component
    shell = Component("InterfaceOnly")
    with pytest.raises(SimulationError):
        run_sharded(shell, [Scenario("s", {}, 1)])


def test_unpicklable_model_gets_a_clear_error(engine_modes_mtd):
    from repro.core.components import FunctionComponent
    block = FunctionComponent("Opaque", lambda inputs: {"out": 1.0})
    block.add_input("in1")
    block.add_output("out")
    with pytest.raises(SimulationError, match="thread"):
        run_sharded(block, [Scenario("s", {"in1": 1.0}, 2)],
                    executor="process")


def test_collect_modes_observes_hierarchical_machines(engine_modes_mtd):
    batch = _engine_batch(2, ticks=30)
    results = run_sharded(engine_modes_mtd, batch, executor="serial",
                          collect_modes=True)
    for result in results:
        histories = result.mode_paths
        assert "EngineOperationModes" in histories
        assert len(histories["EngineOperationModes"]) == 30
        assert histories["EngineOperationModes"] == \
            result.trace.mode_history


# -- process executor (marked parallel) -------------------------------------


@pytest.mark.parallel
def test_process_runner_traces_identical_to_serial(engine_modes_mtd):
    batch = _engine_batch(8, ticks=50)
    serial = run_sharded(engine_modes_mtd, batch, executor="serial",
                         collect_modes=True)
    sharded = run_sharded(engine_modes_mtd, batch, executor="process",
                          max_workers=2, collect_modes=True)
    _assert_same_traces(serial, sharded)
    for expected, actual in zip(serial, sharded):
        assert expected.mode_paths == actual.mode_paths


@pytest.mark.parallel
def test_process_runner_chunked_submission(engine_modes_mtd):
    batch = _engine_batch(6, ticks=20)
    serial = run_sharded(engine_modes_mtd, batch, executor="serial")
    chunked = run_sharded(engine_modes_mtd, batch, executor="process",
                          max_workers=2, chunk_size=3)
    _assert_same_traces(serial, chunked)


@pytest.mark.parallel
def test_process_runner_isolates_unpicklable_stimuli(engine_modes_mtd):
    batch = _engine_batch(3, ticks=10)
    batch.append(Scenario("lambda", {"n": lambda tick: 0.0}, ticks=10))
    results = run_sharded(engine_modes_mtd, batch, executor="process",
                          max_workers=2)
    by_name = {result.name: result for result in results}
    assert not by_name["lambda"].ok
    assert all(by_name[s.name].ok for s in batch[:3])


@pytest.mark.parallel
def test_scenario_suite_run_parallel_matches_run_all(engine_modes_mtd):
    suite = ScenarioSuite(engine_modes_mtd)
    for scenario in _engine_batch(6, ticks=25):
        suite.add(scenario.name, scenario.stimuli, scenario.ticks)
    serial = suite.run_all()
    parallel = suite.run_parallel(max_workers=2)
    assert list(parallel) == list(serial)
    for name in serial:
        assert first_difference(serial[name], parallel[name]) is None
        assert serial[name].mode_history == parallel[name].mode_history


def test_scenario_suite_run_parallel_thread_fallback(engine_modes_mtd):
    suite = ScenarioSuite(engine_modes_mtd)
    for scenario in _engine_batch(4, ticks=15):
        suite.add(scenario.name, scenario.stimuli, scenario.ticks)
    serial = suite.run_all()
    parallel = suite.run_parallel(max_workers=2, executor="thread")
    assert list(parallel) == list(serial)
    for name in serial:
        assert first_difference(serial[name], parallel[name]) is None


def test_scenario_suite_run_parallel_propagates_failures(engine_modes_mtd):
    def exploding(tick):
        raise RuntimeError("bad stimulus")

    suite = ScenarioSuite(engine_modes_mtd)
    suite.add("boom", {"n": exploding}, ticks=5)
    with pytest.raises(SimulationError, match="boom"):
        suite.run_parallel(executor="thread")


# -- satellite: ScenarioSuite.add tick validation ---------------------------


def test_scenario_suite_add_rejects_non_positive_ticks(engine_modes_mtd):
    suite = ScenarioSuite(engine_modes_mtd)
    with pytest.raises(SimulationError, match="positive integer"):
        suite.add("zero", {}, ticks=0)
    with pytest.raises(SimulationError, match="positive integer"):
        suite.add("negative", {}, ticks=-5)
    with pytest.raises(SimulationError, match="positive integer"):
        suite.add("fractional", {}, ticks=2.5)
    with pytest.raises(SimulationError, match="positive integer"):
        suite.add("boolean", {}, ticks=True)
    suite.add("fine", {}, ticks=1)
    assert suite.names() == ["fine"]


def test_scenario_suite_scenarios_accessor(engine_modes_mtd):
    suite = ScenarioSuite(engine_modes_mtd)
    suite.add("a", {"n": 100.0}, ticks=7)
    scenarios = suite.scenarios()
    assert len(scenarios) == 1
    assert isinstance(scenarios[0], Scenario)
    assert scenarios[0].name == "a"
    assert scenarios[0].ticks == 7
    assert scenarios[0].stimuli == {"n": 100.0}


# -- satellite: batched dispatch (backend="batch") --------------------------


def _flattenable_engine():
    """The engine-mode MTD wrapped in a composite so the root flattens
    (batch backend requirement); the MTD itself stays a nested leaf."""
    import pytest as _pytest
    _pytest.importorskip("numpy")
    from repro.casestudy import build_engine_modes_mtd
    from repro.notations.dfd import DataFlowDiagram

    dfd = DataFlowDiagram("EngineSystem")
    mtd = build_engine_modes_mtd()
    dfd.add_subcomponent(mtd)
    for port in ("n", "ped", "t_eng"):
        dfd.add_input(port)
        dfd.connect(port, f"EngineOperationModes.{port}")
    for port in ("fuel_factor", "mode"):
        dfd.add_output(port)
        dfd.connect(f"EngineOperationModes.{port}", port)
    return dfd


def test_batch_backend_serial_matches_per_scenario(engine_modes_mtd):
    model = _flattenable_engine()
    batch = _engine_batch(8, ticks=30)
    per_scenario = run_sharded(model, batch, executor="serial",
                               collect_modes=True)
    batched = run_sharded(model, batch, executor="serial", backend="batch",
                          collect_modes=True)
    _assert_same_traces(per_scenario, batched)
    for expected, actual in zip(per_scenario, batched):
        assert expected.mode_paths == actual.mode_paths


def test_batch_backend_thread_whole_shard_sweeps():
    model = _flattenable_engine()
    batch = _engine_batch(10, ticks=25)
    serial = run_sharded(model, batch, executor="serial")
    batched = run_sharded(model, batch, executor="thread", backend="batch",
                          max_workers=3)
    _assert_same_traces(serial, batched)
    # more workers than scenarios: shard_scenarios degenerates to
    # singleton sweeps, order and traces unchanged
    small = run_sharded(model, batch[:2], executor="thread", backend="batch",
                        max_workers=16)
    _assert_same_traces(serial[:2], small)


def test_batch_backend_isolates_failing_lane_in_shard():
    def exploding(tick):
        if tick >= 3:
            raise ValueError("sensor model exploded")
        return 0.0

    model = _flattenable_engine()
    batch = _engine_batch(4, ticks=20)
    batch.insert(2, Scenario("boom", {"n": exploding}, ticks=20))
    results = run_sharded(model, batch, executor="serial", backend="batch")
    assert [r.name for r in results] \
        == ["drive0", "drive1", "boom", "drive2", "drive3"]
    failed = results[2]
    assert not failed.ok and "sensor model exploded" in failed.error
    assert failed.trace is None
    assert all(r.ok for r in results if r.name != "boom")
    # identical error string to the per-scenario path
    reference = run_sharded(model, batch, executor="serial")
    assert reference[2].error == failed.error


def test_batch_backend_empty_battery_and_chunk_override():
    model = _flattenable_engine()
    assert run_sharded(model, [], executor="serial", backend="batch") == []
    batch = _engine_batch(7, ticks=10)
    serial = run_sharded(model, batch, executor="serial")
    chunked = run_sharded(model, batch, executor="thread", backend="batch",
                          max_workers=2, chunk_size=3)
    _assert_same_traces(serial, chunked)


def test_batch_backend_rejects_unflattenable_root(engine_modes_mtd):
    import pytest as _pytest
    _pytest.importorskip("numpy")
    batch = _engine_batch(2, ticks=5)
    with pytest.raises(SimulationError, match="not flattenable"):
        run_sharded(engine_modes_mtd, batch, executor="serial",
                    backend="batch")


def test_execute_batch_falls_back_without_batch_schedule(engine_modes_mtd):
    from repro.scenarios import execute_batch
    from repro.simulation import CompiledSimulator
    simulator = CompiledSimulator(engine_modes_mtd)
    batch = _engine_batch(3, ticks=10)
    results = execute_batch(simulator, batch)
    reference = [r for r in run_sharded(engine_modes_mtd, batch,
                                        executor="serial")]
    _assert_same_traces(reference, results)


@pytest.mark.parallel
def test_batch_backend_process_matches_serial():
    model = _flattenable_engine()
    batch = _engine_batch(8, ticks=30)
    serial = run_sharded(model, batch, executor="serial",
                         collect_modes=True)
    sharded = run_sharded(model, batch, executor="process", backend="batch",
                          max_workers=2, collect_modes=True)
    _assert_same_traces(serial, sharded)
    for expected, actual in zip(serial, sharded):
        assert expected.mode_paths == actual.mode_paths
