"""Search determinism: one seed, one outcome -- on every executor.

The search's contract is that a run is a pure function of (model, seed
battery, config): every random decision draws from one seeded
``random.Random``, scenario results are absorbed in scenario order, and
traces are byte-identical across executors (the PR 2 sharding guarantee).
These tests pin the whole chain: corpus, round trajectory and the exported
``SearchReport`` JSON must be byte-identical across repeated runs and
across serial / thread / process execution.
"""

import pytest

from repro.casestudy import build_engine_modes_mtd
from repro.scenarios import Scenario
from repro.search import SearchConfig, search_coverage


def _run(executor: str, seed: int = 7):
    # a fresh model per run: determinism must not lean on shared state
    mtd = build_engine_modes_mtd()
    battery = [Scenario("weak", {"n": 0.0, "ped": 0.0, "t_eng": 20.0},
                        ticks=20)]
    config = SearchConfig(seed=seed, max_rounds=12, population=16,
                          executor=executor, max_workers=4)
    return search_coverage(mtd, battery, config)


def _fingerprint(report):
    return {
        "json": report.to_json(),
        "corpus": [(scenario.name, scenario.ticks,
                    repr(dict(sorted(scenario.stimuli.items()))))
                   for scenario in report.corpus],
        "trajectory": [(stats.index, stats.evaluated, stats.earned,
                        stats.new_modes, stats.new_transitions,
                        stats.transition_coverage)
                       for stats in report.rounds],
        "dropped": report.dropped,
        "evaluations": report.evaluations,
        "stop": report.stop_reason,
    }


def test_same_seed_is_byte_identical_across_runs():
    first, second = _fingerprint(_run("serial")), _fingerprint(_run("serial"))
    assert first == second


def test_different_seeds_explore_differently():
    # not a guarantee in general, but for this model the corpora differ
    first, second = _run("serial", seed=7), _run("serial", seed=8)
    assert first.to_json() != second.to_json()
    # ... while both converge: the outcome is seed-robust
    assert first.transition_coverage() == 1.0
    assert second.transition_coverage() == 1.0


def test_serial_and_thread_executors_agree():
    assert _fingerprint(_run("serial")) == _fingerprint(_run("thread"))


@pytest.mark.parallel
def test_serial_and_process_executors_agree():
    assert _fingerprint(_run("serial")) == _fingerprint(_run("process"))
