"""Tests for the abstraction-level views and the case-study models."""

import pytest

from repro.analysis.metrics import measure_component
from repro.casestudy import (acceleration_scenario, ascet_reference_outputs,
                             build_closed_loop, build_door_lock_control,
                             build_momentum_controller, compare_behaviour,
                             crash_scenario, driving_scenario, fig1_stimuli,
                             reengineered_outputs)
from repro.core.errors import CodeGenError, ModelError
from repro.core.values import is_absent
from repro.levels.faa import FunctionalAnalysisArchitecture
from repro.levels.fda import FunctionalDesignArchitecture
from repro.levels.la import LogicalArchitecture
from repro.levels.oa import OperationalArchitecture
from repro.levels.ta import TechnicalArchitectureLevel
from repro.notations.ssd import SSDComponent
from repro.simulation.engine import simulate
from repro.transformations.deployment import deploy


class TestFAALevel:
    def test_wraps_network_and_classifies_elements(self, door_lock_faa):
        faa = FunctionalAnalysisArchitecture("DoorLock", door_lock_faa)
        assert len(faa.vehicle_functions()) == 2
        assert len(faa.actuators()) == 4
        assert faa.sensors() == []
        assert len(faa.functional_dependencies()) == 6
        assert "DoorLockControl" in faa.describe()

    def test_requires_ssd(self):
        with pytest.raises(ModelError):
            FunctionalAnalysisArchitecture("X", object())  # type: ignore[arg-type]

    def test_validation_includes_conflicts(self, door_lock_faa):
        faa = FunctionalAnalysisArchitecture("DoorLock", door_lock_faa)
        report = faa.validate()
        assert report.is_valid()  # conflicts are warnings
        assert report.by_rule("faa-actuator-conflict")

    def test_conflict_analysis_exposed(self, door_lock_faa):
        faa = FunctionalAnalysisArchitecture("DoorLock", door_lock_faa)
        assert faa.conflict_analysis().has_conflicts()


class TestFDALevel:
    def test_case_study_fda_is_behaviorally_complete(self, reengineered_fda):
        fda = FunctionalDesignArchitecture("Engine", reengineered_fda)
        fda.add_requirement("reuse", "throttle component shared across lines")
        assert fda.is_behaviorally_complete()
        groups = fda.components_by_notation()
        assert len(groups["MTD"]) == 4
        assert fda.mode_summary()["explicit_modes"] == 8
        assert fda.requirements["reuse"]
        report = fda.validate()
        assert report.is_valid()
        assert "software component" in fda.describe()

    def test_incomplete_fda_fails_validation(self):
        from repro.core.components import Component
        ssd = SSDComponent("Incomplete")
        ssd.add_subcomponent(Component("Stub"))
        fda = FunctionalDesignArchitecture("X", ssd)
        assert not fda.is_behaviorally_complete()
        assert not fda.validate().is_valid()


class TestLATALevels:
    def test_la_well_definedness_and_simulation(self, engine_ccd):
        la = LogicalArchitecture("EngineLA", engine_ccd)
        assert len(la.clusters()) == 4
        assert la.cluster_rates()["Monitoring"] == 20
        assert la.deployable_units() == [c.name for c in engine_ccd.clusters()]
        assert not la.is_well_defined()
        assert len(la.missing_rate_transition_delays()) == 1
        scenario = driving_scenario(40)
        trace = la.simulate({"n": scenario["n"], "ped": scenario["ped"],
                             "throttle_angle": scenario["throttle_angle"]},
                            ticks=40)
        assert trace.output("ti").presence_count() > 0
        assert trace.output("idle_correction").presence_count() == 4
        assert "EngineLA" in la.describe()

    def test_ta_level_schedulability(self, engine_ccd):
        deployment = deploy(engine_ccd, ["ECU_Engine", "ECU_Body"],
                            allocation={"SensorProcessing": "ECU_Engine",
                                        "FuelAndIgnition": "ECU_Engine",
                                        "IdleSpeed": "ECU_Body",
                                        "Monitoring": "ECU_Body"})
        ta = TechnicalArchitectureLevel("EngineTA", deployment)
        assert set(ta.ecu_names()) == {"ECU_Engine", "ECU_Body"}
        assert ta.is_schedulable()
        assert ta.validate().is_valid()
        schedules = ta.simulate_schedules()
        assert set(schedules) == {"ECU_Engine", "ECU_Body"}
        assert all(trace.is_schedulable() for trace in schedules.values())
        assert ta.task_of_cluster()["FuelAndIgnition"].startswith("ECU_Engine")
        assert "EngineTA" in ta.describe()


class TestOALevel:
    def test_generation_and_validation(self, engine_ccd, tmp_path):
        deployment = deploy(engine_ccd, ["ECU_Engine", "ECU_Body"],
                            allocation={"SensorProcessing": "ECU_Engine",
                                        "FuelAndIgnition": "ECU_Engine",
                                        "IdleSpeed": "ECU_Body",
                                        "Monitoring": "ECU_Body"})
        oa = OperationalArchitecture("EngineOA", engine_ccd, deployment)
        projects = oa.generate()
        assert set(projects) == {"ECU_Engine", "ECU_Body"}
        assert oa.project("ECU_Engine").total_lines() > 20
        with pytest.raises(CodeGenError):
            oa.project("NoSuchEcu")
        assert oa.validate().is_valid()
        assert oa.total_generated_lines() > 50
        assert len(oa.communication_matrix()) >= 1
        written = oa.write_to(str(tmp_path))
        assert len(written) == sum(len(p.files) for p in projects.values())
        assert "generated project" in oa.describe()


class TestDoorLockCaseStudy:
    def test_fig1_trace_reproduces_absence_pattern(self, door_lock_control):
        trace = simulate(door_lock_control, fig1_stimuli(), ticks=3)
        voltages = trace.input("FZG_V")
        assert voltages[0] == 20.0 and voltages[2] == 23.0
        assert is_absent(voltages[1])
        table = trace.format_table(["FZG_V"])
        assert "-" in table

    def test_crash_scenario_unlocks_all_doors(self, door_lock_control):
        trace = simulate(door_lock_control, crash_scenario(8), ticks=8)
        modes = trace.output("mode").values()
        assert "Locked" in modes
        assert modes[-1] == "CrashUnlocked"
        final_commands = [trace.output(door).last_present()
                          for door in ("T1C", "T2C", "T3C", "T4C")]
        assert final_commands == ["unlock"] * 4


class TestMomentumCaseStudy:
    def test_controller_splits_torque_and_brake(self, momentum_controller):
        trace = simulate(momentum_controller,
                         {"ch1": [-2000.0] * 6, "ch2": [0.0] * 6,
                          "ch3": [0.0] * 6}, ticks=6)
        assert trace.output("engine_torque").last_present() == 0
        assert trace.output("brake_momentum").last_present() > 0

    def test_closed_loop_accelerates_towards_setpoint(self):
        loop = build_closed_loop()
        trace = simulate(loop, acceleration_scenario(80), ticks=80)
        speeds = trace.output("speed").present_values()
        assert speeds[0] == 0.0
        assert max(speeds) > 10.0
        # the speed approaches the setpoint region and stays bounded
        assert all(speed <= 100.0 for speed in speeds)


class TestEngineCaseStudy:
    def test_ascet_project_structure(self, engine_project):
        assert len(engine_project.module_list()) == 6
        assert engine_project.total_if_then_else() == 4
        assert engine_project.total_flags() == 6
        assert len(engine_project.task_list()) == 3

    def test_driving_scenario_covers_operating_regions(self, engine_scenario):
        assert len(engine_scenario["n"]) == 120
        assert max(engine_scenario["n"]) > 4000
        assert min(engine_scenario["n"]) == 0.0
        assert max(engine_scenario["ped"]) > 50

    def test_reengineered_model_matches_original(self, engine_scenario):
        deviations = compare_behaviour(engine_scenario)
        assert max(deviations.values()) == 0.0

    def test_reference_and_reengineered_outputs_cover_fuel_cut(self,
                                                               engine_scenario):
        reference = ascet_reference_outputs(engine_scenario)
        reengineered = reengineered_outputs(engine_scenario)
        assert any(value == 0 for value in reference["ti"][60:])  # overrun cut
        assert reference["ti"] == pytest.approx(reengineered["ti"])

    def test_reengineered_metrics_show_explicit_modes(self, reengineered_fda,
                                                      engine_project):
        metrics = measure_component(reengineered_fda)
        assert metrics.mtd_count == 4
        assert metrics.explicit_modes == 2 * 4
        assert metrics.if_then_else_operators == 0
        assert engine_project.total_if_then_else() == 4
