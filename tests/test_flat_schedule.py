"""Flat schedule IR: backend selection, naming contract, deep hierarchies,
gating predicates, correction barriers and mode observability.

The differential suites in ``tests/test_compiled_equivalence.py`` and the
golden traces already run on the flat path (it is what
:func:`repro.simulation.compile_component` now produces for flattenable
roots); this module pins the *contracts* of the new layer: which roots
flatten, that ``linear_steps``/``describe`` keep the nested naming format,
that compilation is iterative (5000-level regression), that clock-gated
subtrees hold state and suppress emissions across skip ticks exactly like
the interpreter, and that the nested fallback and correction barrier
appear exactly where the semantics require them.
"""

import random

import pytest

from repro.core.components import ExpressionComponent
from repro.core.clocks import EventClock, every
from repro.core.values import ABSENT, Stream
from repro.notations.blocks import Gain, UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.notations.mtd import ModeTransitionDiagram
from repro.simulation import (ClockGatedComponent, CompiledSimulator,
                              FlatSchedule, FlatState, ScenarioSuite,
                              Simulator, build_gated_ccd, compile_component,
                              compile_flat, compile_nested, first_difference,
                              is_flattenable)


def assert_engines_agree(component, stimuli, ticks):
    reference = Simulator(component).run(stimuli, ticks)
    flat_sim = CompiledSimulator(component, backend="flat")
    assert isinstance(flat_sim.schedule, FlatSchedule)
    flat = flat_sim.run(stimuli, ticks)
    difference = first_difference(reference, flat)
    assert difference is None, (
        f"flat engine diverges on {component.name!r}: {difference}")
    assert reference.mode_history == flat.mode_history
    return reference, flat


# -- models --------------------------------------------------------------------


def accumulator_in_composite():
    """Feedback-through-delay accumulator nested one level down."""
    inner = DataFlowDiagram("Inner")
    inner.add_input("u")
    inner.add_output("y")
    add = ExpressionComponent("ADD", {"out": "a + b"})
    add.declare_interface_from_expressions()
    delay = UnitDelay("Z", initial=0)
    inner.add(add, delay)
    inner.connect("u", "ADD.a")
    inner.connect("Z.out", "ADD.b")
    inner.connect("ADD.out", "Z.in1")
    inner.connect("ADD.out", "y")

    outer = DataFlowDiagram("Outer")
    outer.add_input("u")
    outer.add_output("y")
    gain = Gain("G", 2.0)
    outer.add(inner, gain)
    outer.connect("u", "Inner.u")
    outer.connect("Inner.y", "G.in1")
    outer.connect("G.out", "y")
    return outer


def modes_mtd(name="Modes"):
    mtd = ModeTransitionDiagram(name)
    mtd.add_input("x")
    mtd.add_output("out")
    mtd.add_output("mode")
    low = ExpressionComponent("LowB", {"out": "x * 1"})
    low.declare_interface_from_expressions()
    high = ExpressionComponent("HighB", {"out": "x * 10"})
    high.declare_interface_from_expressions()
    mtd.add_mode("Low", low, initial=True)
    mtd.add_mode("High", high)
    mtd.add_transition("Low", "High", "x > 2")
    mtd.add_transition("High", "Low", "x < 1")
    return mtd


def gated_mtd_system(clock, direct=False):
    """An MTD under a clock gate inside a flattenable hierarchy.

    ``direct=False`` gates a composite that *contains* the MTD (the gate
    becomes a flat-IR gating predicate over hoisted leaf ops);
    ``direct=True`` gates the MTD itself (the whole wrapper stays a nested
    ``gated`` leaf).  Both must match the interpreter tick for tick.
    """
    if direct:
        gated = ClockGatedComponent(modes_mtd(), clock, name="Plant")
    else:
        plant = DataFlowDiagram("PlantCore")
        plant.add_input("x")
        plant.add_output("out")
        plant.add_output("mode")
        scale = Gain("Scale", 1.0)
        plant.add(scale, modes_mtd())
        plant.connect("x", "Scale.in1")
        plant.connect("Scale.out", "Modes.x")
        plant.connect("Modes.out", "out")
        plant.connect("Modes.mode", "mode")
        gated = ClockGatedComponent(plant, clock, name="Plant")

    system = DataFlowDiagram("Sys")
    system.add_input("x")
    system.add_output("out")
    system.add_output("mode")
    pre = ExpressionComponent("Pre", {"out": "in1 + 0"})
    pre.declare_interface_from_expressions()
    system.add(pre, gated)
    system.connect("x", "Pre.in1")
    system.connect("Pre.out", "Plant.x")
    system.connect("Plant.out", "out")
    system.connect("Plant.mode", "mode")
    return system


# -- backend selection ---------------------------------------------------------


def test_compile_component_selects_flat_for_flattenable_roots():
    model = accumulator_in_composite()
    assert is_flattenable(model)
    assert isinstance(compile_component(model), FlatSchedule)

    gated = ClockGatedComponent(accumulator_in_composite(), every(2))
    assert is_flattenable(gated)
    assert isinstance(compile_component(gated), FlatSchedule)

    mtd = modes_mtd()
    assert not is_flattenable(mtd)
    assert compile_component(mtd).kind == "mtd"

    gated_mtd = ClockGatedComponent(modes_mtd(), every(2))
    assert not is_flattenable(gated_mtd)
    assert compile_component(gated_mtd).kind == "gated"


def test_custom_react_composite_is_not_flattened():
    class TracingDFD(DataFlowDiagram):
        def react(self, inputs, state, tick):
            return super().react(inputs, state, tick)

    model = TracingDFD("Custom")
    model.add_input("u")
    model.add_output("y")
    gain = Gain("G", 3.0)
    model.add_subcomponent(gain)
    model.connect("u", "G.in1")
    model.connect("G.out", "y")
    assert not is_flattenable(model)
    assert compile_component(model).kind == "atomic"
    reference = Simulator(model).run({"u": [1, 2, 3]}, 3)
    compiled = CompiledSimulator(model).run({"u": [1, 2, 3]}, 3)
    assert first_difference(reference, compiled) is None


def test_compile_flat_rejects_unflattenable_roots():
    from repro.core.errors import SimulationError
    with pytest.raises(SimulationError, match="not flattenable"):
        compile_flat(modes_mtd())
    with pytest.raises(SimulationError, match="unknown schedule backend"):
        CompiledSimulator(accumulator_in_composite(), backend="turbo")


# -- naming contract (satellite: linear_steps/describe stay stable) ------------


def test_linear_steps_pin_exact_format():
    schedule = compile_flat(accumulator_in_composite())
    assert schedule.linear_steps() == [
        ("Outer", "composite"),
        ("Outer/Inner", "composite"),
        ("Outer/Inner/Z", "atomic"),
        ("Outer/Inner/ADD", "atomic"),
        ("Outer/G", "atomic"),
    ]
    assert schedule.linear_steps("Top") == [
        ("Top/Outer", "composite"),
        ("Top/Outer/Inner", "composite"),
        ("Top/Outer/Inner/Z", "atomic"),
        ("Top/Outer/Inner/ADD", "atomic"),
        ("Top/Outer/G", "atomic"),
    ]
    # describe() pins the exact rendering: right-aligned kind, two spaces,
    # hierarchical path -- the format debug tooling greps for.
    assert schedule.describe() == (
        " composite  Outer\n"
        " composite  Outer/Inner\n"
        "    atomic  Outer/Inner/Z\n"
        "    atomic  Outer/Inner/ADD\n"
        "    atomic  Outer/G")


@pytest.mark.parametrize("direct", [False, True])
def test_linear_steps_match_nested_engine_exactly(direct):
    model = gated_mtd_system(every(3), direct=direct)
    flat = compile_flat(model)
    nested = compile_nested(model)
    assert flat.linear_steps() == nested.linear_steps()
    assert flat.describe() == nested.describe()


def test_linear_steps_match_nested_engine_on_gated_ccd(engine_ccd):
    gated = build_gated_ccd(engine_ccd)
    flat = compile_flat(gated)
    assert flat.linear_steps() == compile_nested(gated).linear_steps()


# -- deep hierarchies (satellite: iterative compile, 5000 levels) --------------


def _deep_chain(depth):
    block = ExpressionComponent("B", {"out": "in1 + 1"})
    block.declare_interface_from_expressions()
    current, name = block, "B"
    in_port, out_port = "in1", "out"
    for level in range(depth):
        dfd = DataFlowDiagram(f"L{level}")
        dfd.add_input("u")
        dfd.add_output("y")
        dfd.add_subcomponent(current)
        dfd.connect("u", f"{name}.{in_port}")
        dfd.connect(f"{name}.{out_port}", "y")
        current, name = dfd, f"L{level}"
        in_port, out_port = "u", "y"
    return current


def test_deep_hierarchy_5000_levels_compiles_and_runs():
    """Regression: compile_component on a 5000-level composite must neither
    hit the Python recursion limit (the flattener, ``structure_token``,
    ``has_behavior`` and the dependency analysis are all iterative) nor
    need a recursive ``initial_state()`` walk at run time."""
    model = _deep_chain(5000)
    simulator = CompiledSimulator(model)
    assert isinstance(simulator.schedule, FlatSchedule)
    trace = simulator.run({"u": [1.0, 2.0, 3.0]}, 3)
    assert trace.output("y").values() == [2.0, 3.0, 4.0]


def test_deep_gated_chain_compiles_and_runs():
    """Regression: alternating composite/clock-gate nesting (the flat IR's
    own target workload shape) must also compile and run iteratively --
    has_behavior, structure_token and the dependency analysis unwrap
    transparent gate wrappers instead of recursing through them."""
    depth = 1200
    block = ExpressionComponent("B", {"out": "in1 + 1"})
    block.declare_interface_from_expressions()
    base = DataFlowDiagram("L0")
    base.add_input("u")
    base.add_output("y")
    base.add_subcomponent(block)
    base.connect("u", "B.in1")
    base.connect("B.out", "y")
    current = base
    for level in range(1, depth):
        child = ClockGatedComponent(current, every(2), name=f"G{level}")
        dfd = DataFlowDiagram(f"L{level}")
        dfd.add_input("u")
        dfd.add_output("y")
        dfd.add_subcomponent(child)
        dfd.connect("u", f"G{level}.u")
        dfd.connect(f"G{level}.y", "y")
        current = dfd
    simulator = CompiledSimulator(current)
    schedule = simulator.schedule
    assert isinstance(schedule, FlatSchedule)
    assert schedule.fallback_paths == []   # every gate became a predicate
    trace = simulator.run({"u": [1.0, 1.0, 2.0, 2.0]}, 4)
    # aligned every(2) gates: active (passthrough + 1) on even ticks only
    assert trace.output("y").values() == [2.0, ABSENT, 3.0, ABSENT]


def test_deep_hierarchy_well_past_default_recursion_limit_round_trips():
    """~1200 levels (past the default 1000-frame limit) with two runs
    sharing one schedule: FlatState round-trips across runs."""
    model = _deep_chain(1200)
    simulator = CompiledSimulator(model)
    first = simulator.run({"u": [0.0] * 4}, 4)
    second = simulator.run({"u": [0.0] * 4}, 4)
    assert first.output("y").values() == second.output("y").values() == [1.0] * 4


# -- gated subtrees (satellite: state holding / emission suppression) ----------


@pytest.mark.parametrize("direct", [False, True])
def test_gated_mtd_holds_state_and_suppresses_emissions(direct):
    """A clock-gated MTD must react only at gate ticks, keep its mode frozen
    across skip ticks and emit nothing in between -- identically in the
    interpreter and the flat engine."""
    active_ticks = [0, 3, 4, 9]
    model = gated_mtd_system(EventClock(active_ticks), direct=direct)
    ticks = 12
    stimuli = {"x": [5.0] * 4 + [0.0] * 8}  # High at t0, back Low at t9
    reference, flat = assert_engines_agree(model, stimuli, ticks)

    mode = flat.output("mode")
    out = flat.output("out")
    for tick in range(ticks):
        if tick in active_ticks:
            assert mode[tick] is not ABSENT, tick
        else:  # silent tick: all gated outputs suppressed
            assert mode[tick] is ABSENT, tick
            assert out[tick] is ABSENT, tick
    # t0 fires Low->High (x=5); the mode is then *held* over the skipped
    # ticks 1-2 and still High at t3/t4 although x alone would not re-fire;
    # x=0 from t4 on flips it back at the next active tick.
    assert mode[0] == "High"
    assert mode[3] == "High"
    assert out[4] == 0.0 * 10
    assert mode[9] == "Low"


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("direct", [False, True])
def test_gated_mtd_differential_seeded(seed, direct):
    rng = random.Random(7000 + seed)
    kind = rng.choice(["periodic", "event"])
    if kind == "periodic":
        period = rng.choice([2, 3, 5])
        clock = every(period, phase=rng.randrange(period))
    else:
        clock = EventClock(sorted(rng.sample(range(40), rng.randint(2, 14))))
    model = gated_mtd_system(clock, direct=direct)
    ticks = rng.randint(15, 40)
    stimuli = {"x": Stream([ABSENT if rng.random() < 0.2
                            else rng.randint(-4, 6) for _ in range(ticks)])}
    assert_engines_agree(model, stimuli, ticks)


def test_gating_predicate_is_a_flat_op_for_gated_composites():
    flat = compile_flat(gated_mtd_system(every(2), direct=False))
    summary = "\n".join(flat.ops_summary())
    assert "gate" in summary          # flattened gated composite -> GATE op
    assert "[mtd]" in summary         # the MTD inside it is a hoisted leaf
    assert flat.fallback_paths == []

    flat_direct = compile_flat(gated_mtd_system(every(2), direct=True))
    summary = "\n".join(flat_direct.ops_summary())
    assert "gate" not in summary      # gated MTD stays one nested leaf
    assert "[nested]" in summary
    assert flat_direct.fallback_paths == ["Sys/Plant"]


# -- correction barriers and nested fallback -----------------------------------


def test_correction_barrier_preserved_in_flat_program():
    model = accumulator_in_composite()
    flat = compile_flat(model)
    summary = "\n".join(flat.ops_summary())
    assert "correct" in summary
    assert "(correction-tracked)" in summary
    reference, _ = assert_engines_agree(model, {"u": [1] * 5}, 5)
    assert reference.output("y").values() == [2, 4, 6, 8, 10]


def test_late_produced_composite_falls_back_to_nested():
    """A non-feedthrough composite fed by a later-scheduled producer must
    stay a nested leaf so the correction barrier can re-run it atomically."""
    child = DataFlowDiagram("Child")
    child.add_input("u")
    child.add_output("y")
    delay = UnitDelay("Z", initial=0)
    child.add_subcomponent(delay)
    child.connect("u", "Z.in1")
    child.connect("Z.out", "y")

    parent = DataFlowDiagram("Parent")
    parent.add_input("u")
    parent.add_output("y")
    add = ExpressionComponent("A", {"out": "u0 + fb"})
    add.declare_interface_from_expressions()
    parent.add(add, child)
    parent.connect("u", "A.u0")
    parent.connect("Child.y", "A.fb")   # Child evaluated before A...
    parent.connect("A.out", "Child.u")  # ...but fed by A: late producer
    parent.connect("A.out", "y")

    flat = compile_flat(parent)
    assert flat.fallback_paths == ["Parent/Child"]
    # the naming contract holds even for fallback subtrees
    assert flat.linear_steps() == compile_nested(parent).linear_steps()
    reference, _ = assert_engines_agree(parent, {"u": [1] * 5}, 5)
    assert reference.output("y").values() == [1, 2, 3, 4, 5]


def test_non_feedthrough_composite_without_late_producer_is_flattened():
    """Without a late producer the correction provably never fires, so the
    delay-only composite can be hoisted instead of falling back."""
    child = DataFlowDiagram("Child")
    child.add_input("u")
    child.add_output("y")
    delay = UnitDelay("Z", initial=0)
    child.add_subcomponent(delay)
    child.connect("u", "Z.in1")
    child.connect("Z.out", "y")

    parent = DataFlowDiagram("Parent")
    parent.add_input("u")
    parent.add_output("y")
    pre = ExpressionComponent("A", {"out": "in1 * 2"})
    pre.declare_interface_from_expressions()
    parent.add(pre, child)
    parent.connect("u", "A.in1")
    parent.connect("A.out", "Child.u")
    parent.connect("Child.y", "y")

    flat = compile_flat(parent)
    assert flat.fallback_paths == []
    assert ("Parent/Child", "composite") in flat.linear_steps()
    reference, _ = assert_engines_agree(parent, {"u": [1, 2, 3, 4]}, 4)
    assert reference.output("y").values() == [0, 2, 4, 6]


# -- state representation and mode observability -------------------------------


def test_flat_step_accepts_nested_initial_state():
    model = accumulator_in_composite()
    flat = compile_flat(model)
    inputs = {"u": 1}
    from_nested = flat.step(inputs, model.initial_state(), 0)
    from_flat = flat.step(inputs, flat.initial_state(), 0)
    from_none = flat.step(inputs, None, 0)
    assert from_nested[0] == from_flat[0] == from_none[0]
    assert isinstance(from_nested[1], FlatState)


def test_mode_paths_matches_reference_state_walk():
    from repro.scenarios.report import active_mode_paths
    model = gated_mtd_system(every(2), direct=False)
    flat = compile_flat(model)
    reference_state, flat_state = None, flat.initial_state()
    stimuli = [5.0, 0.0, 3.0, 0.5, ABSENT, 2.5, 0.0, 4.0]
    for tick, value in enumerate(stimuli):
        inputs = {"x": value}
        _, reference_state = model.react(inputs, reference_state, tick)
        _, flat_state = flat.step(inputs, flat_state, tick)
        assert flat.mode_paths(flat_state) == \
            active_mode_paths(model, reference_state), tick


def test_sharded_collect_modes_observes_flat_states():
    from repro.scenarios import Scenario, run_sharded
    model = gated_mtd_system(every(2), direct=False)
    stimuli = {"x": [5.0, 0.0, 3.0, 0.0, 0.0, 2.8, 0.0, 4.0]}
    results = run_sharded(model, [Scenario("sweep", stimuli, 8)],
                          executor="serial", collect_modes=True)
    assert results[0].ok
    histories = results[0].mode_paths
    assert set(histories) == {"Sys/Plant/Modes"}
    # per-tick history equals the reference engine's state walk
    from repro.scenarios.report import active_mode_paths
    state, expected = None, []
    for tick in range(8):
        _, state = model.react({"x": stimuli["x"][tick]}, state, tick)
        expected.append(active_mode_paths(model, state)["Sys/Plant/Modes"])
    assert histories["Sys/Plant/Modes"] == expected


# -- acceptance: suite verification on the deep gated workload -----------------


def _deep_gated_controller(depth):
    """The bench_flatten workload shape (kept in sync by construction)."""
    def level(d):
        dfd = DataFlowDiagram(f"L{d}")
        dfd.add_input("u")
        dfd.add_output("y")
        pre = ExpressionComponent("Pre", {"out": "in1 + 1"})
        pre.declare_interface_from_expressions()
        post = ExpressionComponent("Post", {"out": "in1 * 2 + in2"})
        post.declare_interface_from_expressions()
        tap = UnitDelay("Z", initial=0)
        dfd.add(pre, post, tap)
        dfd.connect("u", "Pre.in1")
        if d > 0:
            gated = ClockGatedComponent(level(d - 1), every(2),
                                        name=f"Gated{d - 1}")
            dfd.add_subcomponent(gated)
            dfd.connect("Pre.out", f"Gated{d - 1}.u")
            dfd.connect(f"Gated{d - 1}.y", "Post.in1")
        else:
            dfd.connect("Pre.out", "Post.in1")
        dfd.connect("Post.out", "Z.in1")
        dfd.connect("Z.out", "Post.in2")
        dfd.connect("Post.out", "y")
        return dfd
    return level(depth)


def test_scenario_suite_verifies_deep_gated_workload():
    model = _deep_gated_controller(4)
    suite = ScenarioSuite(model)
    assert isinstance(suite.simulator.schedule, FlatSchedule)
    suite.add("steady", {"u": [1.0] * 40}, ticks=40)
    suite.add("ramp", {"u": [0.5 * tick for tick in range(30)]}, ticks=30)
    suite.add("gaps", {"u": Stream([1.0, ABSENT] * 15)}, ticks=30)
    differences = suite.verify_against_reference()
    assert all(diff is None for diff in differences.values()), differences


# -- introspection alignment (pinned for the static verifier and profiler) --


def _introspection_models():
    from repro.casestudy.engine_control import build_engine_ccd
    from repro.casestudy.momentum import build_momentum_controller
    return [build_momentum_controller(), build_engine_ccd(),
            build_gated_ccd(build_engine_ccd()), _deep_gated_controller(3)]


def test_op_labels_align_with_program_and_summary():
    from repro.simulation.schedule_ir import _OP_NAMES
    for model in _introspection_models():
        schedule = compile_flat(model)
        labels = schedule.op_labels()
        summary = schedule.ops_summary()
        assert len(labels) == len(schedule.program) == len(summary)
        for op, (kind, label, nested), line in zip(schedule.program,
                                                   labels, summary):
            assert kind == _OP_NAMES[op[0]]
            assert label
            # the summary line for the same op names the same leaf/detail
            assert f" {kind} " in f" {line} " or kind in line
            if nested:
                assert "[nested]" in label


def test_describe_matches_linear_steps():
    for model in _introspection_models():
        schedule = compile_flat(model)
        lines = schedule.describe().splitlines()
        steps = schedule.linear_steps()
        assert len(lines) == len(steps)
        for line, (path, kind) in zip(lines, steps):
            assert path in line and kind in line


def test_slot_names_cover_every_slot_and_match_specs():
    for model in _introspection_models():
        schedule = compile_flat(model)
        assert len(schedule.slot_names) == schedule.n_slots
        for name, slot in schedule.input_spec + schedule.output_spec:
            assert schedule.slot_names[slot].endswith(f".{name}"), (
                model.name, name, slot, schedule.slot_names[slot])
