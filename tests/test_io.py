"""Tests for DOT export, text rendering and JSON serialization."""

import json

import pytest

from repro.core.errors import SerializationError
from repro.core.types import FloatType
from repro.io.dot import composite_to_dot, mtd_to_dot, std_to_dot, to_dot
from repro.io.json_io import (component_to_json, model_from_json,
                              model_to_json)
from repro.io.render import (render_ccd, render_interface, render_mtd,
                             render_std, render_structure, render_table)
from repro.notations.std import StateTransitionDiagram
from repro.simulation.engine import simulate
from repro.simulation.trace import traces_equivalent
from repro.casestudy import crash_scenario, driving_scenario


class TestDotExport:
    def test_composite_to_dot(self, momentum_controller):
        dot = composite_to_dot(momentum_controller)
        assert dot.startswith("digraph")
        assert '"ADD"' in dot and '"SLEW"' in dot
        assert "->" in dot and dot.rstrip().endswith("}")

    def test_ccd_to_dot_shows_rates(self, engine_ccd):
        dot = composite_to_dot(engine_ccd)
        assert "every(10, true)" in dot
        assert "style=dashed" not in dot or "delay" not in dot  # no delays yet

    def test_mtd_to_dot(self, engine_modes_mtd):
        dot = mtd_to_dot(engine_modes_mtd)
        assert '"Overrun"' in dot
        assert "__initial" in dot
        assert dot.count("->") >= len(engine_modes_mtd.transitions())

    def test_std_to_dot(self):
        std = StateTransitionDiagram("S")
        std.add_input("x")
        std.add_output("y")
        std.add_state("A", initial=True)
        std.add_state("B")
        std.add_transition("A", "B", "x > 0", actions={"y": "1"})
        dot = std_to_dot(std)
        assert '"A" -> "B"' in dot
        assert "y:=1" in dot

    def test_to_dot_dispatch(self, engine_modes_mtd, momentum_controller,
                             door_lock_control):
        from repro.core.components import Component
        assert "digraph" in to_dot(engine_modes_mtd)
        assert "digraph" in to_dot(momentum_controller)
        assert "digraph" in to_dot(Component("Atom"))


class TestTextRendering:
    def test_render_interface_and_structure(self, momentum_controller):
        interface = render_interface(momentum_controller)
        assert "in  ch1" in interface
        assert "out engine_torque" in interface
        structure = render_structure(momentum_controller)
        assert "<<DFD>>" in structure
        assert "ADD" in structure

    def test_render_mtd_marks_initial_mode(self, engine_modes_mtd):
        text = render_mtd(engine_modes_mtd)
        assert "[*] Off" in text
        assert "-->" in text or "--[" in text

    def test_render_std(self):
        std = StateTransitionDiagram("S")
        std.add_state("Init", initial=True)
        assert "[*] Init" in render_std(std)

    def test_render_ccd_lists_rates_and_transitions(self, engine_ccd):
        text = render_ccd(engine_ccd)
        assert "every(20, true)" in text
        assert "slow-to-fast" in text

    def test_render_table_alignment(self):
        table = render_table(["metric", "value"],
                             [["modes", 8], ["transitions", 12]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("metric")
        assert set(lines[1]) <= {"-", " "}


class TestJsonSerialization:
    def test_roundtrip_momentum_controller(self, momentum_controller):
        # serialize: structure survives; expression blocks survive with
        # behaviour, library blocks become opaque structural stubs
        text = model_to_json(momentum_controller)
        data = json.loads(text)
        assert data["name"] == "LongitudinalMomentum"
        restored = model_from_json(text)
        assert restored.name == momentum_controller.name
        assert set(restored.subcomponent_names()) == \
            set(momentum_controller.subcomponent_names())
        assert len(restored.channels()) == len(momentum_controller.channels())

    def test_roundtrip_mtd_preserves_behaviour(self, door_lock_control):
        text = model_to_json(door_lock_control)
        restored = model_from_json(text)
        stimuli = crash_scenario(8)
        original_trace = simulate(door_lock_control, stimuli, ticks=8)
        restored_trace = simulate(restored, stimuli, ticks=8)
        assert traces_equivalent(original_trace, restored_trace)

    def test_roundtrip_reengineered_fda(self, reengineered_fda):
        restored = model_from_json(model_to_json(reengineered_fda))
        assert set(restored.subcomponent_names()) == \
            set(reengineered_fda.subcomponent_names())
        throttle = restored.subcomponent("ThrottleRateOfChange")
        assert throttle.mode_names() == ["FuelEnabled", "CrankingOverrun"]

    def test_roundtrip_ccd_with_clusters(self, engine_ccd):
        restored = model_from_json(model_to_json(engine_ccd))
        assert restored.cluster("Monitoring").period == 20
        assert len(restored.clusters()) == 4
        assert len(restored.rate_transitions()) == len(engine_ccd.rate_transitions())

    def test_port_types_and_clocks_roundtrip(self, engine_ccd):
        restored = model_from_json(model_to_json(engine_ccd))
        port = restored.cluster("SensorProcessing").port("air_mass")
        assert isinstance(port.port_type, FloatType)
        assert port.clock.period == 1

    def test_std_roundtrip(self):
        std = StateTransitionDiagram("Lock")
        std.add_input("speed")
        std.add_output("cmd")
        std.add_variable("count", 0)
        std.add_state("U", initial=True, emissions={"cmd": "'none'"})
        std.add_state("L")
        std.add_transition("U", "L", "speed > 10",
                           actions={"cmd": "'lock'", "count": "count + 1"})
        restored = model_from_json(model_to_json(std))
        first = simulate(std, {"speed": [5, 20, 20]}, ticks=3)
        second = simulate(restored, {"speed": [5, 20, 20]}, ticks=3)
        assert traces_equivalent(first, second)

    def test_invalid_json_rejected(self):
        with pytest.raises(SerializationError):
            model_from_json("{not json")

    def test_opaque_component_serialized_structurally(self):
        from repro.notations.blocks import PIDController
        data = component_to_json(PIDController("PID", kp=1.0))
        assert data["behavior"] == "opaque"
        assert {port["name"] for port in data["ports"]} == {"error", "out"}
