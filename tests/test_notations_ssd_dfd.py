"""Tests for System Structure Diagrams and Data Flow Diagrams."""

import pytest

from repro.core.components import Component, ExpressionComponent
from repro.core.errors import CausalityError, ModelError
from repro.core.types import ANY, BOOL, FLOAT, EnumType, FloatType, IntType
from repro.core.values import ABSENT
from repro.notations.blocks import Gain, UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.notations.ssd import SSDComponent, interface_signature
from repro.simulation.engine import simulate


def _typed_block(name, in_type=FLOAT, out_type=FLOAT):
    block = ExpressionComponent(name, {"out": "in1"})
    block.add_input("in1", in_type)
    block.add_output("out", out_type)
    return block


class TestSSDStructure:
    def test_typed_ports_required(self):
        ssd = SSDComponent("S")
        ssd.add_typed_input("a", FLOAT)
        with pytest.raises(ModelError):
            ssd.add_typed_input("b", ANY)
        with pytest.raises(ModelError):
            ssd.add_typed_output("c", ANY)

    def test_internal_channels_delayed_by_default(self):
        ssd = SSDComponent("S")
        ssd.add_typed_input("x", FLOAT)
        ssd.add_typed_output("y", FLOAT)
        ssd.add(_typed_block("A"), _typed_block("B"))
        ssd.connect("x", "A.in1")
        internal = ssd.connect("A.out", "B.in1")
        ssd.connect("B.out", "y")
        assert internal.delayed
        boundary = [c for c in ssd.channels() if c.source.is_boundary()]
        assert all(not c.delayed for c in boundary)

    def test_connect_delayed_with_initial_value(self):
        ssd = SSDComponent("S")
        ssd.add(_typed_block("A"), _typed_block("B"))
        channel = ssd.connect_delayed("A.out", "B.in1", initial_value=1.0)
        assert channel.delayed and channel.initial_value == 1.0

    def test_ssd_delay_shifts_messages_by_one_tick(self):
        ssd = SSDComponent("S")
        ssd.add_typed_input("x", FLOAT)
        ssd.add_typed_output("y", FLOAT)
        ssd.add(_typed_block("A"), _typed_block("B"))
        ssd.connect("x", "A.in1")
        ssd.connect("A.out", "B.in1", initial_value=0.0)
        ssd.connect("B.out", "y")
        trace = simulate(ssd, {"x": [1.0, 2.0, 3.0]}, ticks=3)
        assert trace.output("y").values() == [0.0, 1.0, 2.0]

    def test_interface_signature(self):
        block = _typed_block("A", IntType(0, 10), BOOL)
        signature = interface_signature(block)
        assert any("in1: int[0..10]" in line for line in signature)


class TestSSDValidation:
    def test_valid_ssd_has_no_errors(self, door_lock_faa):
        report = door_lock_faa.validate()
        assert report.is_valid()

    def test_untyped_boundary_port_is_error(self):
        ssd = SSDComponent("S")
        ssd.add_input("x")  # bypasses add_typed_input, dynamically typed
        report = ssd.validate()
        assert not report.is_valid()
        assert report.by_rule("ssd-static-typing")

    def test_type_incompatible_channel_is_error(self):
        ssd = SSDComponent("S")
        ssd.add(_typed_block("A", FLOAT, FLOAT),
                _typed_block("B", EnumType("E", ["x"]), FLOAT))
        ssd.connect("A.out", "B.in1")
        report = ssd.validate()
        assert any(issue.rule == "ssd-type-compatibility"
                   for issue in report.errors())

    def test_unconnected_input_is_warning(self):
        ssd = SSDComponent("S")
        ssd.add(_typed_block("A"))
        report = ssd.validate()
        warnings = report.by_rule("ssd-connectivity")
        assert warnings and all(issue.severity.value != "error"
                                for issue in warnings)

    def test_instantaneous_internal_channel_is_warning(self):
        ssd = SSDComponent("S")
        ssd.add(_typed_block("A"), _typed_block("B"))
        ssd.connect("A.out", "B.in1", delayed=False)
        report = ssd.validate()
        assert report.by_rule("ssd-delay-semantics")

    def test_missing_behavior_info_on_faa_error_on_fda(self):
        ssd = SSDComponent("S")
        stub = Component("Stub")
        stub.add_input("in1", FLOAT)
        stub.add_output("out", FLOAT)
        ssd.add_subcomponent(stub)
        faa_report = ssd.validate(require_behavior=False)
        assert faa_report.is_valid()
        fda_report = ssd.validate(require_behavior=True)
        assert not fda_report.is_valid()


class TestDFD:
    def test_add_expression_block_builds_interface(self):
        dfd = DataFlowDiagram("D")
        block = dfd.add_expression_block("ADD", {"out": "ch1 + ch2 + ch3"})
        assert sorted(block.input_names()) == ["ch1", "ch2", "ch3"]
        assert block.output_names() == ["out"]

    def test_instantaneous_by_default(self):
        dfd = DataFlowDiagram("D")
        dfd.add(Gain("A", 1.0), Gain("B", 1.0))
        channel = dfd.connect("A.out", "B.in1")
        assert not channel.delayed

    def test_causality_check_passes_on_acyclic(self, momentum_controller):
        order = momentum_controller.check_causality()
        assert order.index("ADD") < order.index("LIMIT") < order.index("SLEW")
        assert not momentum_controller.has_instantaneous_loop()

    def test_causality_check_detects_loop(self):
        dfd = DataFlowDiagram("Loop")
        dfd.add(Gain("A", 1.0), Gain("B", 1.0))
        dfd.connect("A.out", "B.in1")
        dfd.connect("B.out", "A.in1")
        assert dfd.has_instantaneous_loop()
        with pytest.raises(CausalityError):
            dfd.check_causality()
        report = dfd.validate()
        assert any(issue.rule == "dfd-causality" for issue in report.errors())

    def test_unit_delay_breaks_loop(self):
        dfd = DataFlowDiagram("Loop")
        dfd.add(Gain("A", 1.0), UnitDelay("Z"))
        dfd.connect("A.out", "Z.in1")
        dfd.connect("Z.out", "A.in1")
        assert not dfd.has_instantaneous_loop()

    def test_behavior_rule(self):
        dfd = DataFlowDiagram("D")
        stub = Component("Stub")
        stub.add_output("out")
        dfd.add_subcomponent(stub)
        report = dfd.validate()
        assert any(issue.rule == "dfd-behavior" for issue in report.errors())

    def test_undriven_boundary_output_is_error(self):
        dfd = DataFlowDiagram("D")
        dfd.add_output("y")
        report = dfd.validate()
        assert any(issue.rule == "dfd-boundary" for issue in report.errors())

    def test_unconnected_block_input_is_warning(self):
        dfd = DataFlowDiagram("D")
        dfd.add(Gain("A", 1.0))
        report = dfd.validate()
        assert report.by_rule("dfd-connectivity")
        assert report.is_valid()

    def test_type_inference_propagates_static_types(self):
        dfd = DataFlowDiagram("D")
        dfd.add_input("x", FloatType(0.0, 10.0))
        dfd.add_output("y")
        block = dfd.add_expression_block("F", {"out": "in1 * 2"})
        dfd.connect("x", "F.in1")
        dfd.connect("F.out", "y")
        refined = dfd.infer_port_types()
        assert block.port("in1").port_type == FloatType(0.0, 10.0)
        assert "F.in1" in refined

    def test_fig5_momentum_controller_executes(self, momentum_controller):
        trace = simulate(momentum_controller,
                         {"ch1": [100.0] * 4, "ch2": [50.0] * 4,
                          "ch3": [0.0] * 4}, ticks=4)
        assert trace.output("total_request").values() == [150.0] * 4
        assert all(value >= 0 for value in trace.output("engine_torque").values())
