"""The campaign event log: crash safety, resume, executor invariance.

Pins the contracts of :mod:`repro.obs.events`:

* emits are typed (closed vocabulary) and monotonically sequenced, the
  watermark tracks the last appended event, and ``to_jsonl`` is
  **byte-stable** under a fake clock;
* the JSONL file is crash-safe: a truncated trailing line is skipped
  with a warning on replay, damage anywhere else raises, and
  :meth:`EventLog.resume` continues from the surviving watermark;
* the sharded runner's event stream is executor-invariant after
  :func:`normalized_stream`: serial == thread == process for the same
  batch, worker provenance and completion order notwithstanding;
* the search loop emits one deterministic ``search_round`` per round;
* :class:`CampaignProgress` folds a stream (live tail or full replay)
  into the same progress picture.

Process-pool tests are marked ``parallel``, matching the runner suite.
"""

import json
import warnings

import pytest

from repro import obs
from repro.obs import (CampaignEvent, CampaignProgress, EventLog,
                       EventLogError, MetricsRegistry, normalized_stream,
                       read_events, tail_events)
from repro.scenarios import RandomWalk, Scenario, run_sharded
from repro.search import SearchConfig, search_coverage


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class FakeClock:
    """A deterministic monotonic clock: 0.0, 0.25, 0.5, ..."""

    def __init__(self, step=0.25):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def exploding(tick):
    """Module-level so process-pool scenarios can pickle it."""
    if tick >= 3:
        raise ValueError("sensor model exploded")
    return 0.0


def engine_batch(count=6, ticks=30, with_failure=True):
    batch = [Scenario(f"drive{index}", {
        "n": RandomWalk(seed=index, start=0.0, step=500.0,
                        low=0.0, high=6000.0),
        "ped": RandomWalk(seed=100 + index, start=0.0, step=25.0,
                          low=0.0, high=100.0),
        "t_eng": 15.0 + 5.0 * index,
    }, ticks=ticks) for index in range(count)]
    if with_failure:
        batch.insert(2, Scenario("boom", {"n": exploding}, ticks=ticks))
    return batch


# -- the write side ---------------------------------------------------------


def test_emit_sequences_and_watermark():
    log = EventLog(clock=FakeClock())
    assert log.watermark == 0
    first = log.emit("campaign_started", component="X", scenarios=2)
    second = log.emit("scenario_finished", name="a", ticks=5)
    assert (first.seq, second.seq) == (1, 2)
    assert log.watermark == 2
    assert [event.type for event in log.events] \
        == ["campaign_started", "scenario_finished"]
    assert first.time == 0.0 and second.time == 0.25


def test_emit_rejects_unknown_event_types():
    log = EventLog()
    with pytest.raises(EventLogError):
        log.emit("scenario_exploded", name="boom")
    assert log.watermark == 0 and log.events == []


def test_to_jsonl_is_byte_stable_under_fake_clock():
    def build():
        log = EventLog(clock=FakeClock())
        log.emit("campaign_started", component="X", scenarios=2,
                 executor="serial")
        log.emit("scenario_finished", name="a", ticks=10, duration_s=0.5)
        log.emit("scenario_error", name="b", ticks=10, exc="ValueError",
                 error="ValueError: boom")
        log.emit("campaign_finished", scenarios=2, ok=1, failed=1)
        return log.to_jsonl()

    first, second = build(), build()
    assert first == second
    records = [json.loads(line) for line in first.splitlines()]
    assert [record["seq"] for record in records] == [1, 2, 3, 4]
    assert all(record["v"] == 1 for record in records)
    # keys are sorted inside each record: the byte-stability mechanism
    for record in records:
        assert list(record) == sorted(record)
        assert list(record["data"]) == sorted(record["data"])


def test_adopt_resequences_and_records_provenance():
    worker_log = EventLog(clock=FakeClock())
    worker_log.emit("scenario_finished", name="a", ticks=5)
    worker_log.emit("scenario_finished", name="b", ticks=5)

    parent = EventLog(clock=FakeClock())
    parent.emit("campaign_started", component="X", scenarios=2)
    parent.adopt_all(worker_log.events, worker="pid-123")
    assert [event.seq for event in parent.events] == [1, 2, 3]
    adopted = parent.events[1:]
    assert all(event.data["worker"] == "pid-123" for event in adopted)
    # the worker's own timestamps survive the merge
    assert [event.time for event in adopted] == [0.0, 0.25]


def test_from_json_dict_rejects_future_schema():
    record = CampaignEvent(1, "campaign_started", 0.0,
                           {"scenarios": 1}).to_json_dict()
    assert CampaignEvent.from_json_dict(record).seq == 1
    record["v"] = 99
    with pytest.raises(EventLogError):
        CampaignEvent.from_json_dict(record)


# -- crash safety -----------------------------------------------------------


def test_read_events_skips_truncated_trailing_line(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(clock=FakeClock(), path=path) as log:
        log.emit("campaign_started", component="X", scenarios=2)
        log.emit("scenario_finished", name="a", ticks=5)
    # a crash mid-append leaves a half-written trailing line
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"v": 1, "seq": 3, "type": "campaign_fin')
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        events, watermark = read_events(path)
    assert [event.seq for event in events] == [1, 2]
    assert watermark == 2
    assert any("truncated" in str(warning.message).lower()
               for warning in caught)


def test_read_events_raises_on_mid_file_damage(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(clock=FakeClock(), path=path) as log:
        log.emit("campaign_started", component="X", scenarios=2)
        log.emit("scenario_finished", name="a", ticks=5)
    content = open(path, encoding="utf-8").read().splitlines()
    content[0] = content[0][:20]  # a hole in the MIDDLE is lost history
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(content) + "\n")
    with pytest.raises(EventLogError):
        read_events(path)


def test_resume_continues_from_watermark(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(clock=FakeClock(), path=path) as log:
        log.emit("campaign_started", component="X", scenarios=3)
        log.emit("scenario_finished", name="a", ticks=5)

    resumed = EventLog.resume(path, clock=FakeClock())
    assert resumed.watermark == 2
    assert resumed.events == []  # watermark only, not the history
    with resumed:
        resumed.emit("scenario_finished", name="b", ticks=5)
    events, watermark = read_events(path)
    assert [event.seq for event in events] == [1, 2, 3]
    assert watermark == 3


def test_tail_events_sees_every_event_exactly_once(tmp_path):
    path = str(tmp_path / "events.jsonl")
    with EventLog(clock=FakeClock(), path=path) as log:
        log.emit("campaign_started", component="X", scenarios=2)
        seen = [event.seq for event in tail_events(path, after=0)]
        log.emit("scenario_finished", name="a", ticks=5)
        log.emit("scenario_finished", name="b", ticks=5)
        fresh = tail_events(path, after=max(seen))
    assert seen == [1]
    assert [event.seq for event in fresh] == [2, 3]
    assert tail_events(path, after=3) == []


# -- runner integration: executor invariance --------------------------------


def _campaign_stream(component, executor, **kwargs):
    with obs.session(events=EventLog()) as telemetry:
        run_sharded(component, engine_batch(), executor=executor, **kwargs)
        return list(telemetry.events.events)


def test_serial_campaign_emits_full_lifecycle(engine_modes_mtd):
    events = _campaign_stream(engine_modes_mtd, "serial")
    types = [event.type for event in events]
    assert types[0] == "campaign_started"
    assert types[-1] == "campaign_finished"
    assert types.count("shard_dispatched") == 1
    assert types.count("scenario_finished") == 6
    assert types.count("scenario_error") == 1
    finished = events[-1]
    assert finished.data["ok"] == 6 and finished.data["failed"] == 1
    error = next(event for event in events
                 if event.type == "scenario_error")
    assert error.data["exc"] == "ValueError"
    assert "sensor model exploded" in error.data["error"]
    # sequence numbers are gapless and monotone
    assert [event.seq for event in events] \
        == list(range(1, len(events) + 1))


def test_thread_stream_matches_serial_after_normalization(engine_modes_mtd):
    serial = _campaign_stream(engine_modes_mtd, "serial")
    threaded = _campaign_stream(engine_modes_mtd, "thread", max_workers=3)
    assert normalized_stream(serial) == normalized_stream(threaded)
    # adopted worker events carry provenance before normalization scrubs it
    assert any(event.data.get("worker") for event in threaded
               if event.type == "scenario_finished")


@pytest.mark.parallel
def test_process_stream_matches_serial_after_normalization(engine_modes_mtd):
    serial = _campaign_stream(engine_modes_mtd, "serial")
    processed = _campaign_stream(engine_modes_mtd, "process", max_workers=3)
    assert normalized_stream(serial) == normalized_stream(processed)


def test_batch_backend_stream_matches_per_scenario(engine_modes_mtd):
    pytest.importorskip("numpy")
    from repro.notations.dfd import DataFlowDiagram
    dfd = DataFlowDiagram("EngineSystem")
    dfd.add_subcomponent(engine_modes_mtd)
    for port in ("n", "ped", "t_eng"):
        dfd.add_input(port)
        dfd.connect(port, f"EngineOperationModes.{port}")
    for port in ("fuel_factor", "mode"):
        dfd.add_output(port)
        dfd.connect(f"EngineOperationModes.{port}", port)
    serial = _campaign_stream(dfd, "serial")
    batched = _campaign_stream(dfd, "serial", backend="batch")
    assert normalized_stream(serial) == normalized_stream(batched)


def test_search_loop_emits_one_round_event_per_round(engine_modes_mtd):
    battery = [Scenario("weak", {"n": 0.0, "ped": 0.0, "t_eng": 20.0},
                        ticks=20)]
    with obs.session(events=EventLog()) as telemetry:
        report = search_coverage(engine_modes_mtd, battery,
                                 SearchConfig(seed=7, max_rounds=12,
                                              population=16))
        rounds = [event for event in telemetry.events.events
                  if event.type == "search_round"]
    assert len(rounds) == len(report.rounds)
    assert [event.data["round"] for event in rounds] \
        == [stats.index for stats in report.rounds]
    assert [event.data for event in rounds] \
        == [stats.to_json_dict() for stats in report.rounds]


# -- live progress ----------------------------------------------------------


def test_progress_folds_stream_incrementally(engine_modes_mtd):
    events = _campaign_stream(engine_modes_mtd, "serial")
    replayed = CampaignProgress.from_events(events)
    live = CampaignProgress()
    for event in events:  # tailing one event at a time
        live.observe(event)
    assert (live.finished, live.failed, live.expected, live.watermark) \
        == (replayed.finished, replayed.failed, replayed.expected,
            replayed.watermark)
    assert replayed.finished == 7 and replayed.failed == 1
    assert replayed.expected == 7
    assert replayed.errors_by_kind == {"ValueError": 1}
    assert replayed.campaigns_started == 1
    assert replayed.campaigns_finished == 1


def test_format_progress_renders_bar_failures_and_quantiles():
    log = EventLog(clock=FakeClock())
    log.emit("campaign_started", component="X", scenarios=4)
    log.emit("scenario_finished", name="a", ticks=10)
    log.emit("scenario_error", name="b", ticks=10, exc="ValueError",
             error="ValueError: boom")
    registry = MetricsRegistry()
    for duration in (0.01, 0.02, 0.03):
        registry.histogram("runner.scenario.duration_s").observe(duration)
    registry.counter("runner.scenario.count").inc(3)
    text = CampaignProgress.from_events(log.events).format_progress(
        registry=registry)
    assert "2/4 scenarios (50%)" in text
    assert "1 failed" in text
    assert "ValueError x1" in text
    assert "p50" in text and "p90" in text and "p99" in text
    assert "runner.scenario.count" in text


def test_normalized_stream_scrubs_volatile_keys():
    log = EventLog(clock=FakeClock())
    log.emit("shard_dispatched", shard=0, scenarios=3, executor="thread")
    log.emit("scenario_finished", name="a", ticks=5, worker="pid-1",
             duration_s=0.25)
    normalized = normalized_stream(log.events)
    assert normalized == [
        {"type": "scenario_finished", "data": {"name": "a", "ticks": 5}}]
