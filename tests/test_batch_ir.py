"""The vectorized batch backend: trace identity, error parity, isolation.

The batch IR (:mod:`repro.simulation.batch_ir`) promises that a whole
scenario battery swept as ONE vectorized op program is observationally
identical to running each scenario through the scalar engines: identical
traces (value *and* type), identical error messages at identical ticks,
per-scenario isolation instead of batch poisoning, and no leakage across
lanes of mixed batteries.  This module pins those contracts plus the
regressions the differential fuzz flushed out (int-exact division,
unbounded ints, short-circuit laziness, ABSENT propagation).
"""

import pytest

np = pytest.importorskip("numpy")

from repro.core.components import ExpressionComponent
from repro.core.clocks import every
from repro.core.errors import ExpressionEvalError, SimulationError
from repro.core.values import ABSENT, Stream
from repro.notations.blocks import Gain, UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.notations.mtd import ModeTransitionDiagram
from repro.simulation import (BatchSchedule, ClockGatedComponent,
                              CompiledSimulator, ScenarioSuite, Simulator,
                              compile_batch, compile_flat, first_difference)
from repro.core.types import INT


# -- models --------------------------------------------------------------------


def expression_pipeline():
    """Two chained expression blocks plus a delayed feedback loop."""
    dfd = DataFlowDiagram("Pipe")
    dfd.add_input("u")
    dfd.add_output("y")
    dfd.add_output("acc")
    pre = ExpressionComponent("Pre", {"out": "u * 2 + 1"})
    pre.declare_interface_from_expressions()
    post = ExpressionComponent(
        "Post", {"out": "if in1 > 10 then in1 - 10 else in1"})
    post.declare_interface_from_expressions()
    add = ExpressionComponent("Add", {"out": "a + b"})
    add.declare_interface_from_expressions()
    delay = UnitDelay("Z", initial=0)
    dfd.add(pre, post, add, delay)
    dfd.connect("u", "Pre.u")
    dfd.connect("Pre.out", "Post.in1")
    dfd.connect("Post.out", "y")
    dfd.connect("Post.out", "Add.a")
    dfd.connect("Z.out", "Add.b")
    dfd.connect("Add.out", "Z.in1")
    dfd.connect("Add.out", "acc")
    return dfd


def modes_mtd(name="Modes"):
    mtd = ModeTransitionDiagram(name)
    mtd.add_input("x")
    mtd.add_output("out")
    mtd.add_output("mode")
    low = ExpressionComponent("LowB", {"out": "x * 1"})
    low.declare_interface_from_expressions()
    high = ExpressionComponent("HighB", {"out": "x * 10"})
    high.declare_interface_from_expressions()
    mtd.add_mode("Low", low, initial=True)
    mtd.add_mode("High", high)
    mtd.add_transition("Low", "High", "x > 2")
    mtd.add_transition("High", "Low", "x < 1")
    return mtd


def mtd_in_composite():
    """An MTD leaf inside a flattenable root: the per-lane ``run`` op."""
    dfd = DataFlowDiagram("Sys")
    dfd.add_input("x")
    dfd.add_output("out")
    dfd.add_output("mode")
    scale = Gain("Scale", 1.0)
    dfd.add(scale, modes_mtd())
    dfd.connect("x", "Scale.in1")
    dfd.connect("Scale.out", "Modes.x")
    dfd.connect("Modes.out", "out")
    dfd.connect("Modes.mode", "mode")
    return dfd


def gated_system(n=3):
    """A clock-gated subtree: the flat-IR gate predicate over lanes."""
    plant = DataFlowDiagram("Plant")
    plant.add_input("x")
    plant.add_output("y")
    twice = ExpressionComponent("Twice", {"out": "x + x"})
    twice.declare_interface_from_expressions()
    plant.add_subcomponent(twice)
    plant.connect("x", "Twice.x")
    plant.connect("Twice.out", "y")
    gated = ClockGatedComponent(plant, every(n), name="Plant")
    sys = DataFlowDiagram("Gated")
    sys.add_input("x")
    sys.add_output("y")
    sys.add_subcomponent(gated)
    sys.connect("x", "Plant.x")
    sys.connect("Plant.y", "y")
    return sys


def divider():
    dfd = DataFlowDiagram("Div")
    dfd.add_input("a")
    dfd.add_input("b")
    dfd.add_output("q")
    quot = ExpressionComponent("Quot", {"out": "a / b"})
    quot.declare_interface_from_expressions()
    dfd.add_subcomponent(quot)
    dfd.connect("a", "Quot.a")
    dfd.connect("b", "Quot.b")
    dfd.connect("Quot.out", "q")
    return dfd


def assert_trace_identical(reference, batch):
    """Strict equality: same streams, same *types* per value."""
    assert first_difference(reference, batch) is None
    for port, stream in reference.outputs.items():
        got = batch.outputs[port].values()
        expected = stream.values()
        assert got == expected
        assert [type(v) for v in got] == [type(v) for v in expected], port


def batteries(model, items, **kwargs):
    """Run *items* through the scalar flat engine and one batch sweep."""
    scalar = CompiledSimulator(model, backend="flat", **kwargs)
    batch = compile_batch(model)
    outcomes = batch.run_battery(items, **kwargs)
    return scalar, outcomes


# -- trace identity ------------------------------------------------------------


@pytest.mark.parametrize("build", [expression_pipeline, mtd_in_composite,
                                   lambda: gated_system(3)])
def test_battery_traces_identical_to_interpreter(build):
    model = build()
    port = model.input_names()[0]
    items = [(f"s{i}", {port: [i, i + 2, 7 * i, 0, -i]}, 5) for i in range(9)]
    reference = Simulator(model)
    outcomes = compile_batch(model).run_battery(items)
    assert [o.name for o in outcomes] == [f"s{i}" for i in range(9)]
    for (name, stimuli, ticks), outcome in zip(items, outcomes):
        assert outcome.ok, (name, outcome.error)
        assert_trace_identical(reference.run(stimuli, ticks), outcome.trace)


def test_compiled_simulator_batch_backend_single_run():
    model = expression_pipeline()
    sim = CompiledSimulator(model, backend="batch")
    assert isinstance(sim.batch_schedule, BatchSchedule)
    stimuli = {"u": [1, 2, 3, 4]}
    assert_trace_identical(Simulator(model).run(stimuli, 4),
                           sim.run(stimuli, 4))


def test_batch_backend_rejects_unflattenable_roots():
    with pytest.raises(SimulationError, match="not flattenable"):
        CompiledSimulator(modes_mtd(), backend="batch")
    with pytest.raises(SimulationError, match="not flattenable"):
        compile_batch(modes_mtd())


def test_scenario_suite_batch_matches_auto():
    model = expression_pipeline()
    batch_suite = ScenarioSuite(model, backend="batch")
    auto_suite = ScenarioSuite(model)
    for index in range(6):
        stimuli = {"u": [index, index * 3, -index]}
        batch_suite.add(f"s{index}", stimuli, 3 + index % 2)
        auto_suite.add(f"s{index}", stimuli, 3 + index % 2)
    batch_traces = batch_suite.run_all()
    auto_traces = auto_suite.run_all()
    assert list(batch_traces) == list(auto_traces)
    for name in batch_traces:
        assert_trace_identical(auto_traces[name], batch_traces[name])


# -- mixed batteries -----------------------------------------------------------


def test_mixed_horizons_and_partial_stimuli_no_lane_leakage():
    model = expression_pipeline()
    items = [
        ("long", {"u": list(range(12))}, 12),
        ("short", {"u": [100, 200]}, 2),
        ("nostim", None, 5),                      # all-ABSENT inputs
        ("partial", {"u": [1]}, 6),               # stimulus ends early
        ("absent_holes", {"u": Stream([1, ABSENT, 3, ABSENT])}, 4),
    ]
    reference = Simulator(model)
    outcomes = compile_batch(model).run_battery(items)
    for (name, stimuli, ticks), outcome in zip(items, outcomes):
        assert outcome.ok, (name, outcome.error)
        expected = reference.run(stimuli, ticks)
        assert outcome.trace.ticks == ticks
        assert_trace_identical(expected, outcome.trace)
        for port, stream in expected.inputs.items():
            assert outcome.trace.inputs[port].values() == stream.values()


def test_zero_tick_scenarios_in_a_battery():
    model = expression_pipeline()
    items = [("empty", {"u": [1, 2]}, 0), ("real", {"u": [5, 6]}, 2)]
    outcomes = compile_batch(model).run_battery(items)
    assert outcomes[0].ok
    assert outcomes[0].trace.ticks == 0
    assert outcomes[0].trace.outputs == {}
    assert_trace_identical(Simulator(model).run({"u": [5, 6]}, 2),
                           outcomes[1].trace)


def test_empty_battery_returns_empty_list():
    assert compile_batch(expression_pipeline()).run_battery([]) == []


# -- error parity and isolation ------------------------------------------------


def test_division_error_identical_message_tick_and_isolation():
    model = divider()
    items = [
        ("fine", {"a": [10, 9], "b": [2, 3]}, 2),
        ("boom", {"a": [8, 7, 6], "b": [4, 0, 1]}, 3),  # dies at tick 1
        ("also_fine", {"a": [12], "b": [5]}, 1),
    ]
    scalar = CompiledSimulator(model, backend="flat")
    with pytest.raises(ExpressionEvalError) as scalar_error:
        scalar.run(items[1][1], items[1][2])
    outcomes = compile_batch(model).run_battery(items)

    boom = outcomes[1]
    assert not boom.ok
    assert isinstance(boom.exception, ExpressionEvalError)
    assert str(boom.exception) == str(scalar_error.value)
    assert boom.error == (f"{type(scalar_error.value).__name__}: "
                          f"{scalar_error.value}")

    # neighbours keep their full traces: no batch poisoning
    assert outcomes[0].ok and outcomes[2].ok
    assert outcomes[0].trace.outputs["q"].values() == [5, 3]
    assert outcomes[2].trace.outputs["q"].values() == [2.4]


def test_run_one_reraises_the_original_exception():
    model = divider()
    sim = CompiledSimulator(model, backend="batch")
    scalar = CompiledSimulator(model, backend="flat")
    stimuli = {"a": [1], "b": [0]}
    with pytest.raises(ExpressionEvalError) as expected:
        scalar.run(stimuli, 1)
    with pytest.raises(ExpressionEvalError) as got:
        sim.run(stimuli, 1)
    assert str(got.value) == str(expected.value)


def test_unknown_name_error_parity():
    dfd = DataFlowDiagram("Free")
    dfd.add_input("u")
    dfd.add_output("y")
    block = ExpressionComponent("B", {"out": "u + ghost"})
    block.add_input("u")
    block.add_output("y")
    block.output_expressions["y"] = block.output_expressions.pop("out")
    dfd.add_subcomponent(block)
    dfd.connect("u", "B.u")
    dfd.connect("B.y", "y")
    scalar = CompiledSimulator(dfd, backend="flat")
    with pytest.raises(ExpressionEvalError) as expected:
        scalar.run({"u": [1]}, 1)
    outcome = compile_batch(dfd).run_battery([("s", {"u": [1]}, 1)])[0]
    assert str(outcome.exception) == str(expected.value)


def test_stimulus_validation_messages_identical():
    model = expression_pipeline()
    batch = compile_batch(model)
    scalar = CompiledSimulator(model, backend="flat")
    for stimuli, ticks in [({"u": [1]}, True), ({"u": [1]}, -1),
                           ({"bogus": [1]}, 3)]:
        with pytest.raises(SimulationError) as expected:
            scalar.run(stimuli, ticks)
        outcome = batch.run_battery([("s", stimuli, ticks)])[0]
        assert not outcome.ok
        assert str(outcome.exception) == str(expected.value)
        # the rest of the battery is untouched
        good = batch.run_battery([("s", stimuli, ticks),
                                  ("ok", {"u": [2]}, 1)])[1]
        assert good.ok


def test_failing_stimulus_callable_matches_scalar_tick():
    """A generator that explodes mid-run fails at the same tick, and a
    *model* error on an earlier tick still wins (scalar draw order)."""
    def explode_at(when):
        def generator(tick):
            if tick >= when:
                raise RuntimeError(f"sensor dropout at {tick}")
            return tick + 1
        return generator

    model = expression_pipeline()
    scalar = CompiledSimulator(model, backend="flat")
    with pytest.raises(RuntimeError) as expected:
        scalar.run({"u": explode_at(3)}, 6)
    outcome = compile_batch(model).run_battery(
        [("s", {"u": explode_at(3)}, 6)])[0]
    assert str(outcome.exception) == str(expected.value)
    assert type(outcome.exception) is type(expected.value)

    # model error at tick 1 beats a stimulus error at tick 4
    div = divider()

    def b_values(tick):
        if tick >= 4:
            raise RuntimeError("late dropout")
        return [3, 0, 3, 3][tick]

    stimuli = {"a": [1, 1, 1, 1, 1], "b": b_values}
    scalar_div = CompiledSimulator(div, backend="flat")
    with pytest.raises(ExpressionEvalError) as div_error:
        scalar_div.run(stimuli, 5)
    outcome = compile_batch(div).run_battery([("s", stimuli, 5)])[0]
    assert str(outcome.exception) == str(div_error.value)
    assert isinstance(outcome.exception, ExpressionEvalError)


def test_check_types_parity_both_directions():
    dfd = DataFlowDiagram("Typed")
    dfd.add_input("u", INT)
    dfd.add_output("y", INT)
    block = ExpressionComponent("B", {"out": "u / 2"})
    block.add_input("u")
    block.add_output("out")
    dfd.add_subcomponent(block)
    dfd.connect("u", "B.u")
    dfd.connect("B.out", "y")

    scalar = CompiledSimulator(dfd, check_types=True, backend="flat")
    batch = compile_batch(dfd)

    # input violation at tick 1
    with pytest.raises(Exception) as expected:
        scalar.run({"u": [2, "oops", 4]}, 3)
    outcome = batch.run_battery([("s", {"u": [2, "oops", 4]}, 3)],
                                check_types=True)[0]
    assert str(outcome.exception) == str(expected.value)
    assert "@t1" in str(outcome.exception)

    # output violation: u=3 -> y=1.5 violates INT at tick 1
    with pytest.raises(Exception) as expected:
        scalar.run({"u": [2, 3]}, 2)
    outcome = batch.run_battery([("s", {"u": [2, 3]}, 2)],
                                check_types=True)[0]
    assert str(outcome.exception) == str(expected.value)

    # clean battery type-checks clean
    outcome = batch.run_battery([("s", {"u": [2, 4]}, 2)],
                                check_types=True)[0]
    assert outcome.ok
    assert outcome.trace.outputs["y"].values() == [1, 2]


# -- pinned regressions (differential-fuzz finds) ------------------------------


def test_int_exact_division_stays_int_across_lanes():
    """NumPy true division would give floats; the base language is
    int-exact.  Every lane must preserve the scalar result *type*."""
    outcomes = compile_batch(divider()).run_battery([
        ("exact", {"a": [10, 9, -8], "b": [2, 3, 4]}, 3),
        ("inexact", {"a": [10, 7], "b": [4, 2]}, 2),
    ])
    exact = outcomes[0].trace.outputs["q"].values()
    assert exact == [5, 3, -2]
    assert all(type(v) is int for v in exact)
    inexact = outcomes[1].trace.outputs["q"].values()
    assert inexact == [2.5, 3.5]
    assert all(type(v) is float for v in inexact)


def test_unbounded_ints_do_not_overflow():
    """int64 lanes would wrap at 2**63; object lanes must not."""
    dfd = DataFlowDiagram("Big")
    dfd.add_input("u")
    dfd.add_output("y")
    cube = ExpressionComponent("Cube", {"out": "u * u * u"})
    cube.declare_interface_from_expressions()
    dfd.add_subcomponent(cube)
    dfd.connect("u", "Cube.u")
    dfd.connect("Cube.out", "y")
    huge = 2 ** 80
    outcomes = compile_batch(dfd).run_battery(
        [("big", {"u": [huge, -huge]}, 2), ("small", {"u": [3]}, 1)])
    assert outcomes[0].trace.outputs["y"].values() == [huge ** 3, -(huge ** 3)]
    assert outcomes[1].trace.outputs["y"].values() == [27]


def test_short_circuit_does_not_evaluate_poisoned_right_operand():
    """``a and (1 / b)`` with a false: the scalar engine never divides, so
    a lane with b == 0 must not fall over to eager mask evaluation."""
    dfd = DataFlowDiagram("Lazy")
    dfd.add_input("a")
    dfd.add_input("b")
    dfd.add_output("y")
    guard = ExpressionComponent("Guard", {"out": "a and (1 / b)"})
    guard.declare_interface_from_expressions()
    dfd.add_subcomponent(guard)
    dfd.connect("a", "Guard.a")
    dfd.connect("b", "Guard.b")
    dfd.connect("Guard.out", "y")
    items = [("safe", {"a": [False, False], "b": [0, 0]}, 2),
             ("divides", {"a": [True], "b": [4]}, 1)]
    reference = Simulator(dfd)
    outcomes = compile_batch(dfd).run_battery(items)
    for (name, stimuli, ticks), outcome in zip(items, outcomes):
        assert outcome.ok, (name, outcome.error)
        assert_trace_identical(reference.run(stimuli, ticks), outcome.trace)
    # and a genuinely-dividing zero lane still fails with the scalar message
    bad = compile_batch(dfd).run_battery(
        [("boom", {"a": [True], "b": [0]}, 1)])[0]
    assert not bad.ok
    assert isinstance(bad.exception, ExpressionEvalError)


def test_absent_propagation_matches_interpreter():
    dfd = DataFlowDiagram("Holes")
    dfd.add_input("u")
    dfd.add_output("y")
    dfd.add_output("seen")
    block = ExpressionComponent(
        "B", {"out": "u + 1", "flag": "present(u)"})
    block.add_input("u")
    block.add_output("out")
    block.add_output("flag")
    dfd.add_subcomponent(block)
    dfd.connect("u", "B.u")
    dfd.connect("B.out", "y")
    dfd.connect("B.flag", "seen")
    stimuli = {"u": Stream([1, ABSENT, 3, ABSENT, 5])}
    expected = Simulator(dfd).run(stimuli, 5)
    outcome = compile_batch(dfd).run_battery([("s", stimuli, 5)])[0]
    assert_trace_identical(expected, outcome.trace)
    assert outcome.trace.outputs["y"].values()[1] is ABSENT
    assert outcome.trace.outputs["seen"].values() == [True, False, True,
                                                      False, True]


# -- mode observability --------------------------------------------------------


def test_collect_modes_matches_scalar_histories():
    model = mtd_in_composite()
    items = [("calm", {"x": [1, 1, 1, 1]}, 4),
             ("spike", {"x": [1, 5, 5, 0]}, 4)]
    outcomes = compile_batch(model).run_battery(items, collect_modes=True)
    for (name, stimuli, ticks), outcome in zip(items, outcomes):
        assert outcome.ok
        assert outcome.mode_paths is not None
        expected = Simulator(model).run(stimuli, ticks)
        # the MTD publishes its mode on a port: histories must agree with it
        path, = outcome.mode_paths
        assert outcome.mode_paths[path] == \
            expected.outputs["mode"].values()


def test_stateful_leaf_states_stay_per_lane():
    """The UnitDelay accumulator feedback: lane states must never mix."""
    model = expression_pipeline()
    items = [(f"s{i}", {"u": [i] * 6}, 6) for i in range(5)]
    reference = Simulator(model)
    outcomes = compile_batch(model).run_battery(items)
    for (name, stimuli, ticks), outcome in zip(items, outcomes):
        assert_trace_identical(reference.run(stimuli, ticks), outcome.trace)
