"""Tests for the transformation framework and the concrete steps of Sec. 4."""

import pytest

from repro.ascet.comm_matrix import CommunicationMatrix
from repro.ascet.model import (AscetInterpreter, AscetModule, assign,
                               if_then_else)
from repro.core.clocks import every
from repro.core.components import Component, ExpressionComponent
from repro.core.errors import TransformationError
from repro.core.impl_types import BOOL8, FixedPointType, MachineIntType
from repro.core.model import (AbstractionLevel, AutoModeModel)
from repro.core.types import BOOL, FloatType, IntType
from repro.core.values import ABSENT, Stream
from repro.notations.ccd import Cluster, ClusterCommunicationDiagram
from repro.notations.dfd import DataFlowDiagram
from repro.notations.mtd import ModeTransitionDiagram
from repro.notations.ssd import SSDComponent
from repro.simulation.engine import simulate
from repro.transformations.base import (Transformation, TransformationKind,
                                        TransformationPipeline)
from repro.transformations.clustering import block_period, cluster_by_clock
from repro.transformations.deployment import ClusterDeployment, deploy
from repro.transformations.dissolve import DissolveToCcd, dissolve_to_ccd
from repro.transformations.mtd_to_dataflow import (MtdToDataflowTransformation,
                                                   transform_mtd_to_dataflow,
                                                   verify_equivalence)
from repro.transformations.reengineering import (BlackBoxReengineering,
                                                 WhiteBoxReengineering,
                                                 blackbox_reengineer,
                                                 reengineer_module,
                                                 reengineer_process,
                                                 statements_to_expressions,
                                                 substitute)
from repro.transformations.refactoring import (flatten_hierarchy,
                                               introduce_coordinator,
                                               mtd_to_mode_port_dfds)
from repro.transformations.refinement import (quantization_report,
                                              refine_signal_types)
from repro.core.expr_parser import parse_expression
from repro.core.expressions import Literal


class TestFramework:
    def test_kind_enumeration(self):
        assert str(TransformationKind.REENGINEERING) == "reengineering"
        assert str(TransformationKind.REFINEMENT) == "refinement"

    def test_apply_and_record(self):
        class Renamer(Transformation):
            name = "rename"
            kind = TransformationKind.REFACTORING
            source_level = AbstractionLevel.FDA
            target_level = AbstractionLevel.FDA

            def _transform(self, subject, **options):
                subject.name = options.get("to", subject.name)
                return subject, {"new_name": subject.name}

        model = AutoModeModel("M")
        component = Component("Old")
        result = Renamer().apply_and_record(component, model, to="New")
        assert component.name == "New"
        assert result.details["new_name"] == "New"
        assert model.history[0].kind == "refactoring"
        assert "FDA -> FDA" in result.describe()

    def test_inapplicable_transformation_raises(self):
        transformation = MtdToDataflowTransformation()
        with pytest.raises(TransformationError):
            transformation.apply(Component("NotAnMtd"))

    def test_pipeline_runs_steps_in_sequence(self, engine_modes_mtd):
        pipeline = TransformationPipeline("fda-to-la")
        pipeline.add_step(MtdToDataflowTransformation())
        model = AutoModeModel("Engine")
        result = pipeline.run(engine_modes_mtd, model)
        assert isinstance(result.output, DataFlowDiagram)
        assert len(pipeline.results) == 1
        assert len(model.history) == 1
        assert "fda-to-la" in pipeline.describe()

    def test_empty_pipeline_rejected(self):
        with pytest.raises(TransformationError):
            TransformationPipeline("empty").run(Component("X"))


class TestExpressionHelpers:
    def test_substitute_parameters(self):
        expression = parse_expression("(pos_des - pos) * k")
        bound = substitute(expression, {"k": Literal(2.0)})
        assert "2.0" in bound.to_source()
        assert "k" not in bound.variables()

    def test_statements_to_expressions_inlines_sequence(self):
        statements = [assign("tmp", "a * 2"), assign("y", "tmp + 1")]
        result = statements_to_expressions(statements)
        assert result["y"].variables() == frozenset({"a"})

    def test_statements_to_expressions_nested_conditionals(self):
        statements = [if_then_else("c1",
                                   [assign("y", "1")],
                                   [if_then_else("c2", [assign("y", "2")],
                                                 [assign("y", "3")])])]
        result = statements_to_expressions(statements)
        from repro.core.expr_eval import evaluate
        assert evaluate(result["y"], {"c1": False, "c2": True}) == 2

    def test_partial_assignment_without_previous_value_rejected(self):
        statements = [if_then_else("c", [assign("y", "1")], [])]
        with pytest.raises(TransformationError):
            statements_to_expressions(statements)

    def test_partial_assignment_with_previous_value_uses_it(self):
        statements = [assign("y", "0"),
                      if_then_else("c", [assign("y", "1")], [])]
        result = statements_to_expressions(statements)
        from repro.core.expr_eval import evaluate
        assert evaluate(result["y"], {"c": False}) == 0
        assert evaluate(result["y"], {"c": True}) == 1


class TestWhiteBoxReengineering:
    def test_process_with_modes_becomes_mtd(self, engine_project):
        module = engine_project.module("ThrottleRateOfChange")
        mtd = reengineer_process(module, module.process("calc_rate"),
                                 ["FuelEnabled", "CrankingOverrun"])
        assert isinstance(mtd, ModeTransitionDiagram)
        assert mtd.mode_names() == ["FuelEnabled", "CrankingOverrun"]
        assert mtd.initial_mode == "FuelEnabled"
        assert mtd.validate().is_valid()
        assert mtd.annotations["reengineered_from"].endswith("calc_rate")

    def test_straight_line_process_becomes_expression_component(self,
                                                                engine_project):
        module = engine_project.module("AirMassFlow")
        component = reengineer_module(module)
        assert isinstance(component, ExpressionComponent)
        outputs, _ = component.react({"throttle_angle": 10.0, "n": 1000.0},
                                     None, 0)
        assert outputs["air_mass"] == pytest.approx(10.0 * 0.06 * 2.0)

    def test_reengineered_mtd_matches_ascet_interpreter(self, engine_project):
        module = engine_project.module("FuelInjection")
        mtd = reengineer_module(module, {"calc_ti": ["Injecting", "FuelCut"]})
        interpreter = AscetInterpreter(module)
        scenario = [
            {"n": 900.0, "air_mass": 30.0, "b_fuel": True, "b_overrun": False},
            {"n": 3500.0, "air_mass": 10.0, "b_fuel": True, "b_overrun": True},
            {"n": 300.0, "air_mass": 5.0, "b_fuel": False, "b_overrun": False},
            {"n": 2000.0, "air_mass": 40.0, "b_fuel": True, "b_overrun": False},
        ]
        expected = [out["ti"] for out in interpreter.run(scenario)]
        trace = simulate(mtd, {key: [s[key] for s in scenario]
                               for key in scenario[0]}, ticks=len(scenario))
        assert trace.output("ti").values() == pytest.approx(expected)

    def test_multiple_top_level_conditionals_rejected(self):
        module = AscetModule("TwoIfs")
        module.receive("a", 0.0)
        module.send("x", 0.0)
        module.send("y", 0.0)
        process = module.new_process("p")
        process.add(if_then_else("a > 0", [assign("x", "1")], [assign("x", "2")]))
        process.add(if_then_else("a > 5", [assign("y", "1")], [assign("y", "2")]))
        with pytest.raises(TransformationError):
            reengineer_process(module, process)

    def test_module_without_processes_rejected(self):
        with pytest.raises(TransformationError):
            reengineer_module(AscetModule("Empty"))

    def test_project_reengineering_produces_ssd(self, reengineered_fda):
        assert isinstance(reengineered_fda, SSDComponent)
        names = set(reengineered_fda.subcomponent_names())
        assert {"CentralState", "ThrottleRateOfChange", "FuelInjection",
                "IgnitionTiming", "IdleSpeedControl", "AirMassFlow"} <= names
        # inter-module flag channels exist (CentralState feeds the others)
        flag_channels = [channel for channel in reengineered_fda.channels()
                         if channel.source.component == "CentralState"]
        assert len(flag_channels) >= 3

    def test_transformation_step_wrapper(self, engine_project):
        step = WhiteBoxReengineering()
        result = step.apply(engine_project.module("ThrottleRateOfChange"),
                            mode_names={"calc_rate": ["FuelEnabled",
                                                      "CrankingOverrun"]})
        assert isinstance(result.output, ModeTransitionDiagram)
        assert result.details["implicit_if_then_else"] == 1
        with pytest.raises(TransformationError):
            step.apply("not an ascet artefact")


class TestBlackBoxReengineering:
    def _matrix(self):
        matrix = CommunicationMatrix("BodyNet")
        matrix.add("speed", "ESP", ["CentralLocking", "Wipers"])
        matrix.add("lock_cmd", "CentralLocking", ["DoorActuators"])
        return matrix

    def test_partial_faa_from_matrix(self):
        faa = blackbox_reengineer(self._matrix())
        assert isinstance(faa, SSDComponent)
        assert set(faa.subcomponent_names()) == {"ESP", "CentralLocking",
                                                 "Wipers", "DoorActuators"}
        assert len(faa.internal_channels()) == 3
        esp = faa.subcomponent("ESP")
        assert not esp.has_behavior()  # behaviour stays unspecified on FAA
        assert faa.validate(require_behavior=False).is_valid()

    def test_step_wrapper_rejects_empty_matrix(self):
        step = BlackBoxReengineering()
        with pytest.raises(TransformationError):
            step.apply(CommunicationMatrix("Empty"))
        result = step.apply(self._matrix())
        assert result.details["functions"] == 4


class TestMtdToDataflow:
    def test_equivalence_on_engine_modes(self, engine_modes_mtd,
                                         engine_scenario):
        dataflow = transform_mtd_to_dataflow(engine_modes_mtd)
        assert dataflow.validate().is_valid()
        stimuli = {"n": engine_scenario["n"], "ped": engine_scenario["ped"],
                   "t_eng": engine_scenario["t_eng"]}
        equivalent, difference = verify_equivalence(engine_modes_mtd, dataflow,
                                                    stimuli, ticks=120)
        assert equivalent, f"first difference: {difference}"

    def test_structure_is_partitionable(self, engine_modes_mtd):
        dataflow = transform_mtd_to_dataflow(engine_modes_mtd)
        block_names = set(dataflow.subcomponent_names())
        assert f"{engine_modes_mtd.name}_ModeController" in block_names
        behaviour_blocks = [name for name in block_names
                            if name.startswith("Behavior_")]
        assert len(behaviour_blocks) == len(engine_modes_mtd.modes())
        merge_blocks = [name for name in block_names if name.startswith("Merge_")]
        assert merge_blocks == ["Merge_fuel_factor"]

    def test_empty_mtd_rejected(self):
        with pytest.raises(TransformationError):
            transform_mtd_to_dataflow(ModeTransitionDiagram("Empty"))

    def test_refactoring_variant_exposes_mode_ports(self, engine_modes_mtd):
        dataflow, mode_blocks = mtd_to_mode_port_dfds(engine_modes_mtd)
        assert len(mode_blocks) == 6
        assert all("mode_sel" in block.input_names() for block in mode_blocks)


class TestRefactoring:
    def test_introduce_coordinator_resolves_conflict(self, door_lock_faa):
        from repro.analysis.conflicts import analyze_conflicts
        coordinator = introduce_coordinator(door_lock_faa, "DoorLock1")
        assert coordinator.name == "DoorLock1Coordinator"
        incoming = [channel for channel in door_lock_faa.channels()
                    if channel.destination.component == "DoorLock1"]
        assert len(incoming) == 1
        assert incoming[0].source.component == "DoorLock1Coordinator"

    def test_coordinator_requires_conflict(self, door_lock_faa):
        with pytest.raises(TransformationError):
            introduce_coordinator(door_lock_faa, "DoorLock3")
        with pytest.raises(TransformationError):
            introduce_coordinator(door_lock_faa, "NoSuchActuator")

    def test_coordinator_arbitrates_by_priority(self):
        ssd = SSDComponent("Net")
        first = ExpressionComponent("A", {"cmd": "1"})
        first.add_output("cmd", IntType(0, 10))
        second = ExpressionComponent("B", {"cmd": "2"})
        second.add_output("cmd", IntType(0, 10))
        actuator_stub = ExpressionComponent("Valve", {"echo": "u"})
        actuator_stub.add_input("u", IntType(0, 10))
        actuator_stub.add_input("v", IntType(0, 10))
        actuator_stub.add_output("echo", IntType(0, 10))
        ssd.add(first, second, actuator_stub)
        ssd.add_typed_output("echo", IntType(0, 10))
        ssd.connect("A.cmd", "Valve.u", delayed=True)
        ssd.connect("B.cmd", "Valve.v", delayed=True)
        ssd.connect("Valve.echo", "echo")

        coordinator = introduce_coordinator(ssd, "Valve", strategy="priority")
        assert coordinator.name == "ValveCoordinator"
        incoming = [channel for channel in ssd.channels()
                    if channel.destination.component == "Valve"]
        assert len(incoming) == 1
        # the first (highest priority) request -- function A's command -- wins
        trace = simulate(ssd, {}, ticks=3)
        assert trace.output("echo").last_present() == 1

    def test_coordinator_last_wins_strategy(self, door_lock_faa):
        coordinator = introduce_coordinator(door_lock_faa, "DoorLock2",
                                            strategy="last-wins",
                                            coordinator_name="FrontRightCoord")
        assert coordinator.name == "FrontRightCoord"
        with pytest.raises(TransformationError):
            introduce_coordinator(door_lock_faa, "DoorLock2",
                                  strategy="unknown-strategy")

    def test_flatten_hierarchy(self):
        outer = SSDComponent("Outer")
        outer.add_typed_input("x", FloatType(0, 100))
        outer.add_typed_output("y", FloatType(0, 100))
        inner = SSDComponent("Inner")
        inner.add_typed_input("u", FloatType(0, 100))
        inner.add_typed_output("v", FloatType(0, 100))
        gain = ExpressionComponent("G", {"out": "in1 * 2"})
        gain.add_input("in1", FloatType(0, 100))
        gain.add_output("out", FloatType(0, 200))
        inner.add_subcomponent(gain)
        inner.connect("u", "G.in1")
        inner.connect("G.out", "v")
        outer.add_subcomponent(inner)
        outer.connect("x", "Inner.u")
        outer.connect("Inner.v", "y")

        before = simulate(outer, {"x": [1.0, 2.0]}, ticks=2)
        flatten_hierarchy(outer, ["Inner"])
        assert "Inner_G" in outer.subcomponent_names()
        assert "Inner" not in outer.subcomponent_names()
        after = simulate(outer, {"x": [1.0, 2.0]}, ticks=2)
        assert before.output("y").values() == after.output("y").values()

    def test_flatten_rejects_atomic_target(self):
        composite = SSDComponent("S")
        composite.add_subcomponent(Component("Leaf"))
        with pytest.raises(TransformationError):
            flatten_hierarchy(composite, ["Leaf"])


class TestDissolveAndClustering:
    def test_dissolve_to_ccd(self, reengineered_fda):
        ccd = dissolve_to_ccd(reengineered_fda,
                              rates={"IgnitionTiming": 2,
                                     "IdleSpeedControl": 10})
        assert isinstance(ccd, ClusterCommunicationDiagram)
        assert len(ccd.clusters()) == len(reengineered_fda.subcomponents())
        assert ccd.cluster("C_IdleSpeedControl").period == 10
        assert ccd.cluster("C_CentralState").period == 1
        # SSD delays are preserved on inter-cluster channels
        assert any(entry["delayed"] for entry in ccd.rate_transitions())

    def test_dissolve_step_wrapper(self, reengineered_fda):
        step = DissolveToCcd()
        result = step.apply(reengineered_fda, rates={"IgnitionTiming": 2})
        assert result.details["clusters"] == len(reengineered_fda.subcomponents())
        with pytest.raises(TransformationError):
            step.apply(Component("NotAnSsd"))

    def test_block_period_sources(self):
        block = Component("B")
        assert block_period(block) == 1
        block.annotate("rate", 5)
        assert block_period(block) == 5
        assert block_period(block, {"B": 7}) == 7
        clocked = Component("C")
        clocked.add_input("x", clock=every(4))
        clocked.add_output("y", clock=every(4))
        assert block_period(clocked) == 4

    def test_cluster_by_clock_partitions_and_rewires(self):
        dfd = DataFlowDiagram("Mixed")
        dfd.add_input("u", FloatType(0, 10))
        dfd.add_output("y", FloatType(0, 100))
        fast = ExpressionComponent("Fast", {"out": "in1 * 2"})
        fast.declare_interface_from_expressions()
        fast.annotate("rate", 1)
        slow = ExpressionComponent("Slow", {"out": "in1 + 1"})
        slow.declare_interface_from_expressions()
        slow.annotate("rate", 10)
        dfd.add(fast, slow)
        dfd.connect("u", "Fast.in1")
        dfd.connect("Fast.out", "Slow.in1")
        dfd.connect("Slow.out", "y")
        ccd, partition = cluster_by_clock(dfd)
        assert partition == {1: ["Fast"], 10: ["Slow"]}
        assert len(ccd.clusters()) == 2
        assert len(ccd.rate_transitions()) == 1
        assert ccd.rate_transitions()[0]["direction"] == "fast-to-slow"

    def test_cluster_by_clock_empty_rejected(self):
        with pytest.raises(TransformationError):
            cluster_by_clock(DataFlowDiagram("Empty"))


class TestRefinementAndDeployment:
    def test_refine_signal_types(self):
        cluster = Cluster("C", rate=every(1))
        cluster.add_input("n", FloatType(0.0, 8000.0))
        cluster.add_input("enable", BOOL)
        cluster.add_output("count", IntType(0, 200))
        mapping = refine_signal_types(cluster,
                                      signal_ranges={"n": {"resolution": 0.25}})
        assert isinstance(mapping.lookup("n").implementation_type, FixedPointType)
        assert mapping.lookup("enable").implementation_type is BOOL8
        assert isinstance(mapping.lookup("count").implementation_type,
                          MachineIntType)
        assert "n" in cluster.implementation

    def test_quantization_report(self):
        cluster = Cluster("C", rate=every(1))
        cluster.add_output("n", FloatType(0.0, 8000.0))
        mapping = refine_signal_types(cluster)
        impl = mapping.lookup("n").implementation_type
        traces = {"n": Stream([0.0, 123.456, 7999.9, ABSENT])}
        report = quantization_report(mapping, traces)
        assert report["n"]["max_error"] <= impl.resolution / 2 + 1e-9
        assert report["n"]["samples"] == 3

    def test_deploy_two_ecus(self, engine_ccd):
        result = deploy(engine_ccd, ["ECU_Engine", "ECU_Body"],
                        allocation={"SensorProcessing": "ECU_Engine",
                                    "FuelAndIgnition": "ECU_Engine"})
        assert set(result.ecu_of_cluster) == {"SensorProcessing",
                                              "FuelAndIgnition", "IdleSpeed",
                                              "Monitoring"}
        assert result.ecu_of_cluster["FuelAndIgnition"] == "ECU_Engine"
        # every cluster landed in exactly one task whose period matches
        for cluster in engine_ccd.clusters():
            task_name = result.task_of_cluster[cluster.name]
            ecu = result.architecture.ecu(result.ecu_of_cluster[cluster.name])
            assert cluster.name in ecu.task(task_name).clusters
            assert ecu.task(task_name).period == cluster.period
        assert "deployment of CCD" in result.describe()

    def test_cross_ecu_signals_become_can_frames(self, engine_ccd):
        result = deploy(engine_ccd, ["ECU_Engine", "ECU_Body"],
                        allocation={"SensorProcessing": "ECU_Engine",
                                    "FuelAndIgnition": "ECU_Engine",
                                    "IdleSpeed": "ECU_Body",
                                    "Monitoring": "ECU_Body"})
        assert result.remote_signals() >= 1
        assert len(result.bus.frames) >= 1
        assert result.bus.utilization() < 1.0
        assert len(result.matrix) >= len(result.frame_of_signal)

    def test_single_ecu_has_no_frames(self, engine_ccd):
        result = deploy(engine_ccd, ["OnlyECU"])
        assert result.remote_signals() == 0
        assert len(result.bus.frames) == 0

    def test_deploy_validation(self, engine_ccd):
        with pytest.raises(Exception):
            deploy(engine_ccd, [])
        with pytest.raises(Exception):
            deploy(engine_ccd, ["E1"], allocation={"SensorProcessing": "Ghost"})
        with pytest.raises(TransformationError):
            ClusterDeployment().apply(Component("NotACcd"))

    def test_deployment_step_wrapper(self, engine_ccd):
        result = ClusterDeployment().apply(engine_ccd,
                                           ecu_names=["ECU_A", "ECU_B"])
        assert result.details["ecus"] == 2
