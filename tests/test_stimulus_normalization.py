"""Edge cases of stimulus normalization (shared by both engines).

Satellite of the scenarios subsystem: ``normalize_stimulus`` is the single
point where callables, sequences, streams, scalars and generator objects
become ``tick -> value`` feeds, so its edge semantics (exhaustion, presence)
are what both engines and the sharded runner inherit.
"""

import pytest

from repro.core.components import ExpressionComponent
from repro.core.values import ABSENT, Stream, is_absent
from repro.scenarios import RandomWalk, UniformNoise
from repro.simulation import (CompiledSimulator, Simulator, first_difference,
                              normalize_stimulus)


def _echo():
    block = ExpressionComponent("Echo", {"out": "in1"})
    block.declare_interface_from_expressions()
    return block


# -- per-kind normalization -------------------------------------------------


def test_scalar_is_constant_at_every_tick():
    feed = normalize_stimulus(3.5, 10)
    assert [feed(tick) for tick in range(10)] == [3.5] * 10


def test_string_scalar_is_not_treated_as_a_sequence():
    feed = normalize_stimulus("Idle", 4)
    assert [feed(tick) for tick in range(4)] == ["Idle"] * 4


def test_short_sequences_are_absent_beyond_their_end():
    for spec in ([1, 2], (1, 2), Stream([1, 2])):
        feed = normalize_stimulus(spec, 5)
        assert feed(0) == 1 and feed(1) == 2
        assert all(is_absent(feed(tick)) for tick in range(2, 5))


def test_stream_absences_are_preserved():
    feed = normalize_stimulus(Stream([1, ABSENT, 3]), 3)
    assert feed(0) == 1
    assert is_absent(feed(1))
    assert feed(2) == 3


def test_callable_is_passed_through_untouched():
    def generator(tick):
        return tick * 10

    feed = normalize_stimulus(generator, 100)
    assert feed is generator


def test_generator_objects_are_materialized_for_the_horizon():
    noise = UniformNoise(seed=4, low=0.0, high=1.0)
    feed = normalize_stimulus(noise, 8)
    assert [feed(tick) for tick in range(8)] == noise.materialize(8)
    # beyond the materialized horizon the feed is absent, not an error
    assert is_absent(feed(8))
    assert is_absent(feed(100))


def test_empty_sequence_is_fully_absent():
    feed = normalize_stimulus([], 3)
    assert all(is_absent(feed(tick)) for tick in range(3))


# -- engine-level behaviour -------------------------------------------------


def test_both_engines_agree_on_exhausted_sequences():
    block = _echo()
    stimuli = {"in1": [1.0, 2.0]}
    reference = Simulator(block).run(stimuli, ticks=6)
    compiled = CompiledSimulator(block).run(stimuli, ticks=6)
    assert first_difference(reference, compiled) is None
    assert reference.output("out").presence_pattern() \
        == [True, True, False, False, False, False]


def test_seeded_generator_reruns_are_identical():
    block = _echo()
    generator = RandomWalk(seed=21, start=0.0, step=2.0)
    simulator = CompiledSimulator(block)
    first = simulator.run({"in1": generator}, ticks=30)
    second = simulator.run({"in1": generator}, ticks=30)
    assert first_difference(first, second) is None
    # a fresh generator with the same seed drives the same trace
    third = simulator.run({"in1": RandomWalk(seed=21, start=0.0, step=2.0)},
                          ticks=30)
    assert first_difference(first, third) is None


def test_generator_driven_engines_agree():
    block = _echo()
    generator = UniformNoise(seed=33, low=-5.0, high=5.0)
    reference = Simulator(block).run({"in1": generator}, ticks=20)
    compiled = CompiledSimulator(block).run({"in1": generator}, ticks=20)
    assert first_difference(reference, compiled) is None


def test_unknown_stimulus_ports_are_still_rejected():
    from repro.core.errors import SimulationError
    block = _echo()
    with pytest.raises(SimulationError):
        Simulator(block).run({"nope": 1.0}, ticks=2)
