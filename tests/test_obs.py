"""The observability subsystem: metrics, tracing, op profiles, wiring.

Pins the contracts of :mod:`repro.obs`:

* metric folds are order- and shard-insensitive (merge of worker
  registries == one serial registry over the same work);
* tracer exports (span tree and Chrome trace-event JSON) are
  **byte-stable** under a fake clock, and round-trip;
* the instrumented flat step is trace-equivalent to the default step and
  its profile counts are deterministic;
* zero overhead when off is *structural*: the default step closure is the
  same object whether or not observability was ever enabled;
* the sharded runner's ``runner.scenario.*`` counters agree exactly
  across serial / thread / process executors (worker-local registries
  merged in the parent).

Process-pool tests are marked ``parallel``, matching the runner suite.
"""

import json

import pytest

from repro import obs
from repro.core.clocks import every
from repro.core.components import ExpressionComponent
from repro.notations.blocks import Gain, UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.obs import (MetricsRegistry, OpProfile, Tracer, format_profile,
                       span_from_json_dict)
from repro.scenarios import RandomWalk, Scenario, run_sharded
from repro.simulation import (ClockGatedComponent, CompiledSimulator,
                              first_difference)


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class FakeClock:
    """A deterministic monotonic clock: 0.0, 0.25, 0.5, ..."""

    def __init__(self, step=0.25):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


# -- models -----------------------------------------------------------------


def gated_accumulator():
    """A flattenable hierarchy with a clock gate and a delay buffer."""
    inner = DataFlowDiagram("Inner")
    inner.add_input("u")
    inner.add_output("y")
    add = ExpressionComponent("ADD", {"out": "a + b"})
    add.declare_interface_from_expressions()
    delay = UnitDelay("Z", initial=0)
    inner.add(add, delay)
    inner.connect("u", "ADD.a")
    inner.connect("Z.out", "ADD.b")
    inner.connect("ADD.out", "Z.in1")
    inner.connect("ADD.out", "y")
    gated = ClockGatedComponent(inner, every(2), name="Slow")

    outer = DataFlowDiagram("Outer")
    outer.add_input("u")
    outer.add_output("y")
    gain = Gain("G", 2.0)
    outer.add(gated, gain)
    outer.connect("u", "Slow.u")
    outer.connect("Slow.y", "G.in1")
    outer.connect("G.out", "y")
    return outer


def _engine_batch(count=6, ticks=30):
    return [Scenario(f"drive{index}", {
        "n": RandomWalk(seed=index, start=0.0, step=500.0,
                        low=0.0, high=6000.0),
        "ped": RandomWalk(seed=100 + index, start=0.0, step=25.0,
                          low=0.0, high=100.0),
        "t_eng": 15.0 + 5.0 * index,
    }, ticks=ticks) for index in range(count)]


# -- metrics ----------------------------------------------------------------


def test_counter_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("x")
    counter.inc()
    counter.inc(4)
    assert registry.counter("x") is counter
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_histogram_fixed_buckets_are_order_insensitive():
    values = [0.00005, 0.005, 0.005, 0.5, 2.0, 100.0]
    first = MetricsRegistry().histogram("d")
    second = MetricsRegistry().histogram("d")
    for value in values:
        first.observe(value)
    for value in reversed(values):
        second.observe(value)
    assert first.counts == second.counts
    assert first.count == len(values)
    assert first.sum == pytest.approx(second.sum)
    assert (first.min, first.max) == (0.00005, 100.0)
    assert first.counts[-1] == 1  # the overflow bucket caught 100.0


def test_registry_merge_equals_serial_and_is_order_insensitive():
    def record(registry, values):
        for value in values:
            registry.counter("runs").inc()
            registry.histogram("d").observe(value)
            registry.gauge("peak").set(value)

    serial = MetricsRegistry()
    record(serial, [0.1, 0.2, 0.3, 0.4])
    shard_a, shard_b = MetricsRegistry(), MetricsRegistry()
    record(shard_a, [0.1, 0.2])
    record(shard_b, [0.3, 0.4])

    ab = MetricsRegistry().merge(shard_a).merge(shard_b)
    ba = MetricsRegistry().merge(shard_b).merge(shard_a)
    assert ab.to_json() == ba.to_json() == serial.to_json()
    assert ab.gauge("peak").value == 0.4  # gauges keep the max


def test_registry_json_round_trip_and_counter_projection():
    registry = MetricsRegistry()
    registry.counter("runner.scenario.total").inc(3)
    registry.counter("batch.sweeps").inc()
    registry.gauge("g").set(7.0)
    registry.histogram("d").observe(0.05)
    rebuilt = MetricsRegistry.from_json_dict(
        json.loads(registry.to_json()))
    assert rebuilt.to_json() == registry.to_json()
    assert registry.counter_values("runner.scenario.") \
        == {"runner.scenario.total": 3}
    assert "runner.scenario.total = 3" in registry.format_summary()


def test_histogram_merge_rejects_different_bounds():
    from repro.obs import Histogram
    with pytest.raises(ValueError):
        Histogram("a", (1.0, 2.0)).merge(Histogram("a", (1.0, 3.0)))


def test_histogram_quantiles_interpolate_monotonically():
    registry = MetricsRegistry()
    histogram = registry.histogram("d")
    for value in (0.001, 0.002, 0.003, 0.004, 0.2, 0.9):
        histogram.observe(value)
    p0, p50, p90, p100 = registry.histogram_quantiles(
        "d", (0.0, 0.5, 0.9, 1.0))
    assert p0 == 0.001 and p100 == 0.9  # clamped to observed extremes
    assert p0 <= p50 <= p90 <= p100  # monotone in q
    with pytest.raises(ValueError):
        registry.histogram_quantiles("d", (1.5,))


def test_histogram_quantiles_missing_or_empty_are_none():
    registry = MetricsRegistry()
    assert registry.histogram_quantiles("missing", (0.5, 0.9)) \
        == [None, None]
    registry.histogram("empty")
    assert registry.histogram_quantiles("empty", (0.5,)) == [None]


def test_format_metrics_renders_tables_with_prefix_filter():
    from repro.obs import format_metrics
    registry = MetricsRegistry()
    registry.counter("runner.scenario.total").inc(3)
    registry.gauge("peak").set(4.5)
    registry.histogram("runner.scenario.duration_s").observe(0.05)
    text = format_metrics(registry)
    assert "runner.scenario.total" in text and "3" in text
    assert "peak" in text and "(gauge)" in text
    assert "p50" in text and "p99" in text
    filtered = format_metrics(registry, prefix="runner.")
    assert "peak" not in filtered
    assert "runner.scenario.total" in filtered
    assert format_metrics(MetricsRegistry()).strip() == "(no instruments)"


# -- tracing ----------------------------------------------------------------


def _fake_trace():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("compile", component="M") as span:
        span.attributes["ops"] = 12
        with tracer.span("flatten"):
            pass
    with tracer.span("run", ticks=100):
        pass
    return tracer


def test_tracer_exports_are_byte_stable_under_fake_clock():
    first, second = _fake_trace(), _fake_trace()
    assert first.to_json() == second.to_json()
    assert first.to_chrome_json() == second.to_chrome_json()

    roots = [span.name for span in first.roots]
    assert roots == ["compile", "run"]
    compile_span = first.roots[0]
    assert [child.name for child in compile_span.children] == ["flatten"]
    assert compile_span.duration() > 0


def test_span_tree_round_trips_through_json():
    tracer = _fake_trace()
    data = json.loads(tracer.to_json())
    rebuilt = Tracer(clock=FakeClock())
    for entry in data["spans"]:
        rebuilt.adopt(span_from_json_dict(entry))
    assert rebuilt.to_json() == tracer.to_json()


def test_chrome_trace_shape():
    trace = _fake_trace().to_chrome_trace()
    events = trace["traceEvents"]
    assert events[0]["ph"] == "M"  # process_name metadata
    complete = [event for event in events if event["ph"] == "X"]
    assert [event["name"] for event in complete] \
        == ["compile", "flatten", "run"]
    for event in complete:
        assert isinstance(event["ts"], int)
        assert isinstance(event["dur"], int)
        assert event["dur"] >= 0
    assert min(event["ts"] for event in complete) == 0  # epoch-relative
    assert complete[0]["args"]["ops"] == 12


def test_chrome_trace_worker_spans_get_their_own_tracks():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("runner.run_sharded", scenarios=4):
        pass
    worker = Tracer(clock=FakeClock())
    with worker.span("runner.worker_task", worker="pid-7"):
        with worker.span("run"):
            pass
    for root in worker.roots:
        tracer.adopt(root)

    events = tracer.to_chrome_trace()["traceEvents"]
    metadata = [event for event in events if event["ph"] == "M"]
    assert any(event["name"] == "thread_name"
               and event["args"]["name"] == "worker pid-7"
               for event in metadata)
    by_name = {event["name"]: event for event in events
               if event["ph"] == "X"}
    assert by_name["runner.run_sharded"]["tid"] == 0
    assert by_name["runner.worker_task"]["tid"] == 1
    # the worker tid is inherited by the whole adopted subtree
    assert by_name["run"]["tid"] == 1


def test_span_records_errors():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("nope")
    span = tracer.roots[0]
    assert span.end is not None
    assert span.attributes["error"] == "RuntimeError: nope"


# -- the op-level flat profiler ----------------------------------------------


def test_instrumented_flat_step_is_trace_equivalent():
    model = gated_accumulator()
    stimuli = {"u": [float(value) for value in range(20)]}

    reference = CompiledSimulator(model, backend="flat").run(stimuli, 20)
    with obs.session(profile_ops=True) as telemetry:
        simulator = CompiledSimulator(model, backend="flat")
        observed = simulator.run(stimuli, 20)
    assert first_difference(reference, observed) is None

    (profile,) = telemetry.profiles.values()
    assert profile.ticks == 20
    assert profile.total_time_s > 0
    assert 0 < profile.op_time_s() <= profile.total_time_s
    # every op position was visited a deterministic number of times
    assert all(count <= 20 for count in profile.counts)
    checks, skips = profile.gate_stats()
    assert checks == 20  # one gate op, evaluated every tick
    assert skips == 10   # every(2) silences every other tick
    assert max(profile.counts) == 20
    rendered = format_profile(profile)
    assert "op profile:" in rendered and "gates:" in rendered


def test_default_step_is_untouched_by_enable_disable():
    simulator = CompiledSimulator(gated_accumulator(), backend="flat")
    original_step = simulator.schedule.step
    stimuli = {"u": [1.0] * 8}
    with obs.session(profile_ops=True):
        simulator.run(stimuli, 8)
    assert simulator.schedule.step is original_step
    assert obs.active() is None
    trace = simulator.run(stimuli, 8)
    assert trace.ticks == 8


def test_compile_spans_and_plan_cache_counters():
    with obs.session() as telemetry:
        CompiledSimulator(gated_accumulator(), backend="flat")
    names = [span.name for span in telemetry.tracer.walk()]
    assert names[0] == "compile.component"
    assert "compile.flatten" in names
    counters = telemetry.registry.counter_values("compile.plan_cache.")
    assert sum(counters.values()) > 0


def test_op_profile_merge_requires_same_shape():
    labels = [("expr", "a", False), ("gate", "g", False)]
    first = OpProfile("m[flat]", labels)
    second = OpProfile("m[flat]", labels)
    first.counts[0] = 3
    second.counts[0] = 4
    second.gate_skips[1] = 2
    first.merge(second)
    assert first.counts[0] == 7
    assert first.gate_skips[1] == 2
    with pytest.raises(ValueError):
        first.merge(OpProfile("other", [("expr", "a", False)]))


def _flattenable_engine(engine_modes_mtd):
    """The engine-mode MTD wrapped in a composite so the root flattens
    (batch backend requirement); the MTD itself stays a nested leaf."""
    dfd = DataFlowDiagram("EngineSystem")
    dfd.add_subcomponent(engine_modes_mtd)
    for port in ("n", "ped", "t_eng"):
        dfd.add_input(port)
        dfd.connect(port, f"EngineOperationModes.{port}")
    for port in ("fuel_factor", "mode"):
        dfd.add_output(port)
        dfd.connect(f"EngineOperationModes.{port}", port)
    return dfd


def test_batch_sweep_profile_and_counters(engine_modes_mtd):
    pytest.importorskip("numpy")
    model = _flattenable_engine(engine_modes_mtd)
    batch = _engine_batch()
    reference = run_sharded(model, batch, executor="serial",
                            backend="batch")
    with obs.session(profile_ops=True) as telemetry:
        observed = run_sharded(model, batch, executor="serial",
                               backend="batch")
    for expected, actual in zip(reference, observed):
        assert actual.ok and actual.amortized
        assert first_difference(expected.trace, actual.trace) is None

    registry = telemetry.registry
    assert registry.counter("batch.sweeps").value == 1
    assert registry.counter("batch.lanes").value == len(batch)
    assert registry.counter("runner.sweep.count").value == 1
    assert registry.counter("runner.sweep.lanes").value == len(batch)
    assert registry.histogram("runner.sweep.duration_s").count == 1
    assert registry.counter_values("runner.scenario.") == {
        "runner.scenario.total": len(batch),
        "runner.scenario.ok": len(batch),
        "runner.scenario.ticks": sum(s.ticks for s in batch),
    }
    span_names = [span.name for span in telemetry.tracer.walk()]
    assert "runner.run_sharded" in span_names
    assert "batch.sweep" in span_names
    profiles = telemetry.named_profiles()
    (profile,) = [profiles[name] for name in profiles if "[batch]" in name]
    assert profile.ticks > 0


# -- executor equivalence of runner telemetry --------------------------------


def _scenario_counters(engine_modes_mtd, executor, **kwargs):
    with obs.session() as telemetry:
        results = run_sharded(engine_modes_mtd, _engine_batch(),
                              executor=executor, **kwargs)
    assert all(result.ok for result in results)
    return telemetry.registry.counter_values("runner.scenario.")


def test_runner_counters_serial_equals_thread(engine_modes_mtd):
    serial = _scenario_counters(engine_modes_mtd, "serial")
    threaded = _scenario_counters(engine_modes_mtd, "thread", max_workers=3)
    chunked = _scenario_counters(engine_modes_mtd, "thread", max_workers=3,
                                 chunk_size=2)
    assert serial == threaded == chunked
    assert serial["runner.scenario.total"] == 6


@pytest.mark.parallel
def test_runner_counters_serial_equals_process(engine_modes_mtd):
    serial = _scenario_counters(engine_modes_mtd, "serial")
    processed = _scenario_counters(engine_modes_mtd, "process",
                                   max_workers=2, chunk_size=2)
    assert serial == processed


def test_runner_counts_errors_by_exception_type(engine_modes_mtd):
    def exploding(tick):
        if tick >= 3:
            raise ValueError("sensor model exploded")
        return 0.0

    batch = _engine_batch(count=3)
    batch.insert(1, Scenario("boom", {"n": exploding}, ticks=20))
    with obs.session() as telemetry:
        results = run_sharded(engine_modes_mtd, batch, executor="serial")
    assert sum(1 for result in results if not result.ok) == 1
    counters = telemetry.registry.counter_values("runner.scenario.")
    assert counters["runner.scenario.failed"] == 1
    assert counters["runner.scenario.error.ValueError"] == 1
    assert counters["runner.scenario.ok"] == 3


def test_runner_records_nothing_when_disabled(engine_modes_mtd):
    results = run_sharded(engine_modes_mtd, _engine_batch(count=2),
                          executor="serial")
    assert all(result.ok and not result.amortized for result in results)
    assert obs.current_registry() is None


# -- search loop telemetry ----------------------------------------------------


def test_search_rounds_feed_registry_and_spans(engine_modes_mtd):
    from repro.search import SearchConfig, search_coverage
    with obs.session() as telemetry:
        report = search_coverage(engine_modes_mtd,
                                 config=SearchConfig(seed=3, max_rounds=2,
                                                     population=4,
                                                     minimize=False))
    registry = telemetry.registry
    assert registry.counter("search.rounds").value == len(report.rounds)
    assert registry.counter("search.evaluations").value == report.evaluations
    round_spans = [span for span in telemetry.tracer.walk()
                   if span.name == "search.round"]
    assert len(round_spans) == len(report.rounds)
    assert all(span.children for span in round_spans)  # runner span nested
    assert all(stats.duration_s > 0 for stats in report.rounds)
