"""The bench-regression tracker: flatten, gate, history, verdicts, CLI.

Pins the contracts of :mod:`repro.obs.regress`:

* bench payloads flatten to dotted numeric keys with the embedded
  ``observability`` telemetry skipped; only ``*median*`` keys with an
  inferable improvement direction gate (everything else is tracked but
  can never fail CI);
* the baseline is the median of the last ``window`` recorded runs,
  computed BEFORE the current run is appended, so one noisy run neither
  poisons the baseline nor slips past the check;
* ``main(--check)`` exits 1 exactly when a gated metric degrades beyond
  tolerance, 0 otherwise (including the empty-directory no-op);
* ``benchmarks._bench_utils.write_bench_json`` appends to the history
  named by ``BENCH_HISTORY``, so local runs build the same series CI
  tracks.
"""

import json
import os
import sys

import pytest

from repro.obs.regress import (BenchHistory, check_regressions,
                               flatten_numeric, format_trend, gated_metrics,
                               load_bench_dir, main, metric_direction)

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "benchmarks"))
from _bench_utils import write_bench_json  # noqa: E402


# -- flatten + gate ---------------------------------------------------------


def test_flatten_numeric_skips_telemetry_bools_and_lists():
    payload = {
        "seconds_median": 1.5,
        "speedup": 3,
        "pass": True,
        "rows": [1, 2, 3],
        "nested": {"ticks_per_second_median": 100.0},
        "observability": {"metrics": {"anything": 1.0}},
    }
    assert flatten_numeric(payload) == {
        "seconds_median": 1.5,
        "speedup": 3.0,
        "nested.ticks_per_second_median": 100.0,
    }


def test_metric_direction_inference():
    assert metric_direction("flat_seconds_median") == "lower"
    assert metric_direction("overhead_median") == "lower"
    # per_second contains "seconds" as a substring: higher wins the tie
    assert metric_direction("ticks_per_second_median") == "higher"
    assert metric_direction("speedup_median") == "higher"
    assert metric_direction("rows_median") is None


def test_gated_metrics_require_median_and_direction():
    flat = {
        "seconds_median": 1.0,      # gates (lower)
        "seconds_best": 0.9,        # no median token
        "speedup_median": 2.0,      # gates (higher)
        "lanes_median": 8.0,        # median but no direction
    }
    assert gated_metrics(flat) == {"seconds_median": 1.0,
                                   "speedup_median": 2.0}


def test_load_bench_dir_skips_history_file(tmp_path):
    (tmp_path / "BENCH_flatten.json").write_text(
        json.dumps({"seconds_median": 1.0}))
    (tmp_path / "BENCH_history.json").write_text(
        json.dumps({"schema_version": 1, "runs": []}))
    (tmp_path / "notes.json").write_text("{}")
    benches = load_bench_dir(str(tmp_path))
    assert list(benches) == ["flatten"]


# -- history ----------------------------------------------------------------


def test_history_records_gated_metrics_and_baselines(tmp_path):
    path = str(tmp_path / "BENCH_history.json")
    history = BenchHistory(path)
    for index, value in enumerate([1.0, 1.1, 0.9, 1.05, 0.95]):
        history.record_run({"flatten": {"seconds_median": value,
                                        "rows": 100.0}},
                           timestamp=float(index))
    history.save()

    reloaded = BenchHistory(path)
    assert len(reloaded.runs) == 5
    # only gated metrics are stored
    assert "rows" not in reloaded.runs[0]["benches"]["flatten"]
    assert reloaded.series("flatten", "seconds_median") \
        == [1.0, 1.1, 0.9, 1.05, 0.95]
    assert reloaded.baseline("flatten", "seconds_median", window=5) == 1.0
    assert reloaded.baseline("flatten", "seconds_median", window=2) == 1.0
    assert reloaded.baseline("flatten", "missing") is None


def test_history_rejects_future_schema(tmp_path):
    path = str(tmp_path / "BENCH_history.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema_version": 99, "runs": []}, handle)
    with pytest.raises(ValueError):
        BenchHistory(path)


# -- the check --------------------------------------------------------------


def test_first_run_never_regresses(tmp_path):
    history = BenchHistory(str(tmp_path / "BENCH_history.json"))
    findings = check_regressions(history,
                                 {"flatten": {"seconds_median": 100.0}})
    assert len(findings) == 1
    assert findings[0].baseline is None and not findings[0].regressed


def test_regression_detected_beyond_tolerance(tmp_path):
    history = BenchHistory(str(tmp_path / "BENCH_history.json"))
    for index in range(3):
        history.record_run({"flatten": {"seconds_median": 1.0,
                                        "speedup_median": 4.0}},
                           timestamp=float(index))
    # 50% slower AND 50% less speedup: both directions flag
    findings = check_regressions(
        history, {"flatten": {"seconds_median": 1.5, "speedup_median": 2.0}},
        tolerance=0.25)
    by_metric = {finding.metric: finding for finding in findings}
    assert by_metric["seconds_median"].regressed
    assert by_metric["seconds_median"].worse == pytest.approx(0.5)
    assert by_metric["speedup_median"].regressed
    assert by_metric["speedup_median"].worse == pytest.approx(0.5)
    # within tolerance: 10% drift passes
    calm = check_regressions(
        history, {"flatten": {"seconds_median": 1.1, "speedup_median": 3.6}},
        tolerance=0.25)
    assert not any(finding.regressed for finding in calm)
    # improvements never regress
    better = check_regressions(
        history, {"flatten": {"seconds_median": 0.5, "speedup_median": 8.0}},
        tolerance=0.25)
    assert not any(finding.regressed for finding in better)


def test_format_trend_marks_regressions(tmp_path):
    history = BenchHistory(str(tmp_path / "BENCH_history.json"))
    for index in range(3):
        history.record_run({"flatten": {"seconds_median": 1.0}},
                           timestamp=float(index))
    findings = check_regressions(history,
                                 {"flatten": {"seconds_median": 2.0}})
    table = format_trend(history, findings)
    assert "flatten.seconds_median" in table
    assert "<< REGRESSED" in table
    assert format_trend(history, []) \
        == "no gated bench metrics found (nothing to track)"


# -- the CLI ----------------------------------------------------------------


def _write_bench(directory, median):
    with open(os.path.join(directory, "BENCH_demo.json"), "w",
              encoding="utf-8") as handle:
        json.dump({"flatten": {"seconds_median": median}}, handle)


def test_cli_round_trip_and_exit_codes(tmp_path, capsys):
    bench_dir = str(tmp_path)
    history = os.path.join(bench_dir, "BENCH_history.json")
    base = ["--bench-dir", bench_dir, "--history", history, "--check"]
    # steady runs build history and pass
    for index, median in enumerate([1.0, 1.01, 0.99]):
        _write_bench(bench_dir, median)
        assert main(base + ["--timestamp", str(float(index))]) == 0
    assert len(BenchHistory(history).runs) == 3
    # a 2x slowdown trips the gate; the run is still recorded
    _write_bench(bench_dir, 2.0)
    assert main(base + ["--timestamp", "3.0"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out
    assert len(BenchHistory(history).runs) == 4
    # --no-record compares without appending
    assert main(base + ["--no-record", "--timestamp", "4.0"]) == 1
    assert len(BenchHistory(history).runs) == 4
    # without --check a regression reports but exits 0
    assert main(["--bench-dir", bench_dir, "--history", history,
                 "--timestamp", "5.0"]) == 0


def test_cli_empty_directory_is_a_noop(tmp_path, capsys):
    assert main(["--bench-dir", str(tmp_path), "--check"]) == 0
    assert "nothing to check" in capsys.readouterr().out


def test_cli_baseline_excludes_current_run(tmp_path):
    """The gate compares against history, never against itself."""
    bench_dir = str(tmp_path)
    history = os.path.join(bench_dir, "BENCH_history.json")
    base = ["--bench-dir", bench_dir, "--history", history, "--check"]
    _write_bench(bench_dir, 1.0)
    assert main(base + ["--timestamp", "0.0"]) == 0
    _write_bench(bench_dir, 10.0)
    # if the current run polluted its own baseline this would pass
    assert main(base + ["--timestamp", "1.0"]) == 1


# -- bench harness hook -----------------------------------------------------


def test_write_bench_json_appends_to_bench_history(tmp_path, monkeypatch):
    history_path = str(tmp_path / "BENCH_history.json")
    monkeypatch.setenv("BENCH_OUT_DIR", str(tmp_path))
    monkeypatch.setenv("BENCH_HISTORY", history_path)
    path = write_bench_json("demo", {"seconds_median": 1.25,
                                     "rows": [1, 2]})
    assert os.path.exists(path)
    history = BenchHistory(history_path)
    assert len(history.runs) == 1
    assert history.runs[0]["benches"]["demo"]["seconds_median"] == 1.25

    # without BENCH_HISTORY the hook is inert
    monkeypatch.delenv("BENCH_HISTORY")
    write_bench_json("demo", {"seconds_median": 1.5})
    assert len(BenchHistory(history_path).runs) == 1
