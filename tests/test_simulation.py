"""Tests for the simulation engine, traces, causality and multi-rate helpers."""

import pytest

from repro.core.clocks import every
from repro.core.components import (CompositeComponent, ExpressionComponent)
from repro.core.errors import CausalityError, SimulationError, TypeCheckError
from repro.core.types import FloatType
from repro.core.values import ABSENT, Stream, is_absent
from repro.notations.blocks import Gain, UnitDelay
from repro.notations.ccd import Cluster, ClusterCommunicationDiagram
from repro.notations.dfd import DataFlowDiagram
from repro.simulation.causality import (analyze_causality, assert_causal,
                                        instantaneous_path_exists)
from repro.simulation.engine import (ClockGatedComponent, Simulator, simulate,
                                     simulate_ccd)
from repro.simulation.multirate import (constant, presence_ratio, pulse, ramp,
                                        resample, sine, sporadic, step)
from repro.simulation.trace import (first_difference, streams_equal,
                                    traces_equivalent)


def _identity_block(name="F"):
    block = ExpressionComponent(name, {"out": "in1"})
    block.declare_interface_from_expressions()
    return block


class TestSimulator:
    def test_scalar_sequence_stream_and_callable_stimuli(self):
        block = ExpressionComponent("Sum", {"out": "a + b + c + d"})
        block.declare_interface_from_expressions()
        trace = simulate(block, {
            "a": 1,                       # scalar constant
            "b": [10, 20, 30],            # list
            "c": Stream([100, 200, 300]),  # stream
            "d": lambda tick: tick,       # callable
        }, ticks=3)
        assert trace.output("out").values() == [111, 222, 333]

    def test_sequence_shorter_than_horizon_pads_with_absence(self):
        block = _identity_block()
        trace = simulate(block, {"in1": [1]}, ticks=3)
        assert trace.output("out").values() == [1, ABSENT, ABSENT]

    def test_unknown_stimulus_port_rejected(self):
        block = _identity_block()
        with pytest.raises(SimulationError):
            simulate(block, {"nope": [1]}, ticks=1)

    def test_negative_ticks_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(_identity_block()).run({}, ticks=-1)

    def test_component_without_behavior_rejected(self):
        from repro.core.components import Component
        stub = Component("S")
        with pytest.raises(SimulationError):
            Simulator(stub)

    def test_type_checking_mode(self):
        block = ExpressionComponent("F", {"out": "in1"})
        block.add_input("in1", FloatType(0.0, 10.0))
        block.add_output("out", FloatType(0.0, 10.0))
        with pytest.raises(TypeCheckError):
            simulate(block, {"in1": [99.0]}, ticks=1, check_types=True)
        trace = simulate(block, {"in1": [5.0]}, ticks=1, check_types=True)
        assert trace.output("out").values() == [5.0]

    def test_mode_history_recorded_for_mtds(self, door_lock_control):
        from repro.casestudy import crash_scenario
        trace = simulate(door_lock_control, crash_scenario(8), ticks=8)
        assert len(trace.mode_history) == 8
        assert "CrashUnlocked" in trace.mode_history


class TestTrace:
    def test_signal_lookup_and_rows(self):
        block = _identity_block()
        trace = simulate(block, {"in1": [1, 2]}, ticks=2)
        assert trace.signal("out").values() == [1, 2]
        assert trace.signal("in1").values() == [1, 2]
        with pytest.raises(SimulationError):
            trace.signal("missing")
        rows = trace.as_rows(["in1", "out"])
        assert rows[0][0] == "in1" and rows[1][0] == "out"

    def test_format_table_shows_absence_as_dash(self):
        block = _identity_block()
        trace = simulate(block, {"in1": [20, ABSENT, 23]}, ticks=3)
        table = trace.format_table(["in1"])
        assert "-" in table and "20" in table and "23" in table
        assert "t+2" in table

    def test_streams_equal_with_tolerance(self):
        assert streams_equal(Stream([1.0, ABSENT]), Stream([1.0000001, ABSENT]),
                             tolerance=1e-3)
        assert not streams_equal(Stream([1.0]), Stream([1.1]), tolerance=1e-3)
        assert not streams_equal(Stream([1.0]), Stream([ABSENT]))
        assert not streams_equal(Stream([1.0]), Stream([1.0, 2.0]))

    def test_traces_equivalent_and_first_difference(self):
        block = _identity_block()
        first = simulate(block, {"in1": [1, 2, 3]}, ticks=3)
        second = simulate(block, {"in1": [1, 2, 3]}, ticks=3)
        third = simulate(block, {"in1": [1, 9, 3]}, ticks=3)
        assert traces_equivalent(first, second)
        assert not traces_equivalent(first, third)
        difference = first_difference(first, third)
        assert difference == {"signal": "out", "tick": 1, "first": 2, "second": 9}
        assert first_difference(first, second) is None


class TestCausalityAnalysis:
    def test_hierarchical_analysis(self):
        outer = DataFlowDiagram("Outer")
        inner = DataFlowDiagram("Inner")
        inner.add_input("x")
        inner.add_output("y")
        inner.add(Gain("G", 2.0))
        inner.connect("x", "G.in1")
        inner.connect("G.out", "y")
        outer.add_subcomponent(inner)
        outer.add(Gain("H", 1.0))
        outer.connect("Inner.y", "H.in1")
        analysis = analyze_causality(outer)
        assert analysis.is_causal
        assert analysis.composite_count() == 2
        assert assert_causal(outer).is_causal
        assert analysis.to_report().is_valid()

    def test_cycle_is_located(self):
        dfd = DataFlowDiagram("Loop")
        dfd.add(Gain("A", 1.0), Gain("B", 1.0), Gain("C", 1.0))
        dfd.connect("A.out", "B.in1")
        dfd.connect("B.out", "A.in1")
        analysis = analyze_causality(dfd)
        assert not analysis.is_causal
        cycle = analysis.cycles()[0]
        assert set(cycle.cycle) == {"A", "B"}
        with pytest.raises(CausalityError):
            assert_causal(dfd)
        assert not analysis.to_report().is_valid()

    def test_instantaneous_path_exists(self):
        dfd = DataFlowDiagram("Chain")
        dfd.add(Gain("A", 1.0), Gain("B", 1.0), UnitDelay("Z"))
        dfd.connect("A.out", "B.in1")
        dfd.connect("B.out", "Z.in1")
        assert instantaneous_path_exists(dfd, "A", "B")
        assert not instantaneous_path_exists(dfd, "B", "A")

    def test_atomic_component_trivially_causal(self):
        analysis = analyze_causality(Gain("G", 1.0))
        assert analysis.is_causal and analysis.composite_count() == 0


class TestClockGating:
    def test_gated_component_reacts_only_on_clock(self):
        gated = ClockGatedComponent(Gain("G", 2.0), every(2))
        trace = simulate(gated, {"in1": [1, 2, 3, 4]}, ticks=4)
        assert trace.output("out").values() == [2, ABSENT, 6, ABSENT]

    def test_gated_state_frozen_between_activations(self):
        gated = ClockGatedComponent(UnitDelay("Z", initial=0), every(2))
        trace = simulate(gated, {"in1": [1, 2, 3, 4]}, ticks=4)
        assert trace.output("out").values() == [0, ABSENT, 1, ABSENT]

    def test_simulate_ccd_applies_cluster_rates(self):
        ccd = ClusterCommunicationDiagram("C")
        cluster = Cluster("Fast", rate=every(1))
        cluster.add_input("u", FloatType(0, 10), every(1))
        cluster.add_output("y", FloatType(0, 10), every(1))
        block = ExpressionComponent("F", {"out": "in1"})
        block.declare_interface_from_expressions()
        cluster.add_subcomponent(block)
        cluster.connect("u", "F.in1")
        cluster.connect("F.out", "y")
        slow = Cluster("Slow", rate=every(3))
        slow.add_input("u", FloatType(0, 10), every(3))
        slow.add_output("y", FloatType(0, 10), every(3))
        slow_block = ExpressionComponent("G", {"out": "in1"})
        slow_block.declare_interface_from_expressions()
        slow.add_subcomponent(slow_block)
        slow.connect("u", "G.in1")
        slow.connect("G.out", "y")
        ccd.add_cluster(cluster)
        ccd.add_cluster(slow)
        ccd.add_input("x", FloatType(0, 10), every(1))
        ccd.add_output("fast_y", FloatType(0, 10), every(1))
        ccd.add_output("slow_y", FloatType(0, 10), every(3))
        ccd.connect("x", "Fast.u")
        ccd.connect("x", "Slow.u")
        ccd.connect("Fast.y", "fast_y")
        ccd.connect("Slow.y", "slow_y")
        trace = simulate_ccd(ccd, {"x": [1.0] * 6}, ticks=6)
        assert trace.output("fast_y").presence_count() == 6
        assert trace.output("slow_y").presence_count() == 2


class TestMultirateStimuli:
    def test_constant_and_clock(self):
        stream = constant(5, 4, every(2))
        assert stream.values() == [5, ABSENT, 5, ABSENT]
        assert presence_ratio(stream) == 0.5

    def test_step_ramp_sine_pulse_sporadic(self):
        assert step(4, 2, 0.0, 1.0).values() == [0.0, 0.0, 1.0, 1.0]
        assert ramp(3, slope=2.0).values() == [0.0, 2.0, 4.0]
        wave = sine(8, amplitude=1.0, period=8)
        assert wave[0] == pytest.approx(0.0)
        assert wave[2] == pytest.approx(1.0)
        assert pulse(4, [1, 3]).values() == [False, True, False, True]
        events = sporadic(5, [(1, "a"), (3, "b"), (9, "late")])
        assert events.values() == [ABSENT, "a", ABSENT, "b", ABSENT]

    def test_sine_rejects_bad_period(self):
        with pytest.raises(SimulationError):
            sine(4, period=0)

    def test_resample_sample_and_hold(self):
        fast = Stream([1, 2, 3, 4, 5, 6])
        slow = resample(fast, every(3))
        assert slow.values() == [1, ABSENT, ABSENT, 4, ABSENT, ABSENT]
        gappy = Stream([1, ABSENT, ABSENT, ABSENT, 5, ABSENT])
        held = resample(gappy, every(2))
        assert held.values() == [1, ABSENT, 1, ABSENT, 5, ABSENT]
        strict = resample(gappy, every(2), hold_last=False)
        assert is_absent(strict[2])

    def test_presence_ratio_empty(self):
        assert presence_ratio(Stream()) == 0.0
