"""Unified reporting: rule registry, Finding/LintReport JSON schema, SARIF
export, legacy-report adapters and the ``python -m repro.analysis.lint``
CLI end to end.
"""

import json

import pytest

from repro.analysis.lint import (FINDING_SCHEMA_VERSION, Finding, LintReport,
                                 all_rules, findings_from_report, get_rule,
                                 lint_causality, lint_conflicts,
                                 lint_well_definedness, register, rule_ids,
                                 to_sarif, verify_component)
from repro.analysis.lint.__main__ import main as lint_main
from repro.casestudy.door_lock import build_door_lock_faa
from repro.casestudy.engine_control import build_engine_ccd
from repro.casestudy.momentum import build_momentum_controller
from repro.core.components import ExpressionComponent
from repro.core.errors import ValidationError
from repro.core.validation import Severity, ValidationReport
from repro.notations.dfd import DataFlowDiagram
from repro.simulation.compiled import compile_component


def _loop_model():
    """Two instantaneous components in a cycle: not causal."""
    dfd = DataFlowDiagram("Loop")
    dfd.add_input("x")
    dfd.add_output("out")
    first = ExpressionComponent("F", {"out": "a + b"})
    first.add_input("a")
    first.add_input("b")
    first.add_output("out")
    second = ExpressionComponent("G", {"out": "c * 2"})
    second.add_input("c")
    second.add_output("out")
    dfd.add_subcomponent(first)
    dfd.add_subcomponent(second)
    dfd.connect("x", "F.a")
    dfd.connect("G.out", "F.b")
    dfd.connect("F.out", "G.c")
    dfd.connect("F.out", "out")
    return dfd


# -- registry ----------------------------------------------------------------


def test_rule_ids_are_unique_and_resolvable():
    ids = rule_ids()
    assert len(ids) == len(set(ids))
    for rule_id in ids:
        rule = get_rule(rule_id)
        assert rule.rule_id == rule_id
        assert rule.layer in ("ir", "expr", "machine", "model")
        assert rule.summary


def test_registry_rejects_duplicate_registration():
    existing = all_rules()[0]
    with pytest.raises(ValidationError):
        register(existing.rule_id, existing.layer,
                 existing.default_severity, existing.summary)


def test_registry_covers_all_layers():
    layers = {rule.layer for rule in all_rules()}
    assert layers == {"ir", "expr", "machine", "model"}


# -- finding / report JSON ---------------------------------------------------


def test_finding_json_shape():
    finding = Finding("ir-dead-store", Severity.INFO, "slot 3 never read",
                      subject="m", element="m.op[2]",
                      suggestion="drop it", location={"slot": 3})
    payload = finding.to_json_dict()
    assert payload["rule"] == "ir-dead-store"
    assert payload["severity"] == "info"
    assert payload["location"] == {"slot": 3}
    assert "slot 3 never read" in finding.describe()


def test_report_counts_and_json_roundtrip():
    report = LintReport("demo")
    report.add(Finding("ir-dead-store", Severity.INFO, "a"))
    report.add(Finding("ir-write-write", Severity.WARNING, "b"))
    report.add(Finding("ir-read-before-write", Severity.ERROR, "c"))
    assert len(report.errors()) == 1
    assert len(report.warnings()) == 1
    assert len(report.infos()) == 1
    assert not report.is_clean()
    assert report.is_clean(worst_allowed=Severity.ERROR)
    payload = json.loads(report.to_json())
    assert payload["schema_version"] == FINDING_SCHEMA_VERSION
    assert payload["subject"] == "demo"
    assert payload["counts"] == {"error": 1, "warning": 1, "info": 1}
    assert len(payload["findings"]) == 3


def test_raise_on_errors():
    report = LintReport("demo")
    report.add(Finding("causality", Severity.ERROR, "loop through F, G"))
    with pytest.raises(ValidationError, match="loop through F, G"):
        report.raise_on_errors()
    LintReport("clean").raise_on_errors()  # no error -> no raise


# -- legacy report adapters (satellite: unified rule ids) --------------------


def test_findings_from_validation_report_preserve_rule_and_severity():
    legacy = ValidationReport("legacy")
    legacy.error("ccd-rate-transition", "slow reader without delay")
    legacy.warning("faa-shared-sensor", "two agents share a sensor")
    findings = findings_from_report(legacy, subject="legacy")
    assert [f.rule for f in findings] == ["ccd-rate-transition",
                                          "faa-shared-sensor"]
    assert findings[0].severity is Severity.ERROR
    assert findings[1].severity is Severity.WARNING
    assert all(f.subject == "legacy" for f in findings)


def test_lint_causality_flags_instantaneous_loop():
    report = lint_causality(_loop_model())
    findings = report.by_rule("causality")
    assert findings and findings[0].severity is Severity.ERROR


def test_lint_well_definedness_reports_deliberate_missing_delay():
    # engine-ccd ships one repairable rate transition by design
    report = lint_well_definedness(build_engine_ccd())
    assert report.by_rule("ccd-rate-transition")


def test_lint_conflicts_uses_registered_faa_rules():
    report = lint_conflicts(build_door_lock_faa())
    # the door-lock FAA has a known actuator conflict (both functions drive
    # the door locks); it must surface under the registered rule id
    conflicts = report.by_rule("faa-actuator-conflict")
    assert conflicts and all(f.rule in rule_ids() for f in conflicts)


# -- SARIF -------------------------------------------------------------------


def test_sarif_export_shape():
    report = LintReport("demo")
    report.add(Finding("ir-dead-store", Severity.INFO, "a",
                       element="demo.op[1]"))
    report.add(Finding("causality", Severity.ERROR, "loop"))
    sarif = to_sarif([report])
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    described = {rule["id"] for rule in driver["rules"]}
    assert {"ir-dead-store", "causality"} <= described
    levels = {result["ruleId"]: result["level"] for result in run["results"]}
    assert levels == {"ir-dead-store": "note", "causality": "error"}
    for result in run["results"]:
        assert result["ruleIndex"] == \
            [r["id"] for r in driver["rules"]].index(result["ruleId"])


def test_sarif_handles_unregistered_legacy_rule_ids():
    report = LintReport("demo")
    report.add(Finding("ccd-clusters-only", Severity.WARNING, "legacy"))
    sarif = to_sarif([report])
    driver = sarif["runs"][0]["tool"]["driver"]
    assert any(rule["id"] == "ccd-clusters-only" for rule in driver["rules"])


# -- verify wiring -----------------------------------------------------------


def test_verify_component_raises_on_causality_loop():
    with pytest.raises(ValidationError, match="causality"):
        verify_component(_loop_model())


def test_verify_component_passes_clean_model():
    report = verify_component(build_momentum_controller())
    assert not report.errors()


def test_compile_component_verify_flag():
    with pytest.raises(ValidationError):
        compile_component(_loop_model(), verify=True)
    simulator = compile_component(build_momentum_controller(), verify=True)
    assert simulator is not None


# -- CLI ---------------------------------------------------------------------


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "ir-read-before-write" in out
    assert "machine-guard-overlap" in out


def test_cli_list_targets(capsys):
    assert lint_main(["--list-targets"]) == 0
    assert "engine-ccd" in capsys.readouterr().out


def test_cli_unknown_target_errors():
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["no-such-model"])
    assert excinfo.value.code == 2


def test_cli_all_builtins_are_error_free(tmp_path, capsys):
    json_path = tmp_path / "lint.json"
    sarif_path = tmp_path / "lint.sarif"
    code = lint_main(["--all", "-q", "--json", str(json_path),
                      "--sarif", str(sarif_path)])
    assert code == 0
    assert "ok:" in capsys.readouterr().out
    payload = json.loads(json_path.read_text())
    assert payload["schema_version"] == FINDING_SCHEMA_VERSION
    assert len(payload["reports"]) == 9
    for report in payload["reports"]:
        assert report["counts"]["error"] == 0
    sarif = json.loads(sarif_path.read_text())
    assert sarif["version"] == "2.1.0"
    assert sarif["runs"][0]["tool"]["driver"]["name"] == "repro-lint"


def test_cli_example_file_with_defect_fails(tmp_path, capsys):
    example = tmp_path / "broken.py"
    example.write_text(
        "from repro.core.components import ExpressionComponent\n"
        "from repro.notations.dfd import DataFlowDiagram\n"
        "\n"
        "def build_loop():\n"
        "    dfd = DataFlowDiagram('Loop')\n"
        "    dfd.add_input('x')\n"
        "    dfd.add_output('out')\n"
        "    f = ExpressionComponent('F', {'out': 'a + b'})\n"
        "    f.add_input('a'); f.add_input('b'); f.add_output('out')\n"
        "    g = ExpressionComponent('G', {'out': 'c * 2'})\n"
        "    g.add_input('c'); g.add_output('out')\n"
        "    dfd.add_subcomponent(f); dfd.add_subcomponent(g)\n"
        "    dfd.connect('x', 'F.a'); dfd.connect('G.out', 'F.b')\n"
        "    dfd.connect('F.out', 'G.c'); dfd.connect('F.out', 'out')\n"
        "    return dfd\n")
    code = lint_main(["--example", str(example)])
    captured = capsys.readouterr()
    assert code == 1
    assert "FAILED" in captured.err
    assert "causality" in captured.out


def test_cli_well_definedness_opt_in(capsys):
    assert lint_main(["engine-ccd", "-q"]) == 0
    capsys.readouterr()
    # the deliberate missing delay is only reported when opted in; the
    # finding is rate-transition severity error under the OSEK profile
    code = lint_main(["engine-ccd", "-q", "--well-definedness"])
    assert code == 1
