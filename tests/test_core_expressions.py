"""Tests for the base-language AST, parser and evaluator (paper Sec. 3.2)."""

import pytest

from repro.core.errors import (ExpressionEvalError, ExpressionParseError)
from repro.core.expr_eval import ExpressionEvaluator, evaluate
from repro.core.expr_parser import parse_expression
from repro.core.expressions import (BinaryOp, Call, Conditional, Literal,
                                    Present, UnaryOp, Variable,
                                    conditional_count, depth, operator_count,
                                    walk)
from repro.core.values import ABSENT, is_absent


class TestParser:
    def test_fig5_add_expression(self):
        expression = parse_expression("ch1 + ch2 + ch3")
        assert expression.variables() == frozenset({"ch1", "ch2", "ch3"})
        assert evaluate(expression, {"ch1": 1, "ch2": 2, "ch3": 3}) == 6

    def test_precedence_multiplication_before_addition(self):
        assert evaluate("2 + 3 * 4", {}) == 14
        assert evaluate("(2 + 3) * 4", {}) == 20

    def test_unary_minus(self):
        assert evaluate("-x + 1", {"x": 5}) == -4

    def test_comparisons(self):
        assert evaluate("n >= 400", {"n": 400}) is True
        assert evaluate("n < 400", {"n": 400}) is False
        assert evaluate("a != b", {"a": 1, "b": 2}) is True
        assert evaluate("a = b", {"a": 3, "b": 3}) is True  # '=' alias

    def test_boolean_operators_and_not(self):
        assert evaluate("a and not b", {"a": True, "b": False}) is True
        assert evaluate("a or b", {"a": False, "b": False}) is False

    def test_conditional_expression(self):
        expression = parse_expression("if x > 0 then x else 0 - x")
        assert evaluate(expression, {"x": -5}) == 5
        assert evaluate(expression, {"x": 5}) == 5

    def test_nested_conditionals(self):
        expression = parse_expression(
            "if a then 1 else if b then 2 else 3")
        assert evaluate(expression, {"a": False, "b": True}) == 2
        assert conditional_count(expression) == 2

    def test_function_call(self):
        assert evaluate("limit(x, 0, 10)", {"x": 22}) == 10
        assert evaluate("max(a, b, 3)", {"a": 1, "b": 2}) == 3

    def test_present_construct(self):
        expression = parse_expression("present(ch)")
        assert isinstance(expression, Present)
        assert evaluate(expression, {"ch": 5}) is True
        assert evaluate(expression, {"ch": ABSENT}) is False
        assert evaluate(expression, {}) is False

    def test_string_literal(self):
        assert evaluate("mode == 'crash'", {"mode": "crash"}) is True

    def test_float_and_bool_literals(self):
        assert evaluate("1.5 * 2", {}) == 3.0
        assert evaluate("true and false", {}) is False

    def test_roundtrip_to_source(self):
        source = "if a > 1 then limit(a, 0, 5) else -(b)"
        expression = parse_expression(source)
        reparsed = parse_expression(expression.to_source())
        assert expression == reparsed

    @pytest.mark.parametrize("bad", ["", "1 +", "foo(", "a ? b", "(a", "x 3",
                                     "if a then b", "present(1)"])
    def test_parse_errors(self, bad):
        with pytest.raises(ExpressionParseError):
            parse_expression(bad)

    def test_non_string_rejected(self):
        with pytest.raises(ExpressionParseError):
            parse_expression(None)


class TestEvaluator:
    def test_absence_propagates_through_arithmetic(self):
        assert is_absent(evaluate("a + 1", {"a": ABSENT}))
        assert is_absent(evaluate("-a", {"a": ABSENT}))
        assert is_absent(evaluate("limit(a, 0, 1)", {"a": ABSENT}))

    def test_absence_in_condition_makes_result_absent(self):
        assert is_absent(evaluate("if c then 1 else 2", {"c": ABSENT}))

    def test_short_circuit_and(self):
        # the right operand is absent but irrelevant
        assert evaluate("a and b", {"a": False, "b": ABSENT}) is False
        assert is_absent(evaluate("a and b", {"a": True, "b": ABSENT}))

    def test_short_circuit_or(self):
        assert evaluate("a or b", {"a": True, "b": ABSENT}) is True
        assert is_absent(evaluate("a or b", {"a": False, "b": ABSENT}))

    def test_unknown_variable_raises(self):
        with pytest.raises(ExpressionEvalError):
            evaluate("missing + 1", {})

    def test_division(self):
        assert evaluate("a / b", {"a": 7, "b": 2}) == 3.5
        assert evaluate("a / b", {"a": 8, "b": 2}) == 4
        with pytest.raises(ExpressionEvalError):
            evaluate("a / b", {"a": 1, "b": 0})

    def test_modulo(self):
        assert evaluate("a % 3", {"a": 7}) == 1

    def test_type_error_reported(self):
        with pytest.raises(ExpressionEvalError):
            evaluate("a + b", {"a": 1, "b": "text"})

    def test_unknown_function(self):
        with pytest.raises(ExpressionEvalError):
            evaluate("nosuch(1)", {})

    def test_custom_function_registration(self):
        evaluator = ExpressionEvaluator({"double": lambda value: value * 2})
        assert evaluator.evaluate(parse_expression("double(x)"), {"x": 4}) == 8

    def test_builtin_functions(self):
        assert evaluate("abs(0 - 4)", {}) == 4
        assert evaluate("sign(0 - 3)", {}) == -1
        assert evaluate("sqrt(16)", {}) == 4.0
        assert evaluate("floor(2.7)", {}) == 2
        assert evaluate("interpolate(5, 0, 0, 10, 100)", {}) == 50.0


class TestAstHelpers:
    def test_walk_and_depth(self):
        expression = parse_expression("a + b * c")
        nodes = walk(expression)
        assert len(nodes) == 5
        assert depth(expression) == 3
        assert depth(Literal(1)) == 1

    def test_operator_count(self):
        assert operator_count(parse_expression("a + b + c")) == 2
        assert operator_count(parse_expression("limit(a, 0, 1)")) == 1
        assert operator_count(Variable("x")) == 0

    def test_expression_equality(self):
        assert parse_expression("a + b") == parse_expression("a + b")
        assert parse_expression("a + b") != parse_expression("b + a")

    def test_literal_to_source(self):
        assert Literal(True).to_source() == "true"
        assert Literal("lock").to_source() == "'lock'"
        assert Literal(3).to_source() == "3"

    def test_call_and_unary_to_source(self):
        call = Call("max", (Variable("a"), Literal(2)))
        assert call.to_source() == "max(a, 2)"
        negation = UnaryOp("not", Variable("b"))
        assert "not" in negation.to_source()
