"""Differential and hygiene tests for the native C backend.

The native backend's promise is byte-identical observable behaviour to the
flat interpreter -- same ``trace_to_json`` output across the case-study
portfolio, same exception type/message/tick on error paths -- obtained
from a compiled C step function.  Everything that needs a C compiler is
skipped cleanly (``native_available``) on compiler-less hosts; the static
pieces (cache keys, eviction, the ir_verify refusal gate, backend
validation) run everywhere.
"""

import os

import pytest

from repro.casestudy import (acceleration_scenario, build_closed_loop,
                             build_door_lock_control, build_engine_ccd,
                             build_reengineered_fda, crash_scenario,
                             driving_scenario)
from repro.core.clocks import every
from repro.core.components import ExpressionComponent
from repro.core.errors import SimulationError
from repro.core.values import ABSENT, Stream
from repro.io.json_io import trace_to_json
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.simulation import (ClockGatedComponent, CompiledSimulator,
                              NativeLoweringError, build_gated_ccd,
                              compile_flat, compile_native, native_available)
from repro.simulation.native import (EMITTER_VERSION, cache_key, evict_stale,
                                     lower_program, reset_toolchain_cache)
from repro.simulation.schedule_ir import OP_GATE

requires_cc = pytest.mark.skipif(not native_available(),
                                 reason="no C compiler on this host")


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Every test compiles into its own throwaway shared-object cache."""
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "native-cache"))


# -- helpers -------------------------------------------------------------------


def _wrapped(component):
    """A flattenable pass-through composite around an unflattenable root,
    so MTD/SSD case studies exercise the run-op trampoline path."""
    dfd = DataFlowDiagram(f"{component.name}Wrap")
    for name in component.input_names():
        dfd.add_input(name)
    for name in component.output_names():
        dfd.add_output(name)
    dfd.add_subcomponent(component)
    for name in component.input_names():
        dfd.connect(name, f"{component.name}.{name}")
    for name in component.output_names():
        dfd.connect(f"{component.name}.{name}", name)
    return dfd


def _filtered(scenario, component):
    return {name: values for name, values in scenario.items()
            if name in component.input_names()}


def _expression_heavy_model():
    dfd = DataFlowDiagram("NativeProbe")
    dfd.add_input("x")
    dfd.add_input("y")
    dfd.add_output("out")
    e1 = ExpressionComponent("E1", {"out": "a + b * 2"})
    e2 = ExpressionComponent("E2",
                             {"out": "if a > b then a / (b + 1) else "
                                     "min(a, b)"})
    e3 = ExpressionComponent("E3", {"out": "abs(a - b) % (b + 7)"})
    for block in (e1, e2, e3):
        block.add_input("a")
        block.add_input("b")
        block.add_output("out")
    inner = DataFlowDiagram("GCore")
    inner.add_input("a")
    inner.add_input("b")
    inner.add_output("out")
    inner.add_subcomponent(e3)
    inner.connect("a", "E3.a")
    inner.connect("b", "E3.b")
    inner.connect("E3.out", "out")
    gated = ClockGatedComponent(inner, every(2), name="G")
    delay = UnitDelay("Z", initial=1)
    for sub in (e1, e2, gated, delay):
        dfd.add_subcomponent(sub)
    dfd.connect("x", "E1.a")
    dfd.connect("y", "E1.b")
    dfd.connect("x", "E2.a")
    dfd.connect("E1.out", "E2.b")
    dfd.connect("x", "G.a")
    dfd.connect("E2.out", "G.b")
    dfd.connect("E2.out", "Z.in1")
    dfd.connect("E2.out", "out")
    return dfd


def _outcome(runner, stimuli, ticks):
    try:
        return runner(stimuli, ticks), None
    except Exception as exc:  # noqa: BLE001 - the comparison IS the test
        return None, f"{type(exc).__name__}: {exc}"


# -- portfolio byte-identity ---------------------------------------------------


_PORTFOLIO = [
    ("engine_ccd", lambda: build_gated_ccd(build_engine_ccd()),
     lambda c: _filtered(driving_scenario(120), c), 120),
    ("door_lock", lambda: _wrapped(build_door_lock_control()),
     lambda c: _filtered(crash_scenario(8), c), 8),
    ("reengineered_fda", lambda: _wrapped(build_reengineered_fda()),
     lambda c: _filtered(driving_scenario(120), c), 120),
    ("momentum", lambda: build_closed_loop(),
     lambda c: _filtered(acceleration_scenario(60), c), 60),
]


@requires_cc
@pytest.mark.parametrize("name,build,stimuli_of,ticks",
                         _PORTFOLIO, ids=[c[0] for c in _PORTFOLIO])
def test_native_traces_byte_identical_to_flat_on_portfolio(
        name, build, stimuli_of, ticks):
    component = build()
    stimuli = stimuli_of(component)
    flat = CompiledSimulator(component, backend="flat")
    native = CompiledSimulator(component, backend="native")
    assert native.schedule.kind == "native"
    flat_trace = flat.run(stimuli, ticks)
    native_trace = native.run(stimuli, ticks)
    assert trace_to_json(native_trace) == trace_to_json(flat_trace)
    assert native_trace.mode_history == flat_trace.mode_history


@requires_cc
def test_native_error_paths_match_flat_exactly():
    model = _expression_heavy_model()
    flat = CompiledSimulator(model, backend="flat")
    native = CompiledSimulator(model, backend="native")
    batteries = [
        # ABSENT laces, huge ints, float mixes
        ({"x": Stream([1, 2, 3, 1000, ABSENT, -5, 2 ** 70, 0.5]),
          "y": Stream([4, 0, ABSENT, 2, 7, -1, 3, 2.5])}, 8),
        # division by zero in E2 (b + 1 == 0)
        ({"x": Stream([5, 5]), "y": Stream([1, -3])}, 2),
        # int64 boundary arithmetic
        ({"x": Stream([2 ** 62, -2 ** 62, 2 ** 63 - 1]),
          "y": Stream([2 ** 62, 5, 1])}, 3),
        # modulo error path: b + 7 == 0 inside the gated region
        ({"x": Stream([1, 1]), "y": Stream([-9, -9])}, 2),
    ]
    for stimuli, ticks in batteries:
        flat_trace, flat_error = _outcome(flat.run, stimuli, ticks)
        native_trace, native_error = _outcome(native.run, stimuli, ticks)
        assert native_error == flat_error
        if flat_trace is not None:
            assert trace_to_json(native_trace) == trace_to_json(flat_trace)


@requires_cc
def test_native_value_types_are_exact():
    """int stays int, bool stays bool, floats are bit-exact -- the tagged
    plane must not decay Python's numeric tower."""
    model = _expression_heavy_model()
    flat = CompiledSimulator(model, backend="flat")
    native = CompiledSimulator(model, backend="native")
    stimuli = {"x": Stream([4, 6, True, 0.1, 9]),
               "y": Stream([2, 4, False, 0.2, 3])}
    flat_trace = flat.run(stimuli, 5)
    native_trace = native.run(stimuli, 5)
    for port, stream in flat_trace.outputs.items():
        expected = [(type(v), v) for v in stream.values()]
        got = [(type(v), v) for v in native_trace.outputs[port].values()]
        assert got == expected, port


# -- verification gate ---------------------------------------------------------


def test_native_lowering_refuses_unverified_schedule():
    """A schedule whose ir_verify report carries errors must be refused
    with a typed error before any C is emitted."""
    model = _expression_heavy_model()
    flat = compile_flat(model)
    # doctor the program: point the gate's jump target backwards, which
    # the static verifier reports as ir-gate-structure (an error)
    doctored = []
    for op in flat.program:
        if op[0] == OP_GATE:
            op = (OP_GATE, op[1], 0)
        doctored.append(op)
    flat.program = tuple(doctored)
    with pytest.raises(NativeLoweringError) as exc_info:
        compile_native(flat)
    assert "ir_verify report" in str(exc_info.value)
    assert "not clean" in str(exc_info.value)


# -- backend table and graceful degradation ------------------------------------


def test_backend_validation_lists_sorted_backends_including_native():
    model = _expression_heavy_model()
    with pytest.raises(SimulationError) as exc_info:
        CompiledSimulator(model, backend="turbo")
    assert ("choose from ('auto', 'batch', 'flat', 'native', 'nested')"
            in str(exc_info.value))


def test_native_backend_degrades_to_flat_without_compiler(monkeypatch):
    model = _expression_heavy_model()
    monkeypatch.setenv("CC", "/nonexistent/compiler")
    monkeypatch.setenv("PATH", "/nonexistent")
    reset_toolchain_cache()
    try:
        assert not native_available()
        with pytest.warns(RuntimeWarning, match="requires a C compiler"):
            simulator = CompiledSimulator(model, backend="native")
        assert simulator.schedule.kind == "flat"
        with pytest.raises(NativeLoweringError, match="no C compiler"):
            compile_native(model)
    finally:
        reset_toolchain_cache()
    # the monkeypatched environment is restored by the fixture; make sure
    # later tests re-probe instead of seeing the poisoned cache
    monkeypatch.undo()
    reset_toolchain_cache()


# -- cache hygiene -------------------------------------------------------------


def test_cache_key_is_deterministic_and_version_prefixed():
    model = _expression_heavy_model()
    source_a = lower_program(compile_flat(model), EMITTER_VERSION).source
    source_b = lower_program(compile_flat(model), EMITTER_VERSION).source
    assert source_a == source_b
    assert cache_key(source_a, "cc") == cache_key(source_b, "cc")
    assert cache_key(source_a, "cc").startswith(f"nv{EMITTER_VERSION}-")
    assert cache_key(source_a + "\n/* x */", "cc") != cache_key(source_a,
                                                                "cc")


def test_evict_stale_drops_old_versions_and_trims(tmp_path):
    directory = tmp_path / "cache"
    directory.mkdir()
    stale = directory / "nv0-deadbeef.so"
    stale.write_bytes(b"old")
    (directory / "nv0-deadbeef.c").write_text("/* old */")
    fresh = []
    for index in range(4):
        path = directory / f"nv{EMITTER_VERSION}-{index:040d}.so"
        path.write_bytes(b"obj")
        os.utime(path, (1000 + index, 1000 + index))
        fresh.append(path)
    removed = evict_stale(keep=2, directory=str(directory))
    assert str(stale) in removed
    assert not stale.exists()
    assert not (directory / "nv0-deadbeef.c").exists()
    survivors = sorted(p.name for p in directory.iterdir())
    # the two newest current-version entries survive
    assert survivors == [f"nv{EMITTER_VERSION}-{2:040d}.so",
                         f"nv{EMITTER_VERSION}-{3:040d}.so"]


@requires_cc
def test_compiled_object_cache_hits_on_recompile():
    from repro.simulation.native import ensure_shared_object
    model = _expression_heavy_model()
    source = lower_program(compile_flat(model), EMITTER_VERSION).source
    path_first, hit_first = ensure_shared_object(source)
    path_again, hit_again = ensure_shared_object(source)
    assert path_first == path_again
    assert not hit_first
    assert hit_again
    assert os.path.exists(path_first)


@requires_cc
def test_native_info_reports_compiler_and_cache():
    from repro.simulation.native import native_info
    info = native_info()
    assert info["available"]
    assert info["compiler"]
    assert info["emitter_version"] == EMITTER_VERSION
    assert info["cache_dir"] == os.environ["REPRO_NATIVE_CACHE"]


@requires_cc
def test_native_cli_info_runs():
    from repro.simulation.native.__main__ import main
    assert main(["--info"]) == 0
    assert main(["--evict"]) == 0


# -- fallback coverage ---------------------------------------------------------


@requires_cc
def test_trampoline_covers_nested_fallback_and_exact_escapes():
    """Atomic leaves always trampoline; huge-int arithmetic bails at run
    time; the lowered fast path never fires the trampoline on plain
    small-int traffic through expression blocks only."""
    model = _expression_heavy_model()
    native = CompiledSimulator(model, backend="native")
    schedule = native.schedule
    assert schedule.lowered.lowered_ops  # expression blocks lowered
    assert schedule.lowered.fallback_ops  # the UnitDelay run op

    before = schedule.trampoline_calls
    native.run({"x": Stream([1, 2, 3, 4]), "y": Stream([4, 3, 2, 1])}, 4)
    small_int_calls = schedule.trampoline_calls - before
    # one UnitDelay replay per tick, nothing else
    assert small_int_calls == 4

    before = schedule.trampoline_calls
    native.run({"x": Stream([2 ** 70]), "y": Stream([2 ** 70])}, 1)
    assert schedule.trampoline_calls - before > 1  # run-time bails fired
