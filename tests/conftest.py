"""Shared fixtures for the AutoMoDe reproduction test suite."""

import pytest

from repro.casestudy import (acceleration_scenario, build_closed_loop,
                             build_crank_sequencer_std,
                             build_door_lock_control, build_door_lock_faa,
                             build_engine_ascet_project, build_engine_ccd,
                             build_engine_modes_mtd, build_momentum_controller,
                             build_reengineered_fda, driving_scenario)


@pytest.fixture(scope="session")
def engine_project():
    """The synthetic ASCET project of the case study (session-wide)."""
    return build_engine_ascet_project()


@pytest.fixture(scope="session")
def engine_scenario():
    """The 120-tick driving scenario."""
    return driving_scenario(120)


@pytest.fixture()
def engine_ccd():
    """A fresh copy of the Fig.-7 CCD (tests may mutate channels)."""
    return build_engine_ccd()


@pytest.fixture()
def engine_modes_mtd():
    return build_engine_modes_mtd()


@pytest.fixture()
def crank_sequencer_std():
    return build_crank_sequencer_std()


@pytest.fixture()
def door_lock_control():
    return build_door_lock_control()


@pytest.fixture()
def door_lock_faa():
    return build_door_lock_faa()


@pytest.fixture()
def momentum_controller():
    return build_momentum_controller()


@pytest.fixture(scope="session")
def reengineered_fda():
    return build_reengineered_fda()
