"""Five-backend differential fuzz: interpreter vs nested vs flat vs batch
vs native.

Random flattenable models (expression blocks with randomized base-language
source, delayed feedback, clock-gated subtrees, MTD leaves) crossed with
random batteries (unequal tick counts, missing stimuli, ABSENT-laced
streams, huge integers, zero divisors) must agree across all the
execution backends: identical traces -- value AND Python type, so an
int-exact division that decays to ``numpy`` true division or an int64
wraparound is a failure even when ``==`` would hide it -- and identical
error strings on failing scenarios.  The native C backend joins only when
the host has a compiler (``native_available``).

Every generation step draws from one seeded ``random.Random``, so a
reported seed reproduces the exact divergence.  The regressions this fuzz
historically flushed out are pinned individually in ``test_batch_ir.py``.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core.components import ExpressionComponent
from repro.core.clocks import every
from repro.core.values import ABSENT, Stream
from repro.notations.blocks import UnitDelay
from repro.notations.dfd import DataFlowDiagram
from repro.notations.mtd import ModeTransitionDiagram
from repro.simulation import (ClockGatedComponent, CompiledSimulator,
                              Simulator, compile_batch, native_available)

_HAS_NATIVE = native_available()

# -- random model generation ---------------------------------------------------

_LEAF_SOURCES = [
    "a + b",
    "a - b * 2",
    "(a + 1) * (b + 1)",
    "a / b",                                   # zero divisors, int-exactness
    "a % (b + 7)",
    "if a > b then a - b else b - a",
    "a and (100 / (b + 1))",                   # lazy right operand
    "(a < b) or (a == b)",
    "not (a > 0)",
    "present(a) and present(b)",
    "if present(a) then a else 0 - 1",
    "min(a, b) + max(a, b)",
    "abs(a - b)",
    "a * a * a",                               # overflow probe with big ints
    "(a + b) * 1000000000000",                 # grows past int64 quickly
]


def _expression_block(rng, name):
    source = rng.choice(_LEAF_SOURCES)
    block = ExpressionComponent(name, {"out": source})
    block.add_input("a")
    block.add_input("b")
    block.add_output("out")
    return block


def _mtd_block(rng, name):
    mtd = ModeTransitionDiagram(name)
    mtd.add_input("a")
    mtd.add_input("b")
    mtd.add_output("out")
    threshold = rng.randint(0, 5)
    low = ExpressionComponent(f"{name}Low", {"out": "a + b"})
    low.add_input("a")
    low.add_input("b")
    low.add_output("out")
    high = ExpressionComponent(f"{name}High", {"out": "a * 2"})
    high.add_input("a")
    high.add_output("out")
    mtd.add_mode("Low", low, initial=True)
    mtd.add_mode("High", high)
    mtd.add_transition("Low", "High", f"a > {threshold}")
    mtd.add_transition("High", "Low", f"a <= {threshold}")
    return mtd


def _build_model(rng, index):
    """A two-input, one-output flattenable composite with 2-4 random leaves
    chained in sequence, optionally a delayed feedback and a gated stage."""
    dfd = DataFlowDiagram(f"Fuzz{index}")
    dfd.add_input("x")
    dfd.add_input("y")
    dfd.add_output("out")

    stages = []
    n_stages = rng.randint(2, 4)
    for stage_index in range(n_stages):
        name = f"S{stage_index}"
        kind = rng.random()
        if kind < 0.2:
            stage = _mtd_block(rng, name)
        elif kind < 0.35:
            inner = DataFlowDiagram(f"{name}Core")
            inner.add_input("a")
            inner.add_input("b")
            inner.add_output("out")
            leaf = _expression_block(rng, f"{name}Leaf")
            inner.add_subcomponent(leaf)
            inner.connect("a", f"{name}Leaf.a")
            inner.connect("b", f"{name}Leaf.b")
            inner.connect(f"{name}Leaf.out", "out")
            stage = ClockGatedComponent(inner, every(rng.randint(2, 3)),
                                        name=name)
        else:
            stage = _expression_block(rng, name)
        dfd.add_subcomponent(stage)
        stages.append((name, stage))

    delay = UnitDelay("Z", initial=rng.randint(0, 3))
    dfd.add_subcomponent(delay)

    # chain: x feeds every a; b is the previous stage (or y for the first);
    # the delay replays the final value into the last stage's b-side mix
    previous = None
    for name, stage in stages:
        dfd.connect("x", f"{name}.a")
        if "b" in stage.input_names():
            dfd.connect("y" if previous is None else f"{previous}.out",
                        f"{name}.b")
        previous = name
    dfd.connect(f"{previous}.out", "Z.in1")
    dfd.connect(f"{previous}.out", "out")
    return dfd


# -- random battery generation -------------------------------------------------


def _stimulus(rng, ticks):
    kind = rng.random()
    if kind < 0.15:
        return None  # port left unstimulated
    values = []
    for _ in range(rng.randint(max(1, ticks - 2), ticks + 1)):
        draw = rng.random()
        if draw < 0.15:
            values.append(ABSENT)
        elif draw < 0.25:
            values.append(0)
        elif draw < 0.35:
            values.append(rng.randint(2 ** 62, 2 ** 70))  # int64 killers
        elif draw < 0.5:
            values.append(round(rng.uniform(-5.0, 5.0), 2))
        else:
            values.append(rng.randint(-6, 6))
    return Stream(values)


def _battery(rng, model, size):
    items = []
    for index in range(size):
        ticks = rng.randint(1, 7)
        stimuli = {}
        for port in model.input_names():
            spec = _stimulus(rng, ticks)
            if spec is not None:
                stimuli[port] = spec
        items.append((f"case{index}", stimuli, ticks))
    return items


# -- the differential loop -----------------------------------------------------


def _scalar_outcome(runner, stimuli, ticks):
    """(trace, None) on success, (None, error string) on failure."""
    try:
        return runner(stimuli, ticks), None
    except Exception as exc:  # noqa: BLE001 - the comparison IS the test
        return None, f"{type(exc).__name__}: {exc}"


def _typed_streams(trace):
    return {port: [(type(v), v) for v in stream.values()]
            for port, stream in trace.outputs.items()}


@pytest.mark.parametrize("seed", range(8))
def test_four_backends_agree_on_random_models_and_batteries(seed):
    rng = random.Random(9000 + seed)
    model = _build_model(rng, seed)
    battery = _battery(rng, model, size=rng.randint(3, 8))

    interpreter = Simulator(model)
    nested = CompiledSimulator(model, backend="nested")
    flat = CompiledSimulator(model, backend="flat")
    outcomes = compile_batch(model).run_battery(battery)
    runners = [("nested", nested.run), ("flat", flat.run)]
    if _HAS_NATIVE:
        native = CompiledSimulator(model, backend="native")
        runners.append(("native", native.run))

    for (name, stimuli, ticks), outcome in zip(battery, outcomes):
        expected_trace, expected_error = _scalar_outcome(
            interpreter.run, stimuli, ticks)
        for label, runner in runners:
            trace, error = _scalar_outcome(runner, stimuli, ticks)
            assert error == expected_error, (seed, name, label)
            if expected_trace is not None:
                assert _typed_streams(trace) == \
                    _typed_streams(expected_trace), (seed, name, label)

        if expected_error is not None:
            assert not outcome.ok, (seed, name, "batch succeeded",
                                    expected_error)
            assert outcome.error == expected_error, (seed, name, "batch")
        else:
            assert outcome.ok, (seed, name, outcome.error)
            assert _typed_streams(outcome.trace) == \
                _typed_streams(expected_trace), (seed, name, "batch")
            assert expected_trace.mode_history == \
                outcome.trace.mode_history, (seed, name)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8, 40))
def test_four_backend_fuzz_extended(seed):
    test_four_backends_agree_on_random_models_and_batteries(seed)


# -- lint-clean property -------------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_models_are_lint_clean_and_never_hit_unknown_names(seed):
    """The static verifier accepts every generator output, and its central
    promise holds on the same battery the differential loop uses: a
    lint-clean model never fails with the evaluator's ``unknown name``
    error (the runtime counterpart of ``expr-unknown-name`` /
    ``ir-read-before-write``)."""
    from repro.analysis.lint import lint_model

    rng = random.Random(9000 + seed)
    model = _build_model(rng, seed)
    battery = _battery(rng, model, size=rng.randint(3, 8))

    report = lint_model(model)
    assert not report.errors(), report.describe()

    flat = CompiledSimulator(model, backend="flat")
    for name, stimuli, ticks in battery:
        _trace, error = _scalar_outcome(flat.run, stimuli, ticks)
        if error is not None:
            assert "unknown name" not in error, (seed, name, error)
