"""Closure compilation of base-language expressions (repro.core.expr_compile).

The compiled closure must be observationally identical to
:meth:`ExpressionEvaluator.evaluate`: same values (including type -- bools
stay bools, int-exact division stays int), same ABSENT propagation, and the
same raised exceptions with the same messages.  The property tests generate
random ASTs -- including deliberately broken ones (unknown names, unknown
functions, type-clashing operands, division by zero) -- and compare both
executions over random mixed present/absent environments.

All generators are seeded; re-run a failing case with the seed in the test
id.
"""

import math
import random

import pytest

from repro.core.errors import ExpressionEvalError
from repro.core.expr_compile import compile_expression
from repro.core.expr_eval import ExpressionEvaluator
from repro.core.expr_parser import parse_expression
from repro.core.expressions import (BinaryOp, Call, Conditional, Literal,
                                    Present, UnaryOp, Variable)
from repro.core.values import ABSENT

FAST_SEEDS = range(10)
SLOW_SEEDS = range(10, 60)

VOCABULARY = ["a", "b", "c", "d"]

#: (function name, arity) pairs the random generator may call.
FUNCTION_POOL = [("abs", 1), ("min", 2), ("max", 2), ("limit", 3),
                 ("sqrt", 1), ("floor", 1), ("ceil", 1), ("round", 1),
                 ("sign", 1), ("interpolate", 5),
                 ("nope", 1)]  # unknown on purpose


def outcome(thunk):
    """Run *thunk* and normalize result vs raised exception for comparison.

    Values are compared together with their concrete type so that ``True``
    never masquerades as ``1`` and int-exact division is checked to really
    return an ``int``.
    """
    try:
        value = thunk()
    except Exception as exc:  # noqa: BLE001 - everything must match
        return ("error", type(exc).__name__, str(exc))
    return ("value", type(value).__name__, value)


def assert_same_outcome(expression, environment, evaluator=None):
    evaluator = evaluator or ExpressionEvaluator()
    compiled = evaluator.compile(expression)
    expected = outcome(lambda: evaluator.evaluate(expression, environment))
    actual = outcome(lambda: compiled(environment))
    assert expected == actual, (
        f"{expression.to_source()} over {environment}: "
        f"interpreter {expected} vs compiled {actual}")


# -- random AST / environment generators ------------------------------------


def random_expression(rng, depth=0, max_depth=4):
    if depth >= max_depth or rng.random() < 0.25:
        kind = rng.choice(["literal", "literal", "variable", "variable",
                           "present"])
        if kind == "literal":
            return Literal(rng.choice(
                [rng.randint(-6, 6), rng.randint(0, 3) * 0.5,
                 True, False, "label"]))
        if kind == "variable":
            # occasionally a name outside the vocabulary (unknown-name error)
            name = rng.choice(VOCABULARY + ["ghost"])
            return Variable(name)
        return Present(rng.choice(VOCABULARY))

    kind = rng.choice(["unary", "binary", "binary", "binary", "conditional",
                       "call"])
    if kind == "unary":
        op = rng.choice(["-", "not", "not", "??"])  # ?? = unknown operator
        return UnaryOp(op, random_expression(rng, depth + 1, max_depth))
    if kind == "binary":
        op = rng.choice(["+", "-", "*", "/", "%", "==", "!=", "<", "<=",
                         ">", ">=", "and", "or", "<>"])  # <> = unknown
        return BinaryOp(op,
                        random_expression(rng, depth + 1, max_depth),
                        random_expression(rng, depth + 1, max_depth))
    if kind == "conditional":
        return Conditional(random_expression(rng, depth + 1, max_depth),
                           random_expression(rng, depth + 1, max_depth),
                           random_expression(rng, depth + 1, max_depth))
    name, arity = rng.choice(FUNCTION_POOL)
    return Call(name, tuple(random_expression(rng, depth + 1, max_depth)
                            for _ in range(arity)))


def random_environment(rng):
    environment = {}
    for name in VOCABULARY:
        roll = rng.random()
        if roll < 0.2:
            environment[name] = ABSENT
        elif roll < 0.3:
            pass  # name missing entirely (unknown-name error path)
        elif roll < 0.55:
            environment[name] = rng.randint(-6, 6)
        elif roll < 0.8:
            environment[name] = rng.randint(-8, 8) * 0.25
        elif roll < 0.9:
            environment[name] = rng.choice([True, False])
        else:
            environment[name] = "label"
    return environment


# -- property tests ----------------------------------------------------------


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_random_ast_closure_equivalence(seed):
    rng = random.Random(seed)
    for _ in range(15):
        expression = random_expression(rng)
        compiled = compile_expression(expression)
        evaluator = ExpressionEvaluator()
        for _ in range(12):
            environment = random_environment(rng)
            expected = outcome(
                lambda: evaluator.evaluate(expression, environment))
            actual = outcome(lambda: compiled(environment))
            assert expected == actual, (
                f"seed {seed}: {expression.to_source()} over {environment}: "
                f"{expected} vs {actual}")


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_random_ast_closure_equivalence_extended(seed):
    rng = random.Random(seed)
    for _ in range(25):
        expression = random_expression(rng, max_depth=6)
        compiled = compile_expression(expression)
        evaluator = ExpressionEvaluator()
        for _ in range(20):
            environment = random_environment(rng)
            expected = outcome(
                lambda: evaluator.evaluate(expression, environment))
            actual = outcome(lambda: compiled(environment))
            assert expected == actual, (
                f"seed {seed}: {expression.to_source()} over {environment}: "
                f"{expected} vs {actual}")


# -- targeted semantics ------------------------------------------------------


class TestExactSemantics:
    def test_short_circuit_and_returns_bool(self):
        expression = parse_expression("a and b")
        compiled = compile_expression(expression)
        assert compiled({"a": 0, "b": 1}) is False  # left falsy -> False
        assert compiled({"a": 2, "b": 3}) is True   # truthy right -> bool
        assert compiled({"a": 0, "b": ABSENT}) is False  # right not evaluated
        assert compiled({"a": ABSENT, "b": 1}) is ABSENT
        assert compiled({"a": 1, "b": ABSENT}) is ABSENT

    def test_short_circuit_or_returns_bool(self):
        compiled = compile_expression(parse_expression("a or b"))
        assert compiled({"a": 3, "b": ABSENT}) is True  # right not evaluated
        assert compiled({"a": 0, "b": 5}) is True
        assert compiled({"a": 0, "b": 0}) is False
        assert compiled({"a": ABSENT, "b": 1}) is ABSENT
        assert compiled({"a": 0, "b": ABSENT}) is ABSENT

    def test_short_circuit_skips_errors_in_right_operand(self):
        # `ghost` is unbound; short-circuiting must skip it exactly like the
        # interpreter does
        for source in ["a and ghost", "a or ghost"]:
            expression = parse_expression(source)
            assert_same_outcome(expression, {"a": 0})
            assert_same_outcome(expression, {"a": 1})

    def test_int_exact_division(self):
        compiled = compile_expression(parse_expression("a / b"))
        result = compiled({"a": 6, "b": 3})
        assert result == 2 and isinstance(result, int)
        assert compiled({"a": 7, "b": 2}) == 3.5
        assert compiled({"a": 6.0, "b": 3}) == 2.0
        assert isinstance(compiled({"a": 6.0, "b": 3}), float)

    def test_division_by_zero_message(self):
        expression = parse_expression("a / (b - b)")
        assert_same_outcome(expression, {"a": 1, "b": 4})
        with pytest.raises(ExpressionEvalError, match="division by zero"):
            compile_expression(expression)({"a": 1, "b": 4})

    def test_absent_propagation_through_every_construct(self):
        environment = {"a": ABSENT, "b": 2}
        for source in ["a + b", "-a", "not a", "if a then 1 else 2",
                       "abs(a)", "min(a, b)", "a < b", "a % b"]:
            compiled = compile_expression(parse_expression(source))
            assert compiled(environment) is ABSENT, source

    def test_present_turns_absence_into_bool(self):
        compiled = compile_expression(parse_expression("present(a)"))
        assert compiled({"a": 0}) is True
        assert compiled({"a": ABSENT}) is False
        assert compiled({}) is False  # missing channel, no unknown-name error

    def test_conditional_branch_laziness(self):
        # only the taken branch is evaluated: the other may reference
        # unbound names, exactly as in the interpreter
        expression = parse_expression("if a > 0 then a else ghost")
        assert compile_expression(expression)({"a": 3}) == 3
        assert_same_outcome(expression, {"a": -1})

    def test_unknown_name_message_matches(self):
        expression = parse_expression("ghost + 1")
        assert_same_outcome(expression, {})
        with pytest.raises(ExpressionEvalError,
                           match="unknown name 'ghost' in expression ghost"):
            compile_expression(expression)({})

    def test_unknown_function_message_and_order(self):
        # unknown function beats argument errors (looked up before args)
        expression = Call("nope", (Variable("ghost"),))
        assert_same_outcome(expression, {})
        with pytest.raises(ExpressionEvalError, match="unknown function 'nope'"):
            compile_expression(expression)({})

    def test_unknown_operator_still_propagates_absence(self):
        # the interpreter evaluates operands before discovering the operator
        # is unknown, so an absent operand wins; mirror both paths
        expression = BinaryOp("<>", Variable("a"), Variable("b"))
        compiled = compile_expression(expression)
        assert compiled({"a": ABSENT, "b": 1}) is ABSENT
        assert_same_outcome(expression, {"a": 1, "b": 2})
        unary = UnaryOp("??", Variable("a"))
        assert compile_expression(unary)({"a": ABSENT}) is ABSENT
        assert_same_outcome(unary, {"a": 1})

    def test_type_clash_message_matches(self):
        expression = parse_expression("a + b")
        assert_same_outcome(expression, {"a": "label", "b": 3})
        with pytest.raises(ExpressionEvalError, match="cannot apply '\\+'"):
            compile_expression(expression)({"a": "label", "b": 3})

    def test_function_error_wrapped_identically(self):
        expression = parse_expression("sqrt(a)")
        assert_same_outcome(expression, {"a": -1})
        with pytest.raises(ExpressionEvalError, match="error calling sqrt"):
            compile_expression(expression)({"a": -1})

    def test_modulo_by_zero_stays_raw_zero_division(self):
        # the interpreter does not wrap ZeroDivisionError; neither may we
        expression = parse_expression("a % b")
        assert_same_outcome(expression, {"a": 5, "b": 0})
        with pytest.raises(ZeroDivisionError):
            compile_expression(expression)({"a": 5, "b": 0})

    def test_builtin_functions_agree(self):
        environment = {"a": -3, "b": 7, "c": 2.5, "d": 1}
        for source in ["abs(a)", "min(a, b)", "max(a, b, c)",
                       "limit(b, 0, 5)", "sqrt(b + 2)", "floor(c)",
                       "ceil(c)", "round(c)", "sign(a)",
                       "interpolate(c, 0, 0, 5, 10)"]:
            assert_same_outcome(parse_expression(source), environment)

    def test_custom_functions_resolved_through_evaluator(self):
        evaluator = ExpressionEvaluator({"double": lambda x: 2 * x,
                                         "sqrt": lambda x: "shadowed"})
        expression = parse_expression("double(a) + 1")
        compiled = evaluator.compile(expression)
        assert compiled({"a": 4}) == 9
        assert_same_outcome(expression, {"a": 4}, evaluator=evaluator)
        # custom table may shadow builtins, exactly like evaluate()
        shadowed = parse_expression("sqrt(a)")
        assert evaluator.compile(shadowed)({"a": 9}) == "shadowed"
        assert_same_outcome(shadowed, {"a": 9}, evaluator=evaluator)

    def test_compile_snapshots_function_table(self):
        evaluator = ExpressionEvaluator({"f": lambda x: x + 1})
        compiled = evaluator.compile(parse_expression("f(a)"))
        evaluator.functions["f"] = lambda x: x - 1
        assert compiled({"a": 0}) == 1  # snapshot: still the old function
        recompiled = evaluator.compile(parse_expression("f(a)"))
        assert recompiled({"a": 0}) == -1

    def test_unsupported_node_rejected_at_compile_time(self):
        class Alien:
            def __repr__(self):
                return "Alien()"

        with pytest.raises(ExpressionEvalError,
                           match="unsupported expression node"):
            compile_expression(Alien())

    def test_nan_free_float_agreement(self):
        environment = {"a": 0.1, "b": 0.2, "c": 3.0, "d": 7.0}
        for source in ["a + b", "a * b / c", "(a + b) % c",
                       "c / d", "interpolate(a, 0, 0, 1, d)"]:
            evaluator = ExpressionEvaluator()
            expression = parse_expression(source)
            expected = evaluator.evaluate(expression, environment)
            actual = compile_expression(expression)(environment)
            assert math.isclose(expected, actual, rel_tol=0.0, abs_tol=0.0), \
                source  # bit-identical, not merely close

    def test_case_study_guard_sources_agree(self):
        # the guard vocabulary of the Fig.-6 MTD and the crank sequencer
        sources = ["n > 0", "n > 700", "n <= 0", "ped > 5",
                   "ped <= 0 and n > 3000", "not key or crank_ticks > 40",
                   "present(n)", "key"]
        environments = [
            {"n": 900.0, "ped": 0.0, "key": True, "crank_ticks": 3},
            {"n": ABSENT, "ped": ABSENT, "key": False, "crank_ticks": 41},
            {"n": 0.0, "ped": 100.0, "key": True, "crank_ticks": 0},
        ]
        for source in sources:
            for environment in environments:
                assert_same_outcome(parse_expression(source), environment)
