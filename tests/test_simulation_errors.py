"""Error-path coverage for both simulation engines, plus the clock-pattern
regression guard for rate gating.

The reference interpreter and the compiled engine must reject the same
malformed usages with the same exception type (unknown stimulus ports,
negative tick counts, behaviour-less components, type-check violations) so
they really are interchangeable.
"""

import pytest

from repro.core.clocks import PeriodicClock, every
from repro.core.components import (Component, CompositeComponent,
                                   ExpressionComponent)
from repro.core.errors import ModelError, SimulationError, TypeCheckError
from repro.core.types import FloatType
from repro.notations.blocks import Gain
from repro.notations.dfd import DataFlowDiagram
from repro.notations.mtd import ModeTransitionDiagram
from repro.simulation import (ClockGatedComponent, CompiledSimulator,
                              Simulator, simulate)

ENGINE_CLASSES = [Simulator, CompiledSimulator]


def _identity_block(name="F"):
    block = ExpressionComponent(name, {"out": "in1"})
    block.declare_interface_from_expressions()
    return block


@pytest.mark.parametrize("engine_class", ENGINE_CLASSES)
class TestCommonErrorPaths:
    def test_unknown_stimulus_port_rejected(self, engine_class):
        simulator = engine_class(_identity_block())
        with pytest.raises(SimulationError, match="unknown input ports"):
            simulator.run({"nope": [1]}, ticks=1)

    def test_several_unknown_ports_all_reported(self, engine_class):
        simulator = engine_class(_identity_block())
        with pytest.raises(SimulationError, match=r"\['a', 'b'\]"):
            simulator.run({"a": 1, "b": 2}, ticks=1)

    def test_negative_ticks_rejected(self, engine_class):
        simulator = engine_class(_identity_block())
        with pytest.raises(SimulationError, match="non-negative"):
            simulator.run({}, ticks=-1)

    def test_zero_ticks_is_legal_and_empty(self, engine_class):
        trace = engine_class(_identity_block()).run({}, ticks=0)
        assert trace.ticks == 0
        assert trace.outputs == {}

    def test_boolean_ticks_rejected(self, engine_class):
        # bool is an int subclass: ticks=True used to slip through as one
        # tick; every entry point now agrees with ScenarioSuite.add
        simulator = engine_class(_identity_block())
        with pytest.raises(SimulationError, match="integer number of ticks"):
            simulator.run({}, ticks=True)
        with pytest.raises(SimulationError, match="integer number of ticks"):
            simulator.run({}, ticks=False)

    def test_fractional_ticks_rejected(self, engine_class):
        simulator = engine_class(_identity_block())
        with pytest.raises(SimulationError, match="integer number of ticks"):
            simulator.run({}, ticks=2.5)

    def test_component_without_behavior_rejected(self, engine_class):
        stub = Component("S")
        with pytest.raises(SimulationError, match="no executable behaviour"):
            engine_class(stub)

    def test_composite_with_behaviorless_sub_rejected(self, engine_class):
        dfd = DataFlowDiagram("D")
        dfd.add_subcomponent(Component("Stub"))
        with pytest.raises(SimulationError, match="no executable behaviour"):
            engine_class(dfd)

    def test_input_type_check_failure(self, engine_class):
        block = ExpressionComponent("F", {"out": "in1"})
        block.add_input("in1", FloatType(0.0, 10.0))
        block.add_output("out", FloatType(0.0, 10.0))
        simulator = engine_class(block, check_types=True)
        with pytest.raises(TypeCheckError):
            simulator.run({"in1": [99.0]}, ticks=1)

    def test_output_type_check_failure(self, engine_class):
        block = ExpressionComponent("F", {"out": "in1 * 100"})
        block.add_input("in1", FloatType(0.0, 10.0))
        block.add_output("out", FloatType(0.0, 10.0))
        simulator = engine_class(block, check_types=True)
        with pytest.raises(TypeCheckError):
            simulator.run({"in1": [5.0]}, ticks=1)

    def test_type_checking_passes_in_range(self, engine_class):
        block = ExpressionComponent("F", {"out": "in1"})
        block.add_input("in1", FloatType(0.0, 10.0))
        block.add_output("out", FloatType(0.0, 10.0))
        trace = engine_class(block, check_types=True).run({"in1": [5.0]},
                                                          ticks=1)
        assert trace.output("out").values() == [5.0]

    def test_absent_values_skip_type_checks(self, engine_class):
        block = _identity_block()
        block.port("in1").port_type = FloatType(0.0, 1.0)
        trace = engine_class(block, check_types=True).run({}, ticks=2)
        assert trace.output("out").presence_count() == 0


def test_mtd_without_modes_rejected_by_both_engines():
    mtd = ModeTransitionDiagram("Empty")
    mtd.add_input("x")
    mtd.add_output("out")
    # an MTD without modes has no behaviour; both engines refuse up front
    with pytest.raises(SimulationError, match="no executable behaviour"):
        Simulator(mtd)
    with pytest.raises(SimulationError, match="no executable behaviour"):
        CompiledSimulator(mtd)
    # the compiler's own guard fires when bypassing the simulator front door
    from repro.simulation import compile_component
    with pytest.raises(ModelError, match="has no modes"):
        compile_component(mtd)


def _bad_action_std():
    from repro.notations.std import StateTransitionDiagram
    std = StateTransitionDiagram("Bad")
    std.add_input("x")
    std.add_output("out")
    std.add_state("A", initial=True)
    std.add_state("B")
    # `mystery` is neither a local variable nor an output port; react()
    # only notices when the transition actually fires
    std.add_transition("A", "B", "x > 0", actions={"mystery": "x"})
    return std


@pytest.mark.parametrize("engine_class", [Simulator, CompiledSimulator])
def test_std_invalid_action_target_raises_in_both_engines(engine_class):
    simulator = engine_class(_bad_action_std())
    # the guard never fires: the broken action is latent, no error
    trace = simulator.run({"x": [-1, -2]}, ticks=2)
    assert trace.ticks == 2
    # firing the transition surfaces the identical ModelError in both engines
    simulator = engine_class(_bad_action_std())
    with pytest.raises(ModelError,
                       match="action target 'mystery' of STD 'Bad' is "
                             "neither a local variable nor an output port"):
        simulator.run({"x": [-1, 5]}, ticks=2)


def test_std_without_states_rejected_by_both_engines():
    from repro.notations.std import StateTransitionDiagram
    std = StateTransitionDiagram("EmptySTD")
    std.add_input("x")
    std.add_output("out")
    # an STD without states has no behaviour; both engines refuse up front
    with pytest.raises(SimulationError, match="no executable behaviour"):
        Simulator(std)
    with pytest.raises(SimulationError, match="no executable behaviour"):
        CompiledSimulator(std)
    # the compiler's own guard fires when bypassing the simulator front door
    from repro.simulation import compile_component
    with pytest.raises(ModelError, match="has no states"):
        compile_component(std)


class TestClockPatternRegression:
    """The O(ticks^2) clock-pattern recomputation must not come back."""

    class _CountingClock(PeriodicClock):
        def __init__(self, period):
            super().__init__(period)
            self.pattern_calls = 0

        def pattern(self, length):
            self.pattern_calls += 1
            return super().pattern(length)

    def test_gated_interpreter_does_not_call_pattern_per_tick(self):
        clock = self._CountingClock(2)
        gated = ClockGatedComponent(Gain("G", 2.0), clock)
        ticks = 500
        trace = simulate(gated, {"in1": [1.0] * ticks}, ticks=ticks)
        assert trace.output("out").presence_count() == ticks // 2
        # geometric growth: O(log ticks) pattern constructions, not O(ticks)
        assert clock.pattern_calls <= 10, clock.pattern_calls

    def test_gated_compiled_does_not_call_pattern_per_tick(self):
        clock = self._CountingClock(2)
        gated = ClockGatedComponent(Gain("G", 2.0), clock)
        ticks = 500
        simulator = CompiledSimulator(gated)
        simulator.run({"in1": [1.0] * ticks}, ticks=ticks)
        first_run_calls = clock.pattern_calls
        assert first_run_calls <= 10, first_run_calls
        # the compiled schedule shares its pattern cache across runs
        simulator.run({"in1": [1.0] * ticks}, ticks=ticks)
        assert clock.pattern_calls == first_run_calls

    def test_gated_state_keeps_pattern_cache_between_ticks(self):
        clock = self._CountingClock(3)
        gated = ClockGatedComponent(Gain("G", 1.0), clock)
        state = gated.initial_state()
        assert state["pattern_cache"] is None
        outputs, state = gated.react({"in1": 1.0}, state, 0)
        cache = state["pattern_cache"]
        assert cache is not None and cache.clock is clock
        _, state = gated.react({"in1": 1.0}, state, 1)
        assert state["pattern_cache"] is cache

    def test_gating_still_correct_after_caching(self):
        gated = ClockGatedComponent(Gain("G", 2.0), every(2))
        trace = simulate(gated, {"in1": [1, 2, 3, 4]}, ticks=4)
        from repro.core.values import ABSENT
        assert trace.output("out").values() == [2, ABSENT, 6, ABSENT]
