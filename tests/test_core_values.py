"""Tests for the operational model's values and streams (paper Sec. 2)."""

import copy

import pytest

from repro.core.values import (ABSENT, Stream, every, is_absent, is_present,
                               present_or)


class TestAbsence:
    def test_absent_is_singleton(self):
        assert type(ABSENT)() is ABSENT

    def test_absent_repr_is_dash(self):
        assert repr(ABSENT) == "-"

    def test_absent_is_falsy(self):
        assert not ABSENT

    def test_presence_predicates(self):
        assert is_absent(ABSENT)
        assert not is_present(ABSENT)
        assert is_present(0)
        assert is_present(False)
        assert is_present("")

    def test_present_or(self):
        assert present_or(ABSENT, 7) == 7
        assert present_or(3, 7) == 3

    def test_deepcopy_preserves_identity(self):
        assert copy.deepcopy(ABSENT) is ABSENT
        assert copy.copy(ABSENT) is ABSENT


class TestStreamConstruction:
    def test_present_stream(self):
        stream = Stream.present([1, 2, 3])
        assert stream.values() == [1, 2, 3]
        assert stream.presence_count() == 3

    def test_absent_stream(self):
        stream = Stream.absent(4)
        assert len(stream) == 4
        assert stream.presence_count() == 0

    def test_periodic_stream_spacing(self):
        stream = Stream.periodic([10, 20, 30], period=3)
        assert stream.values() == [10, ABSENT, ABSENT, 20, ABSENT, ABSENT, 30,
                                   ABSENT, ABSENT]

    def test_periodic_with_phase_and_length(self):
        stream = Stream.periodic([1, 2], period=2, phase=1, length=6)
        assert stream.values() == [ABSENT, 1, ABSENT, 2, ABSENT, ABSENT]

    def test_periodic_rejects_bad_period(self):
        with pytest.raises(ValueError):
            Stream.periodic([1], period=0)

    def test_equality_with_list(self):
        assert Stream([1, ABSENT, 2]) == [1, ABSENT, 2]
        assert Stream([1]) != Stream([2])

    def test_streams_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(Stream([1]))


class TestStreamObservation:
    def test_indexing_and_slicing(self):
        stream = Stream([1, ABSENT, 3, 4])
        assert stream[0] == 1
        assert is_absent(stream[1])
        sliced = stream[1:3]
        assert isinstance(sliced, Stream)
        assert sliced.values() == [ABSENT, 3]

    def test_present_values_filters_absence(self):
        stream = Stream([ABSENT, 5, ABSENT, 6])
        assert stream.present_values() == [5, 6]

    def test_presence_pattern(self):
        stream = Stream([1, ABSENT, 2])
        assert stream.presence_pattern() == [True, False, True]

    def test_last_present(self):
        assert Stream([1, ABSENT, 7, ABSENT]).last_present() == 7
        assert Stream.absent(3).last_present(default="none") == "none"

    def test_append_and_extend(self):
        stream = Stream()
        stream.append(1)
        stream.extend([ABSENT, 2])
        assert stream.values() == [1, ABSENT, 2]


class TestStreamOperators:
    def test_delayed_shifts_by_one(self):
        stream = Stream([1, 2, 3])
        assert stream.delayed(initial=0).values() == [0, 1, 2]

    def test_delayed_by_n(self):
        stream = Stream([1, 2, 3, 4])
        assert stream.delayed(initial=ABSENT, amount=2).values() == [ABSENT, ABSENT, 1, 2]

    def test_delayed_zero_is_identity(self):
        stream = Stream([1, 2])
        assert stream.delayed(amount=0).values() == [1, 2]

    def test_delayed_rejects_negative(self):
        with pytest.raises(ValueError):
            Stream([1]).delayed(amount=-1)

    def test_when_keeps_only_clocked_ticks(self):
        stream = Stream([0, 1, 2, 3, 4, 5])
        sampled = stream.when(every(2, 6))
        assert sampled.values() == [0, ABSENT, 2, ABSENT, 4, ABSENT]

    def test_when_beyond_pattern_is_absent(self):
        stream = Stream([1, 2, 3])
        assert stream.when([True]).values() == [1, ABSENT, ABSENT]

    def test_hold_fills_absences(self):
        stream = Stream([1, ABSENT, ABSENT, 4])
        assert stream.hold(initial=0).values() == [1, 1, 1, 4]

    def test_map_preserves_absence(self):
        stream = Stream([1, ABSENT, 3])
        doubled = stream.map(lambda value: value * 2)
        assert doubled.values() == [2, ABSENT, 6]

    def test_zip_with_strict_presence(self):
        left = Stream([1, ABSENT, 3])
        right = Stream([10, 20, 30])
        combined = left.zip_with(right, lambda a, b: a + b)
        assert combined.values() == [11, ABSENT, 33]

    def test_zip_with_unequal_lengths(self):
        left = Stream([1, 2, 3])
        right = Stream([10])
        combined = left.zip_with(right, lambda a, b: a + b)
        assert combined.values() == [11, ABSENT, ABSENT]


class TestEveryMacro:
    def test_every_one_is_base_clock(self):
        assert every(1, 4) == [True, True, True, True]

    def test_every_two_pattern(self):
        assert every(2, 5) == [True, False, True, False, True]

    def test_every_with_phase(self):
        assert every(3, 6, phase=1) == [False, True, False, False, True, False]

    def test_every_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            every(0, 5)
        with pytest.raises(ValueError):
            every(2, -1)
