"""Operational Architecture (OA) -- paper Sec. 3.4.

"The result of the deployment of SW clusters to the target architecture is
the starting point of the Operational Architecture."  The paper's tool
prototype does not model this level itself but generates ASCET-SD projects
for each ECU of the target architecture; this module does the same using the
:class:`~repro.ascet.codegen.AscetProjectGenerator` substrate, and offers the
resulting projects as the model's OA view.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..ascet.codegen import AscetProjectGenerator, GeneratedProject
from ..ascet.comm_matrix import CommunicationMatrix
from ..core.errors import CodeGenError
from ..core.validation import ValidationReport
from ..notations.ccd import ClusterCommunicationDiagram
from ..transformations.deployment import DeploymentResult


class OperationalArchitecture:
    """The OA level: generated per-ECU projects plus the communication matrix."""

    level_name = "OA"

    def __init__(self, name: str, ccd: ClusterCommunicationDiagram,
                 deployment: DeploymentResult, description: str = ""):
        self.name = name
        self.ccd = ccd
        self.deployment = deployment
        self.description = description
        self._projects: Optional[Dict[str, GeneratedProject]] = None

    # -- generation ----------------------------------------------------------------
    def generate(self) -> Dict[str, GeneratedProject]:
        """Generate (or return the cached) per-ECU ASCET-style projects."""
        if self._projects is None:
            generator = AscetProjectGenerator(
                self.ccd, self.deployment.architecture,
                bus=self.deployment.bus, matrix=self.deployment.matrix)
            self._projects = generator.generate_all()
        return self._projects

    def project(self, ecu_name: str) -> GeneratedProject:
        projects = self.generate()
        try:
            return projects[ecu_name]
        except KeyError as exc:
            raise CodeGenError(f"no generated project for ECU {ecu_name!r}") from exc

    def communication_matrix(self) -> CommunicationMatrix:
        return self.deployment.matrix

    def write_to(self, directory: str) -> List[str]:
        """Write every generated project below *directory*."""
        written: List[str] = []
        for project in self.generate().values():
            written.extend(project.write_to(directory))
        return written

    # -- analysis ------------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Sanity checks on the generated artefacts."""
        report = ValidationReport(f"OA {self.name!r}")
        for ecu_name, project in self.generate().items():
            module_files = [name for name in project.file_names()
                            if name.startswith("modules/") and name.endswith(".c")]
            expected = self.deployment.architecture.ecu(ecu_name).cluster_names()
            if len(module_files) < len(expected):
                report.error("oa-module-coverage",
                             f"project of {ecu_name!r} has {len(module_files)} "
                             f"module(s) for {len(expected)} cluster(s)",
                             element=ecu_name)
            else:
                report.info("oa-module-coverage",
                            f"project of {ecu_name!r}: {len(module_files)} "
                            f"module(s), {project.total_lines()} lines",
                            element=ecu_name)
            if "os/osek_config.oil" not in project.files:
                report.error("oa-os-config",
                             f"project of {ecu_name!r} lacks the OS configuration",
                             element=ecu_name)
        return report

    def total_generated_lines(self) -> int:
        return sum(project.total_lines() for project in self.generate().values())

    def describe(self) -> str:
        projects = self.generate()
        return (f"OA {self.name!r}: {len(projects)} generated project(s), "
                f"{self.total_generated_lines()} lines, "
                f"{len(self.communication_matrix())} matrix signal(s)")
