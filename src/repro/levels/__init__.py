"""The AutoMoDe abstraction levels as first-class views (paper Fig. 3).

* :mod:`repro.levels.faa` -- Functional Analysis Architecture
* :mod:`repro.levels.fda` -- Functional Design Architecture
* :mod:`repro.levels.la`  -- Logical Architecture
* :mod:`repro.levels.ta`  -- Technical Architecture
* :mod:`repro.levels.oa`  -- Operational Architecture (generated projects)
"""

from .faa import FunctionalAnalysisArchitecture
from .fda import FunctionalDesignArchitecture
from .la import LogicalArchitecture
from .oa import OperationalArchitecture
from .ta import TechnicalArchitectureLevel

__all__ = [
    "FunctionalAnalysisArchitecture", "FunctionalDesignArchitecture",
    "LogicalArchitecture", "OperationalArchitecture",
    "TechnicalArchitectureLevel",
]
