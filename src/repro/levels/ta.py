"""Technical Architecture (TA) level wrapper -- paper Sec. 3.3.

The TA "represents target platform components (ECUs, tasks, buses, message
frames) used to implement the system".  The platform elements themselves
live in :mod:`repro.platform`; this module provides the TA-level view used
by an :class:`~repro.core.model.AutoModeModel`: the architecture, the bus,
the deployment decisions, and the schedulability evidence.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.errors import ModelError
from ..core.validation import ValidationReport
from ..platform.can import CANBus
from ..platform.ecu import TechnicalArchitecture
from ..platform.osek import (ScheduleTrace, is_schedulable,
                             response_time_analysis, simulate_schedule)
from ..transformations.deployment import DeploymentResult


class TechnicalArchitectureLevel:
    """The TA level: platform plus deployment decisions and their evidence."""

    level_name = "TA"

    def __init__(self, name: str, deployment: DeploymentResult,
                 description: str = ""):
        if not isinstance(deployment, DeploymentResult):
            raise ModelError("the TA level is built from a DeploymentResult")
        self.name = name
        self.deployment = deployment
        self.description = description

    @property
    def architecture(self) -> TechnicalArchitecture:
        return self.deployment.architecture

    @property
    def bus(self) -> CANBus:
        return self.deployment.bus

    # -- queries --------------------------------------------------------------------
    def ecu_names(self) -> List[str]:
        return [ecu.name for ecu in self.architecture.ecu_list()]

    def task_of_cluster(self) -> Dict[str, str]:
        return dict(self.deployment.task_of_cluster)

    def ecu_of_cluster(self) -> Dict[str, str]:
        return dict(self.deployment.ecu_of_cluster)

    # -- analysis -------------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Schedulability of every ECU and utilization of the bus."""
        report = ValidationReport(f"TA {self.name!r}")
        for ecu in self.architecture.ecu_list():
            if not ecu.tasks:
                report.warning("ta-empty-ecu", f"ECU {ecu.name!r} has no tasks",
                               element=ecu.name)
                continue
            for result in response_time_analysis(ecu):
                if result.schedulable:
                    report.info("ta-schedulability",
                                f"{ecu.name}/{result.task}: WCRT "
                                f"{result.wcrt:g} <= deadline {result.deadline}",
                                element=f"{ecu.name}/{result.task}")
                else:
                    report.error("ta-schedulability",
                                 f"{ecu.name}/{result.task} misses its deadline",
                                 element=f"{ecu.name}/{result.task}")
        utilization = self.bus.utilization()
        if utilization > 0.8:
            report.warning("ta-bus-utilization",
                           f"bus utilization {utilization:.1%} exceeds 80%",
                           element=self.bus.name)
        else:
            report.info("ta-bus-utilization",
                        f"bus utilization {utilization:.1%}", element=self.bus.name)
        return report

    def is_schedulable(self) -> bool:
        return all(is_schedulable(ecu) for ecu in self.architecture.ecu_list()
                   if ecu.tasks)

    def simulate_schedules(self, horizon: Optional[int] = None
                           ) -> Dict[str, ScheduleTrace]:
        return {ecu.name: simulate_schedule(ecu, horizon)
                for ecu in self.architecture.ecu_list() if ecu.tasks}

    def describe(self) -> str:
        return (f"TA {self.name!r}: {len(self.ecu_names())} ECU(s), "
                f"{len(self.bus.frames)} CAN frame(s), schedulable: "
                f"{self.is_schedulable()}")
