"""Functional Design Architecture (FDA) -- paper Sec. 3.2.

"The FDA is a structurally as well as behaviorally complete description of
the software part in terms of actual software components that can be
instantiated in later phases of the development process."  FDA components
are formed to satisfy qualitative requirements (portability, performance,
maintainability, reuse); atomic components must have a well-defined
behaviour given by a DFD, an MTD, an STD or an expression.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..analysis.mode_analysis import mode_explicitness_summary
from ..core.components import Component
from ..core.errors import ModelError
from ..core.validation import ValidationReport, merge_reports
from ..notations.dfd import DataFlowDiagram
from ..notations.mtd import ModeTransitionDiagram
from ..notations.ssd import SSDComponent
from ..notations.std import StateTransitionDiagram
from ..simulation.causality import analyze_causality
from ..simulation.engine import simulate
from ..simulation.trace import SimulationTrace


class FunctionalDesignArchitecture:
    """The FDA level: the behaviourally complete software architecture."""

    level_name = "FDA"

    def __init__(self, name: str, architecture: SSDComponent,
                 description: str = ""):
        if not isinstance(architecture, SSDComponent):
            raise ModelError("the FDA coarse-grained decomposition must be an SSD")
        self.name = name
        self.architecture = architecture
        self.description = description
        #: qualitative requirements driving the component decomposition
        self.requirements: Dict[str, str] = {}

    # -- structure ----------------------------------------------------------------
    def software_components(self) -> List[Component]:
        return self.architecture.subcomponents()

    def add_requirement(self, name: str, rationale: str) -> None:
        """Document a qualitative requirement (portability, reuse...)."""
        self.requirements[name] = rationale

    def components_by_notation(self) -> Dict[str, List[str]]:
        """Group component names by the behavioural notation that defines them."""
        groups: Dict[str, List[str]] = {"SSD": [], "DFD": [], "MTD": [],
                                        "STD": [], "other": []}
        for component in self.software_components():
            if isinstance(component, ModeTransitionDiagram):
                groups["MTD"].append(component.name)
            elif isinstance(component, StateTransitionDiagram):
                groups["STD"].append(component.name)
            elif isinstance(component, DataFlowDiagram):
                groups["DFD"].append(component.name)
            elif isinstance(component, SSDComponent):
                groups["SSD"].append(component.name)
            else:
                groups["other"].append(component.name)
        return groups

    # -- analysis ------------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Full FDA validation: structure, behavioural completeness, causality."""
        reports = [self.architecture.validate(require_behavior=True)]
        reports.append(analyze_causality(self.architecture).to_report())
        for component in self.software_components():
            if isinstance(component, (DataFlowDiagram, ModeTransitionDiagram,
                                      StateTransitionDiagram)):
                reports.append(component.validate())
        return merge_reports(f"FDA {self.name!r}", reports)

    def is_behaviorally_complete(self) -> bool:
        return self.architecture.has_behavior()

    def mode_summary(self) -> Dict[str, object]:
        """How much of the design uses explicit modes (case-study metric)."""
        return mode_explicitness_summary(self.architecture)

    def simulate(self, stimuli: Optional[Mapping] = None,
                 ticks: int = 20) -> SimulationTrace:
        return simulate(self.architecture, stimuli, ticks)

    def describe(self) -> str:
        groups = self.components_by_notation()
        parts = [f"{len(names)} {notation}" for notation, names in groups.items()
                 if names]
        return (f"FDA {self.name!r}: {len(self.software_components())} software "
                f"component(s) ({', '.join(parts)}), behaviourally complete: "
                f"{self.is_behaviorally_complete()}")
