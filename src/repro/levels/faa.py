"""Functional Analysis Architecture (FAA) -- paper Sec. 3.1.

The FAA is the most abstract layer of AutoMoDe: a system-level view of the
vehicle functionalities to be implemented in hardware or software, targeted
at function developers and customers.  An FAA description is typically
complete with respect to the considered functionalities and their
dependencies; implementation details and qualitative requirements are not
considered.  Its two analysis instruments are *rules* (conflict detection,
:mod:`repro.analysis.conflicts`) and *simulation* of prototypical behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..analysis.conflicts import ConflictAnalysis, analyze_conflicts
from ..core.components import Component
from ..core.errors import ModelError
from ..core.validation import ValidationReport, merge_reports
from ..notations.ssd import SSDComponent
from ..simulation.engine import simulate
from ..simulation.trace import SimulationTrace


class FunctionalAnalysisArchitecture:
    """The FAA level: a functional network plus its analysis instruments."""

    level_name = "FAA"

    def __init__(self, name: str, network: SSDComponent, description: str = ""):
        if not isinstance(network, SSDComponent):
            raise ModelError("the FAA functional network must be an SSD")
        self.name = name
        self.network = network
        self.description = description

    # -- structure ---------------------------------------------------------------
    def vehicle_functions(self) -> List[Component]:
        """Functionalities (everything that is not a sensor or actuator)."""
        return [component for component in self.network.subcomponents()
                if component.annotations.get("role") not in ("sensor", "actuator")]

    def sensors(self) -> List[Component]:
        return [component for component in self.network.subcomponents()
                if component.annotations.get("role") == "sensor"]

    def actuators(self) -> List[Component]:
        return [component for component in self.network.subcomponents()
                if component.annotations.get("role") == "actuator"]

    def functional_dependencies(self) -> List[Dict[str, str]]:
        """Sender/receiver pairs of the functional network."""
        dependencies = []
        for channel in self.network.internal_channels():
            dependencies.append({
                "from": channel.source.component or self.network.name,
                "to": channel.destination.component or self.network.name,
                "signal": channel.source.port,
            })
        return dependencies

    # -- analysis -----------------------------------------------------------------
    def conflict_analysis(self) -> ConflictAnalysis:
        """Run the rule-based actuator-conflict analysis (Sec. 3.1)."""
        return analyze_conflicts(self.network)

    def validate(self) -> ValidationReport:
        """Structural SSD validation (behaviour may be unspecified) + rules."""
        structural = self.network.validate(require_behavior=False)
        conflicts = self.conflict_analysis().to_report()
        return merge_reports(f"FAA {self.name!r}", [structural, conflicts])

    def simulate_prototype(self, stimuli: Optional[Mapping] = None,
                           ticks: int = 20) -> SimulationTrace:
        """Simulate the prototypical behavioural descriptions of the network.

        Components without behaviour make the network non-executable; in that
        case a :class:`~repro.core.errors.SimulationError` is raised, which is
        itself a useful FAA-level finding (the functional concept cannot yet
        be validated by simulation).
        """
        return simulate(self.network, stimuli, ticks)

    def describe(self) -> str:
        functions = ", ".join(component.name for component in self.vehicle_functions())
        return (f"FAA {self.name!r}: {len(self.vehicle_functions())} vehicle "
                f"function(s) [{functions}], {len(self.sensors())} sensor(s), "
                f"{len(self.actuators())} actuator(s), "
                f"{len(self.network.internal_channels())} dependencies")
