"""Logical Architecture (LA) -- paper Sec. 3.3.

"The LA mainly groups and instantiates FDA-level components to clusters ...
A cluster can be thought of as a 'smallest deployable unit'."  The LA view
bundles the CCD, the implementation-type decisions of its clusters and the
target-specific well-definedness checks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..analysis.well_definedness import (OSEK_FIXED_PRIORITY, TargetProfile,
                                         check_well_definedness,
                                         missing_delays)
from ..core.errors import ModelError
from ..core.impl_types import ImplementationMapping
from ..core.validation import ValidationReport
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from ..simulation.engine import simulate_ccd
from ..simulation.trace import SimulationTrace


class LogicalArchitecture:
    """The LA level: clusters, explicit rates, implementation types."""

    level_name = "LA"

    def __init__(self, name: str, ccd: ClusterCommunicationDiagram,
                 target_profile: TargetProfile = OSEK_FIXED_PRIORITY,
                 description: str = ""):
        if not isinstance(ccd, ClusterCommunicationDiagram):
            raise ModelError("the LA top-level structure must be a CCD")
        self.name = name
        self.ccd = ccd
        self.target_profile = target_profile
        self.description = description

    # -- structure -----------------------------------------------------------------
    def clusters(self) -> List[Cluster]:
        return self.ccd.clusters()

    def cluster_rates(self) -> Dict[str, int]:
        return self.ccd.rates()

    def implementation_mappings(self) -> Dict[str, ImplementationMapping]:
        """The implementation-type decisions of every cluster."""
        return {cluster.name: cluster.implementation for cluster in self.clusters()}

    def deployable_units(self) -> List[str]:
        """Names of the smallest deployable units (the clusters)."""
        return [cluster.name for cluster in self.clusters()]

    # -- analysis -------------------------------------------------------------------
    def validate(self) -> ValidationReport:
        """Structural CCD rules plus target-specific well-definedness."""
        return check_well_definedness(self.ccd, self.target_profile)

    def missing_rate_transition_delays(self) -> List[str]:
        return missing_delays(self.ccd, self.target_profile)

    def is_well_defined(self) -> bool:
        return self.validate().is_valid()

    def simulate(self, stimuli: Optional[Mapping] = None,
                 ticks: int = 40) -> SimulationTrace:
        """Simulate the CCD with every cluster gated by its explicit rate."""
        return simulate_ccd(self.ccd, stimuli, ticks)

    def describe(self) -> str:
        rates = ", ".join(f"{name}@{period}" for name, period
                          in sorted(self.cluster_rates().items()))
        return (f"LA {self.name!r}: {len(self.clusters())} cluster(s) [{rates}], "
                f"target {self.target_profile.name}, well-defined: "
                f"{self.is_well_defined()}")
