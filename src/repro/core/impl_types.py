"""Implementation types of the Logical Architecture (paper Sec. 3.3).

At the LA level the abstract types of the FDA are extended by
*implementation types* which capture platform-related constraints: an
abstract ``int`` is mapped to e.g. ``int16`` or ``int32`` and a physical
floating-point signal may be mapped to a fixed-point or integer message.

This module provides

* machine integer types (:class:`MachineIntType`) with the usual widths,
* fixed-point encodings (:class:`FixedPointType`) with scale and offset,
* the physical-to-implementation mapping used by the refinement
  transformation (:func:`choose_implementation_type`,
  :class:`ImplementationMapping`),
* quantization helpers (encode/decode with error accounting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .errors import QuantizationError, TypeMappingError
from .types import BOOL, BoolType, EnumType, FloatType, IntType, Type


class ImplementationType(Type):
    """Base class of all platform-level (LA) types."""

    #: storage width in bits, defined by subclasses
    bits: int = 0

    def storage_bytes(self) -> int:
        """Number of bytes needed to store one message of this type."""
        return max(1, (self.bits + 7) // 8)


class MachineIntType(ImplementationType):
    """A fixed-width two's-complement (or unsigned) machine integer."""

    def __init__(self, bits: int, signed: bool = True):
        if bits not in (8, 16, 32, 64):
            raise TypeMappingError(f"unsupported machine integer width: {bits}")
        self.bits = bits
        self.signed = signed

    @property
    def name(self) -> str:  # type: ignore[override]
        prefix = "int" if self.signed else "uint"
        return f"{prefix}{self.bits}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        return self.min_value <= value <= self.max_value

    def default(self) -> Any:
        return 0

    def saturate(self, value: int) -> int:
        """Clamp *value* into the representable range."""
        return max(self.min_value, min(self.max_value, int(value)))


class FixedPointType(ImplementationType):
    """A linear fixed-point encoding ``physical = raw * scale + offset``.

    The raw value is stored in a machine integer of the given width.  This is
    the standard automotive signal encoding (as used e.g. in CAN signal
    databases and ASCET implementation data types).
    """

    def __init__(self, bits: int, scale: float, offset: float = 0.0,
                 signed: bool = True, name: Optional[str] = None):
        if scale <= 0:
            raise TypeMappingError("fixed-point scale must be positive")
        self.storage = MachineIntType(bits, signed)
        self.bits = bits
        self.signed = signed
        self.scale = float(scale)
        self.offset = float(offset)
        self._name = name

    @property
    def name(self) -> str:  # type: ignore[override]
        if self._name:
            return self._name
        return (f"fixed{self.bits}(scale={self.scale:g}, "
                f"offset={self.offset:g})")

    @property
    def min_physical(self) -> float:
        return self.storage.min_value * self.scale + self.offset

    @property
    def max_physical(self) -> float:
        return self.storage.max_value * self.scale + self.offset

    @property
    def resolution(self) -> float:
        """Physical value of one least-significant bit."""
        return self.scale

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        return self.min_physical - self.scale / 2 <= value <= self.max_physical + self.scale / 2

    def default(self) -> Any:
        return 0

    def encode(self, physical: float, saturate: bool = True) -> int:
        """Quantize a physical value into its raw integer representation."""
        if math.isnan(physical):
            raise QuantizationError("cannot encode NaN")
        raw = round((physical - self.offset) / self.scale)
        if not (self.storage.min_value <= raw <= self.storage.max_value):
            if not saturate:
                raise QuantizationError(
                    f"value {physical!r} is outside the range of {self.name}")
            raw = self.storage.saturate(raw)
        return int(raw)

    def decode(self, raw: int) -> float:
        """Map a raw integer representation back to the physical value."""
        return raw * self.scale + self.offset

    def quantization_error(self, physical: float) -> float:
        """Absolute error introduced by encoding then decoding *physical*."""
        return abs(self.decode(self.encode(physical)) - physical)


class ImplBoolType(ImplementationType):
    """Boolean stored in one byte (typical automotive C mapping)."""

    bits = 8
    name = "bool8"

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def default(self) -> Any:
        return False


class ImplEnumType(ImplementationType):
    """Enumeration encoded as an unsigned machine integer of minimal width."""

    def __init__(self, source: EnumType):
        self.source = source
        needed = max(1, (len(source.literals) - 1).bit_length())
        for width in (8, 16, 32):
            if needed <= width:
                self.bits = width
                break
        else:  # pragma: no cover - enums never need more than 32 bits here
            self.bits = 64

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"enum{self.bits}({self.source.name})"

    def contains(self, value: Any) -> bool:
        if isinstance(value, str):
            return value in self.source.literals
        return isinstance(value, int) and 0 <= value < len(self.source.literals)

    def default(self) -> Any:
        return 0

    def encode(self, literal: str) -> int:
        return self.source.ordinal(literal)

    def decode(self, raw: int) -> str:
        if not 0 <= raw < len(self.source.literals):
            raise QuantizationError(
                f"raw value {raw} is not a literal index of {self.source.name!r}")
        return self.source.literals[raw]


#: Convenience singletons for the common machine integers.
INT8 = MachineIntType(8)
INT16 = MachineIntType(16)
INT32 = MachineIntType(32)
UINT8 = MachineIntType(8, signed=False)
UINT16 = MachineIntType(16, signed=False)
UINT32 = MachineIntType(32, signed=False)
BOOL8 = ImplBoolType()


def choose_implementation_type(abstract: Type,
                               resolution: Optional[float] = None,
                               low: Optional[float] = None,
                               high: Optional[float] = None) -> ImplementationType:
    """Choose a platform type for an abstract FDA-level type.

    This is the default policy used by the refinement transformation
    (paper Sec. 4, "transformation of physical signals to implementation
    signals, i.e. the choice of encoding and data type"):

    * ``bool``  -> ``bool8``
    * enums     -> smallest unsigned integer that holds all literals
    * bounded ``int`` -> smallest signed machine integer covering the range
    * unbounded ``int`` -> ``int32``
    * ``float`` -> fixed point; the range is taken from the type bounds or
      the *low*/*high* arguments, the *resolution* defaults to a value that
      uses a 16-bit raw range.
    """
    if isinstance(abstract, BoolType):
        return BOOL8
    if isinstance(abstract, EnumType):
        return ImplEnumType(abstract)
    if isinstance(abstract, IntType):
        range_low = abstract.low if abstract.low is not None else low
        range_high = abstract.high if abstract.high is not None else high
        if range_low is None or range_high is None:
            return INT32
        for candidate in (INT8, INT16, INT32):
            if candidate.min_value <= range_low and range_high <= candidate.max_value:
                return candidate
        return MachineIntType(64)
    if isinstance(abstract, FloatType):
        range_low = abstract.low if abstract.low is not None else low
        range_high = abstract.high if abstract.high is not None else high
        if range_low is None or range_high is None:
            raise TypeMappingError(
                f"cannot map unbounded float type {abstract!r} to fixed point "
                "without an explicit range")
        span = float(range_high) - float(range_low)
        if span <= 0:
            span = max(abs(float(range_high)), 1.0)
        if resolution is None:
            resolution = span / (INT16.max_value - 1)
        bits = 16 if span / resolution <= INT16.max_value else 32
        offset = float(range_low) if range_low > 0 or range_high < 0 else 0.0
        return FixedPointType(bits, resolution, offset)
    raise TypeMappingError(f"no implementation mapping for type {abstract!r}")


@dataclass
class SignalImplementation:
    """The implementation decision for one signal (port/channel)."""

    signal: str
    abstract_type: Type
    implementation_type: ImplementationType
    rationale: str = ""

    def describe(self) -> str:
        return (f"{self.signal}: {self.abstract_type!r} -> "
                f"{self.implementation_type.name} ({self.rationale})")


class ImplementationMapping:
    """Collected physical-to-implementation type decisions of a refinement."""

    def __init__(self) -> None:
        self._entries: Dict[str, SignalImplementation] = {}

    def assign(self, signal: str, abstract: Type, impl: ImplementationType,
               rationale: str = "") -> SignalImplementation:
        entry = SignalImplementation(signal, abstract, impl, rationale)
        self._entries[signal] = entry
        return entry

    def assign_default(self, signal: str, abstract: Type,
                       resolution: Optional[float] = None,
                       low: Optional[float] = None,
                       high: Optional[float] = None) -> SignalImplementation:
        impl = choose_implementation_type(abstract, resolution, low, high)
        return self.assign(signal, abstract, impl, rationale="default policy")

    def lookup(self, signal: str) -> SignalImplementation:
        try:
            return self._entries[signal]
        except KeyError as exc:
            raise TypeMappingError(f"no implementation type assigned to "
                                   f"signal {signal!r}") from exc

    def __contains__(self, signal: str) -> bool:
        return signal in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def signals(self) -> List[str]:
        return sorted(self._entries)

    def entries(self) -> List[SignalImplementation]:
        return [self._entries[name] for name in self.signals()]

    def total_payload_bytes(self) -> int:
        """Total storage of all mapped signals (used for frame packing)."""
        return sum(e.implementation_type.storage_bytes() for e in self._entries.values())

    def report(self) -> str:
        lines = ["signal implementation mapping:"]
        lines.extend("  " + entry.describe() for entry in self.entries())
        return "\n".join(lines)
