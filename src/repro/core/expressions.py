"""Abstract syntax of the AutoMoDe base language.

Atomic DFD blocks may be defined "directly through an expression (function)
in AutoMoDe's base language" (paper Sec. 3.2), e.g. the ``ADD`` block of
Fig. 5 is defined by the expression ``ch1 + ch2 + ch3``.  The same expression
language is used for MTD/STD transition guards and for clock conditions.

This module defines the expression AST; parsing lives in
:mod:`repro.core.expr_parser` and evaluation in :mod:`repro.core.expr_eval`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, List, Tuple


class Expression:
    """Base class of base-language expression nodes."""

    def variables(self) -> FrozenSet[str]:
        """Names of the free variables (input channels) of the expression."""
        raise NotImplementedError

    def children(self) -> Tuple["Expression", ...]:
        """Immediate sub-expressions."""
        return ()

    def to_source(self) -> str:
        """Render the expression back to concrete base-language syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_source()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.to_source() == other.to_source()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.to_source()))


@dataclass(frozen=True, eq=False)
class Literal(Expression):
    """A numeric, boolean or enumeration-literal constant."""

    value: Any

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def to_source(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True, eq=False)
class Variable(Expression):
    """A reference to an input channel / port / local name."""

    name: str

    def variables(self) -> FrozenSet[str]:
        return frozenset([self.name])

    def to_source(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class UnaryOp(Expression):
    """Unary operation: ``-x`` or ``not x`` or ``abs(x)``-style intrinsics."""

    op: str
    operand: Expression

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def children(self) -> Tuple[Expression, ...]:
        return (self.operand,)

    def to_source(self) -> str:
        if self.op in ("-", "not"):
            sep = " " if self.op == "not" else ""
            return f"{self.op}{sep}({self.operand.to_source()})"
        return f"{self.op}({self.operand.to_source()})"


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    """Binary arithmetic, comparison or boolean operation."""

    op: str
    left: Expression
    right: Expression

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Tuple[Expression, ...]:
        return (self.left, self.right)

    def to_source(self) -> str:
        return f"({self.left.to_source()} {self.op} {self.right.to_source()})"


@dataclass(frozen=True, eq=False)
class Conditional(Expression):
    """The ``if c then a else b`` expression of the base language."""

    condition: Expression
    then_branch: Expression
    else_branch: Expression

    def variables(self) -> FrozenSet[str]:
        return (self.condition.variables()
                | self.then_branch.variables()
                | self.else_branch.variables())

    def children(self) -> Tuple[Expression, ...]:
        return (self.condition, self.then_branch, self.else_branch)

    def to_source(self) -> str:
        return (f"(if {self.condition.to_source()} "
                f"then {self.then_branch.to_source()} "
                f"else {self.else_branch.to_source()})")


@dataclass(frozen=True, eq=False)
class Call(Expression):
    """Call of a built-in function (``min``, ``max``, ``abs``, ``limit``...)."""

    function: str
    arguments: Tuple[Expression, ...]

    def variables(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for arg in self.arguments:
            names |= arg.variables()
        return names

    def children(self) -> Tuple[Expression, ...]:
        return self.arguments

    def to_source(self) -> str:
        args = ", ".join(a.to_source() for a in self.arguments)
        return f"{self.function}({args})"


@dataclass(frozen=True, eq=False)
class Present(Expression):
    """``present(ch)`` -- true iff a message is present on channel *ch*.

    This is the construct by which event-triggered behaviour is modelled:
    components "react explicitly depending on the presence (or absence) of a
    message" (paper Sec. 2).
    """

    channel: str

    def variables(self) -> FrozenSet[str]:
        return frozenset([self.channel])

    def to_source(self) -> str:
        return f"present({self.channel})"


def walk(expression: Expression) -> List[Expression]:
    """All nodes of the expression tree in pre-order."""
    nodes = [expression]
    for child in expression.children():
        nodes.extend(walk(child))
    return nodes


def depth(expression: Expression) -> int:
    """Height of the expression tree (a literal/variable has depth 1)."""
    kids = expression.children()
    if not kids:
        return 1
    return 1 + max(depth(child) for child in kids)


def operator_count(expression: Expression) -> int:
    """Number of operator nodes; a simple complexity metric for the case study."""
    return sum(1 for node in walk(expression)
               if isinstance(node, (UnaryOp, BinaryOp, Conditional, Call)))


def conditional_count(expression: Expression) -> int:
    """Number of If-Then-Else nodes (implicit control-flow, paper Sec. 5)."""
    return sum(1 for node in walk(expression) if isinstance(node, Conditional))
