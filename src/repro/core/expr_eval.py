"""Evaluator for the AutoMoDe base language.

Expressions are evaluated against an *environment* mapping channel/port
names to the values present at the current tick (possibly
:data:`~repro.core.values.ABSENT`).  Evaluation follows the synchronous
convention: an arithmetic or comparison operation whose operand is absent
yields an absent result, whereas ``present(ch)`` turns absence into an
ordinary boolean so that event-triggered behaviour can be expressed.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Mapping, Optional

from .errors import ExpressionEvalError
from .expressions import (BinaryOp, Call, Conditional, Expression, Literal,
                          Present, UnaryOp, Variable)
from .expr_parser import parse_expression
from .values import ABSENT, is_absent, is_present


def _limit(value, low, high):
    """Clamp *value* into [low, high] (the LIMIT block primitive)."""
    return max(low, min(high, value))


def _interpolate(x, x0, y0, x1, y1):
    """Linear interpolation primitive used by lookup-table style blocks."""
    if x1 == x0:
        return y0
    alpha = (x - x0) / (x1 - x0)
    return y0 + alpha * (y1 - y0)


def _sign(x):
    """Sign primitive: -1, 0 or 1 (named so evaluators stay picklable)."""
    return (x > 0) - (x < 0)


#: Built-in functions callable from base-language expressions.
BUILTIN_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": abs,
    "min": min,
    "max": max,
    "limit": _limit,
    "interpolate": _interpolate,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "sign": _sign,
}


_ARITHMETIC_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "%": lambda a, b: a % b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ExpressionEvaluator:
    """Evaluates base-language ASTs against per-tick environments."""

    def __init__(self, functions: Optional[Mapping[str, Callable[..., Any]]] = None):
        self.functions: Dict[str, Callable[..., Any]] = dict(BUILTIN_FUNCTIONS)
        if functions:
            self.functions.update(functions)

    # Only non-builtin functions travel when an evaluator is pickled (the
    # sharded scenario runner ships whole models to worker processes);
    # builtins are reattached on load, so models using only the base
    # vocabulary never depend on their picklability.
    def __getstate__(self) -> Dict[str, Any]:
        custom = {name: function for name, function in self.functions.items()
                  if BUILTIN_FUNCTIONS.get(name) is not function}
        return {"custom_functions": custom}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.functions = dict(BUILTIN_FUNCTIONS)
        self.functions.update(state.get("custom_functions", {}))

    def compile(self, expression: Expression) -> Callable[[Mapping[str, Any]], Any]:
        """Lower *expression* to a closure using this evaluator's functions.

        The returned closure ``environment -> value`` reproduces
        :meth:`evaluate` exactly (see :mod:`repro.core.expr_compile`); it
        captures resolved function objects, so it is a per-process artefact
        -- recompile after pickling rather than shipping closures.
        """
        from .expr_compile import compile_expression
        return compile_expression(expression, self.functions)

    def evaluate(self, expression: Expression, environment: Mapping[str, Any]) -> Any:
        """Evaluate *expression*; absent operands make the result absent."""
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, Variable):
            if expression.name not in environment:
                raise ExpressionEvalError(
                    f"unknown name {expression.name!r} in expression "
                    f"{expression.to_source()}")
            return environment[expression.name]
        if isinstance(expression, Present):
            return is_present(environment.get(expression.channel, ABSENT))
        if isinstance(expression, UnaryOp):
            return self._evaluate_unary(expression, environment)
        if isinstance(expression, BinaryOp):
            return self._evaluate_binary(expression, environment)
        if isinstance(expression, Conditional):
            condition = self.evaluate(expression.condition, environment)
            if is_absent(condition):
                return ABSENT
            branch = expression.then_branch if condition else expression.else_branch
            return self.evaluate(branch, environment)
        if isinstance(expression, Call):
            return self._evaluate_call(expression, environment)
        raise ExpressionEvalError(f"unsupported expression node {expression!r}")

    # -- helpers -------------------------------------------------------------
    def _evaluate_unary(self, expression: UnaryOp, environment: Mapping[str, Any]) -> Any:
        operand = self.evaluate(expression.operand, environment)
        if is_absent(operand):
            return ABSENT
        if expression.op == "-":
            return -operand
        if expression.op == "not":
            return not operand
        raise ExpressionEvalError(f"unknown unary operator {expression.op!r}")

    def _evaluate_binary(self, expression: BinaryOp, environment: Mapping[str, Any]) -> Any:
        if expression.op == "and":
            left = self.evaluate(expression.left, environment)
            if is_absent(left):
                return ABSENT
            if not left:
                return False
            right = self.evaluate(expression.right, environment)
            return ABSENT if is_absent(right) else bool(right)
        if expression.op == "or":
            left = self.evaluate(expression.left, environment)
            if is_absent(left):
                return ABSENT
            if left:
                return True
            right = self.evaluate(expression.right, environment)
            return ABSENT if is_absent(right) else bool(right)

        left = self.evaluate(expression.left, environment)
        right = self.evaluate(expression.right, environment)
        if is_absent(left) or is_absent(right):
            return ABSENT
        if expression.op == "/":
            if right == 0:
                raise ExpressionEvalError(
                    f"division by zero in {expression.to_source()}")
            if isinstance(left, int) and isinstance(right, int) and left % right == 0:
                return left // right
            return left / right
        try:
            op = _ARITHMETIC_OPS[expression.op]
        except KeyError as exc:
            raise ExpressionEvalError(
                f"unknown binary operator {expression.op!r}") from exc
        try:
            return op(left, right)
        except TypeError as exc:
            raise ExpressionEvalError(
                f"cannot apply {expression.op!r} to {left!r} and {right!r}") from exc

    def _evaluate_call(self, expression: Call, environment: Mapping[str, Any]) -> Any:
        try:
            function = self.functions[expression.function]
        except KeyError as exc:
            raise ExpressionEvalError(
                f"unknown function {expression.function!r}") from exc
        arguments = [self.evaluate(arg, environment) for arg in expression.arguments]
        if any(is_absent(arg) for arg in arguments):
            return ABSENT
        try:
            return function(*arguments)
        except Exception as exc:  # noqa: BLE001 - surface as evaluation error
            raise ExpressionEvalError(
                f"error calling {expression.function}: {exc}") from exc


_DEFAULT_EVALUATOR = ExpressionEvaluator()


def evaluate(expression, environment: Mapping[str, Any]) -> Any:
    """Convenience wrapper: evaluate an AST or source string."""
    if isinstance(expression, str):
        expression = parse_expression(expression)
    return _DEFAULT_EVALUATOR.evaluate(expression, environment)
