"""Ports: the typed message-passing interface points of components.

AutoMoDe components exchange messages exclusively through ports
(paper Sec. 2: "the message-based communication with explicit data-flow
enforces complete specification of a component's interface, and prohibits
implicit exchange of information").  SSD/CCD ports are statically typed,
DFD ports are dynamically typed (type ``any`` until inference refines them).
"""

from __future__ import annotations

import enum
from typing import Any, Optional, TYPE_CHECKING

from .clocks import BASE_CLOCK, Clock
from .errors import ModelError
from .types import ANY, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .components import Component


class PortDirection(enum.Enum):
    """Direction of message flow through a port."""

    INPUT = "in"
    OUTPUT = "out"

    def __str__(self) -> str:
        return self.value


class Port:
    """A directed, (statically or dynamically) typed interface point."""

    def __init__(self, name: str, direction: PortDirection,
                 port_type: Type = ANY, clock: Clock = BASE_CLOCK,
                 description: str = ""):
        if not name or not name.replace("_", "").isalnum():
            raise ModelError(f"invalid port name {name!r}")
        self.name = name
        self.direction = direction
        self.port_type = port_type
        self.clock = clock
        self.description = description
        self.owner: Optional["Component"] = None

    # -- identity -------------------------------------------------------------
    @property
    def qualified_name(self) -> str:
        """``component.port`` name, unique within one diagram."""
        if self.owner is None:
            return self.name
        return f"{self.owner.name}.{self.name}"

    def is_input(self) -> bool:
        return self.direction is PortDirection.INPUT

    def is_output(self) -> bool:
        return self.direction is PortDirection.OUTPUT

    def is_statically_typed(self) -> bool:
        """True if the port carries a concrete (non-``any``) type."""
        return self.port_type is not ANY and self.port_type != ANY

    def accepts(self, value: Any) -> bool:
        """True if *value* is a legal message for this port."""
        return self.port_type.contains(value)

    def retype(self, new_type: Type) -> None:
        """Assign a (possibly refined) type to the port."""
        self.port_type = new_type

    def reclock(self, clock: Clock) -> None:
        """Assign an abstract clock to the flow through this port."""
        self.clock = clock

    def __repr__(self) -> str:
        return (f"Port({self.qualified_name}, {self.direction}, "
                f"{self.port_type!r}, clock={self.clock.expression()})")


def input_port(name: str, port_type: Type = ANY, clock: Clock = BASE_CLOCK,
               description: str = "") -> Port:
    """Convenience constructor for an input port."""
    return Port(name, PortDirection.INPUT, port_type, clock, description)


def output_port(name: str, port_type: Type = ANY, clock: Clock = BASE_CLOCK,
                description: str = "") -> Port:
    """Convenience constructor for an output port."""
    return Port(name, PortDirection.OUTPUT, port_type, clock, description)
