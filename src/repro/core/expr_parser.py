"""Recursive-descent parser for the AutoMoDe base language.

Grammar (lowest to highest precedence)::

    expr        := conditional
    conditional := "if" expr "then" expr "else" expr | or_expr
    or_expr     := and_expr ("or" and_expr)*
    and_expr    := not_expr ("and" not_expr)*
    not_expr    := "not" not_expr | comparison
    comparison  := additive (("=="|"!="|"<="|">="|"<"|">") additive)?
    additive    := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary       := "-" unary | primary
    primary     := NUMBER | STRING | "true" | "false" | name
                 | name "(" args ")" | "(" expr ")"

``present(x)`` parses to a :class:`~repro.core.expressions.Present` node;
other calls parse to :class:`~repro.core.expressions.Call`.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from .errors import ExpressionParseError
from .expressions import (BinaryOp, Call, Conditional, Expression, Literal,
                          Present, UnaryOp, Variable)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+\.\d+|\d+)
  | (?P<string>'[^']*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>==|!=|<=|>=|[+\-*/%<>()=,])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"if", "then", "else", "and", "or", "not", "true", "false"}


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ExpressionParseError(
                f"unexpected character {source[position]!r} at column {position} "
                f"in {source!r}")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup or "op"
        text = match.group()
        if kind == "name" and text in _KEYWORDS:
            kind = "keyword"
        tokens.append(_Token(kind, text, match.start()))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    # -- token helpers ------------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ExpressionParseError(f"unexpected end of expression in {self.source!r}")
        self.index += 1
        return token

    def _match(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None or token.kind != kind:
            return False
        if text is not None and token.text != text:
            return False
        self.index += 1
        return True

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind or (text is not None and token.text != text):
            expected = text or kind
            got = token.text if token else "end of input"
            raise ExpressionParseError(
                f"expected {expected!r} but found {got!r} in {self.source!r}")
        return self._advance()

    # -- grammar -------------------------------------------------------------
    def parse(self) -> Expression:
        expr = self._conditional()
        if self._peek() is not None:
            token = self._peek()
            raise ExpressionParseError(
                f"trailing input {token.text!r} at column {token.position} "
                f"in {self.source!r}")
        return expr

    def _conditional(self) -> Expression:
        if self._match("keyword", "if"):
            condition = self._conditional()
            self._expect("keyword", "then")
            then_branch = self._conditional()
            self._expect("keyword", "else")
            else_branch = self._conditional()
            return Conditional(condition, then_branch, else_branch)
        return self._or_expr()

    def _or_expr(self) -> Expression:
        expr = self._and_expr()
        while self._match("keyword", "or"):
            expr = BinaryOp("or", expr, self._and_expr())
        return expr

    def _and_expr(self) -> Expression:
        expr = self._not_expr()
        while self._match("keyword", "and"):
            expr = BinaryOp("and", expr, self._not_expr())
        return expr

    def _not_expr(self) -> Expression:
        if self._match("keyword", "not"):
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        expr = self._additive()
        token = self._peek()
        if token is not None and token.kind == "op" and token.text in (
                "==", "!=", "<=", ">=", "<", ">", "="):
            self._advance()
            op = "==" if token.text == "=" else token.text
            expr = BinaryOp(op, expr, self._additive())
        return expr

    def _additive(self) -> Expression:
        expr = self._multiplicative()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.text in ("+", "-"):
                self._advance()
                expr = BinaryOp(token.text, expr, self._multiplicative())
            else:
                return expr

    def _multiplicative(self) -> Expression:
        expr = self._unary()
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.text in ("*", "/", "%"):
                self._advance()
                expr = BinaryOp(token.text, expr, self._unary())
            else:
                return expr

    def _unary(self) -> Expression:
        if self._match("op", "-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        token = self._advance()
        if token.kind == "number":
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.kind == "string":
            return Literal(token.text[1:-1])
        if token.kind == "keyword" and token.text in ("true", "false"):
            return Literal(token.text == "true")
        if token.kind == "name":
            if self._match("op", "("):
                arguments: List[Expression] = []
                if not self._match("op", ")"):
                    arguments.append(self._conditional())
                    while self._match("op", ","):
                        arguments.append(self._conditional())
                    self._expect("op", ")")
                if token.text == "present":
                    if len(arguments) != 1 or not isinstance(arguments[0], Variable):
                        raise ExpressionParseError(
                            "present(...) takes exactly one channel name")
                    return Present(arguments[0].name)
                return Call(token.text, tuple(arguments))
            return Variable(token.text)
        if token.kind == "op" and token.text == "(":
            expr = self._conditional()
            self._expect("op", ")")
            return expr
        raise ExpressionParseError(
            f"unexpected token {token.text!r} at column {token.position} "
            f"in {self.source!r}")


def parse_expression(source: str) -> Expression:
    """Parse a base-language expression string into its AST."""
    if not isinstance(source, str) or not source.strip():
        raise ExpressionParseError("expression source must be a non-empty string")
    return _Parser(source).parse()
