"""Components: the structural and behavioural building blocks of AutoMoDe.

Every AutoMoDe model element "can be understood as a component or block
exchanging messages with its environment via logical channels with respect
to a global, discrete time-base" (paper Sec. 2).  This module defines

* :class:`Component` -- the abstract base with a typed port interface and a
  synchronous ``react`` step,
* :class:`ExpressionComponent` -- atomic blocks whose outputs are defined by
  base-language expressions (the ``ADD`` block of Fig. 5),
* :class:`FunctionComponent` -- atomic blocks defined by a Python callable
  (used for the block library),
* :class:`StatefulComponent` -- atomic blocks with internal state (delay,
  integrator, hold...),
* :class:`CompositeComponent` -- hierarchical composition of sub-components
  connected by channels, with either instantaneous (DFD) or delayed (SSD)
  channel semantics, including the recursive synchronous execution and the
  instantaneous-dependency analysis used by the causality check,
* :class:`ExecutionPlan` -- the precomputed per-composite schedule (topological
  evaluation order, instantaneous-propagation lists, delayed-channel seed and
  commit lists, boundary collection) cached on the composite and shared by
  the interpreter and the compiled simulation engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Set, Tuple)

from ..obs.context import current_registry
from .channels import Channel, ChannelEnd, connect
from .clocks import BASE_CLOCK, Clock
from .errors import (CausalityError, ModelError, NameConflictError,
                     SimulationError, UnknownElementError)
from .expr_eval import ExpressionEvaluator
from .expr_parser import parse_expression
from .expressions import Expression
from .ports import Port, PortDirection, input_port, output_port
from .types import ANY, Type
from .values import ABSENT, is_absent


class Component:
    """Abstract base class of all AutoMoDe components and blocks."""

    def __init__(self, name: str, description: str = ""):
        if not name or not all(ch.isalnum() or ch in "_-" for ch in name):
            raise ModelError(f"invalid component name {name!r}")
        self.name = name
        self.description = description
        self._ports: Dict[str, Port] = {}
        #: bumped on every structural mutation; plan-cache keys derive from it
        self._structure_version = 0
        #: free-form annotations (abstraction level, requirements, actuators...)
        self.annotations: Dict[str, Any] = {}

    # -- port management -------------------------------------------------------
    def add_port(self, port: Port) -> Port:
        """Attach *port* to this component's interface."""
        if port.name in self._ports:
            raise NameConflictError(
                f"component {self.name!r} already has a port {port.name!r}")
        port.owner = self
        self._ports[port.name] = port
        self._structure_version += 1
        return port

    def add_input(self, name: str, port_type: Type = ANY,
                  clock: Clock = BASE_CLOCK, description: str = "") -> Port:
        """Declare and attach a new input port."""
        return self.add_port(input_port(name, port_type, clock, description))

    def add_output(self, name: str, port_type: Type = ANY,
                   clock: Clock = BASE_CLOCK, description: str = "") -> Port:
        """Declare and attach a new output port."""
        return self.add_port(output_port(name, port_type, clock, description))

    def port(self, name: str) -> Port:
        """Look up a port by name."""
        try:
            return self._ports[name]
        except KeyError as exc:
            raise UnknownElementError(
                f"component {self.name!r} has no port {name!r}") from exc

    def has_port(self, name: str) -> bool:
        return name in self._ports

    def ports(self) -> List[Port]:
        return list(self._ports.values())

    def input_ports(self) -> List[Port]:
        return [p for p in self._ports.values() if p.is_input()]

    def output_ports(self) -> List[Port]:
        return [p for p in self._ports.values() if p.is_output()]

    def input_names(self) -> List[str]:
        return [p.name for p in self.input_ports()]

    def output_names(self) -> List[str]:
        return [p.name for p in self.output_ports()]

    # -- behaviour protocol ------------------------------------------------------
    def initial_state(self) -> Any:
        """Initial internal state; stateless components return ``None``."""
        return None

    def react(self, inputs: Mapping[str, Any], state: Any,
              tick: int) -> Tuple[Dict[str, Any], Any]:
        """One synchronous step: consume input messages, produce outputs.

        *inputs* maps every input port name to the value present at this
        tick (possibly :data:`ABSENT`).  The method returns the output
        message per output port and the successor state.
        """
        raise NotImplementedError(
            f"component {self.name!r} ({type(self).__name__}) has no behaviour; "
            "on the FAA level this is allowed, but it cannot be simulated")

    def has_behavior(self) -> bool:
        """True if the component can be executed by the simulation engine."""
        return type(self).react is not Component.react

    def instantaneous_dependencies(self) -> Dict[str, Set[str]]:
        """Map each output port to the inputs it depends on *within* a tick.

        The default is the safe over-approximation that every output depends
        instantaneously on every input; components that break the feedback
        loop (e.g. the unit delay block) override this with an empty
        dependency set, which is what the causality check exploits.
        """
        all_inputs = set(self.input_names())
        return {out: set(all_inputs) for out in self.output_names()}

    def structure_token(self) -> Any:
        """A hashable token that changes whenever the structure mutates.

        Composite components recurse into their sub-components, so a cached
        execution plan is invalidated by any structural change anywhere in
        the subtree that went through the public mutation API.  Code that
        performs deliberate surgery on private attributes must call
        :meth:`CompositeComponent.invalidate_plan` afterwards.
        """
        return self._structure_version

    # -- misc ------------------------------------------------------------------
    def annotate(self, key: str, value: Any) -> "Component":
        """Attach a free-form annotation and return ``self`` for chaining."""
        self.annotations[key] = value
        return self

    def __repr__(self) -> str:
        ins = ", ".join(self.input_names())
        outs = ", ".join(self.output_names())
        return f"{type(self).__name__}({self.name}: [{ins}] -> [{outs}])"


class ExpressionComponent(Component):
    """Atomic block whose outputs are base-language expressions over inputs.

    Example (the ``ADD`` block of paper Fig. 5)::

        add = ExpressionComponent("ADD", {"out": "ch1 + ch2 + ch3"})
        add.add_input("ch1"); add.add_input("ch2"); add.add_input("ch3")
        add.add_output("out")
    """

    def __init__(self, name: str, output_expressions: Mapping[str, Any],
                 description: str = "",
                 evaluator: Optional[ExpressionEvaluator] = None):
        super().__init__(name, description)
        self.output_expressions: Dict[str, Expression] = {}
        for out_name, expr in output_expressions.items():
            if isinstance(expr, str):
                expr = parse_expression(expr)
            if not isinstance(expr, Expression):
                raise ModelError(
                    f"output {out_name!r} of {name!r} must be an expression")
            self.output_expressions[out_name] = expr
        self._evaluator = evaluator or ExpressionEvaluator()

    def declare_interface_from_expressions(self) -> None:
        """Create ``any``-typed ports for all expression variables and outputs."""
        used: Set[str] = set()
        for expr in self.output_expressions.values():
            used |= set(expr.variables())
        for name in sorted(used):
            if not self.has_port(name):
                self.add_input(name)
        for name in self.output_expressions:
            if not self.has_port(name):
                self.add_output(name)

    def react(self, inputs: Mapping[str, Any], state: Any,
              tick: int) -> Tuple[Dict[str, Any], Any]:
        environment = dict(inputs)
        outputs: Dict[str, Any] = {}
        for out_name, expr in self.output_expressions.items():
            outputs[out_name] = self._evaluator.evaluate(expr, environment)
        return outputs, state

    def instantaneous_dependencies(self) -> Dict[str, Set[str]]:
        deps: Dict[str, Set[str]] = {}
        input_names = set(self.input_names())
        for out_name, expr in self.output_expressions.items():
            deps[out_name] = set(expr.variables()) & input_names
        for out_name in self.output_names():
            deps.setdefault(out_name, set())
        return deps


class FunctionComponent(Component):
    """Atomic stateless block defined by a Python callable.

    The callable receives the input environment (a dict of port name to
    value) and returns a dict of output port name to value.
    """

    def __init__(self, name: str,
                 function: Callable[[Mapping[str, Any]], Mapping[str, Any]],
                 inputs: Sequence[str] = (), outputs: Sequence[str] = (),
                 description: str = ""):
        super().__init__(name, description)
        self.function = function
        for port_name in inputs:
            self.add_input(port_name)
        for port_name in outputs:
            self.add_output(port_name)

    def react(self, inputs: Mapping[str, Any], state: Any,
              tick: int) -> Tuple[Dict[str, Any], Any]:
        produced = dict(self.function(dict(inputs)))
        outputs = {name: produced.get(name, ABSENT) for name in self.output_names()}
        return outputs, state


class StatefulComponent(Component):
    """Atomic block with internal state (delays, integrators, counters...).

    Subclasses implement :meth:`initial_state` and :meth:`step`; ``step``
    receives the inputs and the current state and returns outputs and the
    successor state.  By default a stateful component is assumed *not* to
    have an instantaneous input-to-output path (its outputs are functions of
    the state only), which is the property that lets delay blocks break
    causality cycles.  Subclasses with a direct feed-through must override
    :meth:`instantaneous_dependencies`.
    """

    direct_feedthrough = False

    def step(self, inputs: Mapping[str, Any], state: Any,
             tick: int) -> Tuple[Dict[str, Any], Any]:
        raise NotImplementedError

    def react(self, inputs: Mapping[str, Any], state: Any,
              tick: int) -> Tuple[Dict[str, Any], Any]:
        return self.step(inputs, state, tick)

    def instantaneous_dependencies(self) -> Dict[str, Set[str]]:
        if self.direct_feedthrough:
            return super().instantaneous_dependencies()
        return {out: set() for out in self.output_names()}


#: A (component name, port name) pair; ``None`` names a boundary port.
PortKey = Tuple[Optional[str], str]


#: Transparent single-component wrappers: class -> attribute naming the
#: wrapped component.  A registered class promises the
#: :class:`~repro.simulation.engine.ClockGatedComponent` contract for the
#: hierarchy queries: ``has_behavior()`` forwards to the wrapped component,
#: ``instantaneous_dependencies()`` forwards unchanged (mirrored port
#: names), and ``structure_token()`` is ``(self._structure_version,
#: wrapped token)``.  The iterative hierarchy walks below unwrap such nodes
#: instead of calling through them, so arbitrarily deep wrapper/composite
#: chains stay within the Python recursion limit.  Subclasses that override
#: one of these methods are treated as opaque for that method.
_TRANSPARENT_WRAPPERS: Dict[type, str] = {}


def register_transparent_wrapper(cls: type, attribute: str) -> None:
    """Register *cls* as a transparent single-component wrapper."""
    _TRANSPARENT_WRAPPERS[cls] = attribute


def _wrapped_component(node: "Component",
                       method_name: str) -> Optional["Component"]:
    """The component *node* transparently wraps, w.r.t. *method_name*.

    ``None`` if *node* is not a registered wrapper or overrides the
    forwarding method itself.
    """
    for cls in type(node).__mro__:
        attribute = _TRANSPARENT_WRAPPERS.get(cls)
        if attribute is not None:
            if getattr(type(node), method_name) is getattr(cls, method_name):
                return getattr(node, attribute)
            return None
    return None


def _default_token_node(component: "Component") -> bool:
    """True for composites using the default :meth:`structure_token`."""
    return (isinstance(component, CompositeComponent)
            and type(component).structure_token
            is CompositeComponent.structure_token)


def subtree_structure_tokens(root: "CompositeComponent") -> Dict[int, Any]:
    """Structure tokens for *root* and the walkable hierarchy below it.

    One iterative post-order pass over default-impl composites and
    registered transparent wrappers; sub-tokens are shared by reference, so
    computing all tokens of an *n*-node hierarchy costs O(n) instead of the
    O(n^2) of calling :meth:`Component.structure_token` once per node, and
    arbitrarily deep hierarchies never hit the Python recursion limit.
    Components with a custom ``structure_token`` are asked directly (their
    override bounds the remaining recursion depth).  *root* itself is
    always tokenized with the default composite formula -- this function is
    the body of the default implementation, so subclass overrides calling
    ``super()`` land here for their own node.
    """

    def walkable(node: "Component") -> bool:
        return (_default_token_node(node)
                or _wrapped_component(node, "structure_token") is not None)

    def token_of(node: "Component", tokens: Dict[int, Any]) -> Any:
        return (tokens[id(node)] if id(node) in tokens
                else node.structure_token())

    tokens: Dict[int, Any] = {}
    stack: List[Component] = [root]
    while stack:
        node = stack[-1]
        if id(node) in tokens:
            stack.pop()
            continue
        wrapped = None if node is root \
            else _wrapped_component(node, "structure_token")
        if wrapped is not None:
            if walkable(wrapped) and id(wrapped) not in tokens:
                stack.append(wrapped)
                continue
            tokens[id(node)] = (node._structure_version,
                                token_of(wrapped, tokens))
            stack.pop()
            continue
        missing = [sub for sub in node._subcomponents.values()
                   if walkable(sub) and id(sub) not in tokens]
        if missing:
            stack.extend(missing)
            continue
        tokens[id(node)] = (
            node._structure_version,
            tuple(token_of(sub, tokens)
                  for sub in node._subcomponents.values()))
        stack.pop()
    return tokens


def _default_deps_node(component: "Component") -> bool:
    """True for composites using the default instantaneous-dependency walk."""
    return (isinstance(component, CompositeComponent)
            and type(component).instantaneous_dependencies
            is CompositeComponent.instantaneous_dependencies)


def _deps_target(component: "Component") -> "Component":
    """Unwrap transparent-wrapper chains w.r.t. instantaneous dependencies.

    Registered wrappers forward ``instantaneous_dependencies`` unchanged
    (mirrored port names), so the first non-forwarding component carries
    the answer.
    """
    while True:
        wrapped = _wrapped_component(component, "instantaneous_dependencies")
        if wrapped is None:
            return component
        component = wrapped


def _instantaneous_deps(root: "CompositeComponent",
                        cache: Dict[int, Dict[str, Set[str]]]
                        ) -> Dict[str, Set[str]]:
    """Default-impl composite dependencies, computed iteratively.

    *root* is treated as a default-impl composite (this is the body of the
    default implementation); nested default-impl composites -- including
    those under transparent wrappers -- are resolved through *cache* in one
    post-order pass, so a shared cache makes a whole compile pass over an
    *n*-node hierarchy O(n) instead of O(n^2).
    """
    if id(root) in cache:
        return cache[id(root)]
    stack: List[CompositeComponent] = [root]
    while stack:
        node = stack[-1]
        if id(node) in cache:
            stack.pop()
            continue
        missing = []
        for sub in node._subcomponents.values():
            target = _deps_target(sub)
            if _default_deps_node(target) and id(target) not in cache:
                missing.append(target)
        if missing:
            stack.extend(missing)
            continue
        cache[id(node)] = node._compute_instantaneous_dependencies(cache)
        stack.pop()
    return cache[id(root)]


def _child_deps(component: "Component",
                cache: Dict[int, Dict[str, Set[str]]]) -> Dict[str, Set[str]]:
    """Instantaneous dependencies of a direct child, via the shared cache."""
    target = _deps_target(component)
    if _default_deps_node(target):
        return _instantaneous_deps(target, cache)
    return target.instantaneous_dependencies()


@dataclass(frozen=True)
class PlanEntry:
    """Precomputed per-sub-component schedule data of an :class:`ExecutionPlan`."""

    name: str
    input_names: Tuple[str, ...]
    #: True if any output depends instantaneously on some input (at plan time)
    has_feedthrough: bool
    #: instantaneous channels leaving this sub-component: (source, destination)
    propagate: Tuple[Tuple[PortKey, PortKey], ...]


@dataclass(frozen=True)
class ExecutionPlan:
    """One composite's schedule, precomputed once per structure version.

    The plan captures everything :meth:`CompositeComponent.react` otherwise
    recomputes every tick: the topological evaluation order, the
    instantaneous-propagation lists per source, the delayed-channel seed and
    commit lists and the boundary-output collection.  Both the reference
    interpreter and :mod:`repro.simulation.compiled` consume it.
    """

    token: Any
    order: Tuple[str, ...]
    entries: Tuple[PlanEntry, ...]
    #: instantaneous channels leaving boundary inputs: (source, destination)
    boundary_propagate: Tuple[Tuple[PortKey, PortKey], ...]
    #: delayed channels seeding destination ports: (channel name, dest, initial)
    delayed_seed: Tuple[Tuple[str, PortKey, Any], ...]
    #: delayed channels committing at end of tick: (channel name, source)
    delayed_commit: Tuple[Tuple[str, PortKey], ...]
    #: channels into boundary outputs: (port, delayed, channel name, initial, src)
    boundary_outputs: Tuple[Tuple[str, bool, str, Any, PortKey], ...]

    def correction_entries(self) -> Tuple[PlanEntry, ...]:
        """Entries without feedthrough, eligible for the state-correction pass."""
        return tuple(e for e in self.entries if not e.has_feedthrough)


class CompositeComponent(Component):
    """A component recursively defined by a network of sub-components.

    The flag *delayed_channels_by_default* selects the communication
    semantics of the diagram: ``True`` for SSD-style composition (every
    channel between sub-components introduces a unit delay) and ``False``
    for DFD-style instantaneous communication.  Individual channels can
    override the default.
    """

    def __init__(self, name: str, description: str = "",
                 delayed_channels_by_default: bool = False):
        super().__init__(name, description)
        self.delayed_channels_by_default = delayed_channels_by_default
        self._subcomponents: Dict[str, Component] = {}
        self._channels: List[Channel] = []
        self._plan_cache: Optional[ExecutionPlan] = None

    # -- structure -------------------------------------------------------------
    def add_subcomponent(self, component: Component) -> Component:
        if component.name in self._subcomponents:
            raise NameConflictError(
                f"{self.name!r} already contains a sub-component "
                f"{component.name!r}")
        if component is self:
            raise ModelError("a component cannot contain itself")
        self._subcomponents[component.name] = component
        self._structure_version += 1
        return component

    def add(self, *components: Component) -> None:
        """Add several sub-components at once."""
        for component in components:
            self.add_subcomponent(component)

    def subcomponent(self, name: str) -> Component:
        try:
            return self._subcomponents[name]
        except KeyError as exc:
            raise UnknownElementError(
                f"{self.name!r} has no sub-component {name!r}") from exc

    def has_subcomponent(self, name: str) -> bool:
        return name in self._subcomponents

    def subcomponents(self) -> List[Component]:
        return list(self._subcomponents.values())

    def subcomponent_names(self) -> List[str]:
        return list(self._subcomponents.keys())

    def channels(self) -> List[Channel]:
        return list(self._channels)

    def add_channel(self, channel: Channel) -> Channel:
        """Attach a channel after validating both endpoints."""
        self._validate_endpoint(channel.source, expect_source=True)
        self._validate_endpoint(channel.destination, expect_source=False)
        for existing in self._channels:
            if existing.destination == channel.destination:
                raise ModelError(
                    f"destination {channel.destination!r} in {self.name!r} is "
                    f"already driven by channel {existing.name!r}")
        self._channels.append(channel)
        self._structure_version += 1
        return channel

    def connect(self, source: str, destination: str,
                name: Optional[str] = None, delayed: Optional[bool] = None,
                initial_value: Any = ABSENT) -> Channel:
        """Connect two endpoints given as ``"component.port"`` or ``"port"``.

        A bare port name refers to a boundary port of this composite.  The
        channel delay defaults to the diagram's channel semantics.
        """
        src = self._parse_endpoint(source)
        dst = self._parse_endpoint(destination)
        if delayed is None:
            delayed = self._default_delay(src, dst)
        channel = connect(src.component, src.port, dst.component, dst.port,
                          name=name, delayed=delayed, initial_value=initial_value)
        return self.add_channel(channel)

    def _default_delay(self, source: ChannelEnd, destination: ChannelEnd) -> bool:
        # Boundary forwarding (parent input -> child input, child output ->
        # parent output) never introduces a delay on its own; only channels
        # between sibling sub-components follow the diagram default.
        if source.is_boundary() or destination.is_boundary():
            return False
        return self.delayed_channels_by_default

    def _parse_endpoint(self, text: str) -> ChannelEnd:
        if "." in text:
            component_name, port_name = text.split(".", 1)
            return ChannelEnd(component_name, port_name)
        return ChannelEnd(None, text)

    def _validate_endpoint(self, end: ChannelEnd, expect_source: bool) -> None:
        if end.is_boundary():
            port = self.port(end.port)
            # A boundary *input* acts as a source inside the composite and a
            # boundary *output* acts as a destination.
            if expect_source and not port.is_input():
                raise ModelError(
                    f"boundary port {port.name!r} of {self.name!r} is not an "
                    "input and cannot be a channel source")
            if not expect_source and not port.is_output():
                raise ModelError(
                    f"boundary port {port.name!r} of {self.name!r} is not an "
                    "output and cannot be a channel destination")
            return
        component = self.subcomponent(end.component or "")
        port = component.port(end.port)
        if expect_source and not port.is_output():
            raise ModelError(
                f"{end!r} is not an output port and cannot be a channel source")
        if not expect_source and not port.is_input():
            raise ModelError(
                f"{end!r} is not an input port and cannot be a channel destination")

    # -- graph queries -----------------------------------------------------------
    def channels_from(self, component_name: Optional[str]) -> List[Channel]:
        return [c for c in self._channels if c.source.component == component_name]

    def channels_to(self, component_name: Optional[str]) -> List[Channel]:
        return [c for c in self._channels
                if c.destination.component == component_name]

    def internal_channels(self) -> List[Channel]:
        """Channels between two sub-components (no boundary endpoint)."""
        return [c for c in self._channels
                if not c.source.is_boundary() and not c.destination.is_boundary()]

    def instantaneous_subgraph(self, _deps_cache: Optional[Dict[int, Any]] = None
                               ) -> Dict[str, Set[str]]:
        """Directed graph over sub-component names with instantaneous edges.

        An edge ``a -> b`` exists if a non-delayed channel leads from an
        output of *a* to an input port of *b* on which some output of *b*
        depends within the same tick.  Channels into ports that only feed
        internal state (e.g. the input of a unit-delay block) therefore do
        *not* create an ordering constraint -- this is exactly what lets a
        delay block break an otherwise instantaneous feedback loop, and what
        the causality check of the tool prototype verifies (paper Sec. 3.2).

        ``_deps_cache`` lets a whole compile pass (the flat-schedule
        compiler) share one dependency cache across every composite of the
        hierarchy; public callers can ignore it.
        """
        cache: Dict[int, Any] = {} if _deps_cache is None else _deps_cache
        graph: Dict[str, Set[str]] = {name: set() for name in self._subcomponents}
        feedthrough_inputs: Dict[str, Set[str]] = {}
        for name, component in self._subcomponents.items():
            inputs: Set[str] = set()
            for dep_inputs in _child_deps(component, cache).values():
                inputs |= dep_inputs
            feedthrough_inputs[name] = inputs
        for channel in self.internal_channels():
            if channel.delayed:
                continue
            source_name = channel.source.component
            dest_name = channel.destination.component
            if source_name is None or dest_name is None:
                continue
            if channel.destination.port in feedthrough_inputs.get(dest_name, set()):
                graph[source_name].add(dest_name)
        return graph

    def evaluation_order(self) -> List[str]:
        """Topological order of sub-components w.r.t. instantaneous channels.

        Raises :class:`CausalityError` if the instantaneous sub-graph has a
        cycle (the causality check of the AutoMoDe tool prototype,
        paper Sec. 3.2).  The order is cached with the execution plan and
        recomputed only when the structure token changes.
        """
        return list(self.execution_plan().order)

    def _compute_evaluation_order(self, _deps_cache: Optional[Dict[int, Any]]
                                  = None) -> List[str]:
        graph = self.instantaneous_subgraph(_deps_cache)
        in_degree: Dict[str, int] = {name: 0 for name in graph}
        for source, targets in graph.items():
            for target in targets:
                in_degree[target] += 1
        ready = sorted(name for name, degree in in_degree.items() if degree == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for target in sorted(graph[current]):
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    ready.append(target)
            ready.sort()
        if len(order) != len(graph):
            cycle_members = sorted(name for name, degree in in_degree.items()
                                   if degree > 0)
            raise CausalityError(
                f"instantaneous loop in {self.name!r} involving: "
                f"{', '.join(cycle_members)}")
        return order

    # -- execution plan ----------------------------------------------------------
    def structure_token(self) -> Any:
        # Iterative (worklist) so deep hierarchies don't hit the Python
        # recursion limit; the token value is identical to the recursive
        # definition (version, (child tokens...)).
        return subtree_structure_tokens(self)[id(self)]

    def invalidate_plan(self) -> None:
        """Drop the cached execution plan after direct structural surgery.

        The public mutation API (:meth:`add_subcomponent`, :meth:`add_channel`,
        :meth:`add_port`) invalidates automatically; code that edits the
        private channel or sub-component collections must call this.
        """
        self._structure_version += 1
        self._plan_cache = None

    def execution_plan(self, _token: Any = None,
                       _deps_cache: Optional[Dict[int, Any]] = None
                       ) -> ExecutionPlan:
        """The cached :class:`ExecutionPlan` for the current structure.

        ``_token`` and ``_deps_cache`` let one compile pass precompute the
        structure tokens and share a dependency cache across the whole
        hierarchy (see :mod:`repro.simulation.schedule_ir`); public callers
        can ignore both.
        """
        token = self.structure_token() if _token is None else _token
        plan = self._plan_cache
        hit = plan is not None and plan.token == token
        registry = current_registry()
        if registry is not None:
            registry.counter("compile.plan_cache.hit" if hit
                             else "compile.plan_cache.miss").inc()
        if not hit:
            plan = self._build_execution_plan(token, _deps_cache)
            self._plan_cache = plan
        return plan

    def _build_execution_plan(self, token: Any,
                              _deps_cache: Optional[Dict[int, Any]] = None
                              ) -> ExecutionPlan:
        cache: Dict[int, Any] = {} if _deps_cache is None else _deps_cache
        order = self._compute_evaluation_order(cache)
        propagate_by_source: Dict[Optional[str], List[Tuple[PortKey, PortKey]]] = {}
        for channel in self._channels:
            if channel.delayed:
                continue
            propagate_by_source.setdefault(channel.source.component, []).append(
                (channel.source.key, channel.destination.key))
        entries = []
        for sub_name in order:
            component = self._subcomponents[sub_name]
            has_feedthrough = any(_child_deps(component, cache).values())
            entries.append(PlanEntry(
                name=sub_name,
                input_names=tuple(component.input_names()),
                has_feedthrough=has_feedthrough,
                propagate=tuple(propagate_by_source.get(sub_name, ()))))
        delayed_seed = tuple(
            (channel.name, channel.destination.key, channel.initial_value)
            for channel in self._channels if channel.delayed)
        delayed_commit = tuple(
            (channel.name, channel.source.key)
            for channel in self._channels if channel.delayed)
        boundary_outputs = tuple(
            (channel.destination.port, channel.delayed, channel.name,
             channel.initial_value, channel.source.key)
            for channel in self._channels if channel.destination.is_boundary())
        return ExecutionPlan(
            token=token,
            order=tuple(order),
            entries=tuple(entries),
            boundary_propagate=tuple(propagate_by_source.get(None, ())),
            delayed_seed=delayed_seed,
            delayed_commit=delayed_commit,
            boundary_outputs=boundary_outputs)

    # -- behaviour ---------------------------------------------------------------
    def has_behavior(self) -> bool:
        # Iterative (worklist) over the subtree -- including through
        # transparent wrappers -- so deep hierarchies don't hit the Python
        # recursion limit; subclasses overriding has_behavior are consulted
        # directly.
        stack: List[Component] = list(self._subcomponents.values())
        while stack:
            node = stack.pop()
            wrapped = _wrapped_component(node, "has_behavior")
            if wrapped is not None:
                stack.append(wrapped)
            elif isinstance(node, CompositeComponent) \
                    and type(node).has_behavior is CompositeComponent.has_behavior:
                stack.extend(node._subcomponents.values())
            elif not node.has_behavior():
                return False
        return True

    def initial_state(self) -> Any:
        sub_states = {name: sub.initial_state()
                      for name, sub in self._subcomponents.items()}
        delayed = {channel.name: channel.initial_value
                   for channel in self._channels if channel.delayed}
        return {"subs": sub_states, "delayed": delayed}

    def react(self, inputs: Mapping[str, Any], state: Any,
              tick: int) -> Tuple[Dict[str, Any], Any]:
        if state is None:
            state = self.initial_state()
        sub_states: Dict[str, Any] = dict(state["subs"])
        delayed_buffers: Dict[str, Any] = dict(state["delayed"])

        # Values available at (component, port) destinations during this tick.
        port_values: Dict[Tuple[Optional[str], str], Any] = {}
        for name, value in inputs.items():
            port_values[(None, name)] = value

        # Seed destination ports fed by delayed channels with last tick's value.
        for channel in self._channels:
            if channel.delayed:
                port_values[channel.destination.key] = delayed_buffers.get(
                    channel.name, channel.initial_value)

        # Propagate instantaneous boundary-input forwarding before evaluation.
        self._propagate_instantaneous(port_values, sources_ready={None})

        seen_inputs: Dict[str, Dict[str, Any]] = {}
        order = self.evaluation_order()
        for sub_name in order:
            component = self._subcomponents[sub_name]
            sub_inputs = {
                port_name: port_values.get((sub_name, port_name), ABSENT)
                for port_name in component.input_names()
            }
            try:
                outputs, new_state = component.react(
                    sub_inputs, sub_states.get(sub_name), tick)
            except NotImplementedError as exc:
                raise SimulationError(
                    f"sub-component {sub_name!r} of {self.name!r} has no "
                    f"executable behaviour") from exc
            seen_inputs[sub_name] = sub_inputs
            sub_states[sub_name] = new_state
            for port_name, value in outputs.items():
                port_values[(sub_name, port_name)] = value
            # Forward along instantaneous channels leaving this component.
            self._propagate_instantaneous(port_values, sources_ready={sub_name})

        # Second pass: a non-feedthrough component (e.g. a unit delay closing
        # a feedback loop) may have been evaluated before its producers, so
        # its *state update* saw stale inputs even though its outputs were
        # correct.  Re-run its step from the original state with the final
        # input values; by construction its outputs cannot change.
        for sub_name in order:
            component = self._subcomponents[sub_name]
            has_feedthrough = any(component.instantaneous_dependencies().values())
            if has_feedthrough:
                continue
            final_inputs = {
                port_name: port_values.get((sub_name, port_name), ABSENT)
                for port_name in component.input_names()
            }
            if final_inputs != seen_inputs[sub_name]:
                _, corrected_state = component.react(
                    final_inputs, state["subs"].get(sub_name), tick)
                sub_states[sub_name] = corrected_state

        # Collect boundary outputs.
        boundary_outputs: Dict[str, Any] = {
            name: ABSENT for name in self.output_names()}
        for channel in self._channels:
            if channel.destination.is_boundary():
                value = self._source_value(channel, port_values, delayed_buffers)
                boundary_outputs[channel.destination.port] = value

        # Commit delayed channels for the next tick.
        for channel in self._channels:
            if channel.delayed:
                source_value = port_values.get(channel.source.key, ABSENT)
                delayed_buffers[channel.name] = source_value

        next_state = {"subs": sub_states, "delayed": delayed_buffers}
        return boundary_outputs, next_state

    def _source_value(self, channel: Channel,
                      port_values: Mapping[Tuple[Optional[str], str], Any],
                      delayed_buffers: Mapping[str, Any]) -> Any:
        if channel.delayed:
            return delayed_buffers.get(channel.name, channel.initial_value)
        return port_values.get(channel.source.key, ABSENT)

    def _propagate_instantaneous(
            self, port_values: Dict[Tuple[Optional[str], str], Any],
            sources_ready: Set[Optional[str]]) -> None:
        for channel in self._channels:
            if channel.delayed:
                continue
            if channel.source.component not in sources_ready:
                continue
            if channel.source.key in port_values:
                port_values[channel.destination.key] = port_values[channel.source.key]

    def instantaneous_dependencies(self) -> Dict[str, Set[str]]:
        """Input-to-output instantaneous dependencies through the network.

        Nested default-impl composites are resolved with an iterative
        post-order pass (:func:`_instantaneous_deps`), so deep hierarchies
        don't hit the Python recursion limit.
        """
        return _instantaneous_deps(self, {})

    def _compute_instantaneous_dependencies(
            self, cache: Dict[int, Dict[str, Set[str]]]) -> Dict[str, Set[str]]:
        # Build a port-level graph and do a reachability analysis from each
        # boundary input to the boundary outputs along instantaneous edges.
        edges: Dict[Tuple[Optional[str], str], Set[Tuple[Optional[str], str]]] = {}

        def add_edge(src: Tuple[Optional[str], str],
                     dst: Tuple[Optional[str], str]) -> None:
            edges.setdefault(src, set()).add(dst)

        for channel in self._channels:
            if channel.delayed:
                continue
            add_edge(channel.source.key, channel.destination.key)
        for sub_name, component in self._subcomponents.items():
            for out_name, in_names in _child_deps(component, cache).items():
                for in_name in in_names:
                    add_edge((sub_name, in_name), (sub_name, out_name))

        result: Dict[str, Set[str]] = {out: set() for out in self.output_names()}
        for in_port in self.input_names():
            reachable: Set[Tuple[Optional[str], str]] = set()
            frontier = [(None, in_port)]
            while frontier:
                node = frontier.pop()
                for succ in edges.get(node, ()):  # type: ignore[arg-type]
                    if succ not in reachable:
                        reachable.add(succ)
                        frontier.append(succ)
            for out_port in self.output_names():
                if (None, out_port) in reachable:
                    result[out_port].add(in_port)
        return result

    # -- traversal ----------------------------------------------------------------
    def walk(self) -> Iterable[Tuple[str, Component]]:
        """Yield (hierarchical path, component) for this subtree, pre-order."""
        yield self.name, self
        for sub in self._subcomponents.values():
            if isinstance(sub, CompositeComponent):
                for path, component in sub.walk():
                    yield f"{self.name}/{path}", component
            else:
                yield f"{self.name}/{sub.name}", sub

    def flatten_leaves(self) -> List[Component]:
        """All atomic (non-composite) components of the subtree."""
        leaves: List[Component] = []
        for _, component in self.walk():
            if not isinstance(component, CompositeComponent):
                leaves.append(component)
        return leaves

    def hierarchy_depth(self) -> int:
        """Depth of the composition hierarchy (a flat diagram has depth 1)."""
        depths = [1]
        for sub in self._subcomponents.values():
            if isinstance(sub, CompositeComponent):
                depths.append(1 + sub.hierarchy_depth())
        return max(depths)
