"""Exception hierarchy for the AutoMoDe reproduction.

Every error raised by the library derives from :class:`AutoModeError`, so
downstream users can catch a single base class.  More specific subclasses
exist for the major phases of the methodology: model construction, type
checking, clock calculus, causality analysis, simulation, transformation and
deployment.
"""

from __future__ import annotations


class AutoModeError(Exception):
    """Base class for every error raised by the library."""


class ModelError(AutoModeError):
    """A model is structurally malformed (dangling references, bad names...)."""


class NameConflictError(ModelError):
    """Two sibling elements were given the same name."""


class UnknownElementError(ModelError):
    """A referenced element (port, component, mode...) does not exist."""


class TypeCheckError(AutoModeError):
    """Static or dynamic type checking failed."""


class TypeMappingError(TypeCheckError):
    """A physical type could not be mapped to an implementation type."""


class QuantizationError(TypeCheckError):
    """A value cannot be represented by the chosen implementation type."""


class ClockError(AutoModeError):
    """Clock-calculus violation (incompatible clocks, bad sampling)."""


class ExpressionError(AutoModeError):
    """The base-language expression is malformed."""


class ExpressionParseError(ExpressionError):
    """Syntactic error while parsing a base-language expression."""


class ExpressionEvalError(ExpressionError):
    """Runtime error while evaluating a base-language expression."""


class CausalityError(AutoModeError):
    """An instantaneous loop was detected in a data-flow model."""


class SimulationError(AutoModeError):
    """The simulation engine encountered an inconsistent state."""


class ValidationError(AutoModeError):
    """A notation-specific well-formedness rule is violated."""


class TransformationError(AutoModeError):
    """A model transformation is not applicable or failed mid-way."""


class DeploymentError(AutoModeError):
    """Cluster-to-ECU/task deployment is infeasible or inconsistent."""


class SchedulingError(AutoModeError):
    """The OSEK-like scheduler could not honour the timing constraints."""


class CodeGenError(AutoModeError):
    """Operational-architecture (ASCET project) generation failed."""


class SerializationError(AutoModeError):
    """A model could not be serialized or deserialized."""
