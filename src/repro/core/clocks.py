"""Abstract clocks and the clock calculus (paper Sec. 2).

Every message flow in AutoMoDe is associated with an *abstract clock*: a
boolean expression that is true exactly at the ticks of the global discrete
time base at which a message is present on the flow.  Clocks describe either
a frequency (periodic case, e.g. ``every(2, true)``) or an event pattern
(aperiodic case).

The module implements

* :class:`Clock` and its concrete forms (:class:`BaseClock`,
  :class:`PeriodicClock`, :class:`SampledClock`, :class:`EventClock`),
* presence-pattern evaluation over a finite horizon, plus the incremental
  access API (:meth:`Clock.at`, :meth:`Clock.iter_pattern`,
  :class:`PatternCache`) used by the simulation engines so that per-tick
  presence queries do not rebuild whole patterns,
* clock compatibility and sub-clock relations used by the well-definedness
  checks of the LA level,
* the harmonic-rate reasoning (``slower_than`` / ``rate_ratio``) needed by
  the OSEK rate-transition rules and the clock-based clustering refinement.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Callable, Iterator, List, Optional, Sequence

from .errors import ClockError


class Clock:
    """Base class of abstract clocks (presence predicates over ticks)."""

    def pattern(self, length: int) -> List[bool]:
        """Presence pattern over the first *length* ticks of the base clock."""
        raise NotImplementedError

    def at(self, tick: int) -> bool:
        """Presence at a single tick of the base clock.

        Concrete clocks override :meth:`_at` with an O(1) predicate where
        possible; the fallback derives the answer from :meth:`pattern`.
        """
        if tick < 0:
            raise ClockError("clock presence is only defined for ticks >= 0")
        return self._at(tick)

    def _at(self, tick: int) -> bool:
        return self.pattern(tick + 1)[tick]

    def iter_pattern(self, start: int = 0) -> Iterator[bool]:
        """Infinite iterator of presence values from tick *start* onwards."""
        if start < 0:
            raise ClockError("clock presence is only defined for ticks >= 0")

        def generate() -> Iterator[bool]:
            tick = start
            while True:
                yield self._at(tick)
                tick += 1

        return generate()

    def cached(self, initial_length: int = 0) -> "PatternCache":
        """An incrementally materialized presence pattern for this clock."""
        return PatternCache(self, initial_length)

    def is_periodic(self) -> bool:
        """True if the clock has a fixed period w.r.t. the base clock."""
        return False

    @property
    def period(self) -> Optional[int]:
        """Period in base ticks for periodic clocks, ``None`` otherwise."""
        return None

    @property
    def phase(self) -> int:
        """Offset of the first present tick for periodic clocks."""
        return 0

    def expression(self) -> str:
        """The clock's boolean expression in the paper's concrete syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"Clock({self.expression()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Clock) and self.expression() == other.expression()

    def __hash__(self) -> int:
        return hash(self.expression())


class BaseClock(Clock):
    """The global base clock: a message at every tick (``true``)."""

    def pattern(self, length: int) -> List[bool]:
        return [True] * length

    def _at(self, tick: int) -> bool:
        return True

    def is_periodic(self) -> bool:
        return True

    @property
    def period(self) -> Optional[int]:
        return 1

    def expression(self) -> str:
        return "true"


class PeriodicClock(Clock):
    """The ``every(n, true)`` macro clock of the paper (Fig. 2).

    True on every *n*-th tick of the base clock, starting at tick *phase*.
    """

    def __init__(self, every: int, phase: int = 0):
        if every < 1:
            raise ClockError("every(n, true) requires n >= 1")
        if phase < 0 or phase >= every:
            raise ClockError("clock phase must satisfy 0 <= phase < period")
        self._every = every
        self._phase = phase

    def pattern(self, length: int) -> List[bool]:
        return [tick % self._every == self._phase for tick in range(length)]

    def _at(self, tick: int) -> bool:
        return tick % self._every == self._phase

    def is_periodic(self) -> bool:
        return True

    @property
    def period(self) -> Optional[int]:
        return self._every

    @property
    def phase(self) -> int:
        return self._phase

    def expression(self) -> str:
        if self._phase == 0:
            return f"every({self._every}, true)"
        return f"every({self._every}, true) @ {self._phase}"


class SampledClock(Clock):
    """A clock obtained by sampling a carrier clock with a boolean condition.

    This is the general ``when`` construct: the clock is present at a tick
    iff the carrier is present and the condition holds.  The condition is a
    finite boolean pattern or a predicate over the tick index (used to model
    data-dependent event patterns in tests and benchmarks).
    """

    def __init__(self, carrier: Clock, condition: Callable[[int], bool],
                 description: str = "cond"):
        self.carrier = carrier
        self.condition = condition
        self.description = description

    def pattern(self, length: int) -> List[bool]:
        base = self.carrier.pattern(length)
        return [base[tick] and bool(self.condition(tick)) for tick in range(length)]

    def _at(self, tick: int) -> bool:
        return self.carrier._at(tick) and bool(self.condition(tick))

    def expression(self) -> str:
        return f"({self.carrier.expression()}) when ({self.description})"


class EventClock(Clock):
    """An aperiodic clock given by an explicit set of ticks (event pattern)."""

    def __init__(self, ticks: Sequence[int], description: str = "events"):
        if any(t < 0 for t in ticks):
            raise ClockError("event ticks must be non-negative")
        self.ticks = sorted(set(int(t) for t in ticks))
        self._tick_set = frozenset(self.ticks)
        self.description = description

    def pattern(self, length: int) -> List[bool]:
        return [tick in self._tick_set for tick in range(length)]

    def _at(self, tick: int) -> bool:
        return tick in self._tick_set

    def expression(self) -> str:
        return f"event({self.description})"


class PatternCache:
    """Incrementally materialized presence pattern of one clock.

    The cache grows geometrically: :meth:`at` extends the stored pattern via
    :meth:`Clock.pattern` only when a tick beyond the current horizon is
    queried, so simulating *n* ticks costs O(log n) pattern constructions
    instead of the O(n) of calling ``pattern(tick + 1)`` once per tick.
    Patterns are deterministic, so one cache may be shared by many
    simulation runs of the same model (the compiled engine does this).
    """

    __slots__ = ("clock", "_pattern")

    def __init__(self, clock: Clock, initial_length: int = 0):
        self.clock = clock
        self._pattern: List[bool] = (clock.pattern(initial_length)
                                     if initial_length > 0 else [])

    def __len__(self) -> int:
        return len(self._pattern)

    def at(self, tick: int) -> bool:
        """Presence at *tick*, extending the materialized pattern on demand."""
        if tick < 0:
            raise ClockError("clock presence is only defined for ticks >= 0")
        pattern = self._pattern
        if tick >= len(pattern):
            new_length = max(tick + 1, 2 * len(pattern), 16)
            pattern = self.clock.pattern(new_length)
            self._pattern = pattern
        return pattern[tick]

    def prefix(self, length: int) -> List[bool]:
        """The presence pattern over the first *length* ticks."""
        if length > len(self._pattern):
            self.at(length - 1)
        return self._pattern[:length]

    def __repr__(self) -> str:
        return (f"PatternCache({self.clock.expression()}, "
                f"materialized={len(self._pattern)})")


#: The global discrete time base shared by all flows.
BASE_CLOCK = BaseClock()


def every(n: int, phase: int = 0) -> Clock:
    """Construct the paper's ``every(n, true)`` clock."""
    if n == 1 and phase == 0:
        return BASE_CLOCK
    return PeriodicClock(n, phase)


@dataclass(frozen=True)
class RateRelation:
    """Relation between two periodic clocks, as used for rate transitions."""

    faster: Clock
    slower: Clock
    ratio: int

    def describe(self) -> str:
        return (f"{self.slower.expression()} is {self.ratio}x slower than "
                f"{self.faster.expression()}")


def is_subclock(candidate: Clock, parent: Clock, horizon: int = 256) -> bool:
    """True if *candidate* is present only when *parent* is present.

    For periodic clocks the relation is decided exactly; for general clocks
    it is checked over a finite *horizon* (sound for the models used here,
    where event patterns are finite).
    """
    if candidate.is_periodic() and parent.is_periodic():
        cp, pp = candidate.period, parent.period
        if cp is None or pp is None:
            return False
        if cp % pp != 0:
            return False
        return (candidate.phase - parent.phase) % pp == 0
    cand = candidate.pattern(horizon)
    par = parent.pattern(horizon)
    return all((not c) or p for c, p in zip(cand, par))


def are_synchronous(first: Clock, second: Clock, horizon: int = 256) -> bool:
    """True if the two clocks are present at exactly the same ticks."""
    if first.is_periodic() and second.is_periodic():
        return first.period == second.period and first.phase == second.phase
    return first.pattern(horizon) == second.pattern(horizon)


def rate_ratio(fast: Clock, slow: Clock) -> int:
    """Integer ratio between two harmonic periodic clocks.

    Raises :class:`ClockError` if either clock is aperiodic or the periods
    are not harmonic (the LA-level clustering only supports harmonic rates,
    which matches the OSEK task-rate setting discussed in the paper).
    """
    if not (fast.is_periodic() and slow.is_periodic()):
        raise ClockError("rate_ratio is only defined for periodic clocks")
    fp, sp = fast.period, slow.period
    if fp is None or sp is None:
        raise ClockError("rate_ratio requires finite periods")
    if sp % fp != 0:
        raise ClockError(
            f"clocks with periods {fp} and {sp} are not harmonic")
    return sp // fp


def slower_than(first: Clock, second: Clock) -> bool:
    """True if *first* has a strictly larger period than *second*."""
    if not (first.is_periodic() and second.is_periodic()):
        raise ClockError("slower_than is only defined for periodic clocks")
    return (first.period or 0) > (second.period or 0)


def relate(first: Clock, second: Clock) -> RateRelation:
    """Classify two harmonic periodic clocks into a faster/slower relation."""
    if slower_than(first, second):
        return RateRelation(faster=second, slower=first,
                            ratio=rate_ratio(second, first))
    return RateRelation(faster=first, slower=second,
                        ratio=rate_ratio(first, second))


def hyperperiod(clocks: Sequence[Clock]) -> int:
    """Least common multiple of the periods of a set of periodic clocks."""
    result = 1
    for clock in clocks:
        if not clock.is_periodic() or clock.period is None:
            raise ClockError("hyperperiod requires periodic clocks")
        result = result * clock.period // gcd(result, clock.period)
    return result


def merge_patterns(patterns: Sequence[Sequence[bool]]) -> List[bool]:
    """Union of presence patterns (a message on any flow)."""
    if not patterns:
        return []
    length = max(len(p) for p in patterns)
    return [any(p[t] for p in patterns if t < len(p)) for t in range(length)]
