"""Abstract (platform independent) type system of the FAA/FDA levels.

On the abstract levels (FAA, FDA) AutoMoDe ports carry *abstract* types such
as ``int``, ``float``, ``bool`` or problem-specific enumerations; concrete
encodings are only chosen during refinement to the LA level (paper Sec. 3.3),
see :mod:`repro.core.impl_types`.

The module implements:

* the abstract type lattice (:class:`Type` and concrete subclasses),
* membership tests (:meth:`Type.contains`),
* assignability / subtyping (:func:`is_assignable`),
* least-upper-bound computation used by the DFD type inference
  (:func:`unify`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence, Tuple

from .errors import TypeCheckError
from .values import ABSENT, is_absent


class Type:
    """Base class of all abstract AutoMoDe types."""

    name: str = "any"

    def contains(self, value: Any) -> bool:
        """Return True if *value* is a legal message of this type."""
        raise NotImplementedError

    def default(self) -> Any:
        """A canonical default value of the type (used for delay initials)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and repr(self) == repr(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, repr(self)))


class AnyType(Type):
    """Top of the lattice; used for dynamically typed DFD ports."""

    name = "any"

    def contains(self, value: Any) -> bool:
        return True

    def default(self) -> Any:
        return 0


class BoolType(Type):
    """Boolean messages (also the type of clock expressions)."""

    name = "bool"

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)

    def default(self) -> Any:
        return False


class IntType(Type):
    """Unbounded abstract integers, optionally range restricted."""

    def __init__(self, low: Optional[int] = None, high: Optional[int] = None):
        self.low = low
        self.high = high

    @property
    def name(self) -> str:  # type: ignore[override]
        if self.low is None and self.high is None:
            return "int"
        return f"int[{self.low}..{self.high}]"

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool) or not isinstance(value, int):
            return False
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def default(self) -> Any:
        if self.low is not None and self.low > 0:
            return self.low
        if self.high is not None and self.high < 0:
            return self.high
        return 0


class FloatType(Type):
    """Abstract real-valued messages (physical quantities)."""

    def __init__(self, low: Optional[float] = None, high: Optional[float] = None):
        self.low = low
        self.high = high

    @property
    def name(self) -> str:  # type: ignore[override]
        if self.low is None and self.high is None:
            return "float"
        return f"float[{self.low}..{self.high}]"

    def contains(self, value: Any) -> bool:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return False
        if math.isnan(float(value)):
            return False
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def default(self) -> Any:
        if self.low is not None and self.low > 0:
            return float(self.low)
        if self.high is not None and self.high < 0:
            return float(self.high)
        return 0.0


class EnumType(Type):
    """Problem-specific enumeration (e.g. LockStatus, CrashStatus)."""

    def __init__(self, name: str, literals: Sequence[str]):
        if not literals:
            raise TypeCheckError(f"enumeration {name!r} needs at least one literal")
        if len(set(literals)) != len(literals):
            raise TypeCheckError(f"enumeration {name!r} has duplicate literals")
        self._name = name
        self.literals: Tuple[str, ...] = tuple(literals)

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._name

    def contains(self, value: Any) -> bool:
        return isinstance(value, str) and value in self.literals

    def default(self) -> Any:
        return self.literals[0]

    def ordinal(self, literal: str) -> int:
        """Integer encoding of *literal* (used by implementation mapping)."""
        try:
            return self.literals.index(literal)
        except ValueError as exc:
            raise TypeCheckError(
                f"{literal!r} is not a literal of enumeration {self._name!r}"
            ) from exc

    def __repr__(self) -> str:
        return f"enum {self._name}{{{', '.join(self.literals)}}}"


class StructType(Type):
    """Record of named, typed fields (composite signals, frames)."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, Type]]):
        self._name = name
        self.fields: Tuple[Tuple[str, Type], ...] = tuple(fields)
        names = [f for f, _ in self.fields]
        if len(set(names)) != len(names):
            raise TypeCheckError(f"struct {name!r} has duplicate field names")

    @property
    def name(self) -> str:  # type: ignore[override]
        return self._name

    def field_type(self, field_name: str) -> Type:
        for fname, ftype in self.fields:
            if fname == field_name:
                return ftype
        raise TypeCheckError(f"struct {self._name!r} has no field {field_name!r}")

    def contains(self, value: Any) -> bool:
        if not isinstance(value, dict):
            return False
        if set(value.keys()) != {fname for fname, _ in self.fields}:
            return False
        return all(ftype.contains(value[fname]) for fname, ftype in self.fields)

    def default(self) -> Any:
        return {fname: ftype.default() for fname, ftype in self.fields}

    def __repr__(self) -> str:
        inner = ", ".join(f"{fname}: {ftype!r}" for fname, ftype in self.fields)
        return f"struct {self._name}{{{inner}}}"


#: Shared singletons for the unparameterised types.
ANY = AnyType()
BOOL = BoolType()
INT = IntType()
FLOAT = FloatType()


def is_assignable(source: Type, target: Type) -> bool:
    """Return True if a message of type *source* may flow into *target*.

    The relation is the natural subtyping on the abstract lattice:
    everything is assignable to ``any``; ``bool`` and range-restricted
    integers are assignable to wider integers; integers are assignable to
    floats; enums and structs are assignable only to equal types (or ``any``).
    """
    if isinstance(target, AnyType):
        return True
    if isinstance(source, AnyType):
        # A dynamically typed output may feed anything; checked at runtime.
        return True
    if isinstance(source, BoolType):
        return isinstance(target, BoolType)
    if isinstance(source, IntType):
        if isinstance(target, FloatType):
            return _range_within(source.low, source.high, target.low, target.high)
        if isinstance(target, IntType):
            return _range_within(source.low, source.high, target.low, target.high)
        return False
    if isinstance(source, FloatType):
        return isinstance(target, FloatType) and _range_within(
            source.low, source.high, target.low, target.high)
    if isinstance(source, EnumType):
        return isinstance(target, EnumType) and source == target
    if isinstance(source, StructType):
        return isinstance(target, StructType) and source == target
    return False


def _range_within(src_low, src_high, dst_low, dst_high) -> bool:
    """True if [src_low, src_high] is inside [dst_low, dst_high] (None = inf)."""
    if dst_low is not None and (src_low is None or src_low < dst_low):
        return False
    if dst_high is not None and (src_high is None or src_high > dst_high):
        return False
    return True


def unify(first: Type, second: Type) -> Type:
    """Least upper bound of two abstract types.

    Used by the DFD type inference: the type of a dynamically typed port is
    the unification of the types flowing into it.  Raises
    :class:`TypeCheckError` if the types have no common supertype other than
    ``any`` being required on one side.
    """
    if first == second:
        return first
    if isinstance(first, AnyType):
        return second
    if isinstance(second, AnyType):
        return first
    if isinstance(first, BoolType) and isinstance(second, BoolType):
        return BOOL
    numeric = (IntType, FloatType)
    if isinstance(first, numeric) and isinstance(second, numeric):
        low = _merge_bound(first.low, second.low, min)
        high = _merge_bound(first.high, second.high, max)
        if isinstance(first, FloatType) or isinstance(second, FloatType):
            return FloatType(low, high)
        return IntType(low, high)
    raise TypeCheckError(f"cannot unify types {first!r} and {second!r}")


def _merge_bound(a, b, pick):
    if a is None or b is None:
        return None
    return pick(a, b)


def check_value(value: Any, expected: Type, context: str = "") -> None:
    """Raise :class:`TypeCheckError` if *value* is present and ill-typed."""
    if is_absent(value):
        return
    if not expected.contains(value):
        where = f" on {context}" if context else ""
        raise TypeCheckError(
            f"value {value!r} is not a member of type {expected!r}{where}")


def infer_type(value: Any) -> Type:
    """Infer the most specific abstract type of a concrete message value."""
    if is_absent(value):
        return ANY
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return IntType(value, value)
    if isinstance(value, float):
        return FloatType(value, value)
    if isinstance(value, str):
        return EnumType("anonymous", [value])
    if isinstance(value, dict):
        return StructType("anonymous",
                          [(k, infer_type(v)) for k, v in sorted(value.items())])
    raise TypeCheckError(f"cannot infer an AutoMoDe type for value {value!r}")


@dataclass
class TypeEnvironment:
    """Named type definitions shared by a model (enums, structs, aliases)."""

    definitions: dict = field(default_factory=dict)

    def define(self, name: str, typ: Type) -> Type:
        if name in self.definitions:
            raise TypeCheckError(f"type {name!r} is already defined")
        self.definitions[name] = typ
        return typ

    def lookup(self, name: str) -> Type:
        try:
            return self.definitions[name]
        except KeyError as exc:
            raise TypeCheckError(f"unknown type {name!r}") from exc

    def define_enum(self, name: str, literals: Iterable[str]) -> EnumType:
        return self.define(name, EnumType(name, list(literals)))  # type: ignore[return-value]

    def names(self):
        return sorted(self.definitions)
