"""Core metamodel of the AutoMoDe reproduction.

This package implements the operational model of paper Sec. 2 (messages,
absence, discrete time, abstract clocks), the base expression language, the
abstract and implementation type systems, and the component/port/channel
metamodel that all notations (SSD, DFD, MTD, STD, CCD) are views of.
"""

from .channels import Channel, ChannelEnd, connect
from .clocks import (BASE_CLOCK, BaseClock, Clock, EventClock, PeriodicClock,
                     RateRelation, SampledClock, are_synchronous, every,
                     hyperperiod, is_subclock, rate_ratio, relate, slower_than)
from .components import (Component, CompositeComponent, ExpressionComponent,
                         FunctionComponent, StatefulComponent)
from .errors import (AutoModeError, CausalityError, ClockError, CodeGenError,
                     DeploymentError, ExpressionError, ExpressionEvalError,
                     ExpressionParseError, ModelError, NameConflictError,
                     QuantizationError, SchedulingError, SerializationError,
                     SimulationError, TransformationError, TypeCheckError,
                     TypeMappingError, UnknownElementError, ValidationError)
from .expr_compile import CompiledExpression, compile_expression
from .expr_eval import ExpressionEvaluator, evaluate
from .expr_parser import parse_expression
from .expressions import (BinaryOp, Call, Conditional, Expression, Literal,
                          Present, UnaryOp, Variable)
from .impl_types import (BOOL8, INT8, INT16, INT32, UINT8, UINT16, UINT32,
                         FixedPointType, ImplementationMapping,
                         ImplementationType, ImplEnumType, MachineIntType,
                         choose_implementation_type)
from .model import (AbstractionLevel, AutoModeModel, LEVEL_ORDER,
                    TransformationRecord, is_more_abstract)
from .ports import Port, PortDirection, input_port, output_port
from .types import (ANY, BOOL, FLOAT, INT, AnyType, BoolType, EnumType,
                    FloatType, IntType, StructType, Type, TypeEnvironment,
                    check_value, infer_type, is_assignable, unify)
from .validation import (Issue, Rule, RuleSet, Severity, ValidationReport,
                         merge_reports)
from .values import ABSENT, Stream, every as every_pattern, is_absent, is_present

__all__ = [
    "ABSENT", "ANY", "AbstractionLevel", "AnyType", "AutoModeError",
    "AutoModeModel", "BASE_CLOCK", "BOOL", "BOOL8", "BaseClock", "BinaryOp",
    "BoolType", "Call", "CausalityError", "Channel", "ChannelEnd", "Clock",
    "ClockError", "CodeGenError", "CompiledExpression", "Component",
    "CompositeComponent", "Conditional", "DeploymentError", "EnumType", "EventClock", "Expression",
    "ExpressionComponent", "ExpressionError", "ExpressionEvalError",
    "ExpressionEvaluator", "ExpressionParseError", "FLOAT", "FixedPointType",
    "FloatType", "FunctionComponent", "INT", "INT16", "INT32", "INT8",
    "ImplEnumType", "ImplementationMapping", "ImplementationType", "IntType",
    "Issue", "LEVEL_ORDER", "Literal", "MachineIntType", "ModelError",
    "NameConflictError", "PeriodicClock", "Port", "PortDirection", "Present",
    "QuantizationError", "RateRelation", "Rule", "RuleSet", "SampledClock",
    "SchedulingError", "SerializationError", "Severity", "SimulationError",
    "StatefulComponent", "Stream", "StructType", "TransformationError",
    "TransformationRecord", "Type", "TypeCheckError", "TypeEnvironment",
    "TypeMappingError", "UINT16", "UINT32", "UINT8", "UnaryOp",
    "UnknownElementError", "ValidationError", "ValidationReport", "Variable",
    "are_synchronous", "check_value", "choose_implementation_type",
    "compile_expression", "connect", "evaluate", "every", "every_pattern", "hyperperiod", "infer_type",
    "input_port", "is_absent", "is_assignable", "is_more_abstract",
    "is_present", "is_subclock", "merge_reports", "output_port",
    "parse_expression", "rate_ratio", "relate", "slower_than", "unify",
]
