"""The coherent AutoMoDe meta-model container.

The paper stresses that the views offered at the different abstraction
levels "are abstracted from the coherent AutoMoDe meta-model of the system.
Thus, consistency between abstraction levels is guaranteed" (Sec. 3).  The
:class:`AutoModeModel` class is this container: it owns the shared type
environment, the per-level architecture descriptions, and the audit trail of
transformation steps that were applied to derive one level from another.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .components import Component
from .errors import ModelError, UnknownElementError
from .types import TypeEnvironment


class AbstractionLevel(enum.Enum):
    """The system abstraction levels of AutoMoDe (paper Fig. 3)."""

    FAA = "Functional Analysis Architecture"
    FDA = "Functional Design Architecture"
    LA = "Logical Architecture"
    TA = "Technical Architecture"
    OA = "Operational Architecture"

    @property
    def short_name(self) -> str:
        return self.name

    def __str__(self) -> str:
        return f"{self.name} ({self.value})"


#: Design-process ordering of the levels, most abstract first.
LEVEL_ORDER: List[AbstractionLevel] = [
    AbstractionLevel.FAA,
    AbstractionLevel.FDA,
    AbstractionLevel.LA,
    AbstractionLevel.TA,
    AbstractionLevel.OA,
]


def is_more_abstract(first: AbstractionLevel, second: AbstractionLevel) -> bool:
    """True if *first* is a more abstract level than *second*."""
    return LEVEL_ORDER.index(first) < LEVEL_ORDER.index(second)


@dataclass
class TransformationRecord:
    """Audit-trail entry: one applied transformation step."""

    name: str
    kind: str  # "reengineering" | "refactoring" | "refinement"
    source_level: Optional[AbstractionLevel]
    target_level: Optional[AbstractionLevel]
    details: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        src = self.source_level.short_name if self.source_level else "-"
        dst = self.target_level.short_name if self.target_level else "-"
        return f"{self.kind}: {self.name} ({src} -> {dst})"


class AutoModeModel:
    """A complete AutoMoDe system model spanning several abstraction levels."""

    def __init__(self, name: str, description: str = ""):
        if not name:
            raise ModelError("a model needs a non-empty name")
        self.name = name
        self.description = description
        self.types = TypeEnvironment()
        self._levels: Dict[AbstractionLevel, Any] = {}
        self.history: List[TransformationRecord] = []
        self.metadata: Dict[str, Any] = {}

    # -- level management -----------------------------------------------------
    def set_level(self, level: AbstractionLevel, architecture: Any) -> Any:
        """Attach the architecture description for *level*."""
        self._levels[level] = architecture
        return architecture

    def level(self, level: AbstractionLevel) -> Any:
        try:
            return self._levels[level]
        except KeyError as exc:
            raise UnknownElementError(
                f"model {self.name!r} has no {level.short_name} description") from exc

    def has_level(self, level: AbstractionLevel) -> bool:
        return level in self._levels

    def defined_levels(self) -> List[AbstractionLevel]:
        return [lvl for lvl in LEVEL_ORDER if lvl in self._levels]

    def most_concrete_level(self) -> Optional[AbstractionLevel]:
        defined = self.defined_levels()
        return defined[-1] if defined else None

    # -- history ---------------------------------------------------------------
    def record(self, name: str, kind: str,
               source_level: Optional[AbstractionLevel] = None,
               target_level: Optional[AbstractionLevel] = None,
               **details: Any) -> TransformationRecord:
        """Append a transformation step to the audit trail."""
        entry = TransformationRecord(name, kind, source_level, target_level,
                                     dict(details))
        self.history.append(entry)
        return entry

    def history_of_kind(self, kind: str) -> List[TransformationRecord]:
        return [entry for entry in self.history if entry.kind == kind]

    # -- reporting --------------------------------------------------------------
    def describe(self) -> str:
        lines = [f"AutoMoDe model {self.name!r}"]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append("  abstraction levels:")
        for level in LEVEL_ORDER:
            marker = "x" if level in self._levels else " "
            detail = ""
            if level in self._levels:
                arch = self._levels[level]
                arch_name = getattr(arch, "name", type(arch).__name__)
                detail = f" -> {arch_name}"
            lines.append(f"    [{marker}] {level}{detail}")
        if self.history:
            lines.append("  transformation history:")
            lines.extend(f"    - {entry.describe()}" for entry in self.history)
        return "\n".join(lines)

    def __repr__(self) -> str:
        levels = ", ".join(lvl.short_name for lvl in self.defined_levels())
        return f"AutoModeModel({self.name!r}, levels=[{levels}])"


def find_components(root: Component, predicate) -> List[Component]:
    """All components in the hierarchy below *root* satisfying *predicate*."""
    from .components import CompositeComponent  # local import to avoid cycle

    found: List[Component] = []
    if isinstance(root, CompositeComponent):
        for _, component in root.walk():
            if predicate(component):
                found.append(component)
    elif predicate(root):
        found.append(root)
    return found
