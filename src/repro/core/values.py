"""Message values and the absence ("tick") value of the operational model.

The AutoMoDe operational model (paper Sec. 2) is message based and
time synchronous: at every tick of the global discrete time base a channel
either carries an explicit value or the distinguished "-" value indicating
the absence of a message.  This module provides

* :data:`ABSENT` -- the singleton absence value,
* :func:`is_present` / :func:`is_absent` -- presence predicates,
* :class:`Stream` -- a finite recorded stream of possibly-absent messages,
  the unit of observation used by traces, clocks and equivalence checks.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence


class _Absent:
    """Singleton type of the absence value (the paper's "-" / tick)."""

    _instance: Optional["_Absent"] = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "-"

    def __bool__(self) -> bool:
        return False

    def __copy__(self) -> "_Absent":
        return self

    def __deepcopy__(self, memo: dict) -> "_Absent":
        return self

    def __reduce__(self):
        return (_Absent, ())


#: The absence value.  A channel carrying ``ABSENT`` at a tick transports no
#: message at that tick.
ABSENT = _Absent()


def is_present(value: Any) -> bool:
    """Return ``True`` iff *value* is an actual message (not ``ABSENT``)."""
    return value is not ABSENT


def is_absent(value: Any) -> bool:
    """Return ``True`` iff *value* is the absence value."""
    return value is ABSENT


def present_or(value: Any, default: Any) -> Any:
    """Return *value* if present, otherwise *default*.

    This is the behaviour of the ``default`` operator commonly paired with
    ``when`` in synchronous languages.
    """
    return value if is_present(value) else default


class Stream:
    """A finite stream of messages observed on one channel.

    A stream records, for each tick ``0..n-1`` of the global time base, the
    value carried by a channel at that tick (possibly :data:`ABSENT`).  It is
    the basic object of the operational semantics: simulation traces are
    per-channel streams, clocks are presence patterns of streams, and model
    equivalence is stream equality.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Iterable[Any]] = None):
        self._values: List[Any] = list(values) if values is not None else []

    # -- construction -----------------------------------------------------
    @classmethod
    def present(cls, values: Iterable[Any]) -> "Stream":
        """Build a stream in which every tick carries a message."""
        return cls(values)

    @classmethod
    def absent(cls, length: int) -> "Stream":
        """Build a stream of *length* ticks carrying no message at all."""
        return cls([ABSENT] * length)

    @classmethod
    def periodic(cls, values: Iterable[Any], period: int,
                 phase: int = 0, length: Optional[int] = None) -> "Stream":
        """Spread *values* on every ``period``-th tick starting at *phase*.

        All other ticks are absent.  If *length* is ``None`` the stream ends
        right after the last value.
        """
        if period < 1:
            raise ValueError("period must be >= 1")
        vals = list(values)
        total = length if length is not None else phase + period * len(vals)
        out = [ABSENT] * total
        for index, value in enumerate(vals):
            tick = phase + index * period
            if tick < total:
                out[tick] = value
        return cls(out)

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Stream(self._values[index])
        return self._values[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Stream):
            return self._values == other._values
        if isinstance(other, (list, tuple)):
            return self._values == list(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - streams are not hashable
        raise TypeError("Stream objects are mutable and unhashable")

    def __repr__(self) -> str:
        shown = ", ".join(repr(v) for v in self._values[:12])
        suffix = ", ..." if len(self._values) > 12 else ""
        return f"Stream([{shown}{suffix}])"

    # -- mutation ----------------------------------------------------------
    def append(self, value: Any) -> None:
        """Record the value carried at the next tick."""
        self._values.append(value)

    def extend(self, values: Iterable[Any]) -> None:
        """Record several consecutive ticks."""
        self._values.extend(values)

    # -- observation -------------------------------------------------------
    def values(self) -> List[Any]:
        """Return the raw list of per-tick values (including ``ABSENT``)."""
        return list(self._values)

    def present_values(self) -> List[Any]:
        """Return only the actually transported messages, in tick order."""
        return [v for v in self._values if is_present(v)]

    def presence_pattern(self) -> List[bool]:
        """Return the boolean presence pattern (the stream's clock)."""
        return [is_present(v) for v in self._values]

    def presence_count(self) -> int:
        """Number of ticks at which a message is present."""
        return sum(1 for v in self._values if is_present(v))

    def last_present(self, default: Any = ABSENT) -> Any:
        """Return the most recent message, or *default* if there is none."""
        for value in reversed(self._values):
            if is_present(value):
                return value
        return default

    # -- stream operators (paper Sec. 2) ------------------------------------
    def delayed(self, initial: Any = ABSENT, amount: int = 1) -> "Stream":
        """Return this stream delayed by *amount* ticks.

        The first *amount* ticks of the result carry *initial*; this is the
        unit delay introduced by SSD channel composition (Sec. 3.1) when
        ``amount`` is 1.
        """
        if amount < 0:
            raise ValueError("delay amount must be non-negative")
        if amount == 0:
            return Stream(self._values)
        prefix = [initial] * amount
        return Stream((prefix + self._values)[: len(self._values)])

    def when(self, clock_pattern: Sequence[bool]) -> "Stream":
        """Sample this stream by a boolean clock (the ``when`` operator).

        At ticks where *clock_pattern* is ``True`` the original value is kept,
        at all other ticks the result is absent.  The pattern is truncated or
        treated as ``False`` beyond its length.
        """
        out = []
        for index, value in enumerate(self._values):
            keep = index < len(clock_pattern) and bool(clock_pattern[index])
            out.append(value if keep else ABSENT)
        return Stream(out)

    def hold(self, initial: Any = ABSENT) -> "Stream":
        """Sample-and-hold: replace absences by the last present value."""
        out = []
        last = initial
        for value in self._values:
            if is_present(value):
                last = value
            out.append(last)
        return Stream(out)

    def map(self, func: Callable[[Any], Any]) -> "Stream":
        """Apply *func* to present values; absences are propagated."""
        return Stream([func(v) if is_present(v) else ABSENT for v in self._values])

    def zip_with(self, other: "Stream", func: Callable[[Any, Any], Any],
                 strict_presence: bool = True) -> "Stream":
        """Combine two streams tick-wise.

        With ``strict_presence`` the result is absent whenever either operand
        is absent (the usual synchronous product); otherwise *func* receives
        ``ABSENT`` values unchanged.
        """
        length = max(len(self), len(other))
        out = []
        for tick in range(length):
            a = self._values[tick] if tick < len(self) else ABSENT
            b = other._values[tick] if tick < len(other) else ABSENT
            if strict_presence and (is_absent(a) or is_absent(b)):
                out.append(ABSENT)
            else:
                out.append(func(a, b))
        return Stream(out)


def every(n: int, length: int, phase: int = 0) -> List[bool]:
    """The paper's ``every(n, true)`` macro as a finite presence pattern.

    Returns a boolean pattern of *length* ticks that is ``True`` on every
    ``n``-th tick of the base clock, starting at tick *phase*.
    """
    if n < 1:
        raise ValueError("every(n, true) requires n >= 1")
    if length < 0:
        raise ValueError("length must be non-negative")
    return [(tick >= phase and (tick - phase) % n == 0) for tick in range(length)]
