"""Generic validation framework shared by all notations and levels.

Each notation (SSD, DFD, MTD, STD, CCD) and each abstraction level defines
well-formedness rules.  Rules report :class:`Issue` objects with a severity;
a :class:`ValidationReport` collects them and decides whether a model is
acceptable.  The same framework carries the FAA conflict rules and the
LA-level well-definedness conditions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from .errors import ValidationError


class Severity(enum.Enum):
    """How serious a validation finding is."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass
class Issue:
    """One validation finding."""

    rule: str
    severity: Severity
    message: str
    element: str = ""
    suggestion: str = ""

    def describe(self) -> str:
        where = f" [{self.element}]" if self.element else ""
        hint = f" -- suggestion: {self.suggestion}" if self.suggestion else ""
        return f"{self.severity}: ({self.rule}){where} {self.message}{hint}"


@dataclass
class ValidationReport:
    """All findings produced by validating one model."""

    subject: str
    issues: List[Issue] = field(default_factory=list)

    def add(self, rule: str, severity: Severity, message: str,
            element: str = "", suggestion: str = "") -> Issue:
        issue = Issue(rule, severity, message, element, suggestion)
        self.issues.append(issue)
        return issue

    def info(self, rule: str, message: str, element: str = "",
             suggestion: str = "") -> Issue:
        return self.add(rule, Severity.INFO, message, element, suggestion)

    def warning(self, rule: str, message: str, element: str = "",
                suggestion: str = "") -> Issue:
        return self.add(rule, Severity.WARNING, message, element, suggestion)

    def error(self, rule: str, message: str, element: str = "",
              suggestion: str = "") -> Issue:
        return self.add(rule, Severity.ERROR, message, element, suggestion)

    def extend(self, other: "ValidationReport") -> None:
        self.issues.extend(other.issues)

    # -- queries ---------------------------------------------------------------
    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    def warnings(self) -> List[Issue]:
        return [i for i in self.issues if i.severity is Severity.WARNING]

    def infos(self) -> List[Issue]:
        return [i for i in self.issues if i.severity is Severity.INFO]

    def is_valid(self) -> bool:
        """True if no error-level issues were found."""
        return not self.errors()

    def by_rule(self, rule: str) -> List[Issue]:
        return [i for i in self.issues if i.rule == rule]

    def raise_on_errors(self) -> None:
        """Raise :class:`ValidationError` summarising all errors, if any."""
        errors = self.errors()
        if errors:
            details = "; ".join(issue.describe() for issue in errors)
            raise ValidationError(
                f"{self.subject}: {len(errors)} validation error(s): {details}")

    def summary(self) -> str:
        return (f"{self.subject}: {len(self.errors())} error(s), "
                f"{len(self.warnings())} warning(s), {len(self.infos())} info(s)")

    def describe(self) -> str:
        lines = [self.summary()]
        lines.extend("  " + issue.describe() for issue in self.issues)
        return "\n".join(lines)


#: Signature of a validation rule: takes the model, appends to the report.
Rule = Callable[[object, ValidationReport], None]


class RuleSet:
    """A named collection of validation rules applied together."""

    def __init__(self, name: str):
        self.name = name
        self._rules: List[tuple] = []

    def rule(self, rule_id: str) -> Callable[[Rule], Rule]:
        """Decorator registering a rule function under *rule_id*."""
        def decorator(func: Rule) -> Rule:
            self.add(rule_id, func)
            return func
        return decorator

    def add(self, rule_id: str, func: Rule) -> None:
        if any(existing_id == rule_id for existing_id, _ in self._rules):
            raise ValidationError(
                f"rule set {self.name!r} already has a rule {rule_id!r}")
        self._rules.append((rule_id, func))

    def rule_ids(self) -> List[str]:
        return [rule_id for rule_id, _ in self._rules]

    def apply(self, model: object, subject: Optional[str] = None,
              report: Optional[ValidationReport] = None) -> ValidationReport:
        """Run every rule of the set against *model*."""
        if report is None:
            report = ValidationReport(subject or getattr(model, "name", str(model)))
        for _, func in self._rules:
            func(model, report)
        return report

    def __len__(self) -> int:
        return len(self._rules)


def merge_reports(subject: str,
                  reports: Iterable[ValidationReport]) -> ValidationReport:
    """Combine several reports into one."""
    merged = ValidationReport(subject)
    for report in reports:
        merged.extend(report)
    return merged
