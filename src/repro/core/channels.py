"""Channels: directed message connections between ports.

Channels are the "logical channels" of the operational model (paper Sec. 2).
A channel connects exactly one source port to one destination port and, per
tick, transports either a message or the absence value.

Two communication semantics exist in AutoMoDe:

* **delayed** -- SSD-level channels introduce a unit message delay
  ("each SSD-level channel introduces a message delay", Sec. 3.1); the value
  read at tick *t* is the value written at tick *t-1*,
* **instantaneous** -- DFD-level channels forward the value within the same
  tick ("the default semantics of DFD communication is instantaneous",
  Sec. 3.2); instantaneous cycles are rejected by the causality check.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

from .errors import ModelError
from .values import ABSENT


class ChannelEnd:
    """One endpoint of a channel: a component/port pair.

    ``component`` is ``None`` when the endpoint refers to a port of the
    *enclosing* composite component (a boundary connection).
    """

    __slots__ = ("component", "port")

    def __init__(self, component: Optional[str], port: str):
        self.component = component
        self.port = port

    @property
    def key(self) -> Tuple[Optional[str], str]:
        return (self.component, self.port)

    def is_boundary(self) -> bool:
        """True if the endpoint is a port of the enclosing composite."""
        return self.component is None

    def __repr__(self) -> str:
        if self.component is None:
            return f"self.{self.port}"
        return f"{self.component}.{self.port}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChannelEnd) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)


class Channel:
    """A directed connection from a source endpoint to a destination endpoint."""

    _counter = itertools.count(1)

    def __init__(self, source: ChannelEnd, destination: ChannelEnd,
                 name: Optional[str] = None, delayed: bool = False,
                 initial_value: Any = ABSENT):
        self.source = source
        self.destination = destination
        self.name = name or f"ch{next(self._counter)}"
        self.delayed = delayed
        self.initial_value = initial_value

    def describe(self) -> str:
        kind = "delayed" if self.delayed else "instantaneous"
        return f"{self.name}: {self.source!r} -> {self.destination!r} [{kind}]"

    def __repr__(self) -> str:
        return f"Channel({self.describe()})"


def connect(source_component: Optional[str], source_port: str,
            destination_component: Optional[str], destination_port: str,
            name: Optional[str] = None, delayed: bool = False,
            initial_value: Any = ABSENT) -> Channel:
    """Construct a channel between two (component, port) endpoints.

    Use ``None`` for the component to refer to a boundary port of the
    enclosing composite.  A channel may not connect a boundary input directly
    to a boundary output of the same kind of endpoint in a direction that
    makes no sense; structural validation happens when the channel is added
    to a composite component.
    """
    source = ChannelEnd(source_component, source_port)
    destination = ChannelEnd(destination_component, destination_port)
    if source == destination:
        raise ModelError(f"channel would connect {source!r} to itself")
    return Channel(source, destination, name=name, delayed=delayed,
                   initial_value=initial_value)
