"""Lane-masked batch compilation of base-language ASTs over NumPy rows.

The scalar compiler (:mod:`repro.core.expr_compile`) lowers an AST to a
closure ``environment -> value`` evaluated once per tick per scenario.
This module lowers the *same* AST to a closure
``(environment, mask) -> row`` that evaluates one tick of a whole scenario
battery at once: the environment maps names to ``(S,)`` object ndarrays
(one lane per scenario), *mask* is a boolean ``(S,)`` array selecting the
lanes to evaluate, and the result is an ``(S,)`` object ndarray.

**Why object dtype.**  Lanes hold ordinary Python objects -- unbounded
ints, genuine bools, floats, strings and the :data:`~repro.core.values.ABSENT`
singleton -- and the kernels are :func:`numpy.frompyfunc` liftings of the
exact per-element operations of the scalar engine.  This sidesteps the
classic scalar-vs-array divergences by construction: no int64 wraparound
(Python ints stay Python ints), no NumPy true-division replacing the base
language's int-exact division, no ``numpy.bool_`` leaking into traces.

**Lane discipline.**  Out-of-mask lanes are never evaluated: binary/call
kernels are applied through fancy indexing on the mask, ``and``/``or``
evaluate their right operand only on lanes whose left operand is present
and truthy/falsy (the short-circuit rule, vectorized), and conditionals
evaluate each branch only on the lanes its condition selects.  A lane that
would not raise under the scalar engine therefore cannot raise here; the
values of out-of-mask lanes in a returned row are unspecified.

**Error discipline.**  A compiled batch expression raises *whenever any
masked lane would raise* under the scalar engine (the kernels run the same
per-element code, so this holds by construction).  It makes no promise
about *which* lane's error surfaces or about exception chaining: the batch
backend treats any raise as "this tick needs the scalar path" and re-runs
the tick per lane through the scalar closures, which reproduces the exact
per-scenario exception, message and tick (see
:mod:`repro.simulation.batch_ir`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

from .errors import ExpressionEvalError
from .expr_eval import _ARITHMETIC_OPS, BUILTIN_FUNCTIONS
from .expressions import (BinaryOp, Call, Conditional, Expression, Literal,
                          Present, UnaryOp, Variable)
from .values import ABSENT

#: A compiled batch expression: ``(environment, mask) -> row``.
BatchExpression = Callable[[Mapping[str, np.ndarray], np.ndarray], np.ndarray]

_PRESENT = np.frompyfunc(lambda value: value is not ABSENT, 1, 1)
_BOOL = np.frompyfunc(bool, 1, 1)


def _absent_row(size: int) -> np.ndarray:
    row = np.empty(size, dtype=object)
    row.fill(ABSENT)
    return row


def _present_on(row: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``mask & is_present(row)`` as a boolean array (never raises)."""
    return _PRESENT(row).astype(bool) & mask


def _truthy_on(row: np.ndarray, mask: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Truthiness of *row* on *mask* lanes only.

    Returns ``(bools, truthy)``: *bools* is an object row of genuine Python
    bools on the masked lanes (``False`` elsewhere), *truthy* the boolean
    mask of lanes that are masked and truthy.  ``bool()`` is called only on
    masked lanes -- exotic values on other lanes cannot raise spuriously.
    """
    if mask.all():
        bools = _BOOL(row)
        return bools, bools.astype(bool)
    out = np.empty(len(mask), dtype=object)
    out.fill(False)
    if mask.any():
        out[mask] = _BOOL(row[mask])
    return out, out.astype(bool)


def _lift_unary(operation: Callable[[Any], Any]) -> Callable:
    def kernel(value: Any) -> Any:
        if value is ABSENT:
            return ABSENT
        return operation(value)
    return np.frompyfunc(kernel, 1, 1)


def _lift_binary(operation: Callable[[Any, Any], Any]) -> Callable:
    def kernel(a: Any, b: Any) -> Any:
        if a is ABSENT or b is ABSENT:
            return ABSENT
        return operation(a, b)
    return np.frompyfunc(kernel, 2, 1)


def _divide(a: Any, b: Any) -> Any:
    # int-exact division, as in ExpressionEvaluator._evaluate_binary; the
    # zero-divisor raise only needs to *happen* (the scalar fallback
    # re-derives the exact ExpressionEvalError message per lane)
    if b == 0:
        raise ZeroDivisionError
    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
        return a // b
    return a / b


_NEGATE_KERNEL = _lift_unary(lambda value: -value)
_NOT_KERNEL = _lift_unary(lambda value: not value)
_DIVIDE_KERNEL = _lift_binary(_divide)
_BINARY_KERNELS = {name: _lift_binary(operation)
                   for name, operation in _ARITHMETIC_OPS.items()}
_BINARY_KERNELS["/"] = _DIVIDE_KERNEL


def _apply_masked(kernel: Callable, mask: np.ndarray,
                  *rows: np.ndarray) -> np.ndarray:
    """Apply an n-ary kernel on the masked lanes only."""
    if mask.all():
        return kernel(*rows)
    out = _absent_row(len(mask))
    if mask.any():
        out[mask] = kernel(*(row[mask] for row in rows))
    return out


def compile_batch_expression(expression: Expression,
                             functions: Optional[Mapping[str, Callable[..., Any]]]
                             = None) -> BatchExpression:
    """Lower *expression* to a lane-masked closure ``(env, mask) -> row``.

    *functions* extends (and may override) the built-in function table,
    exactly like :func:`repro.core.expr_compile.compile_expression`.
    """
    table: Dict[str, Callable[..., Any]] = dict(BUILTIN_FUNCTIONS)
    if functions:
        table.update(functions)
    return _compile(expression, table)


def _compile(expression: Expression,
             functions: Mapping[str, Callable[..., Any]]) -> BatchExpression:
    if isinstance(expression, Literal):
        value = expression.value

        def run_literal(environment, mask):
            row = np.empty(len(mask), dtype=object)
            row.fill(value)
            return row
        return run_literal

    if isinstance(expression, Variable):
        name = expression.name
        message = (f"unknown name {name!r} in expression "
                   f"{expression.to_source()}")

        def run_variable(environment, mask):
            row = environment.get(name)
            if row is None:
                # only an evaluated lane may observe the unknown name
                if mask.any():
                    raise ExpressionEvalError(message)
                return _absent_row(len(mask))
            return row
        return run_variable

    if isinstance(expression, Present):
        channel = expression.channel

        def run_present(environment, mask):
            row = environment.get(channel)
            if row is None:
                out = np.empty(len(mask), dtype=object)
                out.fill(False)
                return out
            return _PRESENT(row)
        return run_present

    if isinstance(expression, UnaryOp):
        return _compile_unary(expression, functions)
    if isinstance(expression, BinaryOp):
        return _compile_binary(expression, functions)

    if isinstance(expression, Conditional):
        condition = _compile(expression.condition, functions)
        then_branch = _compile(expression.then_branch, functions)
        else_branch = _compile(expression.else_branch, functions)

        def run_conditional(environment, mask):
            value = condition(environment, mask)
            chosen = _present_on(value, mask)
            _, then_mask = _truthy_on(value, chosen)
            else_mask = chosen & ~then_mask
            out = _absent_row(len(mask))
            if then_mask.any():
                row = then_branch(environment, then_mask)
                out[then_mask] = row[then_mask]
            if else_mask.any():
                row = else_branch(environment, else_mask)
                out[else_mask] = row[else_mask]
            return out
        return run_conditional

    if isinstance(expression, Call):
        return _compile_call(expression, functions)

    raise ExpressionEvalError(f"unsupported expression node {expression!r}")


def _compile_unary(expression: UnaryOp,
                   functions: Mapping[str, Callable[..., Any]]
                   ) -> BatchExpression:
    operand = _compile(expression.operand, functions)

    if expression.op == "-":
        def run_negate(environment, mask):
            return _apply_masked(_NEGATE_KERNEL, mask,
                                 operand(environment, mask))
        return run_negate

    if expression.op == "not":
        def run_not(environment, mask):
            return _apply_masked(_NOT_KERNEL, mask, operand(environment, mask))
        return run_not

    message = f"unknown unary operator {expression.op!r}"

    def run_unknown_unary(environment, mask):
        value = operand(environment, mask)
        if _present_on(value, mask).any():
            raise ExpressionEvalError(message)
        return _absent_row(len(mask))
    return run_unknown_unary


def _compile_binary(expression: BinaryOp,
                    functions: Mapping[str, Callable[..., Any]]
                    ) -> BatchExpression:
    left = _compile(expression.left, functions)
    right = _compile(expression.right, functions)
    op_name = expression.op

    if op_name in ("and", "or"):
        is_or = op_name == "or"

        def run_short_circuit(environment, mask):
            # vectorized short-circuit: a lane settles on its left operand
            # (or -> True when truthy, and -> False when falsy); only the
            # remaining present lanes ever evaluate the right operand
            a = left(environment, mask)
            present_a = _present_on(a, mask)
            _, truthy_a = _truthy_on(a, present_a)
            out = _absent_row(len(mask))
            if is_or:
                out[truthy_a] = True
                right_mask = present_a & ~truthy_a
            else:
                out[present_a & ~truthy_a] = False
                right_mask = truthy_a
            if right_mask.any():
                b = right(environment, right_mask)
                present_b = _present_on(b, right_mask)
                bools_b, _ = _truthy_on(b, present_b)
                out[present_b] = bools_b[present_b]
            return out
        return run_short_circuit

    kernel = _BINARY_KERNELS.get(op_name)
    if kernel is None:
        # unknown operator: both operands still evaluate first, so absence
        # wins on every lane before the lookup failure surfaces
        message = f"unknown binary operator {op_name!r}"

        def run_unknown_binary(environment, mask):
            a = left(environment, mask)
            b = right(environment, mask)
            if (_present_on(a, mask) & _present_on(b, mask)).any():
                raise ExpressionEvalError(message)
            return _absent_row(len(mask))
        return run_unknown_binary

    def run_binary(environment, mask):
        return _apply_masked(kernel, mask, left(environment, mask),
                             right(environment, mask))
    return run_binary


def _compile_call(expression: Call,
                  functions: Mapping[str, Callable[..., Any]]
                  ) -> BatchExpression:
    function_name = expression.function
    function = functions.get(function_name)
    if function is None:
        # the scalar engines look the function up before evaluating any
        # argument, so an unknown function beats argument errors
        message = f"unknown function {function_name!r}"

        def run_unknown_function(environment, mask):
            if mask.any():
                raise ExpressionEvalError(message)
            return _absent_row(len(mask))
        return run_unknown_function

    arguments = tuple(_compile(arg, functions) for arg in expression.arguments)
    arity = len(arguments)

    if arity == 0:
        def run_call_niladic(environment, mask):
            # one call per evaluated lane, matching per-scenario call counts
            out = _absent_row(len(mask))
            for index in np.nonzero(mask)[0]:
                out[index] = function()
            return out
        return run_call_niladic

    def call_kernel(*values: Any) -> Any:
        if any(value is ABSENT for value in values):
            return ABSENT
        return function(*values)
    kernel = np.frompyfunc(call_kernel, arity, 1)

    def run_call(environment, mask):
        rows = [argument(environment, mask) for argument in arguments]
        return _apply_masked(kernel, mask, *rows)
    return run_call
