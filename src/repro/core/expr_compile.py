"""Compilation of base-language ASTs to Python closures.

:class:`~repro.core.expr_eval.ExpressionEvaluator` walks the expression
tree for every evaluation -- one ``isinstance`` dispatch chain per node per
tick.  Guards, actions and output expressions are evaluated thousands of
times against different environments but never change shape, so the walk
can be done *once*: :func:`compile_expression` lowers an AST into nested
closures ``environment -> value`` where every dispatch decision, operator
lookup, function lookup and error-message string has been resolved at
compile time.  The compiled simulation engine
(:mod:`repro.simulation.compiled`) runs all of its expression hot paths --
expression-block outputs, MTD guard tables, STD guard/action/emission
tables -- through this module.

Semantics are exactly those of :meth:`ExpressionEvaluator.evaluate`,
including:

* ABSENT propagation (any absent operand makes arithmetic, comparisons,
  conditionals and calls absent; ``present(ch)`` turns absence into a
  boolean),
* short-circuit ``and``/``or`` returning genuine bools,
* int-exact division (``6 / 3 == 2``, an ``int``),
* the :class:`~repro.core.errors.ExpressionEvalError` messages, raised at
  evaluation time exactly when the interpreter raises them (an unknown
  operator with an absent operand still yields ``ABSENT``, mirroring the
  interpreter's evaluation order),
* custom-function lookup through the evaluator's function table.

The only divergence is *when* structural errors surface: an unsupported
expression node type is reported at compile time (the interpreter can only
notice it during evaluation).

Compiled closures capture resolved function objects and are therefore not
picklable in general; like compiled schedules, they are meant to be rebuilt
per process (the sharded scenario runner pickles the *model* and recompiles
in each worker).  Models stay picklable because nothing in this module is
stored on components.  Compilation snapshots the function table: functions
registered on an evaluator after :meth:`ExpressionEvaluator.compile` are
not seen by previously compiled closures (recompile instead).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from .errors import ExpressionEvalError
from .expr_eval import _ARITHMETIC_OPS, BUILTIN_FUNCTIONS
from .expressions import (BinaryOp, Call, Conditional, Expression, Literal,
                          Present, UnaryOp, Variable)
from .values import ABSENT, is_present

#: A compiled expression: ``environment -> value``.
CompiledExpression = Callable[[Mapping[str, Any]], Any]

#: Sentinel distinguishing "operand is not a constant" from any constant
#: value (including None).
_NO_CONST = object()


def _literal_constant(expression: Expression) -> Any:
    """The compile-time constant of a literal operand, or ``_NO_CONST``.

    Guards and actions are overwhelmingly ``variable op constant`` shaped
    (``n > 700``, ``ped / 400``), so binary nodes specialize on literal
    operands: the constant is baked into the closure, skipping one closure
    call and one absence check per evaluation.  A hand-built
    ``Literal(ABSENT)`` stays on the generic path so absence propagation is
    untouched.
    """
    if isinstance(expression, Literal) and expression.value is not ABSENT:
        return expression.value
    return _NO_CONST


def compile_expression(expression: Expression,
                       functions: Optional[Mapping[str, Callable[..., Any]]]
                       = None) -> CompiledExpression:
    """Lower *expression* to a closure ``environment -> value``.

    *functions* extends (and may override) the built-in function table,
    exactly like the :class:`ExpressionEvaluator` constructor argument.
    """
    table: Dict[str, Callable[..., Any]] = dict(BUILTIN_FUNCTIONS)
    if functions:
        table.update(functions)
    return _compile(expression, table)


def _compile(expression: Expression,
             functions: Mapping[str, Callable[..., Any]]) -> CompiledExpression:
    if isinstance(expression, Literal):
        value = expression.value

        def run_literal(environment: Mapping[str, Any]) -> Any:
            return value
        return run_literal

    if isinstance(expression, Variable):
        name = expression.name
        message = (f"unknown name {name!r} in expression "
                   f"{expression.to_source()}")

        def run_variable(environment: Mapping[str, Any]) -> Any:
            try:
                return environment[name]
            except KeyError:
                raise ExpressionEvalError(message) from None
        return run_variable

    if isinstance(expression, Present):
        channel = expression.channel

        def run_present(environment: Mapping[str, Any]) -> Any:
            return is_present(environment.get(channel, ABSENT))
        return run_present

    if isinstance(expression, UnaryOp):
        return _compile_unary(expression, functions)
    if isinstance(expression, BinaryOp):
        return _compile_binary(expression, functions)

    if isinstance(expression, Conditional):
        condition = _compile(expression.condition, functions)
        then_branch = _compile(expression.then_branch, functions)
        else_branch = _compile(expression.else_branch, functions)

        def run_conditional(environment: Mapping[str, Any]) -> Any:
            value = condition(environment)
            if value is ABSENT:
                return ABSENT
            if value:
                return then_branch(environment)
            return else_branch(environment)
        return run_conditional

    if isinstance(expression, Call):
        return _compile_call(expression, functions)

    raise ExpressionEvalError(f"unsupported expression node {expression!r}")


def _compile_unary(expression: UnaryOp,
                   functions: Mapping[str, Callable[..., Any]]
                   ) -> CompiledExpression:
    operand = _compile(expression.operand, functions)

    if expression.op == "-":
        def run_negate(environment: Mapping[str, Any]) -> Any:
            value = operand(environment)
            if value is ABSENT:
                return ABSENT
            return -value
        return run_negate

    if expression.op == "not":
        def run_not(environment: Mapping[str, Any]) -> Any:
            value = operand(environment)
            if value is ABSENT:
                return ABSENT
            return not value
        return run_not

    # The interpreter evaluates the operand (absence still wins) before
    # discovering the operator is unknown; mirror that order.
    message = f"unknown unary operator {expression.op!r}"

    def run_unknown_unary(environment: Mapping[str, Any]) -> Any:
        value = operand(environment)
        if value is ABSENT:
            return ABSENT
        raise ExpressionEvalError(message)
    return run_unknown_unary


def _compile_binary(expression: BinaryOp,
                    functions: Mapping[str, Callable[..., Any]]
                    ) -> CompiledExpression:
    left = _compile(expression.left, functions)
    right = _compile(expression.right, functions)
    op_name = expression.op

    if op_name == "and":
        def run_and(environment: Mapping[str, Any]) -> Any:
            a = left(environment)
            if a is ABSENT:
                return ABSENT
            if not a:
                return False
            b = right(environment)
            return ABSENT if b is ABSENT else bool(b)
        return run_and

    if op_name == "or":
        def run_or(environment: Mapping[str, Any]) -> Any:
            a = left(environment)
            if a is ABSENT:
                return ABSENT
            if a:
                return True
            b = right(environment)
            return ABSENT if b is ABSENT else bool(b)
        return run_or

    if op_name == "/":
        message = f"division by zero in {expression.to_source()}"
        divisor = _literal_constant(expression.right)
        if divisor is not _NO_CONST:
            if isinstance(divisor, (int, float)) and divisor == 0:
                def run_divide_by_zero(environment: Mapping[str, Any]) -> Any:
                    a = left(environment)
                    if a is ABSENT:
                        return ABSENT
                    raise ExpressionEvalError(message)
                return run_divide_by_zero

            divisor_is_int = isinstance(divisor, int)

            def run_divide_by_const(environment: Mapping[str, Any]) -> Any:
                a = left(environment)
                if a is ABSENT:
                    return ABSENT
                if divisor_is_int and isinstance(a, int) and a % divisor == 0:
                    return a // divisor
                return a / divisor
            return run_divide_by_const

        def run_divide(environment: Mapping[str, Any]) -> Any:
            a = left(environment)
            b = right(environment)
            if a is ABSENT or b is ABSENT:
                return ABSENT
            if b == 0:
                raise ExpressionEvalError(message)
            if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                return a // b
            return a / b
        return run_divide

    operation = _ARITHMETIC_OPS.get(op_name)
    if operation is None:
        # Unknown operator: the interpreter evaluates both operands first,
        # so absence still propagates before the lookup failure surfaces.
        message = f"unknown binary operator {op_name!r}"

        def run_unknown_binary(environment: Mapping[str, Any]) -> Any:
            a = left(environment)
            b = right(environment)
            if a is ABSENT or b is ABSENT:
                return ABSENT
            try:
                raise KeyError(op_name)
            except KeyError as exc:
                raise ExpressionEvalError(message) from exc
        return run_unknown_binary

    right_const = _literal_constant(expression.right)
    if right_const is not _NO_CONST:
        def run_binary_const_right(environment: Mapping[str, Any]) -> Any:
            a = left(environment)
            if a is ABSENT:
                return ABSENT
            try:
                return operation(a, right_const)
            except TypeError as exc:
                raise ExpressionEvalError(
                    f"cannot apply {op_name!r} to {a!r} and "
                    f"{right_const!r}") from exc
        return run_binary_const_right

    left_const = _literal_constant(expression.left)
    if left_const is not _NO_CONST:
        def run_binary_const_left(environment: Mapping[str, Any]) -> Any:
            b = right(environment)
            if b is ABSENT:
                return ABSENT
            try:
                return operation(left_const, b)
            except TypeError as exc:
                raise ExpressionEvalError(
                    f"cannot apply {op_name!r} to {left_const!r} and "
                    f"{b!r}") from exc
        return run_binary_const_left

    def run_binary(environment: Mapping[str, Any]) -> Any:
        a = left(environment)
        b = right(environment)
        if a is ABSENT or b is ABSENT:
            return ABSENT
        try:
            return operation(a, b)
        except TypeError as exc:
            raise ExpressionEvalError(
                f"cannot apply {op_name!r} to {a!r} and {b!r}") from exc
    return run_binary


def _compile_call(expression: Call,
                  functions: Mapping[str, Callable[..., Any]]
                  ) -> CompiledExpression:
    function_name = expression.function
    function = functions.get(function_name)
    if function is None:
        # The interpreter looks the function up before evaluating any
        # argument, so an unknown function beats argument errors.
        message = f"unknown function {function_name!r}"

        def run_unknown_function(environment: Mapping[str, Any]) -> Any:
            try:
                raise KeyError(function_name)
            except KeyError as exc:
                raise ExpressionEvalError(message) from exc
        return run_unknown_function

    arguments = tuple(_compile(arg, functions) for arg in expression.arguments)

    def run_call(environment: Mapping[str, Any]) -> Any:
        values = [argument(environment) for argument in arguments]
        if any(value is ABSENT for value in values):
            return ABSENT
        try:
            return function(*values)
        except Exception as exc:  # noqa: BLE001 - surface as evaluation error
            raise ExpressionEvalError(
                f"error calling {function_name}: {exc}") from exc
    return run_call
