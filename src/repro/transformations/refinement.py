"""Signal refinement: physical types to implementation types (paper Sec. 4).

"Examples for refinement transformations include the transformation of
physical signals to implementation signals (i.e. the choice of encoding and
data type)."  On the LA level "abstract data types such as int are typically
mapped to implementation, e.g. int16 or int32.  Similarly, a floating-point
message on the FDA level may be mapped to a fixed-point or integer message"
(Sec. 3.3).

:func:`refine_signal_types` performs this choice for the ports of a cluster
(or any component), records the decisions in an
:class:`~repro.core.impl_types.ImplementationMapping` and optionally rewrites
the port types; :func:`quantization_report` measures the error the chosen
fixed-point encodings introduce on a given value trace -- the evidence that a
refinement preserved the signal within its tolerance.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..core.components import Component
from ..core.errors import TransformationError
from ..core.impl_types import (FixedPointType, ImplementationMapping,
                               choose_implementation_type)
from ..core.model import AbstractionLevel
from ..core.types import Type
from ..core.values import Stream, is_present
from ..notations.ccd import Cluster
from .base import Transformation, TransformationKind


#: Per-signal refinement hints: physical range and required resolution.
SignalRange = Mapping[str, Mapping[str, float]]


def refine_signal_types(component: Component,
                        signal_ranges: Optional[SignalRange] = None,
                        retype_ports: bool = False) -> ImplementationMapping:
    """Choose implementation types for every port of *component*.

    *signal_ranges* may provide ``{"low": .., "high": .., "resolution": ..}``
    per port name; unbounded float ports without a range hint are rejected,
    because no sensible fixed-point encoding exists for them.
    """
    signal_ranges = signal_ranges or {}
    mapping = ImplementationMapping()
    for port in component.ports():
        hints = signal_ranges.get(port.name, {})
        impl = choose_implementation_type(
            port.port_type,
            resolution=hints.get("resolution"),
            low=hints.get("low"),
            high=hints.get("high"))
        rationale = ("range hint" if hints else "type bounds / default policy")
        mapping.assign(port.name, port.port_type, impl, rationale)
        if retype_ports:
            port.retype(impl)
    if isinstance(component, Cluster):
        for entry in mapping.entries():
            component.implementation.assign(
                entry.signal, entry.abstract_type, entry.implementation_type,
                entry.rationale)
    return mapping


def quantization_report(mapping: ImplementationMapping,
                        traces: Mapping[str, Stream]) -> Dict[str, Dict[str, float]]:
    """Measure the quantization error of fixed-point signals on real traces.

    For every signal with a fixed-point implementation type, the report gives
    the maximal and mean absolute error over the present values of the trace,
    and the encoding's theoretical resolution.
    """
    report: Dict[str, Dict[str, float]] = {}
    for signal, stream in traces.items():
        if signal not in mapping:
            continue
        impl = mapping.lookup(signal).implementation_type
        if not isinstance(impl, FixedPointType):
            continue
        errors = [impl.quantization_error(value)
                  for value in stream if is_present(value)]
        if not errors:
            continue
        report[signal] = {
            "max_error": max(errors),
            "mean_error": sum(errors) / len(errors),
            "resolution": impl.resolution,
            "samples": float(len(errors)),
        }
    return report


class SignalTypeRefinement(Transformation):
    """Physical-to-implementation signal refinement as a recorded step."""

    name = "signal-type-refinement"
    kind = TransformationKind.REFINEMENT
    source_level = AbstractionLevel.FDA
    target_level = AbstractionLevel.LA

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, Component):
            report.error(self.name, "subject must be a component")
        elif not subject.ports():
            report.error(self.name, "the component has no ports to refine")
        return report

    def _transform(self, subject: Component, **options):
        mapping = refine_signal_types(subject,
                                      signal_ranges=options.get("signal_ranges"),
                                      retype_ports=options.get("retype_ports", False))
        return mapping, {"signals": len(mapping),
                         "payload_bytes": mapping.total_payload_bytes()}
