"""Refactoring transformations (paper Sec. 4).

"Refactoring is mainly seen as a structural transformation on the same
abstraction level."  The steps named in the paper and implemented here:

* **integrating an independently designed function** into an FAA-level
  functional network when another function accesses the same actuator --
  realised as :func:`introduce_coordinator`, which inserts the coordinating
  functionality the conflict analysis suggests and re-routes the competing
  channels through it,
* **replacing an MTD by several DFDs with explicit mode-ports**
  (:func:`mtd_to_mode_port_dfds` / :class:`MtdToModePortsRefactoring`),
  built on the MTD-to-dataflow algorithm of Sec. 3.3,
* **changing the structural hierarchy** to facilitate a more efficient
  implementation -- :func:`flatten_hierarchy` dissolves nested composites
  into their parent diagram.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.components import Component, CompositeComponent, FunctionComponent
from ..core.errors import TransformationError
from ..core.model import AbstractionLevel
from ..core.values import ABSENT, is_present
from ..notations.dfd import DataFlowDiagram
from ..notations.mtd import ModeTransitionDiagram
from ..notations.ssd import SSDComponent
from .base import Transformation, TransformationKind
from .mtd_to_dataflow import (ModeActivatedBehavior, ModeControllerBlock,
                              transform_mtd_to_dataflow)


# --------------------------------------------------------------------------
# coordinator introduction (FAA-level conflict countermeasure)
# --------------------------------------------------------------------------

def introduce_coordinator(network: SSDComponent, actuator: str,
                          strategy: str = "priority",
                          coordinator_name: Optional[str] = None) -> Component:
    """Insert a coordinating functionality in front of a contended actuator.

    All channels currently driving the actuator component are re-routed into
    a new coordinator component with one input per competing function; a
    single channel leads from the coordinator to the actuator.  Two built-in
    arbitration strategies exist:

    * ``"priority"`` -- the first (highest-priority) present request wins,
    * ``"last-wins"`` -- the most recently added function's request wins.

    The function mutates *network* and returns the coordinator component.
    """
    if not network.has_subcomponent(actuator):
        raise TransformationError(
            f"network {network.name!r} has no actuator component {actuator!r}")
    actuator_component = network.subcomponent(actuator)
    incoming = [channel for channel in network.channels()
                if channel.destination.component == actuator]
    if len(incoming) < 2:
        raise TransformationError(
            f"actuator {actuator!r} is driven by {len(incoming)} channel(s); "
            "a coordinator is only needed for conflicting access")
    if strategy not in ("priority", "last-wins"):
        raise TransformationError(f"unknown arbitration strategy {strategy!r}")

    destination_port = incoming[0].destination.port
    request_sources = [(channel.source.component, channel.source.port)
                       for channel in incoming]

    name = coordinator_name or f"{actuator}Coordinator"
    input_names = [f"request{index + 1}" for index in range(len(request_sources))]

    def arbitrate(environment):
        ordered = input_names if strategy == "priority" else list(reversed(input_names))
        for request in ordered:
            value = environment.get(request, ABSENT)
            if is_present(value):
                return {"command": value}
        return {"command": ABSENT}

    coordinator = FunctionComponent(name, arbitrate, inputs=input_names,
                                    outputs=["command"],
                                    description=f"coordinates access to "
                                                f"actuator {actuator!r} "
                                                f"({strategy} arbitration)")
    coordinator.annotate("introduced_by", "refactoring:introduce-coordinator")

    # remove the conflicting channels, then rewire through the coordinator
    for channel in incoming:
        network._channels.remove(channel)  # noqa: SLF001 - deliberate surgery
    network.invalidate_plan()
    network.add_subcomponent(coordinator)
    for index, (source_component, source_port) in enumerate(request_sources):
        source = (source_port if source_component is None
                  else f"{source_component}.{source_port}")
        network.connect(source, f"{name}.request{index + 1}", delayed=True)
    network.connect(f"{name}.command", f"{actuator}.{destination_port}",
                    delayed=True)
    return coordinator


class IntroduceCoordinatorRefactoring(Transformation):
    """The conflict-resolution refactoring as a recorded step."""

    name = "introduce-coordinator"
    kind = TransformationKind.REFACTORING
    source_level = AbstractionLevel.FAA
    target_level = AbstractionLevel.FAA

    def _transform(self, subject: SSDComponent, **options):
        actuator = options.get("actuator")
        if not actuator:
            raise TransformationError("the 'actuator' option is required")
        coordinator = introduce_coordinator(
            subject, actuator, strategy=options.get("strategy", "priority"),
            coordinator_name=options.get("coordinator_name"))
        return subject, {"actuator": actuator, "coordinator": coordinator.name}


# --------------------------------------------------------------------------
# MTD -> DFDs with explicit mode ports
# --------------------------------------------------------------------------

def mtd_to_mode_port_dfds(mtd: ModeTransitionDiagram
                          ) -> Tuple[DataFlowDiagram, List[Component]]:
    """Replace an MTD by several DFD blocks with explicit mode ports.

    Returns the containing data-flow diagram plus the list of per-mode
    behaviour blocks (each carrying an explicit ``mode_sel`` port), which is
    the refactored representation the paper mentions ("replace an MTD by
    several DFDs having explicit mode-ports").
    """
    dfd = transform_mtd_to_dataflow(mtd, name=f"{mtd.name}_mode_ports")
    mode_blocks = [component for component in dfd.subcomponents()
                   if isinstance(component, ModeActivatedBehavior)]
    return dfd, mode_blocks


class MtdToModePortsRefactoring(Transformation):
    """Same-level structural refactoring of an MTD into mode-port DFDs."""

    name = "mtd-to-mode-port-dfds"
    kind = TransformationKind.REFACTORING
    source_level = AbstractionLevel.FDA
    target_level = AbstractionLevel.FDA

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, ModeTransitionDiagram):
            report.error(self.name, "subject must be an MTD")
        return report

    def _transform(self, subject: ModeTransitionDiagram, **options):
        dfd, mode_blocks = mtd_to_mode_port_dfds(subject)
        return dfd, {"mode_blocks": len(mode_blocks),
                     "controller": f"{subject.name}_ModeController"}


# --------------------------------------------------------------------------
# hierarchy restructuring
# --------------------------------------------------------------------------

def flatten_hierarchy(composite: CompositeComponent,
                      component_names: Optional[List[str]] = None
                      ) -> CompositeComponent:
    """Dissolve nested composite sub-components into their parent diagram.

    The children of each dissolved composite are lifted into the parent with
    prefixed names (``Outer_Inner``); boundary-forwarding channels of the
    dissolved composite are replaced by direct channels.  Only composites
    whose boundary connections are pure forwarding (no internal fan-in onto a
    boundary port) can be dissolved.  Returns the mutated parent.
    """
    targets = component_names
    if targets is None:
        targets = [component.name for component in composite.subcomponents()
                   if isinstance(component, CompositeComponent)]
    for target_name in targets:
        child = composite.subcomponent(target_name)
        if not isinstance(child, CompositeComponent):
            raise TransformationError(
                f"{target_name!r} is not a composite and cannot be dissolved")
        _dissolve_child(composite, child)
    return composite


def _dissolve_child(parent: CompositeComponent, child: CompositeComponent) -> None:
    prefix = child.name

    # lift grandchildren
    renaming: Dict[str, str] = {}
    for grandchild in child.subcomponents():
        new_name = f"{prefix}_{grandchild.name}"
        renaming[grandchild.name] = new_name
        grandchild.name = new_name
        parent.add_subcomponent(grandchild)

    # resolve the child's boundary ports to internal endpoints
    inward: Dict[str, List[Tuple[str, str]]] = {}
    outward: Dict[str, Tuple[str, str]] = {}
    for channel in child.channels():
        if channel.source.is_boundary() and not channel.destination.is_boundary():
            inward.setdefault(channel.source.port, []).append(
                (renaming[channel.destination.component], channel.destination.port))
        elif channel.destination.is_boundary() and not channel.source.is_boundary():
            outward[channel.destination.port] = (
                renaming[channel.source.component], channel.source.port)
        elif not channel.source.is_boundary() and not channel.destination.is_boundary():
            parent.connect(
                f"{renaming[channel.source.component]}.{channel.source.port}",
                f"{renaming[channel.destination.component]}.{channel.destination.port}",
                delayed=channel.delayed, initial_value=channel.initial_value)
        else:
            raise TransformationError(
                f"composite {child.name!r} forwards a boundary input directly "
                "to a boundary output; dissolve is not supported for pure "
                "pass-through composites")

    # re-route the parent's channels that touched the dissolved child
    old_channels = [channel for channel in parent.channels()
                    if channel.source.component == prefix
                    or channel.destination.component == prefix]
    for channel in old_channels:
        parent._channels.remove(channel)  # noqa: SLF001 - deliberate surgery
    parent.invalidate_plan()
    for channel in old_channels:
        if channel.destination.component == prefix:
            internal_targets = inward.get(channel.destination.port, [])
            source = (channel.source.port if channel.source.is_boundary()
                      else f"{channel.source.component}.{channel.source.port}")
            for component_name, port_name in internal_targets:
                parent.connect(source, f"{component_name}.{port_name}",
                               delayed=channel.delayed,
                               initial_value=channel.initial_value)
        elif channel.source.component == prefix:
            internal_source = outward.get(channel.source.port)
            if internal_source is None:
                continue
            destination = (channel.destination.port
                           if channel.destination.is_boundary()
                           else f"{channel.destination.component}."
                                f"{channel.destination.port}")
            parent.connect(f"{internal_source[0]}.{internal_source[1]}",
                           destination, delayed=channel.delayed,
                           initial_value=channel.initial_value)

    del parent._subcomponents[prefix]  # noqa: SLF001 - deliberate surgery
    parent.invalidate_plan()


class FlattenHierarchyRefactoring(Transformation):
    """Hierarchy restructuring as a recorded refactoring step."""

    name = "flatten-hierarchy"
    kind = TransformationKind.REFACTORING

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, CompositeComponent):
            report.error(self.name, "subject must be a composite component")
        return report

    def _transform(self, subject: CompositeComponent, **options):
        before = len(subject.subcomponents())
        flatten_hierarchy(subject, options.get("component_names"))
        return subject, {"components_before": before,
                         "components_after": len(subject.subcomponents())}
