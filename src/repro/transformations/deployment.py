"""Deployment refinement: mapping CCD clusters to ECUs and tasks.

"... and last but not least the mapping of CCDs to ECUs and tasks"
(paper Sec. 4); "several clusters may be mapped to a given operating system
task, but a given cluster will not be split across several tasks"
(Sec. 3.3); "all signals between clusters deployed to different ECUs will be
mapped to a communication network, e.g. CAN, possibly considering an
existing communication matrix" (Sec. 3.4).

:func:`deploy` builds the Technical Architecture for a CCD:

* clusters are allocated to ECUs either by an explicit allocation map or by a
  greedy load-balancing heuristic on their WCET estimates,
* on each ECU one OSEK task is created per distinct cluster rate
  (rate-monotonic priorities), and every cluster is placed into the task of
  its rate -- never split,
* every inter-ECU channel becomes a signal in a CAN frame; frames are created
  per (sender ECU, period) pair and filled up to 8 bytes,
* a communication matrix documenting the network is produced.

The result bundles the architecture, bus, matrix and the cluster-to-task map
so the OA generator and the timing analysis can consume it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import DeploymentError
from ..core.impl_types import ImplementationType
from ..core.model import AbstractionLevel
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from ..platform.can import CANBus, CANFrame, CANSignal
from ..platform.ecu import ECU, Task, TechnicalArchitecture
from ..ascet.comm_matrix import CommunicationMatrix
from .base import Transformation, TransformationKind


@dataclass
class DeploymentResult:
    """Everything produced by deploying one CCD onto a set of ECUs."""

    ccd_name: str
    architecture: TechnicalArchitecture
    bus: CANBus
    matrix: CommunicationMatrix
    ecu_of_cluster: Dict[str, str] = field(default_factory=dict)
    task_of_cluster: Dict[str, str] = field(default_factory=dict)
    frame_of_signal: Dict[str, str] = field(default_factory=dict)

    def local_signals(self) -> int:
        """Number of inter-cluster signals that stayed ECU-local."""
        return len([1 for key in self._all_signal_keys()
                    if key not in self.frame_of_signal])

    def remote_signals(self) -> int:
        return len(self.frame_of_signal)

    def _all_signal_keys(self) -> List[str]:
        return list(self.ecu_of_cluster.keys())

    def describe(self) -> str:
        lines = [f"deployment of CCD {self.ccd_name!r}:"]
        for cluster, ecu in sorted(self.ecu_of_cluster.items()):
            lines.append(f"  {cluster} -> {ecu} / {self.task_of_cluster[cluster]}")
        lines.append(f"  inter-ECU signals: {len(self.frame_of_signal)} in "
                     f"{len(self.bus.frames)} CAN frame(s), bus utilization "
                     f"{self.bus.utilization():.1%}")
        for ecu in self.architecture.ecu_list():
            lines.append(f"  {ecu.name}: utilization {ecu.utilization():.1%}, "
                         f"{len(ecu.tasks)} task(s)")
        return "\n".join(lines)


def _allocate_clusters(clusters: Sequence[Cluster], ecu_names: Sequence[str],
                       allocation: Optional[Mapping[str, str]]
                       ) -> Dict[str, str]:
    """Explicit allocation where given, greedy WCET balancing otherwise."""
    result: Dict[str, str] = {}
    loads = {name: 0.0 for name in ecu_names}
    remaining: List[Cluster] = []
    for cluster in clusters:
        if allocation and cluster.name in allocation:
            ecu_name = allocation[cluster.name]
            if ecu_name not in loads:
                raise DeploymentError(
                    f"cluster {cluster.name!r} is allocated to unknown ECU "
                    f"{ecu_name!r}")
            result[cluster.name] = ecu_name
            loads[ecu_name] += cluster.worst_case_execution_time() / cluster.period
        else:
            remaining.append(cluster)
    for cluster in sorted(remaining,
                          key=lambda c: -c.worst_case_execution_time() / c.period):
        ecu_name = min(loads, key=lambda name: loads[name])
        result[cluster.name] = ecu_name
        loads[ecu_name] += cluster.worst_case_execution_time() / cluster.period
    return result


def deploy(ccd: ClusterCommunicationDiagram, ecu_names: Sequence[str],
           allocation: Optional[Mapping[str, str]] = None,
           bus_bits_per_tick: float = 500.0,
           base_can_id: int = 0x100,
           architecture_name: Optional[str] = None) -> DeploymentResult:
    """Map the clusters of *ccd* onto the named ECUs (see module docstring)."""
    if not ecu_names:
        raise DeploymentError("at least one ECU is required")
    clusters = ccd.clusters()
    if not clusters:
        raise DeploymentError(f"CCD {ccd.name!r} has no clusters to deploy")

    architecture = TechnicalArchitecture(architecture_name or f"{ccd.name}_TA")
    for ecu_name in ecu_names:
        architecture.add_ecu(ECU(ecu_name))
    bus = CANBus(architecture.bus_name, bits_per_tick=bus_bits_per_tick)
    matrix = CommunicationMatrix(f"{ccd.name}_comm_matrix")

    ecu_of_cluster = _allocate_clusters(clusters, list(ecu_names), allocation)

    # one task per (ECU, rate); rate-monotonic priorities per ECU
    task_of_cluster: Dict[str, str] = {}
    for ecu_name in ecu_names:
        ecu = architecture.ecu(ecu_name)
        periods = sorted({cluster.period for cluster in clusters
                          if ecu_of_cluster[cluster.name] == ecu_name})
        for priority, period in enumerate(periods, start=1):
            ecu.add_task(Task(f"{ecu_name}_T{period}", period=period,
                              priority=priority))
        for cluster in clusters:
            if ecu_of_cluster[cluster.name] != ecu_name:
                continue
            task = ecu.task(f"{ecu_name}_T{cluster.period}")
            task.add_cluster(cluster.name, cluster.worst_case_execution_time())
            task_of_cluster[cluster.name] = task.name

    # map inter-ECU signals to CAN frames
    frame_of_signal: Dict[str, str] = {}
    frames_by_key: Dict[Tuple[str, int], CANFrame] = {}
    next_can_id = base_can_id
    for entry in ccd.rate_transitions():
        source_cluster = ccd.cluster(entry["source"])
        dest_cluster = ccd.cluster(entry["destination"])
        source_ecu = ecu_of_cluster[source_cluster.name]
        dest_ecu = ecu_of_cluster[dest_cluster.name]
        channel = entry["channel"]
        signal_key = f"{source_cluster.name}->{dest_cluster.name}"
        signal_name = f"{source_cluster.name}_{channel.source.port}"

        matrix_signal = f"{signal_name}__{dest_cluster.name}"
        if source_ecu == dest_ecu:
            matrix.add(matrix_signal, source_cluster.name, [dest_cluster.name],
                       frame=None, period=source_cluster.period)
            continue

        bits = _signal_bits(source_cluster, channel.source.port)
        frame_key = (source_ecu, source_cluster.period)
        frame = frames_by_key.get(frame_key)
        if frame is None or frame.payload_bits() + bits > 64:
            frame = CANFrame(f"F_{source_ecu}_{source_cluster.period}_"
                             f"{next_can_id - base_can_id}",
                             can_id=next_can_id, period=source_cluster.period,
                             sender_ecu=source_ecu)
            next_can_id += 1
            frames_by_key[frame_key] = frame
            bus.add_frame(frame)
        frame.add_signal(CANSignal(signal_name, bits,
                                   sender_cluster=source_cluster.name,
                                   receiver_clusters=[dest_cluster.name]))
        frame_of_signal[signal_key] = frame.name
        matrix.add(matrix_signal, source_cluster.name, [dest_cluster.name],
                   frame=frame.name, period=source_cluster.period,
                   length_bits=bits)

    return DeploymentResult(
        ccd_name=ccd.name, architecture=architecture, bus=bus, matrix=matrix,
        ecu_of_cluster=ecu_of_cluster, task_of_cluster=task_of_cluster,
        frame_of_signal=frame_of_signal)


def _signal_bits(cluster: Cluster, port_name: str) -> int:
    """Payload size of one signal: from the implementation mapping if known."""
    if port_name in cluster.implementation:
        impl = cluster.implementation.lookup(port_name).implementation_type
        if isinstance(impl, ImplementationType):
            return 8 * impl.storage_bytes()
    return 16


class ClusterDeployment(Transformation):
    """CCD -> Technical Architecture deployment as a recorded step."""

    name = "cluster-deployment"
    kind = TransformationKind.REFINEMENT
    source_level = AbstractionLevel.LA
    target_level = AbstractionLevel.TA

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, ClusterCommunicationDiagram):
            report.error(self.name, "subject must be a CCD")
        elif not subject.clusters():
            report.error(self.name, "the CCD has no clusters")
        return report

    def _transform(self, subject: ClusterCommunicationDiagram, **options):
        result = deploy(subject,
                        ecu_names=options.get("ecu_names", ["ECU1"]),
                        allocation=options.get("allocation"),
                        bus_bits_per_tick=options.get("bus_bits_per_tick", 500.0))
        return result, {"ecus": len(result.architecture.ecus),
                        "frames": len(result.bus.frames),
                        "remote_signals": result.remote_signals()}
