"""Clock-based clustering refinement (paper Sec. 4).

One of the refinement examples the paper names is the "clustering of DFDs
according to their clocks neglecting their functional coherency": blocks
that share a rate are grouped into one cluster regardless of which function
they belong to, because they will end up in the same periodic OS task anyway.

:func:`cluster_by_clock` partitions the blocks of a composite by the period
of their clock (taken from the ``rate`` annotation, the block's port clocks,
or a supplied mapping) and builds a :class:`ClusterCommunicationDiagram`
with one cluster per distinct period.  Channels crossing a cluster boundary
become inter-cluster channels.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..core.clocks import every
from ..core.components import Component, CompositeComponent
from ..core.errors import TransformationError
from ..core.model import AbstractionLevel
from ..core.types import FLOAT
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from .base import Transformation, TransformationKind


def block_period(component: Component,
                 explicit: Optional[Mapping[str, int]] = None) -> int:
    """Determine the rate period of one block.

    Precedence: explicit mapping, the ``rate`` annotation, the period of the
    block's port clocks (if periodic and uniform), else the base period 1.
    """
    if explicit and component.name in explicit:
        return int(explicit[component.name])
    if "rate" in component.annotations:
        return int(component.annotations["rate"])
    periods = {port.clock.period for port in component.ports()
               if port.clock.is_periodic() and port.clock.period is not None}
    if len(periods) == 1:
        return int(periods.pop())
    return 1


def cluster_by_clock(composite: CompositeComponent,
                     periods: Optional[Mapping[str, int]] = None,
                     name: Optional[str] = None
                     ) -> Tuple[ClusterCommunicationDiagram, Dict[int, List[str]]]:
    """Group the blocks of *composite* into one cluster per rate period.

    Returns the resulting CCD plus the partition (period -> block names).
    Boundary ports of the composite are preserved on the CCD and connected to
    the cluster that contains the block they feed (or read).
    """
    if not composite.subcomponents():
        raise TransformationError(
            f"composite {composite.name!r} has no blocks to cluster")

    partition: Dict[int, List[str]] = {}
    for component in composite.subcomponents():
        period = block_period(component, periods)
        partition.setdefault(period, []).append(component.name)

    ccd = ClusterCommunicationDiagram(name or f"{composite.name}_clustered",
                                      description="clock-based clustering of "
                                                  f"{composite.name!r}")
    for port in composite.input_ports():
        ccd.add_input(port.name, port.port_type, port.clock, port.description)
    for port in composite.output_ports():
        ccd.add_output(port.name, port.port_type, port.clock, port.description)

    cluster_of_block: Dict[str, str] = {}
    clusters: Dict[int, Cluster] = {}
    for period in sorted(partition):
        cluster = Cluster(f"{composite.name}_T{period}", rate=every(period),
                          description=f"all blocks with period {period}")
        cluster.annotations["members"] = list(partition[period])
        clusters[period] = cluster
        for block_name in partition[period]:
            block = composite.subcomponent(block_name)
            cluster.add_subcomponent(block)
            cluster_of_block[block_name] = cluster.name
        ccd.add_cluster(cluster)

    # Re-create the channels.  Within a cluster they stay internal; across
    # clusters the signal is exported/imported through fresh cluster ports.
    for channel in composite.channels():
        src_component = channel.source.component
        dst_component = channel.destination.component
        source_cluster = cluster_of_block.get(src_component) if src_component else None
        dest_cluster = cluster_of_block.get(dst_component) if dst_component else None

        if source_cluster is not None and source_cluster == dest_cluster:
            cluster = _cluster_by_name(clusters, source_cluster)
            cluster.connect(f"{src_component}.{channel.source.port}",
                            f"{dst_component}.{channel.destination.port}",
                            delayed=channel.delayed,
                            initial_value=channel.initial_value)
            continue

        # export from the source side
        if source_cluster is None:
            source_ref = channel.source.port  # CCD boundary input
        else:
            cluster = _cluster_by_name(clusters, source_cluster)
            export_port = f"{src_component}_{channel.source.port}"
            if not cluster.has_port(export_port):
                block = cluster.subcomponent(src_component)
                port = block.port(channel.source.port)
                port_type = port.port_type if port.is_statically_typed() else FLOAT
                cluster.add_output(export_port, port_type, cluster.rate)
                cluster.connect(f"{src_component}.{channel.source.port}",
                                export_port)
            source_ref = f"{cluster.name}.{export_port}"

        # import on the destination side
        if dest_cluster is None:
            dest_ref = channel.destination.port  # CCD boundary output
        else:
            cluster = _cluster_by_name(clusters, dest_cluster)
            import_port = f"{dst_component}_{channel.destination.port}"
            if not cluster.has_port(import_port):
                block = cluster.subcomponent(dst_component)
                port = block.port(channel.destination.port)
                port_type = port.port_type if port.is_statically_typed() else FLOAT
                cluster.add_input(import_port, port_type, cluster.rate)
                cluster.connect(import_port,
                                f"{dst_component}.{channel.destination.port}")
            dest_ref = f"{cluster.name}.{import_port}"

        ccd.connect(source_ref, dest_ref, delayed=channel.delayed,
                    initial_value=channel.initial_value)

    return ccd, {period: sorted(names) for period, names in partition.items()}


def _cluster_by_name(clusters: Dict[int, Cluster], name: str) -> Cluster:
    for cluster in clusters.values():
        if cluster.name == name:
            return cluster
    raise TransformationError(f"internal error: unknown cluster {name!r}")


class ClockBasedClustering(Transformation):
    """The clock-based clustering refinement as a recorded step."""

    name = "clock-based-clustering"
    kind = TransformationKind.REFINEMENT
    source_level = AbstractionLevel.FDA
    target_level = AbstractionLevel.LA

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, CompositeComponent):
            report.error(self.name, "subject must be a composite component")
        elif not subject.subcomponents():
            report.error(self.name, "the composite has no blocks")
        return report

    def _transform(self, subject: CompositeComponent, **options):
        ccd, partition = cluster_by_clock(subject, options.get("periods"),
                                          options.get("name"))
        return ccd, {"clusters": len(ccd.clusters()),
                     "partition": {str(k): v for k, v in partition.items()}}
