"""The transformation framework (paper Sec. 4).

"Besides adequate modeling means, the core of the AutoMoDe approach is the
investigation of and tool support for model transformations."  Three kinds
of transformation steps are distinguished:

* **reengineering** -- from implementation-level descriptions up to FAA/FDA,
* **refactoring** -- structural transformation on the same abstraction level,
* **refinement** -- from higher to lower abstraction levels.

Every concrete transformation in this package is an instance of
:class:`Transformation`: it declares its kind and the levels it bridges, can
check its applicability, produces a :class:`TransformationResult`, and can
record itself into an :class:`~repro.core.model.AutoModeModel` audit trail --
the "formalized transformation steps" the paper calls for.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.errors import TransformationError
from ..core.model import AbstractionLevel, AutoModeModel
from ..core.validation import ValidationReport


class TransformationKind(enum.Enum):
    """The paper's classification of transformation steps."""

    REENGINEERING = "reengineering"
    REFACTORING = "refactoring"
    REFINEMENT = "refinement"

    def __str__(self) -> str:
        return self.value


@dataclass
class TransformationResult:
    """Outcome of applying one transformation step."""

    transformation: str
    kind: TransformationKind
    output: Any
    source_level: Optional[AbstractionLevel] = None
    target_level: Optional[AbstractionLevel] = None
    details: Dict[str, Any] = field(default_factory=dict)
    report: Optional[ValidationReport] = None

    def describe(self) -> str:
        src = self.source_level.short_name if self.source_level else "-"
        dst = self.target_level.short_name if self.target_level else "-"
        extra = ", ".join(f"{key}={value}" for key, value in self.details.items())
        return (f"{self.kind}: {self.transformation} ({src} -> {dst})"
                + (f" [{extra}]" if extra else ""))


class Transformation:
    """Base class of all concrete transformation steps."""

    name: str = "transformation"
    kind: TransformationKind = TransformationKind.REFACTORING
    source_level: Optional[AbstractionLevel] = None
    target_level: Optional[AbstractionLevel] = None

    def check_applicable(self, subject: Any) -> ValidationReport:
        """Check pre-conditions; errors mean the step cannot be applied."""
        return ValidationReport(f"applicability of {self.name}")

    def apply(self, subject: Any, **options: Any) -> TransformationResult:
        """Perform the transformation; subclasses implement ``_transform``."""
        applicability = self.check_applicable(subject)
        if not applicability.is_valid():
            raise TransformationError(
                f"transformation {self.name!r} is not applicable: "
                f"{applicability.summary()}")
        output, details = self._transform(subject, **options)
        return TransformationResult(
            transformation=self.name, kind=self.kind, output=output,
            source_level=self.source_level, target_level=self.target_level,
            details=details, report=applicability)

    def _transform(self, subject: Any, **options: Any):
        raise NotImplementedError

    def apply_and_record(self, subject: Any, model: AutoModeModel,
                         **options: Any) -> TransformationResult:
        """Apply the step and append it to the model's audit trail."""
        result = self.apply(subject, **options)
        model.record(self.name, str(self.kind), self.source_level,
                     self.target_level, **result.details)
        return result

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, kind={self.kind})"


class TransformationPipeline:
    """A sequence of transformation steps applied one after the other.

    Each step receives the output of the previous step.  The pipeline
    collects all results so the full derivation of a concrete model from an
    abstract one can be inspected.
    """

    def __init__(self, name: str, steps: Optional[List[Transformation]] = None):
        self.name = name
        self.steps: List[Transformation] = list(steps or [])
        self.results: List[TransformationResult] = []

    def add_step(self, step: Transformation) -> "TransformationPipeline":
        self.steps.append(step)
        return self

    def run(self, subject: Any, model: Optional[AutoModeModel] = None,
            **options: Any) -> TransformationResult:
        """Run all steps; returns the final result."""
        if not self.steps:
            raise TransformationError(f"pipeline {self.name!r} has no steps")
        self.results = []
        current = subject
        result: Optional[TransformationResult] = None
        for step in self.steps:
            if model is not None:
                result = step.apply_and_record(current, model, **options)
            else:
                result = step.apply(current, **options)
            self.results.append(result)
            current = result.output
        assert result is not None
        return result

    def describe(self) -> str:
        lines = [f"pipeline {self.name!r}:"]
        for step in self.steps:
            lines.append(f"  - {step.kind}: {step.name}")
        if self.results:
            lines.append("  results:")
            lines.extend(f"    {result.describe()}" for result in self.results)
        return "\n".join(lines)
