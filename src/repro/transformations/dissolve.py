"""SSD-to-CCD transition: dissolving top SSD hierarchies (paper Sec. 3.3).

"When transitioning from an SSD representation on the FDA level to a
LA-level CCD, some of the topmost SSD hierarchies may be dissolved in favor
of a flat CCD representation."

:func:`dissolve_to_ccd` takes an FDA-level SSD and produces a flat
:class:`ClusterCommunicationDiagram`: every (remaining) top-level component
becomes one cluster with the component as its internal behaviour, the SSD
channels become inter-cluster channels (keeping their delay), and every
cluster is assigned an explicit periodic rate -- either from the supplied
rate map or from the component's ``rate`` annotation, falling back to the
base period.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core.clocks import Clock, every
from ..core.errors import TransformationError
from ..core.types import FLOAT
from ..core.model import AbstractionLevel
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from ..notations.ssd import SSDComponent
from ..core.components import CompositeComponent
from .base import Transformation, TransformationKind
from .refactoring import flatten_hierarchy


def dissolve_to_ccd(ssd: SSDComponent,
                    rates: Optional[Mapping[str, int]] = None,
                    dissolve_levels: int = 0,
                    name: Optional[str] = None) -> ClusterCommunicationDiagram:
    """Produce a flat CCD from an FDA-level SSD.

    *rates* maps component names to rate periods (in base ticks);
    *dissolve_levels* > 0 first flattens that many levels of nested SSD
    hierarchy so that more fine-grained clusters result.
    """
    rates = dict(rates or {})
    working = ssd
    for _ in range(dissolve_levels):
        nested = [component.name for component in working.subcomponents()
                  if isinstance(component, CompositeComponent)
                  and isinstance(component, SSDComponent)]
        if not nested:
            break
        flatten_hierarchy(working, nested)

    ccd = ClusterCommunicationDiagram(name or f"{ssd.name}_CCD",
                                      description=f"flat CCD dissolved from "
                                                  f"SSD {ssd.name!r}")
    for port in ssd.input_ports():
        ccd.add_input(port.name, port.port_type, port.clock, port.description)
    for port in ssd.output_ports():
        ccd.add_output(port.name, port.port_type, port.clock, port.description)

    for component in working.subcomponents():
        period = rates.get(component.name,
                           int(component.annotations.get("rate", 1)))
        cluster = Cluster(f"C_{component.name}", rate=every(period),
                          description=f"cluster around {component.name!r}")
        cluster.annotations["members"] = [component.name]
        # Dynamically typed FDA ports (e.g. of reengineered MTDs) default to
        # float physical signals on the statically typed LA interface.
        for port in component.input_ports():
            port_type = port.port_type if port.is_statically_typed() else FLOAT
            cluster.add_input(port.name, port_type, cluster.rate,
                              port.description)
        for port in component.output_ports():
            port_type = port.port_type if port.is_statically_typed() else FLOAT
            cluster.add_output(port.name, port_type, cluster.rate,
                               port.description)
        cluster.add_subcomponent(component)
        for port in component.input_ports():
            cluster.connect(port.name, f"{component.name}.{port.name}")
        for port in component.output_ports():
            cluster.connect(f"{component.name}.{port.name}", port.name)
        ccd.add_cluster(cluster)

    for channel in working.channels():
        source = (channel.source.port if channel.source.is_boundary()
                  else f"C_{channel.source.component}.{channel.source.port}")
        destination = (channel.destination.port
                       if channel.destination.is_boundary()
                       else f"C_{channel.destination.component}."
                            f"{channel.destination.port}")
        ccd.connect(source, destination, delayed=channel.delayed,
                    initial_value=channel.initial_value)
    return ccd


class DissolveToCcd(Transformation):
    """SSD (FDA) -> flat CCD (LA) as a recorded refinement step."""

    name = "dissolve-ssd-to-ccd"
    kind = TransformationKind.REFINEMENT
    source_level = AbstractionLevel.FDA
    target_level = AbstractionLevel.LA

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, SSDComponent):
            report.error(self.name, "subject must be an FDA-level SSD")
        elif not subject.subcomponents():
            report.error(self.name, "the SSD has no components to cluster")
        return report

    def _transform(self, subject: SSDComponent, **options):
        ccd = dissolve_to_ccd(subject, rates=options.get("rates"),
                              dissolve_levels=options.get("dissolve_levels", 0),
                              name=options.get("name"))
        return ccd, {"clusters": len(ccd.clusters()),
                     "channels": len(ccd.channels())}
