"""Formalised transformation steps of the AutoMoDe methodology (Sec. 4).

* :mod:`repro.transformations.base` -- the framework and classification
* :mod:`repro.transformations.reengineering` -- white-box / black-box lifts
* :mod:`repro.transformations.refactoring` -- same-level restructurings
* :mod:`repro.transformations.mtd_to_dataflow` -- the Sec.-3.3 algorithm
* :mod:`repro.transformations.dissolve` -- SSD hierarchy to flat CCD
* :mod:`repro.transformations.clustering` -- clock-based clustering
* :mod:`repro.transformations.refinement` -- implementation-type choice
* :mod:`repro.transformations.deployment` -- CCD to ECUs/tasks/CAN
"""

from .base import (Transformation, TransformationKind, TransformationPipeline,
                   TransformationResult)
from .clustering import ClockBasedClustering, block_period, cluster_by_clock
from .deployment import ClusterDeployment, DeploymentResult, deploy
from .dissolve import DissolveToCcd, dissolve_to_ccd
from .mtd_to_dataflow import (ModeActivatedBehavior, ModeControllerBlock,
                              MtdToDataflowTransformation, PresentMerge,
                              transform_mtd_to_dataflow, verify_equivalence)
from .reengineering import (BlackBoxReengineering, WhiteBoxReengineering,
                            blackbox_reengineer, literal_bindings,
                            reengineer_module, reengineer_process,
                            reengineer_project, statements_to_expressions,
                            substitute)
from .refactoring import (FlattenHierarchyRefactoring,
                          IntroduceCoordinatorRefactoring,
                          MtdToModePortsRefactoring, flatten_hierarchy,
                          introduce_coordinator, mtd_to_mode_port_dfds)
from .refinement import (SignalTypeRefinement, quantization_report,
                         refine_signal_types)

__all__ = [
    "BlackBoxReengineering", "ClockBasedClustering", "ClusterDeployment",
    "DeploymentResult", "DissolveToCcd", "FlattenHierarchyRefactoring",
    "IntroduceCoordinatorRefactoring", "ModeActivatedBehavior",
    "ModeControllerBlock", "MtdToDataflowTransformation",
    "MtdToModePortsRefactoring", "PresentMerge", "SignalTypeRefinement",
    "Transformation", "TransformationKind", "TransformationPipeline",
    "TransformationResult", "WhiteBoxReengineering", "blackbox_reengineer",
    "block_period", "cluster_by_clock", "deploy", "dissolve_to_ccd",
    "flatten_hierarchy", "introduce_coordinator", "literal_bindings",
    "mtd_to_mode_port_dfds", "quantization_report", "reengineer_module",
    "reengineer_process", "reengineer_project", "refine_signal_types",
    "statements_to_expressions", "substitute", "transform_mtd_to_dataflow",
    "verify_equivalence",
]
