"""Reengineering transformations (paper Sec. 4 and 5).

"Reengineering is seen as the step to extract the relevant information from a
system description on the implementation level in order to describe the
system on a more abstract level (FAA or FDA).  Two classes of reengineering
steps are considered":

* **white-box reengineering** works on complete software implementations
  (ASCET-SD models).  Here it lifts an :class:`~repro.ascet.model.AscetModule`
  to an FDA-level component: processes with If-Then-Else control flow are
  turned into :class:`ModeTransitionDiagram` components whose implicit modes
  have become explicit (the ThrottleRateOfChange example of Fig. 8), plain
  processes become expression blocks.

* **black-box reengineering** works on E/E architecture representations such
  as communication matrices and produces a *partial* FAA-level model: one
  component per function with the ports and channels implied by the signals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.components import Component, ExpressionComponent
from ..core.errors import TransformationError
from ..core.expressions import (BinaryOp, Call, Conditional, Expression,
                                Literal, Present, UnaryOp, Variable)
from ..core.model import AbstractionLevel
from ..core.types import FLOAT
from ..notations.mtd import ModeTransitionDiagram
from ..notations.ssd import SSDComponent
from ..ascet.comm_matrix import CommunicationMatrix
from ..ascet.importer import find_implicit_modes
from ..ascet.model import (AscetModule, AscetProcess, AscetProject, Assignment,
                           IfThenElse, Statement)
from .base import Transformation, TransformationKind


# --------------------------------------------------------------------------
# expression manipulation helpers
# --------------------------------------------------------------------------

def substitute(expression: Expression,
               bindings: Mapping[str, Expression]) -> Expression:
    """Replace free variables of *expression* by the bound expressions."""
    if isinstance(expression, Variable):
        return bindings.get(expression.name, expression)
    if isinstance(expression, Literal):
        return expression
    if isinstance(expression, Present):
        return expression
    if isinstance(expression, UnaryOp):
        return UnaryOp(expression.op, substitute(expression.operand, bindings))
    if isinstance(expression, BinaryOp):
        return BinaryOp(expression.op,
                        substitute(expression.left, bindings),
                        substitute(expression.right, bindings))
    if isinstance(expression, Conditional):
        return Conditional(substitute(expression.condition, bindings),
                           substitute(expression.then_branch, bindings),
                           substitute(expression.else_branch, bindings))
    if isinstance(expression, Call):
        return Call(expression.function,
                    tuple(substitute(arg, bindings) for arg in expression.arguments))
    raise TransformationError(f"cannot substitute in node {expression!r}")


def literal_bindings(values: Mapping[str, Any]) -> Dict[str, Expression]:
    """Turn a parameter dictionary into literal substitution bindings."""
    return {name: Literal(value) for name, value in values.items()}


def statements_to_expressions(statements: Sequence[Statement],
                              bindings: Optional[Dict[str, Expression]] = None
                              ) -> Dict[str, Expression]:
    """Convert sequential statements into a map ``target -> expression``.

    Assignments are inlined left to right; nested If-Then-Else statements
    become conditional expressions.  A branch that leaves a target unassigned
    while the other branch assigns it is only supported when the target was
    already assigned before (the previous value is used), otherwise the
    conversion is rejected -- such a process retains state across activations
    and must be reengineered into a stateful block instead.
    """
    environment: Dict[str, Expression] = dict(bindings or {})
    assigned: Dict[str, Expression] = {}

    def run(block: Sequence[Statement]) -> None:
        for statement in block:
            if isinstance(statement, Assignment):
                value = substitute(statement.expression, environment)
                environment[statement.target] = value
                assigned[statement.target] = value
            elif isinstance(statement, IfThenElse):
                condition = substitute(statement.condition, environment)
                then_env = dict(environment)
                else_env = dict(environment)
                then_assigned = _branch(statement.then_branch, then_env)
                else_assigned = _branch(statement.else_branch, else_env)
                for target in sorted(set(then_assigned) | set(else_assigned)):
                    then_value = then_assigned.get(target)
                    else_value = else_assigned.get(target)
                    if then_value is None or else_value is None:
                        previous = environment.get(target)
                        if previous is None:
                            raise TransformationError(
                                f"target {target!r} is assigned in only one "
                                "branch and has no previous value; the process "
                                "is stateful and cannot be converted to a "
                                "stateless expression")
                        then_value = then_value if then_value is not None else previous
                        else_value = else_value if else_value is not None else previous
                    merged = Conditional(condition, then_value, else_value)
                    environment[target] = merged
                    assigned[target] = merged
            else:  # pragma: no cover - only two statement kinds exist
                raise TransformationError(
                    f"unsupported statement {type(statement).__name__}")

    def _branch(block: Sequence[Statement],
                env: Dict[str, Expression]) -> Dict[str, Expression]:
        saved_environment = dict(environment)
        saved_assigned = dict(assigned)
        environment.clear()
        environment.update(env)
        assigned.clear()
        run(block)
        branch_assigned = dict(assigned)
        environment.clear()
        environment.update(saved_environment)
        assigned.clear()
        assigned.update(saved_assigned)
        return branch_assigned

    run(statements)
    return assigned


# --------------------------------------------------------------------------
# white-box reengineering
# --------------------------------------------------------------------------

def reengineer_process(module: AscetModule, process: AscetProcess,
                       mode_names: Optional[Sequence[str]] = None,
                       component_name: Optional[str] = None) -> Component:
    """Lift one ASCET process to an FDA-level component.

    A process with top-level If-Then-Else control flow becomes an MTD whose
    modes correspond to the implicit modes of the process; a straight-line
    process becomes a single expression block.  Calibration parameters are
    inlined as literals.
    """
    name = component_name or f"{module.name}_{process.name}"
    parameter_bindings = literal_bindings(module.parameters)
    inputs = sorted(module.receive_messages)
    outputs = sorted(module.send_messages)

    top_level_ifs = [statement for statement in process.statements
                     if isinstance(statement, IfThenElse)]
    if not top_level_ifs:
        expressions = statements_to_expressions(process.statements,
                                                parameter_bindings)
        sent = {target: expression for target, expression in expressions.items()
                if target in module.send_messages}
        component = ExpressionComponent(name, sent,
                                        description=f"reengineered from ASCET "
                                                    f"process {process.name!r}")
        for input_name in inputs:
            if any(input_name in expr.variables() for expr in sent.values()):
                component.add_input(input_name)
        for output_name in sent:
            component.add_output(output_name)
        component.annotate("reengineered_from", f"{module.name}.{process.name}")
        return component

    if len(top_level_ifs) > 1:
        raise TransformationError(
            f"process {process.name!r} has {len(top_level_ifs)} top-level "
            "If-Then-Else statements; reengineer them one at a time (split the "
            "process) or nest them explicitly")

    implicit_modes = find_implicit_modes(process, mode_names)
    mtd = ModeTransitionDiagram(name,
                                description=f"explicit modes of ASCET process "
                                            f"{process.name!r} (white-box "
                                            "reengineering)")
    mode_expressions: Dict[str, Dict[str, Expression]] = {}
    for implicit in implicit_modes:
        expressions = statements_to_expressions(implicit.statements,
                                                parameter_bindings)
        sent = {target: expression for target, expression in expressions.items()
                if target in module.send_messages}
        mode_expressions[implicit.name] = sent

    produced_outputs = sorted({target for sent in mode_expressions.values()
                               for target in sent})
    parameter_names = set(module.parameters)
    used_inputs: List[str] = []

    def note_input(variable: str) -> None:
        if (variable not in parameter_names and variable not in produced_outputs
                and variable not in used_inputs):
            used_inputs.append(variable)

    for sent in mode_expressions.values():
        for expression in sent.values():
            for variable in expression.variables():
                note_input(variable)
    for implicit in implicit_modes:
        if implicit.condition is None:
            continue
        for variable in substitute(implicit.condition,
                                   parameter_bindings).variables():
            note_input(variable)

    for input_name in sorted(used_inputs):
        mtd.add_input(input_name)
    for output_name in produced_outputs:
        mtd.add_output(output_name)
    mtd.add_output(ModeTransitionDiagram.MODE_PORT)

    for index, implicit in enumerate(implicit_modes):
        behavior = ExpressionComponent(f"{implicit.name}_behavior",
                                       mode_expressions[implicit.name])
        for expression in mode_expressions[implicit.name].values():
            for variable in expression.variables():
                if variable in used_inputs and not behavior.has_port(variable):
                    behavior.add_input(variable)
        for output_name in mode_expressions[implicit.name]:
            behavior.add_output(output_name)
        mtd.add_mode(implicit.name, behavior, initial=(index == 0),
                     description=f"implicit mode of {process.name!r}")

    # Transitions: a mode is entered whenever its condition holds (the ASCET
    # process re-evaluates the condition on every activation).
    for source in implicit_modes:
        for target in implicit_modes:
            if source.name == target.name or target.condition is None:
                continue
            guard = substitute(target.condition, parameter_bindings) \
                if parameter_names & set(target.condition.variables()) \
                else target.condition
            mtd.add_transition(source.name, target.name, guard,
                               description=f"condition of {target.name}")
    mtd.annotate("reengineered_from", f"{module.name}.{process.name}")
    return mtd


def reengineer_module(module: AscetModule,
                      mode_names: Optional[Dict[str, Sequence[str]]] = None,
                      name: Optional[str] = None) -> Component:
    """Lift a whole ASCET module to an FDA-level component.

    Single-process modules yield the reengineered process component directly
    (renamed after the module); multi-process modules yield an SSD containing
    one reengineered component per process, with the module's messages as
    boundary ports.
    """
    processes = module.process_list()
    if not processes:
        raise TransformationError(f"module {module.name!r} has no processes")
    mode_names = mode_names or {}
    if len(processes) == 1:
        return reengineer_process(module, processes[0],
                                  mode_names.get(processes[0].name),
                                  component_name=name or module.name)

    container = SSDComponent(name or module.name,
                             description=f"reengineered ASCET module "
                                         f"{module.name!r}")
    for message in sorted(module.receive_messages):
        container.add_typed_input(message, FLOAT)
    for message in sorted(module.send_messages):
        container.add_typed_output(message, FLOAT)
    for process in processes:
        component = reengineer_process(module, process,
                                       mode_names.get(process.name))
        container.add_subcomponent(component)
        for input_name in component.input_names():
            if input_name in module.receive_messages:
                container.connect(input_name, f"{component.name}.{input_name}",
                                  delayed=False)
        for output_name in component.output_names():
            if output_name in module.send_messages:
                container.connect(f"{component.name}.{output_name}", output_name,
                                  delayed=False)
    container.annotate("reengineered_from", module.name)
    return container


def reengineer_project(project: AscetProject,
                       mode_names: Optional[Dict[str, Dict[str, Sequence[str]]]] = None,
                       name: Optional[str] = None) -> SSDComponent:
    """Lift an ASCET project to an FDA-level SSD.

    One reengineered component per module; channels are created wherever one
    module sends a message that another module receives (same message name).
    Unmatched messages become boundary ports of the SSD.
    """
    mode_names = mode_names or {}
    ssd = SSDComponent(name or f"{project.name}_FDA",
                       description=f"white-box reengineering of ASCET project "
                                   f"{project.name!r}")
    components: Dict[str, Component] = {}
    for module in project.module_list():
        component = reengineer_module(module, mode_names.get(module.name))
        components[module.name] = component
        ssd.add_subcomponent(component)

    senders: Dict[str, Tuple[str, str]] = {}
    for module in project.module_list():
        component = components[module.name]
        for message in module.send_messages:
            if component.has_port(message):
                senders[message] = (component.name, message)

    connected_inputs = set()
    for module in project.module_list():
        component = components[module.name]
        for message in module.receive_messages:
            if not component.has_port(message):
                continue
            if message in senders:
                source_component, source_port = senders[message]
                ssd.connect(f"{source_component}.{source_port}",
                            f"{component.name}.{message}", delayed=True)
                connected_inputs.add((component.name, message))
            else:
                if not ssd.has_port(message):
                    ssd.add_typed_input(message, FLOAT)
                ssd.connect(message, f"{component.name}.{message}")
    for message, (component_name, port_name) in sorted(senders.items()):
        if not ssd.has_port(message):
            ssd.add_typed_output(message, FLOAT)
            ssd.connect(f"{component_name}.{port_name}", message)
    ssd.annotate("reengineered_from", project.name)
    return ssd


# --------------------------------------------------------------------------
# black-box reengineering
# --------------------------------------------------------------------------

def blackbox_reengineer(matrix: CommunicationMatrix,
                        name: Optional[str] = None) -> SSDComponent:
    """Build a partial FAA-level SSD from a communication matrix.

    Every function named in the matrix becomes a structure-only component;
    every signal becomes a typed output port of its sender, input ports of
    its receivers, and one channel per receiver.  Behaviour stays
    unspecified, which is legal on the FAA level.
    """
    ssd = SSDComponent(name or f"{matrix.name}_FAA",
                       description=f"partial FAA model derived from "
                                   f"communication matrix {matrix.name!r} "
                                   "(black-box reengineering)")
    components: Dict[str, Component] = {}
    for function in matrix.functions():
        component = Component(function,
                              description="function recovered from the "
                                          "communication matrix")
        component.annotate("reengineered_from", matrix.name)
        components[function] = component
        ssd.add_subcomponent(component)
    for entry in matrix.entries():
        sender = components[entry.sender]
        if not sender.has_port(entry.signal):
            sender.add_output(entry.signal, FLOAT)
        for receiver_name in entry.receivers:
            receiver = components[receiver_name]
            port_name = entry.signal
            if not receiver.has_port(port_name):
                receiver.add_input(port_name, FLOAT)
            ssd.connect(f"{entry.sender}.{entry.signal}",
                        f"{receiver_name}.{port_name}", delayed=True)
    return ssd


# --------------------------------------------------------------------------
# transformation-step wrappers
# --------------------------------------------------------------------------

class WhiteBoxReengineering(Transformation):
    """ASCET module/project -> FDA component (Sec. 4, validated in Sec. 5)."""

    name = "white-box-reengineering"
    kind = TransformationKind.REENGINEERING
    source_level = AbstractionLevel.OA
    target_level = AbstractionLevel.FDA

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, (AscetModule, AscetProject)):
            report.error(self.name, "subject must be an ASCET module or project")
        return report

    def _transform(self, subject, **options):
        mode_names = options.get("mode_names")
        if isinstance(subject, AscetProject):
            output = reengineer_project(subject, mode_names)
            details = {"modules": len(subject.module_list())}
        else:
            output = reengineer_module(subject, mode_names)
            details = {"processes": len(subject.process_list()),
                       "implicit_if_then_else": subject.if_then_else_count()}
        return output, details


class BlackBoxReengineering(Transformation):
    """Communication matrix -> partial FAA model (Sec. 4)."""

    name = "black-box-reengineering"
    kind = TransformationKind.REENGINEERING
    source_level = AbstractionLevel.TA
    target_level = AbstractionLevel.FAA

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, CommunicationMatrix):
            report.error(self.name, "subject must be a communication matrix")
        elif len(subject) == 0:
            report.error(self.name, "the communication matrix is empty")
        return report

    def _transform(self, subject: CommunicationMatrix, **options):
        output = blackbox_reengineer(subject)
        details = {"functions": len(subject.functions()),
                   "signals": len(subject)}
        return output, details
