"""MTD to partitionable data-flow transformation (paper Sec. 3.3).

"In order to represent high-level MTDs as a network of clusters on the LA
level, the AutoMoDe tool prototype features an algorithm to transform an MTD
into a semantically equivalent, partitionable data-flow model."

The algorithm implemented here produces a flat :class:`DataFlowDiagram` with

* one **mode controller** block holding the transition logic and emitting the
  active mode on an explicit ``mode`` flow,
* one **mode-activated behaviour** block per mode, which steps the original
  mode behaviour only while its mode is selected (state is frozen otherwise)
  and emits absence when inactive,
* one **merge** block per MTD output that forwards whichever activated
  behaviour produced a value.

Because each of these blocks is an ordinary data-flow block with explicit
ports, the result can be cut along any channel -- i.e. it is *partitionable*
into clusters, unlike the monolithic MTD.  Semantic equivalence is checked
by simulation (see :func:`verify_equivalence`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.components import Component, StatefulComponent
from ..core.errors import TransformationError
from ..core.expr_eval import ExpressionEvaluator
from ..core.model import AbstractionLevel
from ..core.values import ABSENT, is_present
from ..notations.dfd import DataFlowDiagram
from ..notations.mtd import ModeTransitionDiagram
from ..simulation.engine import simulate
from ..simulation.trace import first_difference, traces_equivalent
from .base import Transformation, TransformationKind


class ModeControllerBlock(StatefulComponent):
    """Data-flow block computing the active mode from the MTD's transitions."""

    direct_feedthrough = True

    def __init__(self, mtd: ModeTransitionDiagram, name: Optional[str] = None):
        super().__init__(name or f"{mtd.name}_ModeController",
                         description=f"mode controller extracted from MTD {mtd.name!r}")
        self._transitions_from = {mode.name: mtd.transitions_from(mode.name)
                                  for mode in mtd.modes()}
        self._initial_mode = mtd.initial_mode
        self._evaluator = ExpressionEvaluator()
        for input_name in mtd.input_names():
            self.add_input(input_name)
        self.add_output("mode")

    def initial_state(self):
        return self._initial_mode

    def step(self, inputs, state, tick):
        current = state or self._initial_mode
        environment = dict(inputs)
        for transition in self._transitions_from.get(current, []):
            value = self._evaluator.evaluate(transition.guard, environment)
            if is_present(value) and bool(value):
                current = transition.target
                break
        return {"mode": current}, current

    def instantaneous_dependencies(self):
        return {"mode": set(self.input_names())}


class ModeActivatedBehavior(StatefulComponent):
    """Wraps one mode's behaviour; active only when the mode flow selects it."""

    direct_feedthrough = True
    MODE_INPUT = "mode_sel"

    def __init__(self, mode_name: str, behavior: Optional[Component],
                 mtd_inputs: List[str], mtd_outputs: List[str],
                 name: Optional[str] = None):
        super().__init__(name or f"Behavior_{mode_name}",
                         description=f"behaviour of mode {mode_name!r} with an "
                                     "explicit mode port")
        self.mode_name = mode_name
        self.behavior = behavior
        self._outputs = list(mtd_outputs)
        self.add_input(self.MODE_INPUT)
        behavior_inputs = behavior.input_names() if behavior is not None else []
        for input_name in mtd_inputs:
            if input_name in behavior_inputs:
                self.add_input(input_name)
        for output_name in self._outputs:
            self.add_output(output_name)

    def initial_state(self):
        return self.behavior.initial_state() if self.behavior is not None else None

    def step(self, inputs, state, tick):
        outputs = {name: ABSENT for name in self.output_names()}
        selected = inputs.get(self.MODE_INPUT)
        if not is_present(selected) or selected != self.mode_name:
            return outputs, state
        if self.behavior is None:
            return outputs, state
        behavior_inputs = {name: inputs.get(name, ABSENT)
                           for name in self.behavior.input_names()}
        behavior_outputs, new_state = self.behavior.react(behavior_inputs, state, tick)
        for name, value in behavior_outputs.items():
            if name in outputs:
                outputs[name] = value
        return outputs, new_state

    def instantaneous_dependencies(self):
        return {name: set(self.input_names()) for name in self.output_names()}


class PresentMerge(Component):
    """Forwards the first present input (the outputs of the mode behaviours)."""

    def __init__(self, name: str, n_inputs: int):
        super().__init__(name, description="merge of mutually exclusive flows")
        if n_inputs < 1:
            raise TransformationError("PresentMerge needs at least one input")
        for index in range(1, n_inputs + 1):
            self.add_input(f"in{index}")
        self.add_output("out")

    def react(self, inputs, state, tick):
        for name in self.input_names():
            value = inputs[name]
            if is_present(value):
                return {"out": value}, state
        return {"out": ABSENT}, state


class MtdToDataflowTransformation(Transformation):
    """The Sec.-3.3 algorithm as a refinement-kind transformation step."""

    name = "mtd-to-partitionable-dataflow"
    kind = TransformationKind.REFINEMENT
    source_level = AbstractionLevel.FDA
    target_level = AbstractionLevel.LA

    def check_applicable(self, subject):
        report = super().check_applicable(subject)
        if not isinstance(subject, ModeTransitionDiagram):
            report.error("mtd-to-dataflow", "subject is not an MTD")
            return report
        if not subject.modes():
            report.error("mtd-to-dataflow", "the MTD has no modes")
        for mode in subject.modes():
            if mode.behavior is not None and not mode.behavior.has_behavior():
                report.error("mtd-to-dataflow",
                             f"mode {mode.name!r} has a non-executable behaviour")
        return report

    def _transform(self, subject: ModeTransitionDiagram, **options):
        dfd = transform_mtd_to_dataflow(subject)
        details = {
            "modes": len(subject.modes()),
            "transitions": len(subject.transitions()),
            "generated_blocks": len(dfd.subcomponents()),
            "generated_channels": len(dfd.channels()),
        }
        return dfd, details


def transform_mtd_to_dataflow(mtd: ModeTransitionDiagram,
                              name: Optional[str] = None) -> DataFlowDiagram:
    """Build the semantically equivalent, partitionable data-flow model."""
    if not mtd.modes():
        raise TransformationError(f"MTD {mtd.name!r} has no modes to transform")
    dfd = DataFlowDiagram(name or f"{mtd.name}_dataflow",
                          description=f"partitionable data-flow form of MTD "
                                      f"{mtd.name!r}")
    for port in mtd.input_ports():
        dfd.add_input(port.name, port.port_type, port.clock, port.description)
    for port in mtd.output_ports():
        dfd.add_output(port.name, port.port_type, port.clock, port.description)

    data_outputs = [name for name in mtd.output_names()
                    if name != ModeTransitionDiagram.MODE_PORT]

    controller = ModeControllerBlock(mtd)
    dfd.add_subcomponent(controller)
    for input_name in controller.input_names():
        dfd.connect(input_name, f"{controller.name}.{input_name}")
    if ModeTransitionDiagram.MODE_PORT in mtd.output_names():
        dfd.connect(f"{controller.name}.mode", ModeTransitionDiagram.MODE_PORT)

    behavior_blocks: List[ModeActivatedBehavior] = []
    for mode in mtd.modes():
        block = ModeActivatedBehavior(mode.name, mode.behavior,
                                      mtd.input_names(), data_outputs)
        dfd.add_subcomponent(block)
        behavior_blocks.append(block)
        dfd.connect(f"{controller.name}.mode",
                    f"{block.name}.{ModeActivatedBehavior.MODE_INPUT}")
        for input_name in block.input_names():
            if input_name == ModeActivatedBehavior.MODE_INPUT:
                continue
            dfd.connect(input_name, f"{block.name}.{input_name}")

    for output_name in data_outputs:
        merge = PresentMerge(f"Merge_{output_name}", len(behavior_blocks))
        dfd.add_subcomponent(merge)
        for index, block in enumerate(behavior_blocks, start=1):
            dfd.connect(f"{block.name}.{output_name}", f"{merge.name}.in{index}")
        dfd.connect(f"{merge.name}.out", output_name)
    return dfd


def verify_equivalence(mtd: ModeTransitionDiagram, dataflow: DataFlowDiagram,
                       stimuli: Mapping[str, Any], ticks: int = 50,
                       tolerance: float = 0.0) -> Tuple[bool, Optional[Dict]]:
    """Simulate both models on the same stimuli and compare their traces."""
    trace_mtd = simulate(mtd, stimuli, ticks)
    trace_dfd = simulate(dataflow, stimuli, ticks)
    signals = [name for name in mtd.output_names()]
    equivalent = traces_equivalent(trace_mtd, trace_dfd, signals, tolerance)
    difference = None if equivalent else first_difference(trace_mtd, trace_dfd, signals)
    return equivalent, difference
