"""Analysis of ASCET models in preparation of white-box reengineering.

The case study (paper Sec. 5) observes that ASCET processes hide operation
modes inside If-Then-Else control flow and flag variables: "implicit modes of
ASCET processes can be made explicit to the developer by using MTDs, rather
than control flow operators such as If-Then-Else."  The importer analyses a
module's processes and recovers the *implicit mode structure*:

* :func:`find_mode_conditions` -- the distinct top-level branch conditions,
* :func:`find_implicit_modes` -- candidate modes: one per top-level branch of
  the outermost If-Then-Else statements (e.g. ``FuelEnabled`` vs.
  ``CrankingOverrun`` for the ThrottleRateOfChange process),
* :func:`find_flags` -- boolean sent messages ("flags") that encode state,
* :func:`module_interface` -- the port interface the reengineered component
  will carry.

The actual construction of the AutoMoDe component (MTD + per-mode DFDs) is
performed by :mod:`repro.transformations.reengineering`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.expressions import Expression, UnaryOp
from .model import AscetModule, AscetProcess, Assignment, IfThenElse, Statement


@dataclass
class ImplicitMode:
    """One recovered implicit mode of an ASCET process."""

    name: str
    condition: Optional[Expression]
    statements: List[Statement] = field(default_factory=list)
    process: str = ""

    def assigned_messages(self) -> List[str]:
        names: List[str] = []
        for statement in self.statements:
            names.extend(statement.targets())
        return sorted(set(names))

    def describe(self) -> str:
        guard = self.condition.to_source() if self.condition is not None else "otherwise"
        return f"{self.name}: when {guard} (assigns {', '.join(self.assigned_messages())})"


@dataclass
class ModuleAnalysis:
    """Aggregate result of analysing one ASCET module."""

    module: str
    implicit_modes: List[ImplicitMode] = field(default_factory=list)
    mode_conditions: List[Expression] = field(default_factory=list)
    flags: List[str] = field(default_factory=list)
    if_then_else_count: int = 0
    max_if_depth: int = 0

    def mode_count(self) -> int:
        return len(self.implicit_modes)

    def describe(self) -> str:
        lines = [f"analysis of ASCET module {self.module!r}:",
                 f"  If-Then-Else operators: {self.if_then_else_count} "
                 f"(max nesting depth {self.max_if_depth})",
                 f"  state flags: {', '.join(self.flags) if self.flags else '(none)'}",
                 f"  implicit modes ({self.mode_count()}):"]
        lines.extend("    " + mode.describe() for mode in self.implicit_modes)
        return "\n".join(lines)


def find_mode_conditions(process: AscetProcess) -> List[Expression]:
    """Distinct branch conditions of the process, outermost first."""
    seen: List[Expression] = []
    for condition in process.conditions():
        if condition not in seen:
            seen.append(condition)
    return seen


def find_implicit_modes(process: AscetProcess,
                        mode_names: Optional[Sequence[str]] = None
                        ) -> List[ImplicitMode]:
    """Recover candidate modes from the outermost If-Then-Else statements.

    Every top-level ``IfThenElse`` contributes two candidate modes: one for
    the then-branch (guarded by the condition) and one for the else-branch
    (guarded by its negation).  Straight-line statements surrounding the
    conditional are shared by both modes and are kept in each candidate so
    the reengineered mode behaviours stay self-contained.
    """
    top_level_ifs = [statement for statement in process.statements
                     if isinstance(statement, IfThenElse)]
    shared = [statement for statement in process.statements
              if not isinstance(statement, IfThenElse)]
    modes: List[ImplicitMode] = []
    for index, conditional in enumerate(top_level_ifs):
        base = index * 2
        then_name = _mode_name(mode_names, base, f"{process.name}_Mode{base + 1}")
        else_name = _mode_name(mode_names, base + 1, f"{process.name}_Mode{base + 2}")
        modes.append(ImplicitMode(
            name=then_name,
            condition=conditional.condition,
            statements=shared + list(conditional.then_branch),
            process=process.name))
        modes.append(ImplicitMode(
            name=else_name,
            condition=UnaryOp("not", conditional.condition),
            statements=shared + list(conditional.else_branch),
            process=process.name))
    if not top_level_ifs and process.statements:
        modes.append(ImplicitMode(
            name=_mode_name(mode_names, 0, f"{process.name}_Default"),
            condition=None,
            statements=list(process.statements),
            process=process.name))
    return modes


def _mode_name(names: Optional[Sequence[str]], index: int, default: str) -> str:
    if names is not None and index < len(names):
        return names[index]
    return default


def find_flags(module: AscetModule) -> List[str]:
    """Boolean sent messages -- the 'large number of flags' of the case study."""
    return sorted(name for name, value in module.send_messages.items()
                  if isinstance(value, bool))


def module_interface(module: AscetModule) -> Tuple[List[str], List[str]]:
    """Input and output message names of the module (its future port list)."""
    return (sorted(module.receive_messages), sorted(module.send_messages))


def analyze_module(module: AscetModule,
                   mode_names: Optional[Dict[str, Sequence[str]]] = None
                   ) -> ModuleAnalysis:
    """Full implicit-mode analysis of one module.

    *mode_names* optionally maps a process name to the human-chosen names of
    its recovered modes (e.g. ``{"calc_rate": ["FuelEnabled",
    "CrankingOverrun"]}`` for the paper's Fig. 8).
    """
    analysis = ModuleAnalysis(module=module.name)
    analysis.flags = find_flags(module)
    for process in module.process_list():
        analysis.if_then_else_count += process.if_then_else_count()
        analysis.max_if_depth = max(analysis.max_if_depth, process.max_if_depth())
        names = (mode_names or {}).get(process.name)
        analysis.implicit_modes.extend(find_implicit_modes(process, names))
        for condition in find_mode_conditions(process):
            if condition not in analysis.mode_conditions:
                analysis.mode_conditions.append(condition)
    return analysis
