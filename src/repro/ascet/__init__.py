"""Simulated ASCET-SD substrate: source models, analysis and OA generation.

* :mod:`repro.ascet.model` -- ASCET-like modules, processes, If-Then-Else
  statements, projects and an interpreter (white-box reengineering source)
* :mod:`repro.ascet.importer` -- implicit-mode and flag analysis
* :mod:`repro.ascet.comm_matrix` -- communication matrices (black-box source)
* :mod:`repro.ascet.codegen` -- per-ECU ASCET-style project generation (OA)
"""

from .codegen import (AscetProjectGenerator, GeneratedProject, c_type_of,
                      expression_to_c)
from .comm_matrix import CommunicationMatrix, MatrixEntry
from .importer import (ImplicitMode, ModuleAnalysis, analyze_module,
                       find_flags, find_implicit_modes, find_mode_conditions,
                       module_interface)
from .model import (AscetInterpreter, AscetModule, AscetProcess, AscetProject,
                    AscetTask, Assignment, IfThenElse, Statement, assign,
                    if_then_else)

__all__ = [
    "AscetInterpreter", "AscetModule", "AscetProcess", "AscetProject",
    "AscetProjectGenerator", "AscetTask", "Assignment", "CommunicationMatrix",
    "GeneratedProject", "IfThenElse", "ImplicitMode", "MatrixEntry",
    "ModuleAnalysis", "Statement", "analyze_module", "assign", "c_type_of",
    "expression_to_c", "find_flags", "find_implicit_modes",
    "find_mode_conditions", "if_then_else", "module_interface",
]
