"""Operational Architecture generation: ASCET-SD-style projects per ECU.

Paper Sec. 3.4: "based on the deployment decisions, the AutoMoDe tool
prototype will generate ASCET-SD projects for each ECU of the target
architecture.  All signals between clusters deployed to different ECUs will
be mapped to a communication network, e.g. CAN ...  In all generated
ASCET-SD projects, additional communication components have to be added
which can be configured according to the generated or supplemented
communication matrix."

Because the commercial ASCET-SD tool is not available, the generator emits a
self-contained, human-readable project per ECU consisting of

* one C module per cluster (message declarations with implementation types,
  a ``<cluster>_init`` and a ``<cluster>_process`` function; expression
  blocks are translated to C expressions, library blocks to calls into a
  small runtime),
* an OIL-style OS configuration (tasks, priorities, periods, process lists),
* a CAN communication component configured from the communication matrix
  (send/receive tables per frame),
* a project manifest.

The output is a :class:`GeneratedProject` holding ``path -> content`` so the
result can be inspected in tests or written to disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.components import Component, CompositeComponent, ExpressionComponent
from ..core.errors import CodeGenError
from ..core.expressions import Expression
from ..core.types import Type
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from ..platform.can import CANBus
from ..platform.ecu import TechnicalArchitecture
from .comm_matrix import CommunicationMatrix

# The expression -> C translation is shared with the native simulation
# backend (repro.simulation.native); the single source of truth lives in
# repro.ascet.c_expr and is re-exported here for backward compatibility.
from .c_expr import _C_FUNCTIONS, _C_OPERATORS, c_type_of, expression_to_c

__all__ = ["AscetProjectGenerator", "GeneratedProject", "c_type_of",
           "expression_to_c"]


# --------------------------------------------------------------------------
# generated artefacts
# --------------------------------------------------------------------------

@dataclass
class GeneratedProject:
    """One generated per-ECU project: a named set of text files."""

    ecu: str
    files: Dict[str, str] = field(default_factory=dict)

    def add_file(self, path: str, content: str) -> None:
        if path in self.files:
            raise CodeGenError(f"project {self.ecu!r} already has file {path!r}")
        self.files[path] = content

    def file(self, path: str) -> str:
        try:
            return self.files[path]
        except KeyError as exc:
            raise CodeGenError(f"project {self.ecu!r} has no file {path!r}") from exc

    def file_names(self) -> List[str]:
        return sorted(self.files)

    def total_lines(self) -> int:
        return sum(content.count("\n") + 1 for content in self.files.values())

    def write_to(self, directory: str) -> List[str]:
        """Write all files below *directory*; returns the written paths."""
        written = []
        for path, content in sorted(self.files.items()):
            full_path = os.path.join(directory, self.ecu, path)
            os.makedirs(os.path.dirname(full_path), exist_ok=True)
            with open(full_path, "w", encoding="utf-8") as handle:
                handle.write(content)
            written.append(full_path)
        return written


class AscetProjectGenerator:
    """Generates one ASCET-style project per ECU of a deployment."""

    def __init__(self, ccd: ClusterCommunicationDiagram,
                 architecture: TechnicalArchitecture,
                 bus: Optional[CANBus] = None,
                 matrix: Optional[CommunicationMatrix] = None):
        self.ccd = ccd
        self.architecture = architecture
        self.bus = bus
        self.matrix = matrix

    # -- public API --------------------------------------------------------------
    def generate_all(self) -> Dict[str, GeneratedProject]:
        """Generate the project of every ECU in the technical architecture."""
        return {ecu.name: self.generate_for_ecu(ecu.name)
                for ecu in self.architecture.ecu_list()}

    def generate_for_ecu(self, ecu_name: str) -> GeneratedProject:
        ecu = self.architecture.ecu(ecu_name)
        project = GeneratedProject(ecu=ecu_name)
        cluster_names = ecu.cluster_names()
        clusters = [self.ccd.cluster(name) for name in cluster_names
                    if self.ccd.has_subcomponent(name)]
        for cluster in clusters:
            project.add_file(f"modules/{cluster.name}.c",
                             self._cluster_module(cluster))
            project.add_file(f"modules/{cluster.name}.h",
                             self._cluster_header(cluster))
        project.add_file("os/osek_config.oil", self._os_configuration(ecu_name))
        project.add_file("com/can_config.c", self._can_configuration(ecu_name))
        project.add_file("project.manifest", self._manifest(ecu_name, clusters))
        return project

    # -- module generation ----------------------------------------------------------
    def _signal_c_type(self, cluster: Cluster, port_name: str,
                       abstract: Type) -> str:
        impl = None
        if port_name in cluster.implementation:
            impl = cluster.implementation.lookup(port_name).implementation_type
        return c_type_of(impl, abstract)

    def _cluster_header(self, cluster: Cluster) -> str:
        guard = f"{cluster.name.upper()}_H"
        lines = [f"#ifndef {guard}", f"#define {guard}", "",
                 f"/* generated from AutoMoDe cluster {cluster.name!r} "
                 f"(rate every({cluster.period}, true)) */", ""]
        for port in cluster.input_ports():
            ctype = self._signal_c_type(cluster, port.name, port.port_type)
            lines.append(f"extern {ctype} {cluster.name}_{port.name};  "
                         f"/* receive message */")
        for port in cluster.output_ports():
            ctype = self._signal_c_type(cluster, port.name, port.port_type)
            lines.append(f"extern {ctype} {cluster.name}_{port.name};  "
                         f"/* send message */")
        lines.extend(["", f"void {cluster.name}_init(void);",
                      f"void {cluster.name}_process(void);", "",
                      f"#endif /* {guard} */", ""])
        return "\n".join(lines)

    def _cluster_module(self, cluster: Cluster) -> str:
        lines = [f'#include "{cluster.name}.h"',
                 '#include "automode_runtime.h"', "",
                 f"/* cluster {cluster.name}: {cluster.description or 'no description'} */",
                 ""]
        for port in cluster.ports():
            ctype = self._signal_c_type(cluster, port.name, port.port_type)
            lines.append(f"{ctype} {cluster.name}_{port.name};")
        state_declarations, body = self._cluster_body(cluster)
        lines.append("")
        lines.extend(state_declarations)
        lines.extend(["",
                      f"void {cluster.name}_init(void)", "{"])
        for declaration in state_declarations:
            name = declaration.split()[-1].rstrip(";")
            lines.append(f"    {name} = 0;")
        lines.extend(["}", "",
                      f"void {cluster.name}_process(void)", "{"])
        lines.extend("    " + line for line in body)
        lines.extend(["}", ""])
        return "\n".join(lines)

    def _cluster_body(self, cluster: Cluster) -> (List[str], List[str]):
        """Generate state declarations and process-body statements."""
        state_declarations: List[str] = []
        body: List[str] = []
        order = cluster.evaluation_order() if cluster.subcomponents() else []
        alias: Dict[str, str] = {}
        for port in cluster.input_ports():
            alias[port.name] = f"{cluster.name}_{port.name}"

        for block_name in order:
            block = cluster.subcomponent(block_name)
            inputs_of_block = {}
            for channel in cluster.channels():
                if channel.destination.component == block_name:
                    source = channel.source
                    if source.is_boundary():
                        inputs_of_block[channel.destination.port] = alias[source.port]
                    else:
                        inputs_of_block[channel.destination.port] = \
                            f"{source.component}_{source.port}"
            if isinstance(block, ExpressionComponent):
                for out_name, expression in block.output_expressions.items():
                    local = f"{block_name}_{out_name}"
                    body.append(f"float32 {local} = "
                                f"{self._rewrite(expression, inputs_of_block)};")
            else:
                for out_name in block.output_names():
                    local = f"{block_name}_{out_name}"
                    state = f"{block_name}_state"
                    if state + ";" not in [d.split()[-1] for d in state_declarations]:
                        state_declarations.append(f"static float32 {state};")
                    arguments = ", ".join(
                        inputs_of_block.get(name, "0")
                        for name in block.input_names())
                    runtime_call = (f"automode_rt_{type(block).__name__.lower()}"
                                    f"(&{state}{', ' if arguments else ''}{arguments})")
                    body.append(f"float32 {local} = {runtime_call};")
        # boundary outputs
        for channel in cluster.channels():
            if channel.destination.is_boundary():
                source = channel.source
                if source.is_boundary():
                    value = alias[source.port]
                else:
                    value = f"{source.component}_{source.port}"
                body.append(f"{cluster.name}_{channel.destination.port} = {value};")
        if not body:
            body.append("/* structure-only cluster: nothing to compute */")
        return state_declarations, body

    @staticmethod
    def _rewrite(expression: Expression, renaming: Mapping[str, str]) -> str:
        source = expression_to_c(expression)
        for name, replacement in sorted(renaming.items(), key=lambda x: -len(x[0])):
            source = source.replace(name, replacement)
        return source

    # -- OS / COM configuration -------------------------------------------------------
    def _os_configuration(self, ecu_name: str) -> str:
        ecu = self.architecture.ecu(ecu_name)
        lines = ["OIL_VERSION = \"2.5\";", "", "CPU %s {" % ecu_name,
                 "    OS osek_os {", "        STATUS = EXTENDED;",
                 "        SCHEDULE = FULL_PREEMPTIVE;", "    };", ""]
        for task in ecu.task_list():
            lines.extend([
                f"    TASK {task.name} {{",
                f"        PRIORITY = {task.priority};",
                "        AUTOSTART = TRUE;",
                f"        PERIOD = {task.period};",
                f"        /* activates: {', '.join(task.clusters) or '(none)'} */",
                "    };"])
        lines.extend(["};", ""])
        return "\n".join(lines)

    def _can_configuration(self, ecu_name: str) -> str:
        lines = ['#include "automode_runtime.h"', "",
                 f"/* CAN communication component of ECU {ecu_name} */", ""]
        if self.bus is None or self.matrix is None:
            lines.append("/* no inter-ECU communication configured */")
            lines.append("")
            return "\n".join(lines)
        sends: List[str] = []
        receives: List[str] = []
        for frame in self.bus.frame_list():
            for signal in frame.signals:
                sender_ecu = self.architecture.ecu_of_cluster(signal.sender_cluster)
                receiver_ecus = {self.architecture.ecu_of_cluster(name)
                                 for name in signal.receiver_clusters}
                if sender_ecu == ecu_name:
                    sends.append(f"    {{\"{signal.name}\", {frame.can_id:#05x}, "
                                 f"{signal.start_bit}, {signal.bits}}},")
                if ecu_name in receiver_ecus:
                    receives.append(f"    {{\"{signal.name}\", {frame.can_id:#05x}, "
                                    f"{signal.start_bit}, {signal.bits}}},")
        lines.append("const can_signal_entry can_tx_table[] = {")
        lines.extend(sends or ["    /* none */"])
        lines.extend(["};", "", "const can_signal_entry can_rx_table[] = {"])
        lines.extend(receives or ["    /* none */"])
        lines.extend(["};", ""])
        return "\n".join(lines)

    def _manifest(self, ecu_name: str, clusters: Sequence[Cluster]) -> str:
        lines = [f"project: {self.ccd.name}_{ecu_name}",
                 f"generated-by: AutoMoDe reproduction OA generator",
                 f"ecu: {ecu_name}",
                 f"clusters: {', '.join(cluster.name for cluster in clusters)}",
                 f"tasks: {', '.join(task.name for task in self.architecture.ecu(ecu_name).task_list())}",
                 f"bus: {self.bus.name if self.bus else '(none)'}"]
        return "\n".join(lines) + "\n"
