"""Expression-to-C translation shared by the OA generator and native backend.

Two consumers, two fidelity levels:

* :func:`expression_to_c` -- the ASCET-SD project generator's translation
  (:mod:`repro.ascet.codegen`): one base-language expression becomes one C
  expression over implementation-typed signals.  This is deliberately the
  *deployed-semantics* view of the paper's Sec. 3.4 pipeline: float32
  arithmetic, no ABSENT, enum literals as symbolic constants.

* :class:`TaggedEmitter` -- the native simulation backend's translation
  (:mod:`repro.simulation.native`): one expression becomes a C *statement
  sequence* over tagged values (ABSENT / int64 / double / bool / opaque
  object), replicating the Python evaluator semantics of
  :mod:`repro.core.expr_compile` **exactly** -- ABSENT propagation,
  short-circuit ``and``/``or`` returning genuine bools, int-exact
  division, Python's sign-of-divisor modulo -- or bailing out to a
  caller-supplied label whenever exact replication in int64/double is not
  possible (overflow, mixed int/float comparisons beyond 2^53, opaque
  operands, error paths that must raise the interpreter's exceptions).
  The bail-out contract is what makes the native backend safe: the C fast
  path either produces the closure-identical result or jumps to a label
  where the caller re-runs the op through the original Python closures.

:func:`lowerable_expression` is the static half of that contract: it
accepts exactly the expression shapes :class:`TaggedEmitter` can emit.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.errors import CodeGenError
from ..core.expr_eval import BUILTIN_FUNCTIONS
from ..core.expressions import (BinaryOp, Call, Conditional, Expression,
                                Literal, Present, UnaryOp, Variable)
from ..core.impl_types import (BOOL8, FixedPointType, ImplementationType,
                               ImplEnumType, MachineIntType)
from ..core.types import BoolType, EnumType, FloatType, IntType, Type

# --------------------------------------------------------------------------
# deployed-semantics translation (ASCET-SD generator)
# --------------------------------------------------------------------------

_C_OPERATORS = {"and": "&&", "or": "||", "==": "==", "!=": "!=", "<": "<",
                "<=": "<=", ">": ">", ">=": ">=", "+": "+", "-": "-",
                "*": "*", "/": "/", "%": "%"}

_C_FUNCTIONS = {"abs": "automode_abs", "min": "automode_min",
                "max": "automode_max", "limit": "automode_limit",
                "sqrt": "sqrtf", "floor": "floorf", "ceil": "ceilf",
                "round": "roundf", "sign": "automode_sign",
                "interpolate": "automode_interp"}


def expression_to_c(expression: Expression) -> str:
    """Translate a base-language expression to C source."""
    if isinstance(expression, Literal):
        value = expression.value
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, str):
            return f"E_{value.upper()}"
        if isinstance(value, float):
            return f"{value!r}f"
        return repr(value)
    if isinstance(expression, Variable):
        return expression.name
    if isinstance(expression, Present):
        return f"msg_present({expression.channel})"
    if isinstance(expression, UnaryOp):
        operand = expression_to_c(expression.operand)
        if expression.op == "not":
            return f"(!{operand})"
        return f"({expression.op}{operand})"
    if isinstance(expression, BinaryOp):
        try:
            operator = _C_OPERATORS[expression.op]
        except KeyError as exc:
            raise CodeGenError(f"no C operator for {expression.op!r}") from exc
        return (f"({expression_to_c(expression.left)} {operator} "
                f"{expression_to_c(expression.right)})")
    if isinstance(expression, Conditional):
        return (f"({expression_to_c(expression.condition)} ? "
                f"{expression_to_c(expression.then_branch)} : "
                f"{expression_to_c(expression.else_branch)})")
    if isinstance(expression, Call):
        function = _C_FUNCTIONS.get(expression.function, expression.function)
        arguments = ", ".join(expression_to_c(arg) for arg in expression.arguments)
        return f"{function}({arguments})"
    raise CodeGenError(f"cannot translate expression node {expression!r}")


def c_type_of(impl_type: Optional[ImplementationType], abstract: Type) -> str:
    """Pick the C type name for a signal."""
    if isinstance(impl_type, MachineIntType):
        prefix = "sint" if impl_type.signed else "uint"
        return f"{prefix}{impl_type.bits}"
    if isinstance(impl_type, FixedPointType):
        return f"sint{impl_type.bits}"
    if isinstance(impl_type, ImplEnumType):
        return f"uint{impl_type.bits}"
    if impl_type is BOOL8 or isinstance(abstract, BoolType):
        return "boolean"
    if isinstance(abstract, IntType):
        return "sint32"
    if isinstance(abstract, (FloatType,)):
        return "float32"
    if isinstance(abstract, EnumType):
        return "uint8"
    return "float32"


# --------------------------------------------------------------------------
# exact-semantics tagged translation (native simulation backend)
# --------------------------------------------------------------------------

#: Value tags of the native backend's slot plane.  ABSENT is 0 so one
#: ``memset`` re-establishes the all-absent tick invariant the IR verifier's
#: ``ir-may-skip-read`` codegen obligation requires.
TAG_ABSENT, TAG_INT, TAG_FLOAT, TAG_BOOL, TAG_OBJ = 0, 1, 2, 3, 4

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1
#: Largest magnitude at which int64 -> double conversion is exact; mixed
#: int/float comparisons beyond it must bail out (Python compares exactly,
#: a converted double would not).
_EXACT_DOUBLE = 2 ** 53

#: C spelling of INT64_MIN (the plain literal overflows in C).
_C_INT64_MIN = "(-9223372036854775807LL - 1LL)"

#: Built-in calls the tagged emitter can lower, with their arities.
LOWERABLE_CALLS: Dict[str, int] = {"abs": 1, "min": 2, "max": 2}

_LOWERABLE_BINARY = frozenset(_C_OPERATORS)
_ORDERINGS = {"<": "<", "<=": "<=", ">": ">", ">=": ">=",
              "==": "==", "!=": "!="}


def lowerable_expression(expression: Expression,
                         input_names: Any,
                         functions: Optional[Mapping[str, Callable[..., Any]]]
                         = None) -> bool:
    """True when :class:`TaggedEmitter` can translate *expression* exactly.

    *input_names* is the set of environment names the surrounding op
    provides (a ``Variable`` outside it would raise ``unknown name`` at run
    time -- only the Python closure knows the exact message, so such
    expressions stay on the fallback path).  *functions* is the owning
    evaluator's function table: a lowerable call must resolve to the
    *built-in* ``abs``/``min``/``max`` -- a same-named custom override
    forces the fallback path.
    """
    table: Mapping[str, Callable[..., Any]] = BUILTIN_FUNCTIONS
    if functions:
        merged = dict(BUILTIN_FUNCTIONS)
        merged.update(functions)
        table = merged
    names = set(input_names)

    def check(node: Expression) -> bool:
        if isinstance(node, Literal):
            value = node.value
            if type(value) is bool or type(value) is float:
                return True
            if type(value) is int:
                return _INT64_MIN <= value <= _INT64_MAX
            return False
        if isinstance(node, Variable):
            return node.name in names
        if isinstance(node, Present):
            return True
        if isinstance(node, UnaryOp):
            return node.op in ("-", "not") and check(node.operand)
        if isinstance(node, BinaryOp):
            return (node.op in _LOWERABLE_BINARY and check(node.left)
                    and check(node.right))
        if isinstance(node, Conditional):
            return (check(node.condition) and check(node.then_branch)
                    and check(node.else_branch))
        if isinstance(node, Call):
            arity = LOWERABLE_CALLS.get(node.function)
            if arity is None or len(node.arguments) != arity:
                return False
            if table.get(node.function) is not BUILTIN_FUNCTIONS.get(
                    node.function):
                return False
            return all(check(arg) for arg in node.arguments)
        return False

    return check(expression)


def c_double_literal(value: float) -> str:
    """A C literal reproducing *value* bit-exactly (hex float form)."""
    if math.isnan(value):
        return "NAN"
    if math.isinf(value):
        return "INFINITY" if value > 0 else "-INFINITY"
    return value.hex()


class TaggedEmitter:
    """Emit C statements computing expressions over tagged values.

    One emitter serves one op block: *inputs* maps environment names to C
    temp prefixes (``<p>_t`` / ``<p>_i`` / ``<p>_f`` hold tag, int64
    payload and double payload), *bail_label* is the ``goto`` target for
    every run-time situation the C fast path cannot replicate exactly
    (the caller re-runs the whole op through the Python closures there,
    so partial results must never have been committed -- the emitter only
    writes temps, never slots).

    :meth:`emit` returns the temp prefix holding the expression's tagged
    result; declarations accumulate in :attr:`decls` and must be placed
    ahead of :attr:`lines` in the enclosing block.
    """

    def __init__(self, inputs: Mapping[str, str], bail_label: str):
        self.inputs = dict(inputs)
        self.bail = bail_label
        self.decls: List[str] = []
        self.lines: List[str] = []
        self._count = 0

    # -- small helpers -----------------------------------------------------

    def _temp(self) -> str:
        prefix = f"t{self._count}"
        self._count += 1
        self.decls.append(f"unsigned char {prefix}_t = 0; "
                          f"long long {prefix}_i = 0; "
                          f"double {prefix}_f = 0.0;")
        return prefix

    @staticmethod
    def _truthy(p: str) -> str:
        # valid for INT/FLOAT/BOOL tags only; callers bail on OBJ first
        return f"({p}_t == 2 ? ({p}_f != 0.0) : ({p}_i != 0))"

    @staticmethod
    def _num(p: str) -> str:
        return f"({p}_t == 2 ? {p}_f : (double){p}_i)"

    @staticmethod
    def _assign(dst: str, src: str) -> str:
        return (f"{dst}_t = {src}_t; {dst}_i = {src}_i; "
                f"{dst}_f = {src}_f;")

    def _sub_block(self, node: Expression) -> Tuple[str, List[str]]:
        """Emit *node* into a detached statement list (lazy evaluation)."""
        saved = self.lines
        self.lines = []
        prefix = self.emit(node)
        block = self.lines
        self.lines = saved
        return prefix, block

    # -- emission ----------------------------------------------------------

    def emit(self, node: Expression) -> str:
        out = self.lines
        bail = self.bail

        if isinstance(node, Literal):
            value = node.value
            r = self._temp()
            if type(value) is bool:
                out.append(f"{r}_t = 3; {r}_i = {1 if value else 0};")
            elif type(value) is int:
                literal = (_C_INT64_MIN if value == _INT64_MIN
                           else f"{value}LL")
                out.append(f"{r}_t = 1; {r}_i = {literal};")
            elif type(value) is float:
                out.append(f"{r}_t = 2; {r}_f = {c_double_literal(value)};")
            else:
                raise CodeGenError(
                    f"cannot lower literal {value!r} to tagged C")
            return r

        if isinstance(node, Variable):
            try:
                return self.inputs[node.name]
            except KeyError:
                raise CodeGenError(
                    f"variable {node.name!r} not in the op environment "
                    "(lowerable_expression should have rejected this)"
                    ) from None

        if isinstance(node, Present):
            r = self._temp()
            source = self.inputs.get(node.channel)
            if source is None:
                # absent channel name: environment.get(...) is ABSENT
                out.append(f"{r}_t = 3; {r}_i = 0;")
            else:
                out.append(f"{r}_t = 3; {r}_i = ({source}_t != 0);")
            return r

        if isinstance(node, UnaryOp):
            x = self.emit(node.operand)
            r = self._temp()
            if node.op == "-":
                out.extend([
                    f"if ({x}_t == 0) {{ {r}_t = 0; }}",
                    f"else if ({x}_t == 4) goto {bail};",
                    f"else if ({x}_t == 2) {{ {r}_t = 2; {r}_f = -{x}_f; }}",
                    f"else {{",
                    f"    if ({x}_i == {_C_INT64_MIN}) goto {bail};",
                    f"    {r}_t = 1; {r}_i = -{x}_i;",
                    f"}}",
                ])
                return r
            if node.op == "not":
                out.extend([
                    f"if ({x}_t == 0) {{ {r}_t = 0; }}",
                    f"else if ({x}_t == 4) goto {bail};",
                    f"else {{ {r}_t = 3; {r}_i = !{self._truthy(x)}; }}",
                ])
                return r
            raise CodeGenError(f"cannot lower unary operator {node.op!r}")

        if isinstance(node, BinaryOp):
            return self._emit_binary(node)

        if isinstance(node, Conditional):
            c = self.emit(node.condition)
            r = self._temp()
            tp, tblock = self._sub_block(node.then_branch)
            ep, eblock = self._sub_block(node.else_branch)
            out.append(f"if ({c}_t == 0) {{ {r}_t = 0; }}")
            out.append(f"else if ({c}_t == 4) goto {bail};")
            out.append(f"else if ({self._truthy(c)}) {{")
            out.extend(f"    {line}" for line in tblock)
            out.append(f"    {self._assign(r, tp)}")
            out.append("} else {")
            out.extend(f"    {line}" for line in eblock)
            out.append(f"    {self._assign(r, ep)}")
            out.append("}")
            return r

        if isinstance(node, Call):
            return self._emit_call(node)

        raise CodeGenError(f"cannot lower expression node {node!r}")

    # -- binary operators --------------------------------------------------

    def _emit_binary(self, node: BinaryOp) -> str:
        out = self.lines
        bail = self.bail
        op = node.op

        if op in ("and", "or"):
            x = self.emit(node.left)
            r = self._temp()
            yp, yblock = self._sub_block(node.right)
            is_and = op == "and"
            short = "0" if is_and else "1"
            test = (f"!{self._truthy(x)}" if is_and else self._truthy(x))
            out.append(f"if ({x}_t == 0) {{ {r}_t = 0; }}")
            out.append(f"else if ({x}_t == 4) goto {bail};")
            out.append(f"else if ({test}) {{ {r}_t = 3; {r}_i = {short}; }}")
            out.append("else {")
            out.extend(f"    {line}" for line in yblock)
            out.append(f"    if ({yp}_t == 0) {{ {r}_t = 0; }}")
            out.append(f"    else if ({yp}_t == 4) goto {bail};")
            out.append(f"    else {{ {r}_t = 3; "
                       f"{r}_i = {self._truthy(yp)}; }}")
            out.append("}")
            return r

        x = self.emit(node.left)
        y = self.emit(node.right)
        r = self._temp()
        header = [
            f"if ({x}_t == 0 || {y}_t == 0) {{ {r}_t = 0; }}",
            f"else if ({x}_t == 4 || {y}_t == 4) goto {bail};",
        ]

        if op in ("+", "-", "*"):
            builtin = {"+": "add", "-": "sub", "*": "mul"}[op]
            out.extend(header)
            out.extend([
                f"else if ({x}_t != 2 && {y}_t != 2) {{",
                f"    long long {r}_o;",
                f"    if (__builtin_{builtin}_overflow({x}_i, {y}_i, "
                f"&{r}_o)) goto {bail};",
                f"    {r}_t = 1; {r}_i = {r}_o;",
                f"}} else {{",
                f"    {r}_t = 2; {r}_f = {self._num(x)} {op} {self._num(y)};",
                f"}}",
            ])
            return r

        if op == "%":
            # Python modulo: sign follows the divisor.  Float operands and
            # a zero divisor (ZeroDivisionError) take the fallback path.
            out.extend(header)
            out.extend([
                f"else if ({x}_t == 2 || {y}_t == 2) goto {bail};",
                f"else {{",
                f"    if ({y}_i == 0) goto {bail};",
                f"    if ({x}_i == {_C_INT64_MIN} && {y}_i == -1LL) "
                f"{{ {r}_t = 1; {r}_i = 0; }}",
                f"    else {{",
                f"        long long {r}_m = {x}_i % {y}_i;",
                f"        if ({r}_m != 0 && (({r}_m < 0) != ({y}_i < 0))) "
                f"{r}_m += {y}_i;",
                f"        {r}_t = 1; {r}_i = {r}_m;",
                f"    }}",
                f"}}",
            ])
            return r

        if op == "/":
            # int-exact division; inexact int/int decays to double only
            # when both operands convert exactly (|v| <= 2^53); a zero
            # divisor raises ExpressionEvalError on the fallback path.
            out.extend(header)
            out.extend([
                f"else if ({x}_t != 2 && {y}_t != 2) {{",
                f"    if ({y}_i == 0) goto {bail};",
                f"    if ({x}_i == {_C_INT64_MIN} && {y}_i == -1LL) "
                f"goto {bail};",
                f"    if ({x}_i % {y}_i == 0) "
                f"{{ {r}_t = 1; {r}_i = {x}_i / {y}_i; }}",
                f"    else {{",
                f"        if ({x}_i > {_EXACT_DOUBLE}LL || "
                f"{x}_i < -{_EXACT_DOUBLE}LL || "
                f"{y}_i > {_EXACT_DOUBLE}LL || "
                f"{y}_i < -{_EXACT_DOUBLE}LL) goto {bail};",
                f"        {r}_t = 2; "
                f"{r}_f = (double){x}_i / (double){y}_i;",
                f"    }}",
                f"}} else {{",
                f"    double {r}_d = {self._num(y)};",
                f"    if ({r}_d == 0.0) goto {bail};",
                f"    {r}_t = 2; {r}_f = {self._num(x)} / {r}_d;",
                f"}}",
            ])
            return r

        if op in _ORDERINGS:
            cop = _ORDERINGS[op]
            out.extend(header)
            out.extend([
                f"else if ({x}_t != 2 && {y}_t != 2) "
                f"{{ {r}_t = 3; {r}_i = ({x}_i {cop} {y}_i); }}",
                f"else if ({x}_t == 2 && {y}_t == 2) "
                f"{{ {r}_t = 3; {r}_i = ({x}_f {cop} {y}_f); }}",
                f"else {{",
                f"    long long {r}_z = ({x}_t == 2) ? {y}_i : {x}_i;",
                f"    if ({r}_z > {_EXACT_DOUBLE}LL || "
                f"{r}_z < -{_EXACT_DOUBLE}LL) goto {bail};",
                f"    {r}_t = 3; "
                f"{r}_i = ({self._num(x)} {cop} {self._num(y)});",
                f"}}",
            ])
            return r

        raise CodeGenError(f"cannot lower binary operator {op!r}")

    # -- built-in calls ----------------------------------------------------

    def _emit_call(self, node: Call) -> str:
        out = self.lines
        bail = self.bail
        name = node.function

        if name == "abs":
            x = self.emit(node.arguments[0])
            r = self._temp()
            out.extend([
                f"if ({x}_t == 0) {{ {r}_t = 0; }}",
                f"else if ({x}_t == 4) goto {bail};",
                f"else if ({x}_t == 2) {{ {r}_t = 2; "
                f"{r}_f = fabs({x}_f); }}",
                f"else {{",
                f"    if ({x}_i == {_C_INT64_MIN}) goto {bail};",
                f"    {r}_t = 1; {r}_i = ({x}_i < 0 ? -{x}_i : {x}_i);",
                f"}}",
            ])
            return r

        if name in ("min", "max"):
            # Python min(a, b) keeps a unless b < a (max: unless b > a) --
            # the winning *operand* is returned with its original type.
            x = self.emit(node.arguments[0])
            y = self.emit(node.arguments[1])
            r = self._temp()
            cop = "<" if name == "min" else ">"
            out.extend([
                f"if ({x}_t == 0 || {y}_t == 0) {{ {r}_t = 0; }}",
                f"else if ({x}_t == 4 || {y}_t == 4) goto {bail};",
                f"else {{",
                f"    int {r}_c;",
                f"    if ({x}_t != 2 && {y}_t != 2) "
                f"{r}_c = ({y}_i {cop} {x}_i);",
                f"    else if ({x}_t == 2 && {y}_t == 2) "
                f"{r}_c = ({y}_f {cop} {x}_f);",
                f"    else {{",
                f"        long long {r}_z = ({x}_t == 2) ? {y}_i : {x}_i;",
                f"        if ({r}_z > {_EXACT_DOUBLE}LL || "
                f"{r}_z < -{_EXACT_DOUBLE}LL) goto {bail};",
                f"        {r}_c = ({self._num(y)} {cop} {self._num(x)});",
                f"    }}",
                f"    if ({r}_c) {{ {self._assign(r, y)} }}",
                f"    else {{ {self._assign(r, x)} }}",
                f"}}",
            ])
            return r

        raise CodeGenError(f"cannot lower call to {name!r}")
