"""A simplified ASCET-SD-like model (simulated substrate).

The paper uses ASCET-SD in two roles: the *source* of the white-box
reengineering case study ("this case study was provided in terms of a
detailed ASCET-SD model", Sec. 5) and the *target* of OA generation
("the AutoMoDe tool prototype will generate ASCET-SD projects for each ECU",
Sec. 3.4).  The commercial tool is not available, so this module implements
the subset of its concepts needed for both roles:

* :class:`AscetModule` -- a software module with inputs (received messages),
  outputs (sent messages), parameters (calibration values) and processes,
* :class:`AscetProcess` -- a runnable entity containing sequential statements,
* statements -- :class:`Assignment` and :class:`IfThenElse` (the implicit
  control flow the case study makes explicit as modes),
* :class:`AscetProject` -- modules plus OSEK-style task mapping,
* an **interpreter** so the original model is executable and can be compared
  against its reengineered AutoMoDe counterpart.

Expressions within statements reuse the AutoMoDe base language, which keeps
the reengineering transformation purely structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..core.errors import ModelError, UnknownElementError
from ..core.expr_eval import ExpressionEvaluator
from ..core.expr_parser import parse_expression
from ..core.expressions import Expression, conditional_count, operator_count


# --------------------------------------------------------------------------
# statements
# --------------------------------------------------------------------------

class Statement:
    """Base class of ASCET process statements."""

    def targets(self) -> List[str]:
        """Names assigned to by this statement (recursively)."""
        raise NotImplementedError

    def conditions(self) -> List[Expression]:
        """All branch conditions occurring in this statement (recursively)."""
        return []

    def if_depth(self) -> int:
        """Maximal nesting depth of If-Then-Else constructs."""
        return 0

    def to_pseudocode(self, indent: int = 0) -> str:
        raise NotImplementedError


@dataclass
class Assignment(Statement):
    """``target := expression``."""

    target: str
    expression: Expression

    def __post_init__(self) -> None:
        if isinstance(self.expression, str):
            self.expression = parse_expression(self.expression)

    def targets(self) -> List[str]:
        return [self.target]

    def to_pseudocode(self, indent: int = 0) -> str:
        return " " * indent + f"{self.target} := {self.expression.to_source()};"


@dataclass
class IfThenElse(Statement):
    """The conditional control flow the case study replaces by modes."""

    condition: Expression
    then_branch: List[Statement] = field(default_factory=list)
    else_branch: List[Statement] = field(default_factory=list)

    def __post_init__(self) -> None:
        if isinstance(self.condition, str):
            self.condition = parse_expression(self.condition)

    def targets(self) -> List[str]:
        names: List[str] = []
        for statement in list(self.then_branch) + list(self.else_branch):
            names.extend(statement.targets())
        return names

    def conditions(self) -> List[Expression]:
        found = [self.condition]
        for statement in list(self.then_branch) + list(self.else_branch):
            found.extend(statement.conditions())
        return found

    def if_depth(self) -> int:
        inner = [statement.if_depth()
                 for statement in list(self.then_branch) + list(self.else_branch)]
        return 1 + (max(inner) if inner else 0)

    def to_pseudocode(self, indent: int = 0) -> str:
        pad = " " * indent
        lines = [pad + f"if ({self.condition.to_source()}) {{"]
        for statement in self.then_branch:
            lines.append(statement.to_pseudocode(indent + 2))
        if self.else_branch:
            lines.append(pad + "} else {")
            for statement in self.else_branch:
                lines.append(statement.to_pseudocode(indent + 2))
        lines.append(pad + "}")
        return "\n".join(lines)


def assign(target: str, expression: Union[str, Expression]) -> Assignment:
    """Convenience constructor for an assignment statement."""
    if isinstance(expression, str):
        expression = parse_expression(expression)
    return Assignment(target, expression)


def if_then_else(condition: Union[str, Expression],
                 then_branch: Sequence[Statement],
                 else_branch: Sequence[Statement] = ()) -> IfThenElse:
    """Convenience constructor for an If-Then-Else statement."""
    if isinstance(condition, str):
        condition = parse_expression(condition)
    return IfThenElse(condition, list(then_branch), list(else_branch))


# --------------------------------------------------------------------------
# processes and modules
# --------------------------------------------------------------------------

@dataclass
class AscetProcess:
    """A runnable entity of an ASCET module, activated by a task."""

    name: str
    statements: List[Statement] = field(default_factory=list)
    #: activation period in base ticks (taken from the activating task)
    period: int = 1

    def add(self, statement: Statement) -> Statement:
        self.statements.append(statement)
        return statement

    def targets(self) -> List[str]:
        names: List[str] = []
        for statement in self.statements:
            names.extend(statement.targets())
        return names

    def conditions(self) -> List[Expression]:
        found: List[Expression] = []
        for statement in self.statements:
            found.extend(statement.conditions())
        return found

    def if_then_else_count(self) -> int:
        return sum(1 for statement in self._walk()
                   if isinstance(statement, IfThenElse))

    def max_if_depth(self) -> int:
        return max((statement.if_depth() for statement in self.statements),
                   default=0)

    def operator_count(self) -> int:
        total = 0
        for statement in self._walk():
            if isinstance(statement, Assignment):
                total += operator_count(statement.expression)
            elif isinstance(statement, IfThenElse):
                total += operator_count(statement.condition)
        return total

    def _walk(self) -> Iterable[Statement]:
        def walk_list(statements: Sequence[Statement]):
            for statement in statements:
                yield statement
                if isinstance(statement, IfThenElse):
                    yield from walk_list(statement.then_branch)
                    yield from walk_list(statement.else_branch)
        return walk_list(self.statements)

    def to_pseudocode(self) -> str:
        lines = [f"process {self.name} {{"]
        for statement in self.statements:
            lines.append(statement.to_pseudocode(2))
        lines.append("}")
        return "\n".join(lines)


class AscetModule:
    """An ASCET software module: messages, parameters, processes."""

    def __init__(self, name: str, description: str = ""):
        if not name:
            raise ModelError("ASCET module needs a name")
        self.name = name
        self.description = description
        #: messages received by this module: name -> default value
        self.receive_messages: Dict[str, Any] = {}
        #: messages sent by this module: name -> initial value
        self.send_messages: Dict[str, Any] = {}
        #: calibration parameters: name -> value
        self.parameters: Dict[str, Any] = {}
        #: module-local state variables: name -> initial value
        self.variables: Dict[str, Any] = {}
        self.processes: Dict[str, AscetProcess] = {}

    # -- declaration ------------------------------------------------------------
    def receive(self, name: str, default: Any = 0) -> None:
        self.receive_messages[name] = default

    def send(self, name: str, initial: Any = 0) -> None:
        self.send_messages[name] = initial

    def parameter(self, name: str, value: Any) -> None:
        self.parameters[name] = value

    def variable(self, name: str, initial: Any = 0) -> None:
        self.variables[name] = initial

    def add_process(self, process: AscetProcess) -> AscetProcess:
        if process.name in self.processes:
            raise ModelError(
                f"module {self.name!r} already has a process {process.name!r}")
        self.processes[process.name] = process
        return process

    def new_process(self, name: str, period: int = 1) -> AscetProcess:
        return self.add_process(AscetProcess(name, period=period))

    def process(self, name: str) -> AscetProcess:
        try:
            return self.processes[name]
        except KeyError as exc:
            raise UnknownElementError(
                f"module {self.name!r} has no process {name!r}") from exc

    def process_list(self) -> List[AscetProcess]:
        return list(self.processes.values())

    # -- metrics -----------------------------------------------------------------
    def if_then_else_count(self) -> int:
        return sum(process.if_then_else_count()
                   for process in self.processes.values())

    def flag_count(self) -> int:
        """Boolean-valued sent messages -- the case study's 'flag explosion'."""
        return sum(1 for value in self.send_messages.values()
                   if isinstance(value, bool))

    def to_pseudocode(self) -> str:
        lines = [f"module {self.name} {{"]
        for name, default in self.receive_messages.items():
            lines.append(f"  receive {name} = {default!r};")
        for name, initial in self.send_messages.items():
            lines.append(f"  send {name} = {initial!r};")
        for name, value in self.parameters.items():
            lines.append(f"  parameter {name} = {value!r};")
        for name, value in self.variables.items():
            lines.append(f"  variable {name} = {value!r};")
        for process in self.processes.values():
            lines.append("")
            lines.extend("  " + line for line in process.to_pseudocode().splitlines())
        lines.append("}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# project and interpreter
# --------------------------------------------------------------------------

@dataclass
class AscetTask:
    """An OSEK task of an ASCET project, activating processes periodically."""

    name: str
    period: int
    priority: int
    #: (module name, process name) pairs in activation order
    processes: List[tuple] = field(default_factory=list)


class AscetProject:
    """A complete ASCET project: modules plus the OS/task configuration."""

    def __init__(self, name: str, description: str = ""):
        self.name = name
        self.description = description
        self.modules: Dict[str, AscetModule] = {}
        self.tasks: Dict[str, AscetTask] = {}

    def add_module(self, module: AscetModule) -> AscetModule:
        if module.name in self.modules:
            raise ModelError(f"project {self.name!r} already has module "
                             f"{module.name!r}")
        self.modules[module.name] = module
        return module

    def module(self, name: str) -> AscetModule:
        try:
            return self.modules[name]
        except KeyError as exc:
            raise UnknownElementError(
                f"project {self.name!r} has no module {name!r}") from exc

    def module_list(self) -> List[AscetModule]:
        return list(self.modules.values())

    def add_task(self, task: AscetTask) -> AscetTask:
        if task.name in self.tasks:
            raise ModelError(f"project {self.name!r} already has task {task.name!r}")
        self.tasks[task.name] = task
        return task

    def task_list(self) -> List[AscetTask]:
        return sorted(self.tasks.values(), key=lambda t: t.priority)

    def total_if_then_else(self) -> int:
        return sum(module.if_then_else_count() for module in self.modules.values())

    def total_flags(self) -> int:
        return sum(module.flag_count() for module in self.modules.values())


class AscetInterpreter:
    """Executes an ASCET module's processes tick by tick.

    The interpreter keeps one environment per module holding received
    messages, sent messages, parameters and local variables.  On every tick,
    processes whose period divides the tick index run in declaration order;
    received messages are overwritten by the supplied inputs beforehand.
    The values of sent messages after the tick are the observable outputs --
    the same observation point used for the reengineered AutoMoDe model, so
    traces can be compared directly.
    """

    def __init__(self, module: AscetModule,
                 evaluator: Optional[ExpressionEvaluator] = None):
        self.module = module
        self._evaluator = evaluator or ExpressionEvaluator()
        self.environment: Dict[str, Any] = {}
        self.reset()

    def reset(self) -> None:
        self.environment = {}
        self.environment.update(self.module.parameters)
        self.environment.update(self.module.variables)
        self.environment.update(self.module.receive_messages)
        self.environment.update(self.module.send_messages)

    def step(self, inputs: Mapping[str, Any], tick: int = 0) -> Dict[str, Any]:
        """Run one tick: update received messages, execute due processes."""
        for name, value in inputs.items():
            if name not in self.module.receive_messages:
                raise UnknownElementError(
                    f"module {self.module.name!r} does not receive {name!r}")
            self.environment[name] = value
        for process in self.module.process_list():
            if tick % max(1, process.period) == 0:
                self._run_statements(process.statements)
        return {name: self.environment[name]
                for name in self.module.send_messages}

    def run(self, input_trace: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        """Execute a whole input trace and return the per-tick outputs."""
        outputs = []
        for tick, inputs in enumerate(input_trace):
            outputs.append(dict(self.step(inputs, tick)))
        return outputs

    def _run_statements(self, statements: Sequence[Statement]) -> None:
        for statement in statements:
            if isinstance(statement, Assignment):
                value = self._evaluator.evaluate(statement.expression,
                                                 self.environment)
                self.environment[statement.target] = value
            elif isinstance(statement, IfThenElse):
                condition = self._evaluator.evaluate(statement.condition,
                                                     self.environment)
                branch = statement.then_branch if condition else statement.else_branch
                self._run_statements(branch)
            else:  # pragma: no cover - only two statement kinds exist
                raise ModelError(f"unknown statement type {type(statement).__name__}")
