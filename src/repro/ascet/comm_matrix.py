"""Communication matrices (black-box reengineering source, paper Sec. 4).

"'Black-box' reengineering transforms E/E architecture representations like
communication-matrices, which capture dependencies between functions, to
partial FAA level representations."  A communication matrix is the standard
OEM artefact listing, per signal, the sending function/ECU and all receiving
functions/ECUs, usually together with the carrying bus frame.

This module provides the data structure plus loading/derivation helpers; the
transformation to a partial FAA model lives in
:mod:`repro.transformations.reengineering`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.errors import ModelError


@dataclass
class MatrixEntry:
    """One signal row of a communication matrix."""

    signal: str
    sender: str
    receivers: List[str]
    frame: Optional[str] = None
    period: Optional[int] = None
    length_bits: int = 8

    def __post_init__(self) -> None:
        if not self.receivers:
            raise ModelError(f"signal {self.signal!r} has no receivers")
        if self.sender in self.receivers:
            raise ModelError(
                f"signal {self.signal!r}: sender {self.sender!r} also listed "
                "as receiver")


class CommunicationMatrix:
    """A set of signal rows with sender/receiver functions."""

    def __init__(self, name: str):
        self.name = name
        self._entries: Dict[str, MatrixEntry] = {}

    def add(self, signal: str, sender: str, receivers: Sequence[str],
            frame: Optional[str] = None, period: Optional[int] = None,
            length_bits: int = 8) -> MatrixEntry:
        if signal in self._entries:
            raise ModelError(f"matrix {self.name!r} already has signal {signal!r}")
        entry = MatrixEntry(signal, sender, list(receivers), frame, period,
                            length_bits)
        self._entries[signal] = entry
        return entry

    def entry(self, signal: str) -> MatrixEntry:
        try:
            return self._entries[signal]
        except KeyError as exc:
            raise ModelError(f"matrix {self.name!r} has no signal {signal!r}") from exc

    def entries(self) -> List[MatrixEntry]:
        return [self._entries[name] for name in sorted(self._entries)]

    def __len__(self) -> int:
        return len(self._entries)

    # -- derived views ------------------------------------------------------------
    def functions(self) -> List[str]:
        """All function names appearing as sender or receiver."""
        names: Set[str] = set()
        for entry in self._entries.values():
            names.add(entry.sender)
            names.update(entry.receivers)
        return sorted(names)

    def signals_sent_by(self, function: str) -> List[MatrixEntry]:
        return [entry for entry in self.entries() if entry.sender == function]

    def signals_received_by(self, function: str) -> List[MatrixEntry]:
        return [entry for entry in self.entries() if function in entry.receivers]

    def dependency_pairs(self) -> List[Tuple[str, str, str]]:
        """``(sender, receiver, signal)`` triples -- the functional dependencies."""
        pairs = []
        for entry in self.entries():
            for receiver in entry.receivers:
                pairs.append((entry.sender, receiver, entry.signal))
        return pairs

    def fan_out(self) -> Dict[str, int]:
        """Number of distinct receivers per sending function."""
        result: Dict[str, Set[str]] = {}
        for entry in self.entries():
            result.setdefault(entry.sender, set()).update(entry.receivers)
        return {name: len(receivers) for name, receivers in sorted(result.items())}

    def frames(self) -> List[str]:
        return sorted({entry.frame for entry in self._entries.values()
                       if entry.frame is not None})

    def signals_in_frame(self, frame: str) -> List[MatrixEntry]:
        return [entry for entry in self.entries() if entry.frame == frame]

    # -- serialization -------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, object]]:
        return [{
            "signal": entry.signal,
            "sender": entry.sender,
            "receivers": list(entry.receivers),
            "frame": entry.frame,
            "period": entry.period,
            "length_bits": entry.length_bits,
        } for entry in self.entries()]

    @classmethod
    def from_rows(cls, name: str, rows: Iterable[Dict[str, object]]
                  ) -> "CommunicationMatrix":
        matrix = cls(name)
        for row in rows:
            matrix.add(str(row["signal"]), str(row["sender"]),
                       list(row["receivers"]),  # type: ignore[arg-type]
                       frame=row.get("frame"),  # type: ignore[arg-type]
                       period=row.get("period"),  # type: ignore[arg-type]
                       length_bits=int(row.get("length_bits", 8)))  # type: ignore[arg-type]
        return matrix

    def describe(self) -> str:
        lines = [f"communication matrix {self.name!r} "
                 f"({len(self)} signals, {len(self.functions())} functions):"]
        for entry in self.entries():
            frame = f" [{entry.frame}]" if entry.frame else ""
            lines.append(f"  {entry.signal}: {entry.sender} -> "
                         f"{', '.join(entry.receivers)}{frame}")
        return "\n".join(lines)
