"""Scenario generation and sharded batch validation.

The validation subsystem built on top of the simulation engines:

* :mod:`repro.scenarios.generators` -- composable, deterministically-seeded
  stimulus generators (waveforms, random walks, event storms, mode
  sequences, fault injectors) plus cartesian scenario-grid expansion,
* :mod:`repro.scenarios.runner` -- sharded parallel execution of scenario
  batches across process/thread pools with per-scenario error isolation,
* :mod:`repro.scenarios.report` -- batch aggregation: MTD/STD mode and
  transition coverage, port value ranges, failure roll-ups, JSON export.
"""

from typing import Any, Sequence, Tuple

from ..core.components import Component
from .generators import (Constant, Dropout, EventStorm, ModeSequence,
                         OutOfRange, RandomWalk, Ramp, Scenario,
                         SeededGenerator, SineWave, SquareWave, StepChange,
                         StimulusGenerator, StuckAt, UniformNoise,
                         mode_sequence_sweep, sample_spec, scenario_grid)
from .report import (BatchReport, ModeCoverage, PortStats, active_mode_paths,
                     fold_mode_history)
from .runner import (ScenarioResult, execute_batch, execute_scenario,
                     run_sharded, shard_scenarios)


def run_with_report(component: Component, scenarios: Sequence[Scenario],
                    **kwargs: Any) -> Tuple[Sequence[ScenarioResult],
                                            BatchReport]:
    """Run a batch (sharded) and aggregate it into a :class:`BatchReport`.

    Keyword arguments are forwarded to :func:`run_sharded`; per-tick mode
    observation is enabled by default so the report carries hierarchical
    mode/transition coverage.  Aggregation is incremental: each result is
    folded into the report as it streams back from the pool
    (:meth:`BatchReport.observe_result`), so arbitrarily large batches never
    require a second pass over the traces.
    """
    kwargs.setdefault("collect_modes", True)
    report = BatchReport.for_component(component)
    downstream = kwargs.pop("on_result", None)

    def observe(result: ScenarioResult) -> None:
        report.observe_result(result)
        if downstream is not None:
            downstream(result)

    results = run_sharded(component, scenarios, on_result=observe, **kwargs)
    return results, report


__all__ = [
    "BatchReport", "Constant", "Dropout", "EventStorm", "ModeCoverage",
    "ModeSequence", "OutOfRange", "PortStats", "RandomWalk", "Ramp",
    "Scenario", "ScenarioResult", "SeededGenerator", "SineWave",
    "SquareWave", "StepChange", "StimulusGenerator", "StuckAt",
    "UniformNoise", "active_mode_paths", "execute_batch", "execute_scenario",
    "fold_mode_history", "mode_sequence_sweep", "run_sharded",
    "run_with_report", "sample_spec", "scenario_grid", "shard_scenarios",
]
