"""Sharded parallel execution of scenario batches.

:class:`~repro.simulation.compiled.ScenarioSuite` runs scenarios serially;
for the large generated batteries of :mod:`repro.scenarios.generators` the
batch itself becomes the bottleneck.  Scenario runs are embarrassingly
parallel -- the compiled schedule is immutable after compilation and every
run carries its own state -- so this module shards a batch across a
:mod:`concurrent.futures` pool:

* **process pool** (default): the *model* is pickled once into every worker
  (compiled step closures are deliberately never pickled -- they are nested
  functions and unpicklable by design), each worker compiles the schedule
  exactly once in its initializer, and scenarios stream to workers one by
  one (or in chunks) with results streaming back as they complete;
* **thread pool**: no pickling; each worker thread still compiles its own
  schedule so no mutable compile-time cache is shared across threads;
* **serial**: the in-process fallback with the identical result protocol.

Per-scenario **error isolation**: a failing scenario (bad stimulus, type
violation, diverging model) yields a :class:`ScenarioResult` carrying the
error instead of poisoning the batch.  Traces are returned in scenario
order and are tick-for-tick identical to a serial
:meth:`~repro.simulation.compiled.ScenarioSuite.run_all` on the same batch
(the differential test in ``tests/test_scenario_runner.py`` enforces this).
"""

from __future__ import annotations

import os
import pickle
import re
import threading
import time
import traceback
from concurrent.futures import (Executor, ProcessPoolExecutor,
                                ThreadPoolExecutor, as_completed)
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from ..core.components import Component
from ..core.errors import SimulationError
from ..obs.context import active as _obs_active
from ..obs.context import current_events, current_registry, maybe_span
from ..obs.events import CampaignEvent, EventLog
from ..obs.metrics import MetricsRegistry
from ..simulation.compiled import CompiledSimulator
from ..simulation.engine import run_stepped
from ..simulation.trace import SimulationTrace
from .generators import Scenario
from .report import active_mode_paths

#: Result callback invoked as scenarios complete (streaming consumption).
ResultCallback = Callable[["ScenarioResult"], None]


@dataclass
class ScenarioResult:
    """Outcome of one scenario: a trace or an isolated error.

    *amortized* marks durations that are an even share of a vectorized
    sweep's wall time rather than a per-scenario measurement; the true
    sweep duration lands in the metrics registry (``runner.sweep.*``)
    when observability is on.
    """

    name: str
    trace: Optional[SimulationTrace] = None
    error: Optional[str] = None
    duration: float = 0.0
    worker: str = ""
    mode_paths: Optional[Dict[str, List[Any]]] = None
    amortized: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def shard_scenarios(scenarios: Sequence[Scenario],
                    shards: int) -> List[List[Scenario]]:
    """Partition a batch into *shards* contiguous, near-equal shards.

    Shards are contiguous index ranges, so neighbouring grid points (which
    tend to have similar cost) land in the same shard; every scenario
    appears in exactly one shard and empty shards are dropped.
    """
    if shards < 1:
        raise SimulationError("shard count must be >= 1")
    total = len(scenarios)
    shards = min(shards, total) if total else 0
    partition: List[List[Scenario]] = []
    start = 0
    for index in range(shards):
        size = total // shards + (1 if index < total % shards else 0)
        partition.append(list(scenarios[start:start + size]))
        start += size
    return partition


# --------------------------------------------------------------------------
# scenario execution shared by every executor kind
# --------------------------------------------------------------------------

_ERROR_KIND = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def _error_kind(error: Optional[str]) -> str:
    """The exception type name leading an isolated error string."""
    match = _ERROR_KIND.match(error or "")
    return match.group(0) if match else "Unknown"


def _record_scenario(registry: MetricsRegistry, result: ScenarioResult,
                     ticks: int) -> None:
    """Scenario counters: the executor-invariant telemetry projection.

    ``runner.scenario.*`` counters depend only on the batch (which
    scenarios ran, with what outcome) -- never on sharding, executor kind
    or chunking -- so serial, thread and process runs agree exactly
    (``MetricsRegistry.counter_values("runner.scenario.")``).  The duration
    histogram is timing and therefore outside that projection.  Failures
    are additionally counted by exception type
    (``runner.scenario.error.<ExcName>``), so failure roll-ups survive
    registry merges, not just :class:`~repro.scenarios.report.BatchReport`.
    """
    registry.counter("runner.scenario.total").inc()
    registry.counter(
        "runner.scenario.ok" if result.ok else "runner.scenario.failed").inc()
    if not result.ok:
        registry.counter(
            f"runner.scenario.error.{_error_kind(result.error)}").inc()
    registry.counter("runner.scenario.ticks").inc(ticks)
    registry.histogram("runner.scenario.duration_s").observe(result.duration)


def _emit_scenario_event(events: EventLog, result: ScenarioResult,
                         ticks: int, bundle: Optional[str] = None) -> None:
    """One ``scenario_finished`` / ``scenario_error`` event per result.

    Event data mirrors the counter projection: name, outcome and tick
    count are batch facts (executor-invariant); worker, duration and the
    post-mortem bundle path are volatile and scrubbed by
    :func:`~repro.obs.events.normalized_stream`.
    """
    if result.ok:
        events.emit("scenario_finished", name=result.name, ticks=ticks,
                    worker=result.worker, duration_s=result.duration)
        return
    data: Dict[str, Any] = {"name": result.name, "ticks": ticks,
                            "error": result.error,
                            "exc": _error_kind(result.error),
                            "worker": result.worker,
                            "duration_s": result.duration}
    if bundle is not None:
        data["bundle"] = bundle
    events.emit("scenario_error", **data)


def _dump_postmortem(simulator: CompiledSimulator, scenario: Scenario,
                     result: ScenarioResult) -> Optional[str]:
    """Write a flight-recorder post-mortem bundle for a failed scenario.

    Only fires when the active telemetry session has flight recording on
    AND the failing simulator's schedule ran through a recording step
    (flat backend); the bundle path is collected on the session
    (``telemetry.bundles``) and returned for the scenario_error event.
    """
    telemetry = _obs_active()
    if telemetry is None or not telemetry.flight_recording:
        return None
    recorder = telemetry.recorders.get(id(simulator.schedule))
    if recorder is None \
            or (recorder.failure is None and not recorder.snapshots):
        return None
    path = recorder.dump_bundle(
        telemetry.resolved_postmortem_dir(), scenario=scenario.name,
        error=result.error or "", stimuli=scenario.stimuli,
        span_path=telemetry.tracer.active_path(),
        registry=telemetry.registry)
    telemetry.bundles.append(path)
    return path


def execute_scenario(simulator: CompiledSimulator, scenario: Scenario,
                     collect_modes: bool = False,
                     worker: str = "local",
                     registry: Optional[MetricsRegistry] = None,
                     events: Optional[EventLog] = None) -> ScenarioResult:
    """Run one scenario against a compiled simulator with error isolation.

    Mode collection is schedule-aware: flat schedules expose their active
    machines positionally via
    :meth:`~repro.simulation.schedule_ir.FlatSchedule.mode_paths` (same
    paths and values as :func:`~repro.scenarios.report.active_mode_paths`
    on a nested state tree), so sharded batches and coverage-guided search
    get the flat engine's speed without losing coverage observability.

    *registry* receives ``runner.scenario.*`` telemetry and *events* the
    ``scenario_finished`` / ``scenario_error`` campaign events; when
    ``None`` the ambient ones (:func:`repro.obs.current_registry` /
    :func:`repro.obs.current_events`) are consulted once -- worker pools
    pass explicit worker-local instances instead, because the ambient
    ones are not shared safely across threads.
    """
    if registry is None:
        registry = current_registry()
    if events is None:
        events = current_events()
    start = time.perf_counter()
    try:
        schedule = simulator.schedule
        if collect_modes:
            component = simulator.component
            telemetry = _obs_active()
            step = (telemetry.step_for(schedule)
                    if telemetry is not None else None) or schedule.step
            extract_modes = getattr(schedule, "mode_paths", None)
            if extract_modes is None:
                extract_modes = lambda state: active_mode_paths(component,
                                                                state)
            histories: Dict[str, List[Any]] = {}

            def observing_step(inputs: Mapping[str, Any], state: Any,
                               tick: int) -> Tuple[Dict[str, Any], Any]:
                outputs, new_state = step(inputs, state, tick)
                for path, mode in extract_modes(new_state).items():
                    histories.setdefault(path, []).append(mode)
                return outputs, new_state

            trace = run_stepped(component, observing_step, scenario.stimuli,
                                scenario.ticks, simulator.check_types,
                                initial_state=schedule.initial_state())
            mode_paths: Optional[Dict[str, List[Any]]] = histories
        else:
            trace = simulator.run(scenario.stimuli, scenario.ticks)
            mode_paths = None
        result = ScenarioResult(scenario.name, trace=trace,
                                duration=time.perf_counter() - start,
                                worker=worker, mode_paths=mode_paths)
    except Exception as exc:  # noqa: BLE001 - isolation is the contract
        detail = traceback.format_exc(limit=3).strip().splitlines()[-1]
        error = f"{type(exc).__name__}: {exc}" if str(exc) else detail
        result = ScenarioResult(scenario.name, error=error,
                                duration=time.perf_counter() - start,
                                worker=worker)
    bundle = None if result.ok \
        else _dump_postmortem(simulator, scenario, result)
    if registry is not None:
        _record_scenario(registry, result, scenario.ticks)
    if events is not None:
        _emit_scenario_event(events, result, scenario.ticks, bundle)
    return result


def execute_batch(simulator: CompiledSimulator, scenarios: Sequence[Scenario],
                  collect_modes: bool = False,
                  worker: str = "local",
                  registry: Optional[MetricsRegistry] = None,
                  events: Optional[EventLog] = None
                  ) -> List[ScenarioResult]:
    """Run a whole shard of scenarios against one compiled simulator.

    With a batch-capable simulator (``backend="batch"``) the shard executes
    as ONE vectorized sweep over the scenario axis
    (:meth:`~repro.simulation.batch_ir.BatchSchedule.run_battery`); results
    are identical to :func:`execute_scenario` per scenario -- traces,
    error strings, isolation.  Sweep wall time is a property of the shard,
    not of any one scenario: each result carries an even share of it with
    ``amortized=True``, and the TRUE sweep duration and lane count land in
    the registry (``runner.sweep.count`` / ``runner.sweep.lanes`` counters,
    ``runner.sweep.duration_s`` histogram).  Any other simulator falls back
    to the per-scenario loop, so every executor can dispatch chunks through
    this one entry point.
    """
    if registry is None:
        registry = current_registry()
    if events is None:
        events = current_events()
    batch_schedule = getattr(simulator, "batch_schedule", None)
    if batch_schedule is not None:
        telemetry = _obs_active()
        if (telemetry is not None and telemetry.flight_recording
                and hasattr(simulator.schedule, "recording_step")):
            # forensics needs per-tick slot environments: recorded runs
            # take the per-scenario flat path instead of the vectorized
            # sweep (matching CompiledSimulator.run)
            batch_schedule = None
    if batch_schedule is None:
        return [execute_scenario(simulator, scenario, collect_modes, worker,
                                 registry=registry, events=events)
                for scenario in scenarios]
    start = time.perf_counter()
    outcomes = batch_schedule.run_battery(
        [(scenario.name, scenario.stimuli, scenario.ticks)
         for scenario in scenarios],
        check_types=simulator.check_types, collect_modes=collect_modes)
    sweep_duration = time.perf_counter() - start
    amortized = sweep_duration / max(1, len(outcomes))
    results = [ScenarioResult(outcome.name, trace=outcome.trace,
                              error=outcome.error, duration=amortized,
                              worker=worker, mode_paths=outcome.mode_paths,
                              amortized=True)
               for outcome in outcomes]
    if registry is not None:
        registry.counter("runner.sweep.count").inc()
        registry.counter("runner.sweep.lanes").inc(len(results))
        registry.histogram("runner.sweep.duration_s").observe(sweep_duration)
        for result, scenario in zip(results, scenarios):
            _record_scenario(registry, result, scenario.ticks)
    if events is not None:
        for result, scenario in zip(results, scenarios):
            _emit_scenario_event(events, result, scenario.ticks)
    return results


# --------------------------------------------------------------------------
# process-pool workers (module level: must be picklable by reference)
# --------------------------------------------------------------------------

class _ShardOutcome:
    """Worker return envelope when telemetry is on: results plus the
    worker-local telemetry to merge into the parent on receipt -- the
    metrics registry, the buffered campaign events (resequenced into the
    parent's :class:`~repro.obs.events.EventLog`), the worker's span trees
    (adopted into the parent tracer, tagged with the worker identity) and
    any post-mortem bundle paths the worker dumped.

    Workers never talk to the parent's (ambient) telemetry directly --
    process workers can't see it, thread workers could but would race on
    it -- so each task builds fresh worker-local instruments, and the
    order-insensitive folds (:meth:`~MetricsRegistry.merge`, event
    resequencing + :func:`~repro.obs.events.normalized_stream`) make the
    aggregates independent of sharding and completion order.
    """

    __slots__ = ("results", "registry", "events", "spans", "worker",
                 "bundles")

    def __init__(self, results: List[ScenarioResult],
                 registry: MetricsRegistry,
                 events: Sequence[CampaignEvent] = (),
                 spans: Sequence[Any] = (), worker: str = "",
                 bundles: Sequence[str] = ()):
        self.results = results
        self.registry = registry
        self.events = list(events)
        self.spans = list(spans)
        self.worker = worker
        self.bundles = list(bundles)


_PROCESS_WORKER: Dict[str, Any] = {}


def _process_initializer(payload: bytes, check_types: bool,
                         collect_modes: bool,
                         backend: str = "auto",
                         observe: bool = False,
                         obs_config: Optional[Dict[str, Any]] = None) -> None:
    component = pickle.loads(payload)
    _PROCESS_WORKER["simulator"] = CompiledSimulator(component,
                                                     check_types=check_types,
                                                     backend=backend)
    _PROCESS_WORKER["collect_modes"] = collect_modes
    _PROCESS_WORKER["observe"] = observe
    _PROCESS_WORKER["obs_config"] = obs_config or {}


def _observed_process_task(run: Callable[..., Any],
                           argument: Any) -> _ShardOutcome:
    """Run one observed task inside a worker-local telemetry session.

    The session makes the worker's AMBIENT telemetry the worker-local one
    for the duration of the task, so every instrumentation site fires --
    including the batch sweep's ``batch.*`` counters and spans, which an
    explicit registry alone would miss -- and everything lands in the one
    registry/tracer/event-log shipped back in the envelope.  The task is
    wrapped in a ``runner.worker_task`` span carrying the worker identity,
    which :meth:`~repro.obs.tracing.Tracer.to_chrome_trace` maps to a
    distinct Perfetto track per worker.
    """
    from ..obs.context import session as _obs_session
    worker = f"pid-{os.getpid()}"
    config = _PROCESS_WORKER["obs_config"]
    log = EventLog() if config.get("events") else None
    with _obs_session(events=log,
                      flight_recording=config.get("flight_recording", False),
                      ring_ticks=config.get("ring_ticks", 16),
                      postmortem_dir=config.get("postmortem_dir")
                      ) as telemetry:
        with telemetry.tracer.span("runner.worker_task", worker=worker):
            out = run(_PROCESS_WORKER["simulator"], argument,
                      _PROCESS_WORKER["collect_modes"], worker=worker,
                      registry=telemetry.registry, events=log)
    results = out if isinstance(out, list) else [out]
    return _ShardOutcome(results, telemetry.registry,
                         events=log.events if log is not None else (),
                         spans=telemetry.tracer.roots, worker=worker,
                         bundles=telemetry.bundles)


def _process_run_one(scenario: Scenario) -> Any:
    if not _PROCESS_WORKER.get("observe"):
        return execute_scenario(_PROCESS_WORKER["simulator"], scenario,
                                _PROCESS_WORKER["collect_modes"],
                                worker=f"pid-{os.getpid()}")
    return _observed_process_task(execute_scenario, scenario)


def _process_run_chunk(chunk: List[Scenario]) -> Any:
    if not _PROCESS_WORKER.get("observe"):
        return execute_batch(_PROCESS_WORKER["simulator"], chunk,
                             _PROCESS_WORKER["collect_modes"],
                             worker=f"pid-{os.getpid()}")
    return _observed_process_task(execute_batch, chunk)


# --------------------------------------------------------------------------
# the sharded runner
# --------------------------------------------------------------------------

_EXECUTORS = ("process", "thread", "serial")


def _validate_batch(scenarios: Sequence[Scenario]) -> List[Scenario]:
    batch = list(scenarios)
    seen = set()
    for scenario in batch:
        if not isinstance(scenario, Scenario):
            raise SimulationError(
                f"expected a Scenario, got {type(scenario).__name__}; build "
                "batches from repro.scenarios.Scenario records")
        if scenario.name in seen:
            raise SimulationError(
                f"scenario batch has a duplicate scenario {scenario.name!r}")
        seen.add(scenario.name)
    return batch


def _pickle_model(component: Component) -> bytes:
    try:
        return pickle.dumps(component)
    except Exception as exc:  # noqa: BLE001 - report the real cause
        raise SimulationError(
            f"model {component.name!r} cannot be shipped to worker processes "
            f"({type(exc).__name__}: {exc}); models with opaque Python "
            "callables are process-shard-incompatible -- use "
            "executor='thread' or executor='serial' instead") from exc


def run_sharded(component: Component, scenarios: Sequence[Scenario], *,
                max_workers: Optional[int] = None, executor: str = "process",
                check_types: bool = False, collect_modes: bool = False,
                chunk_size: Optional[int] = None,
                on_result: Optional[ResultCallback] = None,
                backend: str = "auto") -> List[ScenarioResult]:
    """Run a scenario batch sharded across a worker pool.

    Results are returned in scenario order regardless of completion order;
    ``on_result`` observes them in completion order for streaming
    consumption.  ``chunk_size`` groups scenarios per task to amortize
    inter-process transfer for very large batches of cheap scenarios.

    *backend* selects the worker simulators' schedule backend (forwarded
    to :class:`~repro.simulation.compiled.CompiledSimulator`).  With
    ``backend="batch"`` every shard executes as one vectorized sweep: the
    serial executor sweeps the whole batch, pools dispatch one
    :func:`shard_scenarios` shard per worker by default (``chunk_size``
    still overrides the grouping) -- traces, error strings and result
    order stay byte-identical to the per-scenario path.  With
    ``backend="native"`` every worker drives the compiled C step function;
    the content-addressed shared-object cache makes the per-worker
    recompile a cache hit, and compiler-less hosts degrade to ``"flat"``.
    """
    if executor not in _EXECUTORS:
        raise SimulationError(
            f"unknown executor {executor!r} (choose from {_EXECUTORS})")
    batch = _validate_batch(scenarios)
    if not batch:
        return []
    if not component.has_behavior():
        raise SimulationError(
            f"component {component.name!r} has no executable behaviour and "
            "cannot be simulated (FAA components may be structure-only)")
    if chunk_size is not None and chunk_size < 1:
        raise SimulationError("chunk_size must be >= 1")

    parent_telemetry = _obs_active()
    parent_registry = current_registry()
    parent_events = current_events()
    observe = parent_registry is not None
    obs_config: Optional[Dict[str, Any]] = None
    if parent_telemetry is not None:
        obs_config = {
            "events": parent_telemetry.events is not None,
            "flight_recording": parent_telemetry.flight_recording,
            "ring_ticks": parent_telemetry.ring_ticks,
            "postmortem_dir": parent_telemetry.postmortem_dir,
        }
    if parent_events is not None:
        parent_events.emit("campaign_started", component=component.name,
                           scenarios=len(batch), executor=executor,
                           backend=backend, collect_modes=collect_modes)

    if executor == "serial":
        with maybe_span("runner.run_sharded", scenarios=len(batch),
                        executor=executor, backend=backend):
            if parent_events is not None:
                parent_events.emit("shard_dispatched", shard=0,
                                   scenarios=len(batch), executor=executor)
            simulator = CompiledSimulator(component, check_types=check_types,
                                          backend=backend)
            results = execute_batch(simulator, batch, collect_modes,
                                    registry=parent_registry,
                                    events=parent_events)
        if parent_events is not None:
            ok = sum(1 for result in results if result.ok)
            parent_events.emit("campaign_finished", scenarios=len(results),
                               ok=ok, failed=len(results) - ok,
                               executor=executor)
        if on_result is not None:
            for result in results:
                on_result(result)
        return results

    workers = max_workers or min(len(batch), os.cpu_count() or 1)
    workers = max(1, min(workers, len(batch)))
    batched = backend == "batch"

    if executor == "process":
        payload = _pickle_model(component)
        pool: Executor = ProcessPoolExecutor(
            max_workers=workers, initializer=_process_initializer,
            initargs=(payload, check_types, collect_modes, backend, observe,
                      obs_config))
        run_one: Callable[[Scenario], Any] = _process_run_one
        run_chunk: Callable[[List[Scenario]], Any] = _process_run_chunk
    else:  # thread pool: per-thread compilation, no pickling
        local = threading.local()

        def _thread_initializer() -> None:
            local.simulator = CompiledSimulator(component,
                                                check_types=check_types,
                                                backend=backend)

        # thread workers mirror the process protocol: fresh per-task
        # registry and event buffer rather than the shared ambient ones,
        # which are not synchronized and would race under concurrent
        # appends/increments
        buffer_events = parent_events is not None

        def run_one(scenario: Scenario) -> Any:
            worker = threading.current_thread().name
            if not observe:
                return execute_scenario(
                    local.simulator, scenario, collect_modes, worker=worker)
            registry = MetricsRegistry()
            log = EventLog() if buffer_events else None
            result = execute_scenario(
                local.simulator, scenario, collect_modes,
                worker=worker, registry=registry, events=log)
            return _ShardOutcome([result], registry,
                                 events=log.events if log is not None
                                 else (), worker=worker)

        def run_chunk(chunk: List[Scenario]) -> Any:
            worker = threading.current_thread().name
            if not observe:
                return execute_batch(
                    local.simulator, chunk, collect_modes, worker=worker)
            registry = MetricsRegistry()
            log = EventLog() if buffer_events else None
            results = execute_batch(
                local.simulator, chunk, collect_modes,
                worker=worker, registry=registry, events=log)
            return _ShardOutcome(results, registry,
                                 events=log.events if log is not None
                                 else (), worker=worker)

        pool = ThreadPoolExecutor(max_workers=workers,
                                  initializer=_thread_initializer)

    by_name: Dict[str, ScenarioResult] = {}
    with pool, maybe_span("runner.run_sharded", scenarios=len(batch),
                          executor=executor, backend=backend,
                          workers=workers):
        if chunk_size is None and batched:
            # whole shards as single sweeps: one contiguous near-equal
            # shard per worker (shard_scenarios drops empty shards, so
            # workers > len(batch) degenerates to singleton sweeps)
            tasks = shard_scenarios(batch, workers)
            chunked = True
        elif chunk_size is None:
            tasks = [[scenario] for scenario in batch]
            chunked = False
        else:
            tasks = [batch[index:index + chunk_size]
                     for index in range(0, len(batch), chunk_size)]
            chunked = True
        futures: Dict[Any, List[Scenario]] = {}
        for shard_index, task in enumerate(tasks):
            if parent_events is not None:
                parent_events.emit("shard_dispatched", shard=shard_index,
                                   scenarios=len(task), executor=executor)
            future = pool.submit(run_chunk, task) if chunked \
                else pool.submit(run_one, task[0])
            futures[future] = task
        for future in as_completed(futures):
            submitted = futures[future]
            error = future.exception()
            if error is not None:
                # the task itself failed (e.g. unpicklable stimuli, broken
                # pool): isolate it to the scenarios of this task
                completed: Iterable[ScenarioResult] = [
                    ScenarioResult(scenario.name,
                                   error=f"{type(error).__name__}: {error}")
                    for scenario in submitted]
                if parent_events is not None:
                    for result in completed:
                        _emit_scenario_event(parent_events, result, 0)
            else:
                outcome = future.result()
                if isinstance(outcome, _ShardOutcome):
                    if parent_registry is not None:
                        parent_registry.merge(outcome.registry)
                    if parent_events is not None:
                        parent_events.adopt_all(outcome.events,
                                                worker=outcome.worker)
                    if parent_telemetry is not None:
                        for span in outcome.spans:
                            span.attributes.setdefault("worker",
                                                       outcome.worker)
                            parent_telemetry.tracer.adopt(span)
                        parent_telemetry.bundles.extend(outcome.bundles)
                    outcome = outcome.results
                completed = outcome if isinstance(outcome, list) else [outcome]
            for result in completed:
                by_name[result.name] = result
                if on_result is not None:
                    on_result(result)
    if parent_events is not None:
        ok = sum(1 for result in by_name.values() if result.ok)
        parent_events.emit("campaign_finished", scenarios=len(by_name),
                           ok=ok, failed=len(by_name) - ok,
                           executor=executor)
    return [by_name[scenario.name] for scenario in batch]
