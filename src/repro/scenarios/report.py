"""Batch aggregation and coverage reporting for scenario runs.

Running hundreds of generated scenarios is only useful if the batch can be
*judged*: did the battery actually exercise the operational modes the model
declares (the paper's central modelling element, Sec. 5), which value ranges
did the boundary ports see, and which scenarios failed?  This module turns a
list of :class:`~repro.scenarios.runner.ScenarioResult` records into a
:class:`BatchReport` with

* **mode coverage** -- for every MTD and STD in the hierarchy (found via
  :func:`repro.analysis.mode_analysis.machine_inventory`), the set of
  modes/states and ``source -> target`` transition pairs exercised across
  the whole batch, against the declared ones,
* **port statistics** -- presence counts and numeric value ranges per
  boundary port across all traces,
* **failure roll-ups** -- per-scenario errors isolated by the sharded
  runner,

plus JSON export (via :mod:`repro.io` for the embedded traces).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..analysis.mode_analysis import MachineInfo, machine_inventory
from ..core.components import Component, CompositeComponent
from ..core.errors import SimulationError
from ..core.values import is_absent
from ..io.json_io import trace_to_json_dict
from ..notations.mtd import ModeTransitionDiagram
from ..notations.std import StateTransitionDiagram


def active_mode_paths(component: Component, state: Any,
                      path: Optional[str] = None,
                      out: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Extract the active mode/state of every MTD and STD from a state tree.

    Both engines use the same state shapes (``{"subs": ...}`` for
    composites, ``{"inner": ...}`` for clock-gated wrappers, ``{"mode":
    ...}`` / ``{"state": ...}`` for MTDs/STDs), so the walker works on
    reference and compiled states alike.  Paths match
    :func:`repro.analysis.mode_analysis.machine_inventory`.
    """
    if out is None:
        out = {}
    if path is None:
        path = component.name
    if state is None or not isinstance(state, Mapping):
        return out
    inner = getattr(component, "inner", None)
    if isinstance(inner, Component) and "inner" in state:
        active_mode_paths(inner, state["inner"], path, out)
        return out
    if isinstance(component, ModeTransitionDiagram):
        current = state.get("mode") or component.initial_mode
        out[path] = current
        mode = component.mode(current)
        if mode.behavior is not None:
            mode_states = state.get("mode_states") or {}
            active_mode_paths(mode.behavior, mode_states.get(current),
                              f"{path}/{current}", out)
    elif isinstance(component, StateTransitionDiagram):
        out[path] = state.get("state") or component.initial_state_name
    elif isinstance(component, CompositeComponent):
        subs = state.get("subs") or {}
        for sub in component.subcomponents():
            active_mode_paths(sub, subs.get(sub.name), f"{path}/{sub.name}", out)
    return out


def fold_mode_history(history: Sequence[Any], initial: Optional[Any]
                      ) -> Tuple[Set[Any], Set[Tuple[Any, Any]]]:
    """Fold one per-tick mode history into (visited modes, change pairs).

    Histories record the *post*-step mode of every tick, so a non-empty
    history is seeded with the machine's declared initial mode: the machine
    was in it before tick 0, and a guard firing at tick 0 is a transition
    out of it.  ``None`` entries (ticks without an observation) are
    skipped.  This is the single definition of observation semantics --
    :class:`ModeCoverage` and the search's coverage frontier both fold
    through it, so batch reporting and search fitness can never disagree.
    """
    modes: Set[Any] = set()
    pairs: Set[Tuple[Any, Any]] = set()
    previous = None
    if history and initial is not None:
        modes.add(initial)
        previous = initial
    for mode in history:
        if mode is None:
            continue
        modes.add(mode)
        if previous is not None and previous != mode:
            pairs.add((previous, mode))
        previous = mode
    return modes, pairs


@dataclass
class ModeCoverage:
    """Coverage of one mode machine (MTD or STD) across a scenario batch."""

    path: str
    kind: str
    declared_modes: List[str]
    declared_transitions: List[Tuple[str, str]]
    initial: Optional[str] = None
    visited_modes: Set[str] = field(default_factory=set)
    visited_transitions: Set[Tuple[str, str]] = field(default_factory=set)

    def observe_history(self, history: Sequence[Any]) -> None:
        """Fold one per-tick mode history into the coverage sets (see
        :func:`fold_mode_history` for the observation semantics)."""
        modes, pairs = fold_mode_history(history, self.initial)
        self.visited_modes |= modes
        self.visited_transitions |= pairs

    def merge(self, other: "ModeCoverage") -> None:
        """Fold another machine's observations into this one (same machine)."""
        if other.path != self.path:
            raise SimulationError(
                f"cannot merge coverage of machine {other.path!r} into "
                f"{self.path!r}")
        self.visited_modes |= other.visited_modes
        self.visited_transitions |= other.visited_transitions

    # observed transitions are mode-change pairs; a declared self-loop or a
    # second transition sharing (source, target) cannot be told apart from
    # the state sequence alone, so coverage is over distinct pairs
    def declared_transition_pairs(self) -> Set[Tuple[str, str]]:
        return {pair for pair in self.declared_transitions
                if pair[0] != pair[1]}

    def mode_coverage(self) -> float:
        if not self.declared_modes:
            return 1.0
        covered = self.visited_modes & set(self.declared_modes)
        return len(covered) / len(self.declared_modes)

    def transition_coverage(self) -> float:
        pairs = self.declared_transition_pairs()
        if not pairs:
            return 1.0
        return len(self.visited_transitions & pairs) / len(pairs)

    def unvisited_modes(self) -> List[str]:
        return [mode for mode in self.declared_modes
                if mode not in self.visited_modes]

    def untaken_transitions(self) -> List[Tuple[str, str]]:
        return sorted(self.declared_transition_pairs()
                      - self.visited_transitions)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "kind": self.kind,
            "declared_modes": list(self.declared_modes),
            "visited_modes": sorted(str(m) for m in self.visited_modes),
            "unvisited_modes": self.unvisited_modes(),
            "mode_coverage": self.mode_coverage(),
            "declared_transitions": sorted(self.declared_transition_pairs()),
            "visited_transitions": sorted(self.visited_transitions),
            "untaken_transitions": self.untaken_transitions(),
            "transition_coverage": self.transition_coverage(),
        }


@dataclass
class PortStats:
    """Presence and value-range statistics of one port across a batch.

    All folds are order-insensitive: counters add, ranges widen, and the
    non-numeric ``value_sample`` is kept canonical (the ``_SAMPLE_CAP``
    smallest distinct values by string order), so streaming results in
    completion order -- or merging shard reports in any order -- yields the
    same statistics as a single ordered pass.
    """

    port: str
    total_ticks: int = 0
    present_ticks: int = 0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    value_sample: List[Any] = field(default_factory=list)
    _SAMPLE_CAP = 12

    def _sample(self, value: Any) -> None:
        if value in self.value_sample:
            return
        self.value_sample.append(value)
        self.value_sample.sort(key=str)
        del self.value_sample[self._SAMPLE_CAP:]

    def observe(self, value: Any) -> None:
        self.total_ticks += 1
        if is_absent(value):
            return
        self.present_ticks += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.minimum = value if self.minimum is None \
                else min(self.minimum, value)
            self.maximum = value if self.maximum is None \
                else max(self.maximum, value)
        else:
            self._sample(value)

    def merge(self, other: "PortStats") -> None:
        """Fold another batch's statistics of the same port into this one."""
        self.total_ticks += other.total_ticks
        self.present_ticks += other.present_ticks
        for bound in (other.minimum, other.maximum):
            if bound is None:
                continue
            self.minimum = bound if self.minimum is None \
                else min(self.minimum, bound)
            self.maximum = bound if self.maximum is None \
                else max(self.maximum, bound)
        for value in other.value_sample:
            self._sample(value)

    def presence_ratio(self) -> float:
        return self.present_ticks / self.total_ticks if self.total_ticks else 0.0

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "port": self.port,
            "total_ticks": self.total_ticks,
            "present_ticks": self.present_ticks,
            "presence_ratio": self.presence_ratio(),
            "min": self.minimum,
            "max": self.maximum,
            "value_sample": [str(v) for v in self.value_sample],
        }


@dataclass
class BatchReport:
    """Aggregated outcome of one scenario batch."""

    component_name: str
    total: int = 0
    succeeded: int = 0
    failed: int = 0
    total_ticks: int = 0
    total_duration: float = 0.0
    failures: Dict[str, str] = field(default_factory=dict)
    scenario_ticks: Dict[str, int] = field(default_factory=dict)
    coverage: Dict[str, ModeCoverage] = field(default_factory=dict)
    output_stats: Dict[str, PortStats] = field(default_factory=dict)
    input_stats: Dict[str, PortStats] = field(default_factory=dict)

    # -- construction ------------------------------------------------------
    @classmethod
    def for_component(cls, component: Component) -> "BatchReport":
        """An empty report primed with the component's declared machines.

        Results are folded in one at a time with :meth:`observe_result`,
        which is what lets streamed batches and multi-round searches
        aggregate coverage incrementally instead of re-scanning all prior
        traces.
        """
        report = cls(component_name=component.name)
        for info in machine_inventory(component):
            report.coverage[info.path] = ModeCoverage(
                path=info.path, kind=info.kind,
                declared_modes=list(info.modes),
                declared_transitions=list(info.transitions),
                initial=info.initial)
        return report

    @classmethod
    def from_results(cls, component: Component,
                     results: Sequence[Any]) -> "BatchReport":
        """Aggregate :class:`~repro.scenarios.runner.ScenarioResult` records.

        Results only need ``name`` / ``trace`` / ``error`` / ``duration`` /
        ``mode_paths`` attributes, so serial runs and hand-built records
        aggregate the same way as sharded ones.
        """
        report = cls.for_component(component)
        for result in results:
            report.observe_result(result)
        return report

    def observe_result(self, result: Any) -> None:
        """Fold one scenario result into the aggregate."""
        self.total += 1
        self.total_duration += getattr(result, "duration", 0.0) or 0.0
        if getattr(result, "error", None) is not None:
            self.failed += 1
            self.failures[result.name] = result.error
            return
        self.succeeded += 1
        trace = result.trace
        if trace is not None:
            self.scenario_ticks[result.name] = trace.ticks
            self.total_ticks += trace.ticks
            for name, stream in trace.outputs.items():
                stats = self.output_stats.setdefault(name, PortStats(name))
                for value in stream:
                    stats.observe(value)
            for name, stream in trace.inputs.items():
                stats = self.input_stats.setdefault(name, PortStats(name))
                for value in stream:
                    stats.observe(value)
        mode_paths = getattr(result, "mode_paths", None)
        root_machine = self.coverage.get(self.component_name)
        if mode_paths:
            for path, history in mode_paths.items():
                if path in self.coverage:
                    self.coverage[path].observe_history(history)
        elif trace is not None and trace.mode_history \
                and root_machine is not None:
            # without per-tick state observation the root machine's mode
            # history recorded by the engines still contributes coverage
            root_machine.observe_history(trace.mode_history)

    def merge(self, other: "BatchReport") -> "BatchReport":
        """Fold another report over the *same* component into this one.

        Counters add up, failures and per-scenario ticks union (scenario
        names are unique across a well-formed multi-round batch), machine
        coverage and port statistics merge element-wise.  Merging shard
        reports is equivalent to one-shot aggregation over all results
        (``tests/test_scenario_report.py`` proves it), which is what lets a
        multi-round search aggregate rounds without re-scanning traces.
        """
        if other.component_name != self.component_name:
            raise SimulationError(
                f"cannot merge a report for {other.component_name!r} into "
                f"one for {self.component_name!r}")
        self.total += other.total
        self.succeeded += other.succeeded
        self.failed += other.failed
        self.total_ticks += other.total_ticks
        self.total_duration += other.total_duration
        self.failures.update(other.failures)
        self.scenario_ticks.update(other.scenario_ticks)
        for path, coverage in other.coverage.items():
            if path in self.coverage:
                self.coverage[path].merge(coverage)
            else:
                self.coverage[path] = ModeCoverage(
                    path=coverage.path, kind=coverage.kind,
                    declared_modes=list(coverage.declared_modes),
                    declared_transitions=list(coverage.declared_transitions),
                    initial=coverage.initial,
                    visited_modes=set(coverage.visited_modes),
                    visited_transitions=set(coverage.visited_transitions))
        for pool_name in ("output_stats", "input_stats"):
            mine: Dict[str, PortStats] = getattr(self, pool_name)
            for name, stats in getattr(other, pool_name).items():
                if name in mine:
                    mine[name].merge(stats)
                else:
                    merged = PortStats(name)
                    merged.merge(stats)
                    mine[name] = merged
        return self

    # -- queries -----------------------------------------------------------
    def overall_mode_coverage(self) -> float:
        declared = sum(len(c.declared_modes) for c in self.coverage.values())
        if not declared:
            return 1.0
        covered = sum(len(c.visited_modes & set(c.declared_modes))
                      for c in self.coverage.values())
        return covered / declared

    def overall_transition_coverage(self) -> float:
        declared = sum(len(c.declared_transition_pairs())
                       for c in self.coverage.values())
        if not declared:
            return 1.0
        covered = sum(len(c.visited_transitions & c.declared_transition_pairs())
                      for c in self.coverage.values())
        return covered / declared

    # -- presentation ------------------------------------------------------
    def format_summary(self) -> str:
        lines = [f"scenario batch report for {self.component_name!r}:",
                 f"  scenarios: {self.total} total, {self.succeeded} ok, "
                 f"{self.failed} failed "
                 f"({self.total_ticks} ticks, {self.total_duration:.3f}s)"]
        if self.coverage:
            lines.append(f"  mode coverage: "
                         f"{100.0 * self.overall_mode_coverage():.0f}% modes, "
                         f"{100.0 * self.overall_transition_coverage():.0f}% "
                         f"transitions")
            for path in sorted(self.coverage):
                entry = self.coverage[path]
                lines.append(
                    f"    [{entry.kind}] {path}: "
                    f"{len(entry.visited_modes & set(entry.declared_modes))}"
                    f"/{len(entry.declared_modes)} modes, "
                    f"{len(entry.visited_transitions & entry.declared_transition_pairs())}"
                    f"/{len(entry.declared_transition_pairs())} transitions")
                if entry.unvisited_modes():
                    lines.append("      unvisited: "
                                 + ", ".join(map(str, entry.unvisited_modes())))
        if self.output_stats:
            lines.append("  output ranges:")
            for name in sorted(self.output_stats):
                stats = self.output_stats[name]
                span = (f"[{stats.minimum:g} .. {stats.maximum:g}]"
                        if stats.minimum is not None else "non-numeric")
                lines.append(f"    {name}: present "
                             f"{stats.present_ticks}/{stats.total_ticks} {span}")
        if self.failures:
            lines.append("  failures:")
            for name in sorted(self.failures):
                lines.append(f"    {name}: {self.failures[name]}")
        return "\n".join(lines)

    # -- export ------------------------------------------------------------
    def to_json_dict(self, results: Optional[Sequence[Any]] = None,
                     include_traces: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "component": self.component_name,
            "scenarios": {
                "total": self.total,
                "succeeded": self.succeeded,
                "failed": self.failed,
                "total_ticks": self.total_ticks,
                "total_duration_s": self.total_duration,
                "ticks_per_scenario": dict(self.scenario_ticks),
            },
            "failures": dict(self.failures),
            "coverage": {
                "overall_mode_coverage": self.overall_mode_coverage(),
                "overall_transition_coverage":
                    self.overall_transition_coverage(),
                "machines": [self.coverage[path].to_json_dict()
                             for path in sorted(self.coverage)],
            },
            "ports": {
                "outputs": [self.output_stats[name].to_json_dict()
                            for name in sorted(self.output_stats)],
                "inputs": [self.input_stats[name].to_json_dict()
                           for name in sorted(self.input_stats)],
            },
        }
        if include_traces and results is not None:
            data["traces"] = {
                result.name: trace_to_json_dict(result.trace)
                for result in results if getattr(result, "trace", None) is not None}
        return data

    def to_json(self, results: Optional[Sequence[Any]] = None,
                include_traces: bool = False, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(results, include_traces),
                          indent=indent, sort_keys=True, default=str)

    def save(self, path: str, results: Optional[Sequence[Any]] = None,
             include_traces: bool = False) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json(results, include_traces))
