"""Composable, deterministically-seeded stimulus generators.

The FAA/FDA validation story of the paper rests on exercising a functional
concept against *many* stimulus histories (Sec. 3.1).  Hand-writing per-tick
value lists does not scale to the scenario batteries that automated
validation needs, so this module provides a small DSL of stimulus
generators that

* plug directly into both simulation engines -- every generator is a valid
  :data:`~repro.simulation.engine.StimulusSpec` (it is callable and it
  offers :meth:`StimulusGenerator.materialize`, which
  :func:`~repro.simulation.engine.normalize_stimulus` prefers),
* are **deterministic**: randomized generators draw from one
  ``random.Random(seed)`` stream with a fixed number of draws per tick, so
  the same generator always produces the same history -- re-runs,
  differential checks against the reference engine and sharded parallel
  execution all see identical stimuli,
* are **picklable**: transient caches are dropped on pickling and rebuilt
  from the seed, which is what lets the sharded runner ship scenario
  batches to worker processes (pickle the spec, not the values),
* **compose**: fault injectors (stuck-at, dropout, out-of-range) wrap any
  other stimulus specification, including plain lists and scalars.

Scenario batteries are assembled from :class:`Scenario` records; the
:func:`scenario_grid` and :func:`mode_sequence_sweep` helpers expand
cartesian parameter grids and mode-sequence sweeps into such batteries.
"""

from __future__ import annotations

import itertools
import math
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import SimulationError
from ..core.values import ABSENT, Stream


def _window_bound(label: str, value: Any) -> int:
    """Validate one fault-injector window bound: a non-negative integer.

    Injector windows that never fire (negative ticks, float bounds that
    never equal an integer tick) would silently turn the injector into a
    no-op; the coverage-search mutators rely on injector windows actually
    firing, so malformed bounds are rejected at construction time.
    """
    if not isinstance(value, int) or isinstance(value, bool):
        raise SimulationError(
            f"fault-injector {label} must be an integer tick, "
            f"got {value!r}")
    if value < 0:
        raise SimulationError(
            f"fault-injector {label} must be >= 0, got {value!r}")
    return value


def sample_spec(spec: Any, tick: int) -> Any:
    """Sample any stimulus specification at one tick.

    Mirrors the per-tick semantics of
    :func:`~repro.simulation.engine.normalize_stimulus`: streams and
    sequences are indexed (absent beyond their end), callables are applied,
    scalars are constant.  Fault injectors use this to wrap arbitrary inner
    specifications.
    """
    if isinstance(spec, Stream):
        return spec[tick] if 0 <= tick < len(spec) else ABSENT
    if isinstance(spec, (list, tuple)):
        return spec[tick] if 0 <= tick < len(spec) else ABSENT
    if callable(spec):
        return spec(tick)
    return spec


class StimulusGenerator:
    """Base class of the generator DSL.

    A generator is a deterministic map ``tick -> value``.  Sub-classes
    implement :meth:`sample`; :meth:`materialize` turns the generator into
    an explicit value list for a known horizon (the engines use this to
    avoid per-tick virtual calls on the hot path).
    """

    def sample(self, tick: int) -> Any:
        raise NotImplementedError

    def __call__(self, tick: int) -> Any:
        return self.sample(tick)

    def materialize(self, ticks: int) -> List[Any]:
        """The explicit per-tick history over ``0 .. ticks-1``."""
        return [self.sample(tick) for tick in range(ticks)]

    def __repr__(self) -> str:
        public = {key: value for key, value in vars(self).items()
                  if not key.startswith("_")}
        args = ", ".join(f"{key}={value!r}" for key, value in public.items())
        return f"{type(self).__name__}({args})"


class SeededGenerator(StimulusGenerator):
    """A generator drawing from one seeded pseudo-random stream.

    Draws happen in tick order with a *fixed* number of draws per tick
    (sub-classes guarantee this in :meth:`_draw`), and every drawn tick is
    cached, so querying any tick twice -- or re-running the generator after
    a pickle round-trip -- yields identical values.  Cache extension is
    locked: one generator instance may be shared by many scenarios of a
    thread-sharded batch (e.g. via the ``base`` stimuli of a scenario
    grid), and concurrent extension would otherwise interleave draws.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._reset()

    def _reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._cache: List[Any] = []
        self._lock = threading.Lock()

    def _draw(self, rng: random.Random) -> Any:
        """Draw the value of the next tick (fixed draw count per call)."""
        raise NotImplementedError

    def sample(self, tick: int) -> Any:
        if tick < 0:
            raise SimulationError("stimulus generators are defined for ticks >= 0")
        cache = self._cache
        if tick >= len(cache):
            with self._lock:
                while len(cache) <= tick:
                    cache.append(self._draw(self._rng))
        return cache[tick]

    # transient RNG/cache state is rebuilt from the seed after unpickling,
    # so a shipped generator replays exactly the same history
    def __getstate__(self) -> Dict[str, Any]:
        return {key: value for key, value in self.__dict__.items()
                if not key.startswith("_")}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._reset()


# --------------------------------------------------------------------------
# deterministic waveform generators
# --------------------------------------------------------------------------

class Constant(StimulusGenerator):
    """The same value at every tick (useful as a wrappable inner spec)."""

    def __init__(self, value: Any):
        self.value = value

    def sample(self, tick: int) -> Any:
        return self.value


class Ramp(StimulusGenerator):
    """``start + slope * tick``, optionally clamped to ``[low, high]``."""

    def __init__(self, start: float = 0.0, slope: float = 1.0,
                 low: Optional[float] = None, high: Optional[float] = None):
        self.start = start
        self.slope = slope
        self.low = low
        self.high = high

    def sample(self, tick: int) -> Any:
        value = self.start + self.slope * tick
        if self.low is not None:
            value = max(self.low, value)
        if self.high is not None:
            value = min(self.high, value)
        return value


class StepChange(StimulusGenerator):
    """*before* until ``at`` (exclusive), *after* from then on."""

    def __init__(self, at: int, before: Any = 0.0, after: Any = 1.0):
        self.at = at
        self.before = before
        self.after = after

    def sample(self, tick: int) -> Any:
        return self.after if tick >= self.at else self.before


class SquareWave(StimulusGenerator):
    """A square wave with the given period, levels and duty cycle."""

    def __init__(self, period: int, low: Any = 0.0, high: Any = 1.0,
                 duty: float = 0.5, phase: int = 0):
        if period < 1:
            raise SimulationError("square wave period must be >= 1")
        if not 0.0 <= duty <= 1.0:
            raise SimulationError("square wave duty cycle must be in [0, 1]")
        self.period = period
        self.low = low
        self.high = high
        self.duty = duty
        self.phase = phase

    def sample(self, tick: int) -> Any:
        position = (tick + self.phase) % self.period
        return self.high if position < self.duty * self.period else self.low


class SineWave(StimulusGenerator):
    """``offset + amplitude * sin(2*pi*(tick + phase) / period)``."""

    def __init__(self, amplitude: float = 1.0, period: float = 20.0,
                 offset: float = 0.0, phase: float = 0.0):
        if period <= 0:
            raise SimulationError("sine wave period must be positive")
        self.amplitude = amplitude
        self.period = period
        self.offset = offset
        self.phase = phase

    def sample(self, tick: int) -> Any:
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * (tick + self.phase) / self.period)


class ModeSequence(StimulusGenerator):
    """A piecewise-constant value history from ``(value, duration)`` segments.

    This is the mode-sequence stimulus of operational-mode validation: drive
    an input through a scripted sequence of phases (e.g. ``Off``, then
    ``Cranking`` for 10 ticks, then ``Idle``).  After the last segment the
    final value is held (``hold_last=True``) or the signal goes absent.
    """

    def __init__(self, segments: Sequence[Tuple[Any, int]],
                 hold_last: bool = True):
        if not segments:
            raise SimulationError("a mode sequence needs at least one segment")
        for value, duration in segments:
            if int(duration) < 1:
                raise SimulationError(
                    f"mode-sequence segment ({value!r}, {duration!r}) must "
                    "last at least one tick")
        self.segments = [(value, int(duration)) for value, duration in segments]
        self.hold_last = hold_last

    def sample(self, tick: int) -> Any:
        position = tick
        for value, duration in self.segments:
            if position < duration:
                return value
            position -= duration
        return self.segments[-1][0] if self.hold_last else ABSENT

    def total_ticks(self) -> int:
        """The combined duration of all segments."""
        return sum(duration for _, duration in self.segments)


# --------------------------------------------------------------------------
# seeded random generators
# --------------------------------------------------------------------------

class UniformNoise(SeededGenerator):
    """Independent per-tick draws from ``uniform(low, high)``."""

    def __init__(self, seed: int, low: float = 0.0, high: float = 1.0):
        self.low = low
        self.high = high
        super().__init__(seed)

    def _draw(self, rng: random.Random) -> Any:
        return rng.uniform(self.low, self.high)


class RandomWalk(SeededGenerator):
    """A seeded random walk with bounded step size and optional clamping."""

    def __init__(self, seed: int, start: float = 0.0, step: float = 1.0,
                 low: Optional[float] = None, high: Optional[float] = None):
        self.start = start
        self.step = step
        self.low = low
        self.high = high
        super().__init__(seed)

    def _reset(self) -> None:
        super()._reset()
        self._value = self.start

    def _draw(self, rng: random.Random) -> Any:
        value = self._value + rng.uniform(-self.step, self.step)
        if self.low is not None:
            value = max(self.low, value)
        if self.high is not None:
            value = min(self.high, value)
        self._value = value
        return value


class EventStorm(SeededGenerator):
    """A sporadic event stream: each tick carries an event with probability
    ``rate``, drawn uniformly from ``values``; other ticks carry ``quiet``
    (by default the absence value, i.e. no message at all).

    With ``rate`` close to 1 this is the "event storm" stress stimulus for
    event-triggered clusters and mode logic.
    """

    def __init__(self, seed: int, rate: float = 0.5,
                 values: Sequence[Any] = (True,), quiet: Any = ABSENT):
        if not 0.0 <= rate <= 1.0:
            raise SimulationError("event rate must be in [0, 1]")
        if not values:
            raise SimulationError("an event storm needs a non-empty value pool")
        self.rate = rate
        self.values = tuple(values)
        self.quiet = quiet
        super().__init__(seed)

    def _draw(self, rng: random.Random) -> Any:
        # always consume exactly two draws so the stream stays aligned
        present = rng.random() < self.rate
        index = rng.randrange(len(self.values))
        return self.values[index] if present else self.quiet


# --------------------------------------------------------------------------
# fault injectors (wrap any stimulus specification)
# --------------------------------------------------------------------------

class StuckAt(StimulusGenerator):
    """Sensor stuck-at fault: *value* inside ``[from_tick, until)``, the
    wrapped specification everywhere else."""

    def __init__(self, inner: Any, value: Any, from_tick: int = 0,
                 until: Optional[int] = None):
        self.inner = inner
        self.value = value
        self.from_tick = _window_bound("from_tick", from_tick)
        if until is not None:
            _window_bound("until", until)
            if until <= from_tick:
                raise SimulationError(
                    f"stuck-at window [{from_tick}, {until}) is empty: "
                    "until must be greater than from_tick")
        self.until = until

    def sample(self, tick: int) -> Any:
        if tick >= self.from_tick and (self.until is None or tick < self.until):
            return self.value
        return sample_spec(self.inner, tick)


class Dropout(SeededGenerator):
    """Message-loss fault: each tick of the wrapped specification is
    dropped (absent) with probability ``probability``."""

    def __init__(self, inner: Any, seed: int, probability: float = 0.1):
        if not 0.0 <= probability <= 1.0:
            raise SimulationError("dropout probability must be in [0, 1]")
        self.inner = inner
        self.probability = probability
        super().__init__(seed)

    def _draw(self, rng: random.Random) -> Any:
        return rng.random() < self.probability

    def sample(self, tick: int) -> Any:
        dropped = super().sample(tick)
        return ABSENT if dropped else sample_spec(self.inner, tick)


class OutOfRange(StimulusGenerator):
    """Out-of-range spikes: *value* at the listed ticks, the wrapped
    specification everywhere else."""

    def __init__(self, inner: Any, at_ticks: Sequence[int], value: Any):
        self.inner = inner
        ticks = list(at_ticks)
        if not ticks:
            raise SimulationError(
                "an out-of-range injector needs at least one spike tick "
                "(an empty at_ticks list would be a silent no-op)")
        self.at_ticks = frozenset(_window_bound("at_ticks entry", tick)
                                  for tick in ticks)
        self.value = value

    def sample(self, tick: int) -> Any:
        if tick in self.at_ticks:
            return self.value
        return sample_spec(self.inner, tick)


# --------------------------------------------------------------------------
# scenarios and batch expansion helpers
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One named stimulus set: the unit of batch scenario execution."""

    name: str
    stimuli: Mapping[str, Any] = field(default_factory=dict)
    ticks: int = 10

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("a scenario needs a non-empty name")
        if not isinstance(self.ticks, int) or isinstance(self.ticks, bool) \
                or self.ticks <= 0:
            raise SimulationError(
                f"scenario {self.name!r} must run for a positive integer "
                f"number of ticks, got {self.ticks!r}")


def _value_label(value: Any) -> str:
    if isinstance(value, StimulusGenerator):
        return repr(value) if len(repr(value)) <= 32 else type(value).__name__
    if isinstance(value, (int, float, bool, str)):
        return repr(value)
    if isinstance(value, (list, tuple)):
        return f"{type(value).__name__}[{len(value)}]"
    return type(value).__name__


def scenario_grid(name: str, grid: Mapping[str, Sequence[Any]], ticks: int,
                  base: Optional[Mapping[str, Any]] = None) -> List[Scenario]:
    """Expand a cartesian parameter grid into a scenario battery.

    ``grid`` maps input-port names to candidate stimulus specifications; one
    scenario is produced per combination (in deterministic insertion order),
    layered over the shared ``base`` stimuli.  Scenario names embed the
    combination so failures in a batch report are self-describing.
    """
    if not grid:
        raise SimulationError("a scenario grid needs at least one axis")
    axes = list(grid)
    pools = [list(grid[axis]) for axis in axes]
    for axis, pool in zip(axes, pools):
        if not pool:
            raise SimulationError(f"scenario grid axis {axis!r} is empty")
    scenarios: List[Scenario] = []
    seen: Dict[str, int] = {}
    for combination in itertools.product(*pools):
        label = ",".join(f"{axis}={_value_label(value)}"
                         for axis, value in zip(axes, combination))
        scenario_name = f"{name}[{label}]"
        if scenario_name in seen:
            seen[scenario_name] += 1
            scenario_name = f"{scenario_name}@{seen[scenario_name]}"
        else:
            seen[scenario_name] = 0
        stimuli = dict(base or {})
        stimuli.update(zip(axes, combination))
        scenarios.append(Scenario(scenario_name, stimuli, ticks))
    return scenarios


def mode_sequence_sweep(name: str, port: str,
                        sequences: Sequence[Sequence[Any]], dwell: int,
                        ticks: int,
                        base: Optional[Mapping[str, Any]] = None
                        ) -> List[Scenario]:
    """One scenario per value sequence, driving *port* through the sequence
    with *dwell* ticks per value (the mode-sequence sweep of operational-mode
    validation)."""
    if dwell < 1:
        raise SimulationError("mode-sequence dwell time must be >= 1 tick")
    scenarios = []
    for index, sequence in enumerate(sequences):
        stimuli = dict(base or {})
        stimuli[port] = ModeSequence([(value, dwell) for value in sequence])
        label = "-".join(str(value) for value in sequence)
        scenarios.append(Scenario(f"{name}[{index}:{label}]", stimuli, ticks))
    return scenarios
