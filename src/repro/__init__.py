"""AutoMoDe reproduction: model-based development of automotive software.

This package reproduces the system described in "AutoMoDe -- Model-Based
Development of Automotive Software" (DATE 2005): a modelling framework with

* a message-based, discrete-time operational model with abstract clocks,
* graphical notations (SSD, DFD, MTD, STD, CCD) as views of one metamodel,
* abstraction levels FAA, FDA, LA/TA and OA,
* formalised transformation steps (reengineering, refactoring, refinement),
* a simulated ASCET-SD / OSEK / CAN substrate for deployment and code
  generation,
* the gasoline-engine-control reengineering case study.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the mapping of
paper figures to benchmarks.
"""

__version__ = "1.0.0"

from . import core, obs

__all__ = ["core", "obs", "__version__"]
