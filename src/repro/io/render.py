"""Plain-text rendering of diagrams and reports.

The benchmarks regenerate the paper's figures as text: structural summaries
of SSD/DFD/CCD diagrams, mode graphs for MTDs, and the Fig.-1 trace table via
:meth:`repro.simulation.trace.SimulationTrace.format_table`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.components import Component, CompositeComponent
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from ..notations.mtd import ModeTransitionDiagram
from ..notations.std import StateTransitionDiagram


def render_interface(component: Component) -> str:
    """One-line-per-port interface listing."""
    lines = [f"component {component.name} "
             f"<<{getattr(component, 'notation', type(component).__name__)}>>"]
    for port in component.input_ports():
        lines.append(f"  in  {port.name}: {port.port_type!r} "
                     f"@ {port.clock.expression()}")
    for port in component.output_ports():
        lines.append(f"  out {port.name}: {port.port_type!r} "
                     f"@ {port.clock.expression()}")
    return "\n".join(lines)


def render_structure(diagram: CompositeComponent, indent: int = 0) -> str:
    """Indented structural tree of a composite diagram."""
    pad = " " * indent
    notation = getattr(diagram, "notation", "composite")
    lines = [f"{pad}{diagram.name} <<{notation}>>"]
    for component in diagram.subcomponents():
        if isinstance(component, CompositeComponent):
            lines.append(render_structure(component, indent + 2))
        else:
            extra = ""
            if isinstance(component, ModeTransitionDiagram):
                extra = f" modes={component.mode_names()}"
            lines.append(f"{pad}  {component.name} "
                         f"<<{getattr(component, 'notation', type(component).__name__)}>>{extra}")
    for channel in diagram.channels():
        marker = "=delay=>" if channel.delayed else "-->"
        lines.append(f"{pad}  {channel.source!r} {marker} {channel.destination!r}")
    return "\n".join(lines)


def render_mtd(mtd: ModeTransitionDiagram) -> str:
    """Text rendering of an MTD (modes, initial marker, transitions)."""
    lines = [f"MTD {mtd.name}:"]
    for mode in mtd.modes():
        marker = "*" if mode.name == mtd.initial_mode else " "
        behavior = mode.behavior.name if mode.behavior is not None else "(unspecified)"
        lines.append(f"  [{marker}] {mode.name}  behaviour: {behavior}")
    for transition in mtd.transitions():
        lines.append(f"      {transition.describe()}")
    return "\n".join(lines)


def render_std(std: StateTransitionDiagram) -> str:
    """Text rendering of an STD."""
    lines = [f"STD {std.name}:"]
    for state in std.states():
        marker = "*" if state.name == std.initial_state_name else " "
        lines.append(f"  [{marker}] {state.name}")
    for transition in std.transitions():
        lines.append(f"      {transition.describe()}")
    return "\n".join(lines)


def render_ccd(ccd: ClusterCommunicationDiagram) -> str:
    """Text rendering of a CCD with explicit rates (Fig.-7 style)."""
    lines = [f"CCD {ccd.name}:"]
    for cluster in ccd.clusters():
        lines.append(f"  cluster {cluster.name} @ every({cluster.period}, true) "
                     f"[{len(cluster.subcomponents())} block(s)]")
        for port in cluster.ports():
            lines.append(f"    {port.direction} {port.name}: {port.port_type!r}")
    for entry in ccd.rate_transitions():
        marker = "=delay=>" if entry["delayed"] else "-->"
        lines.append(f"  {entry['source']}({entry['source_period']}) {marker} "
                     f"{entry['destination']}({entry['destination_period']}) "
                     f"[{entry['direction']}]")
    return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align a simple table for benchmark output."""
    table = [list(map(str, headers))] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[col]) for row in table) for col in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[col])
                               for col, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * widths[col] for col in range(len(headers))))
    return "\n".join(lines)
