"""Graphviz DOT export of AutoMoDe diagrams.

The paper's notations are graphical (Figs. 4-8); this module renders the
programmatic models back into DOT so the figures can be regenerated with any
Graphviz viewer.  Composite diagrams (SSD, DFD, CCD) become clustered
digraphs; MTDs and STDs become state graphs.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.components import Component, CompositeComponent
from ..notations.ccd import Cluster, ClusterCommunicationDiagram
from ..notations.mtd import ModeTransitionDiagram
from ..notations.std import StateTransitionDiagram


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def composite_to_dot(diagram: CompositeComponent,
                     graph_name: Optional[str] = None) -> str:
    """Render an SSD/DFD/CCD as a DOT digraph."""
    name = graph_name or diagram.name
    lines = [f'digraph "{_escape(name)}" {{',
             "  rankdir=LR;",
             "  node [shape=box, fontsize=10];"]
    for port in diagram.input_ports():
        lines.append(f'  "in_{_escape(port.name)}" [shape=plaintext, '
                     f'label="{_escape(port.name)}"];')
    for port in diagram.output_ports():
        lines.append(f'  "out_{_escape(port.name)}" [shape=plaintext, '
                     f'label="{_escape(port.name)}"];')
    for component in diagram.subcomponents():
        label = component.name
        if isinstance(component, Cluster):
            label = f"{component.name}\\nevery({component.period}, true)"
        elif isinstance(component, ModeTransitionDiagram):
            label = f"{component.name}\\n<<MTD>>"
        elif isinstance(component, StateTransitionDiagram):
            label = f"{component.name}\\n<<STD>>"
        elif isinstance(component, CompositeComponent):
            label = f"{component.name}\\n<<{getattr(component, 'notation', 'SSD')}>>"
        lines.append(f'  "{_escape(component.name)}" [label="{_escape(label)}"];')
    for channel in diagram.channels():
        source = (f"in_{channel.source.port}" if channel.source.is_boundary()
                  else channel.source.component)
        destination = (f"out_{channel.destination.port}"
                       if channel.destination.is_boundary()
                       else channel.destination.component)
        style = ' style=dashed' if channel.delayed else ""
        lines.append(f'  "{_escape(source or "")}" -> '
                     f'"{_escape(destination or "")}" '
                     f'[label="{_escape(channel.source.port)}"{style}];')
    lines.append("}")
    return "\n".join(lines)


def mtd_to_dot(mtd: ModeTransitionDiagram) -> str:
    """Render an MTD as a DOT state graph (Fig. 6 / Fig. 8 style)."""
    lines = [f'digraph "{_escape(mtd.name)}" {{',
             "  rankdir=LR;",
             "  node [shape=ellipse, fontsize=10];",
             '  "__initial" [shape=point];']
    for mode in mtd.modes():
        lines.append(f'  "{_escape(mode.name)}";')
    if mtd.initial_mode:
        lines.append(f'  "__initial" -> "{_escape(mtd.initial_mode)}";')
    for transition in mtd.transitions():
        lines.append(f'  "{_escape(transition.source)}" -> '
                     f'"{_escape(transition.target)}" '
                     f'[label="{_escape(transition.guard.to_source())}"];')
    lines.append("}")
    return "\n".join(lines)


def std_to_dot(std: StateTransitionDiagram) -> str:
    """Render an STD as a DOT state graph."""
    lines = [f'digraph "{_escape(std.name)}" {{',
             "  rankdir=LR;",
             "  node [shape=circle, fontsize=10];",
             '  "__initial" [shape=point];']
    for state in std.states():
        lines.append(f'  "{_escape(state.name)}";')
    if std.initial_state_name:
        lines.append(f'  "__initial" -> "{_escape(std.initial_state_name)}";')
    for transition in std.transitions():
        label = transition.guard.to_source()
        if transition.actions:
            actions = ", ".join(f"{k}:={v.to_source()}"
                                for k, v in transition.actions.items())
            label = f"{label} / {actions}"
        lines.append(f'  "{_escape(transition.source)}" -> '
                     f'"{_escape(transition.target)}" [label="{_escape(label)}"];')
    lines.append("}")
    return "\n".join(lines)


def to_dot(element: Component) -> str:
    """Dispatch to the appropriate DOT renderer for *element*."""
    if isinstance(element, ModeTransitionDiagram):
        return mtd_to_dot(element)
    if isinstance(element, StateTransitionDiagram):
        return std_to_dot(element)
    if isinstance(element, CompositeComponent):
        return composite_to_dot(element)
    return (f'digraph "{_escape(element.name)}" {{\n'
            f'  "{_escape(element.name)}" [shape=box];\n}}')
